#!/usr/bin/env python
"""Biomedical imaging under disk pressure (the paper's Fig. 5(b) scenario).

A growing batch of MRI/CT analysis tasks is pushed through a compute
cluster whose disk caches cannot hold the working set, so sub-batch
selection (BiPartition's BINW first level) and file eviction (Eq. 22
popularity vs. LRU) start to matter. Prints, per batch size: makespan,
evictions and sub-batch counts for BiPartition against both baselines.

Run:  python examples/image_disk_pressure.py [--sizes 150 300 600]
"""

import argparse

from repro import osc_xio, run_batch
from repro.workloads import generate_image_batch


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--sizes", type=int, nargs="+", default=[150, 300, 600])
    parser.add_argument(
        "--disk-gb", type=float, default=6.0, help="disk per compute node (GB)"
    )
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    platform = osc_xio(
        num_compute=4, num_storage=4, disk_space_mb=args.disk_gb * 1000
    )
    print(
        f"4 compute nodes x {args.disk_gb:.0f} GB disk "
        f"(aggregate {platform.aggregate_disk_space / 1000:.0f} GB)\n"
    )
    header = f"{'tasks':>6s} {'data GB':>8s}"
    for s in ("bipartition", "jdp", "minmin"):
        header += f" | {s}: time / evict / sub"
    print(header)

    for n in args.sizes:
        batch = generate_image_batch(n, "high", platform.num_storage, seed=args.seed)
        row = f"{n:6d} {batch.distinct_file_mb / 1000:8.1f}"
        for scheme in ("bipartition", "jdp", "minmin"):
            result = run_batch(batch, platform, scheme, candidate_limit=25)
            row += (
                f" | {result.makespan:7.1f}s / {result.stats.evictions:5d} "
                f"/ {result.num_sub_batches:3d}"
            )
        print(row)

    print(
        "\nAs the working set outgrows the caches, the baselines thrash "
        "(evictions soar)\nwhile BiPartition's disk-aware sub-batches keep "
        "re-staging bounded."
    )


if __name__ == "__main__":
    main()
