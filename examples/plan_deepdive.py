#!/usr/bin/env python
"""Deep dive into one scheduling decision: plan, validation, Gantt, traffic.

Runs the IP scheduler and BiPartition on the same small batch and inspects
everything the library exposes about *why* the makespans differ:

1. the sub-batch plan each scheduler produced (mapping + staging),
2. structural validation of those plans (`repro.core.validate`),
3. the executed Gantt chart (ASCII) and per-resource busy times,
4. the remote/replication traffic breakdown.

Run:  python examples/plan_deepdive.py
"""

from repro import osc_xio
from repro.cluster import ClusterState, Runtime, render_ascii, trace_events
from repro.core import BiPartitionScheduler, IPScheduler, validate_plan
from repro.workloads import generate_sat_batch


def run_and_inspect(name, scheduler, batch, platform):
    print(f"\n=== {name} ===")
    state = ClusterState.initial(platform, batch)
    plan = scheduler.next_subbatch(
        batch, [t.task_id for t in batch.tasks], platform, state
    )

    report = validate_plan(plan, batch, platform, state)
    print(f"plan valid: {report.ok}")
    per_node = {}
    for t, node in plan.mapping.items():
        per_node.setdefault(node, []).append(t)
    for node in sorted(per_node):
        print(f"  node {node}: {len(per_node[node])} tasks -> {sorted(per_node[node])}")
    if plan.staging is not None:
        remotes = sum(
            1 for s in plan.staging.sources.values() if s.kind == "remote"
        )
        replicas = len(plan.staging.sources) - remotes
        print(
            f"  staging fixed by the plan: {remotes} remote transfers, "
            f"{replicas} replications, {len(plan.staging.pushes)} pushes"
        )
    else:
        print("  staging: fully dynamic (min-TCT at runtime)")

    runtime = Runtime(platform, state)
    tasks = [batch.task(t) for t in plan.task_ids]
    result = runtime.execute(tasks, plan.mapping, plan.staging)
    print(f"makespan: {result.makespan:.2f}s")
    print(
        f"traffic: {state.stats.remote_volume_mb:.0f} MB remote, "
        f"{state.stats.replication_volume_mb:.0f} MB replicated"
    )
    transfers = [e for e in trace_events(runtime) if e.kind == "xfer"]
    if transfers:
        busiest = max(
            (tl for tl in runtime.storage_tl), key=lambda tl: tl.busy_time()
        )
        print(
            f"busiest storage port: {busiest.name} "
            f"({busiest.busy_time():.1f}s busy of {result.makespan:.1f}s)"
        )
    print("\n" + render_ascii(runtime, width=64))
    return result.makespan


def main():
    platform = osc_xio(num_compute=2, num_storage=2)
    batch = generate_sat_batch(12, "high", platform.num_storage, seed=3)
    print(f"{batch} on 2 compute + 2 storage nodes")

    ip_span = run_and_inspect(
        "IP (coupled scheduling + replication)",
        IPScheduler(time_limit=20.0, mip_rel_gap=0.0),
        batch,
        platform,
    )
    bp_span = run_and_inspect(
        "BiPartition (decoupled, dynamic staging)",
        BiPartitionScheduler(seed=0),
        batch,
        platform,
    )
    print(
        f"\nIP {ip_span:.2f}s vs BiPartition {bp_span:.2f}s "
        f"(ratio {bp_span / ip_span:.2f}) — the paper reports BiPartition "
        "within 5-10% of IP at a fraction of the scheduling cost."
    )


if __name__ == "__main__":
    main()
