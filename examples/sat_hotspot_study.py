#!/usr/bin/env python
"""Satellite data analysis scenario (the paper's SAT application).

Simulates four research groups querying hot-spot regions of a remotely
sensed dataset (Section 7): 100 window queries against a 50 GB dataset of
50 MB chunk files, Hilbert-declustered over the storage cluster. Shows how
the degree of file sharing among queries changes both the absolute batch
execution time and the payoff of affinity-aware scheduling, on both
testbeds (fast XIO storage vs. OSUMED behind a shared 100 Mbps link).

Run:  python examples/sat_hotspot_study.py [--tasks 100]
"""

import argparse

from repro import osc_osumed, osc_xio, run_batch
from repro.workloads import generate_sat_batch, sat_groups, within_group_overlap


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--tasks", type=int, default=100)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    platforms = {
        "xio": osc_xio(num_compute=4, num_storage=4),
        "osumed": osc_osumed(num_compute=4, num_storage=4),
    }
    schemes = ("bipartition", "jdp", "minmin")

    for storage, platform in platforms.items():
        print(f"\n=== {storage.upper()} storage cluster ===")
        print(f"{'overlap':8s} {'measured':>9s} " + "".join(f"{s:>14s}" for s in schemes))
        for overlap in ("high", "medium", "low"):
            batch = generate_sat_batch(
                args.tasks, overlap, platform.num_storage, seed=args.seed
            )
            measured = within_group_overlap(batch, sat_groups(batch))
            row = f"{overlap:8s} {measured:8.0%} "
            for scheme in schemes:
                result = run_batch(batch, platform, scheme)
                row += f"{result.makespan:13.1f}s"
            print(row)

    print(
        "\nReading the table: affinity-aware BiPartition wins most where "
        "sharing is high;\nthe shared OSUMED link makes every transfer ~17x "
        "more expensive, so remote-I/O\nminimisation matters much more there."
    )


if __name__ == "__main__":
    main()
