#!/usr/bin/env python
"""Quickstart: schedule a small batch under all four schedulers.

Builds a 40-task high-overlap biomedical-imaging batch, runs it on a
simulated OSC/XIO coupled cluster under each scheduler, and prints a
comparison. This is the smallest end-to-end tour of the public API:

    batch     <- repro.workloads   (what to run)
    platform  <- repro.osc_xio     (where to run it)
    run_batch <- repro             (schedule + simulate)

Run:  python examples/quickstart.py
"""

from repro import available_schedulers, osc_xio, run_batch
from repro.batch import overlap_fraction
from repro.workloads import generate_image_batch


def main():
    platform = osc_xio(num_compute=4, num_storage=4)
    batch = generate_image_batch(
        num_tasks=40, overlap="high", num_storage=platform.num_storage, seed=0
    )
    print(f"Batch: {batch}")
    print(f"Sharing fraction: {overlap_fraction(batch):.0%}\n")

    print(
        f"{'scheduler':14s} {'makespan':>10s} {'sched ms/task':>14s} "
        f"{'remote MB':>10s} {'replica MB':>11s}"
    )
    for name in available_schedulers():
        kwargs = {"time_limit": 20.0, "mip_rel_gap": 0.05} if name == "ip" else {}
        result = run_batch(
            batch, platform, name, scheduler_kwargs=kwargs
        )
        print(
            f"{name:14s} {result.makespan:9.1f}s "
            f"{result.scheduling_ms_per_task:14.2f} "
            f"{result.stats.remote_volume_mb:10.0f} "
            f"{result.stats.replication_volume_mb:11.0f}"
        )

    print(
        "\nExpected shape (paper, Section 7): ip <= bipartition < jdp <= "
        "minmin on makespan,\nwhile ip's scheduling overhead dwarfs the rest."
    )


if __name__ == "__main__":
    main()
