#!/usr/bin/env python
"""Extending the library: plug in a custom scheduler.

The scheduler interface is one method: ``next_subbatch`` sees the pending
tasks and the live cluster state and returns a ``SubBatchPlan``. This
example implements a naive round-robin scheduler, registers it, and races
it against the built-in schemes — showing both the extension API and how
much the data-aware schemes actually buy.

Run:  python examples/custom_scheduler.py
"""

from repro import osc_xio, run_batch
from repro.core import Scheduler, SubBatchPlan, register_scheduler
from repro.workloads import generate_image_batch


@register_scheduler("roundrobin")
class RoundRobinScheduler(Scheduler):
    """Deal tasks to nodes in order, ignoring data placement entirely."""

    uses_subbatches = False

    def next_subbatch(self, batch, pending, platform, state):
        mapping = {
            task_id: k % platform.num_compute
            for k, task_id in enumerate(pending)
        }
        return SubBatchPlan(task_ids=list(pending), mapping=mapping)


def main():
    platform = osc_xio(num_compute=4, num_storage=4)
    batch = generate_image_batch(60, "high", platform.num_storage, seed=1)

    print(
        f"{'scheduler':14s} {'makespan':>10s} {'remote MB':>10s} "
        f"{'replica MB':>11s}"
    )
    for name in ("roundrobin", "minmin", "jdp", "bipartition"):
        result = run_batch(batch, platform, name)
        print(
            f"{name:14s} {result.makespan:9.1f}s "
            f"{result.stats.remote_volume_mb:10.0f} "
            f"{result.stats.replication_volume_mb:11.0f}"
        )

    print(
        "\nRound-robin scatters file-sharing tasks across nodes, so the "
        "runtime has to\npatch locality back in with extra node-to-node "
        "copies and still finishes later\n— the gap to bipartition is the "
        "value of modelling batch-shared I/O up front."
    )


if __name__ == "__main__":
    main()
