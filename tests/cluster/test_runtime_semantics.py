"""Additional runtime semantics: link usage, bandwidth mixes, eviction order."""

import pytest

from repro.batch import Batch, FileInfo, Task
from repro.cluster import (
    ClusterState,
    ComputeNode,
    Platform,
    Runtime,
    StorageNode,
)


def linked_platform(compute_bw=1000.0):
    """OSUMED-style: slow storage disks behind a shared 12.5 MB/s link."""
    return Platform(
        compute_nodes=(ComputeNode(0), ComputeNode(1)),
        storage_nodes=(StorageNode(0, disk_bw=25.0), StorageNode(1, disk_bw=25.0)),
        storage_network_bw=12.5,
        compute_network_bw=compute_bw,
        shared_link_bw=12.5,
    )


class TestSharedLink:
    def test_replications_bypass_the_link(self):
        """Node-to-node copies run inside the compute cluster and must not
        occupy the inter-cluster link — the whole point of Fig. 5(a)."""
        platform = linked_platform()
        files = {"f": FileInfo("f", 125.0, 0)}
        batch = Batch([Task("t1", ("f",), 0.1)], files)
        state = ClusterState.initial(platform, batch)
        state.place(0, "f")
        rt = Runtime(platform, state)
        rt.execute(batch.tasks, {"t1": 1})
        assert state.stats.replications == 1
        assert rt.link_tl is not None
        assert rt.link_tl.busy_time() == 0.0

    def test_remote_occupies_link_for_full_duration(self):
        platform = linked_platform()
        files = {"f": FileInfo("f", 125.0, 0)}  # 10 s at 12.5 MB/s
        batch = Batch([Task("t", ("f",), 0.0)], files)
        state = ClusterState.initial(platform, batch)
        rt = Runtime(platform, state)
        rt.execute(batch.tasks, {"t": 0})
        assert rt.link_tl.busy_time() == pytest.approx(10.0)
        assert rt.storage_tl[0].busy_time() == pytest.approx(10.0)

    def test_effective_bandwidth_is_min_of_stages(self):
        # Disk 25, network 12.5 -> the link bounds the transfer.
        platform = linked_platform()
        assert platform.remote_bandwidth(0) == 12.5


class TestPerStorageBandwidth:
    def test_faster_storage_node_finishes_first(self):
        platform = Platform(
            compute_nodes=(ComputeNode(0), ComputeNode(1)),
            storage_nodes=(
                StorageNode(0, disk_bw=200.0),
                StorageNode(1, disk_bw=50.0),
            ),
            storage_network_bw=1000.0,
            compute_network_bw=1000.0,
        )
        files = {
            "fast": FileInfo("fast", 100.0, 0),
            "slow": FileInfo("slow", 100.0, 1),
        }
        batch = Batch(
            [Task("tf", ("fast",), 0.0), Task("ts", ("slow",), 0.0)], files
        )
        state = ClusterState.initial(platform, batch)
        rt = Runtime(platform, state)
        res = rt.execute(batch.tasks, {"tf": 0, "ts": 1})
        rec = {r.task_id: r for r in res.records}
        assert rec["tf"].transfers_done == pytest.approx(0.5)
        assert rec["ts"].transfers_done == pytest.approx(2.0)


class TestEvictionPolicyBehaviour:
    def _pressured_run(self, policy_name):
        """6 files through a 250 MB cache; one 'hot' file used by all tasks.

        With popularity eviction the hot file survives; with size-first the
        hot file (it is the smallest) is the first victim, causing
        re-transfers.
        """
        from repro.core import PopularityPolicy, SizePolicy, run_batch
        from repro.core.bipartition import BiPartitionScheduler

        platform = Platform(
            compute_nodes=(ComputeNode(0, disk_space_mb=250.0),),
            storage_nodes=(StorageNode(0, disk_bw=100.0),),
            storage_network_bw=1000.0,
            compute_network_bw=1000.0,
        )
        files = {"hot": FileInfo("hot", 40.0, 0)}
        files.update(
            {f"cold{i}": FileInfo(f"cold{i}", 100.0, 0) for i in range(5)}
        )
        tasks = [
            Task(f"t{i}", ("hot", f"cold{i}"), 0.1) for i in range(5)
        ]
        batch = Batch(tasks, files)
        policy = (
            PopularityPolicy.for_batch(batch)
            if policy_name == "popularity"
            else SizePolicy()
        )
        return run_batch(
            batch,
            platform,
            BiPartitionScheduler(seed=0),
            eviction_policy=policy,
        )

    def test_popularity_protects_hot_file(self):
        pop = self._pressured_run("popularity")
        size = self._pressured_run("size")
        # Size-first evicts the hot 40 MB file repeatedly; popularity keeps
        # it, so popularity never moves more remote bytes than size-first.
        assert pop.stats.remote_volume_mb <= size.stats.remote_volume_mb
