"""Unit tests for cluster-wide file placement state."""

import pytest

from repro.batch import Batch, FileInfo, Task
from repro.cluster import ClusterState, TransferStats, osc_xio


@pytest.fixture
def setup():
    platform = osc_xio(num_compute=3, num_storage=2, disk_space_mb=200.0)
    files = {
        "a": FileInfo("a", 50.0, 0),
        "b": FileInfo("b", 100.0, 1),
    }
    batch = Batch([Task("t", ("a", "b"), 1.0)], files)
    return platform, ClusterState.initial(platform, batch)


class TestPlacement:
    def test_initially_storage_only(self, setup):
        _, state = setup
        assert state.holders("a") == frozenset()
        assert state.num_copies("a") == 0

    def test_place_and_query(self, setup):
        _, state = setup
        state.place(0, "a")
        assert state.has_file(0, "a")
        assert not state.has_file(1, "a")
        assert state.holders("a") == frozenset({0})
        assert state.num_copies("a") == 1

    def test_multiple_copies(self, setup):
        _, state = setup
        state.place(0, "a")
        state.place(2, "a")
        assert state.holders("a") == frozenset({0, 2})

    def test_drop(self, setup):
        _, state = setup
        state.place(0, "a")
        state.drop(0, "a")
        assert state.holders("a") == frozenset()
        assert not state.has_file(0, "a")

    def test_evict_records_stats(self, setup):
        _, state = setup
        state.place(0, "a")
        state.evict(0, "a")
        assert state.stats.evictions == 1
        assert state.stats.evicted_volume_mb == 50.0

    def test_capacity_respected(self, setup):
        _, state = setup
        state.place(0, "a")
        state.place(0, "b")
        with pytest.raises(Exception):
            state.place(0, "a2")  # unknown file -> KeyError from size_of

    def test_consistency_check(self, setup):
        _, state = setup
        state.place(1, "b")
        state.check_consistency()

    def test_storage_node_lookup(self, setup):
        _, state = setup
        assert state.storage_node_of("a") == 0
        assert state.storage_node_of("b") == 1

    def test_files_on(self, setup):
        _, state = setup
        state.place(2, "a")
        state.place(2, "b")
        assert set(state.files_on(2)) == {"a", "b"}

    def test_register_files(self, setup):
        _, state = setup
        state.register_files({"c": FileInfo("c", 10.0, 0)})
        assert state.size_of("c") == 10.0


class TestTransferStats:
    def test_record_remote(self, setup):
        _, state = setup
        state.record_remote(50.0)
        assert state.stats.remote_transfers == 1
        assert state.stats.remote_volume_mb == 50.0

    def test_record_replication(self, setup):
        _, state = setup
        state.record_replication(25.0)
        assert state.stats.replications == 1
        assert state.stats.replication_volume_mb == 25.0

    def test_merge(self):
        a = TransferStats(1, 10.0, 2, 20.0, 3, 30.0)
        b = TransferStats(1, 1.0, 1, 1.0, 1, 1.0)
        m = a.merge(b)
        assert m.remote_transfers == 2
        assert m.remote_volume_mb == 11.0
        assert m.replications == 3
        assert m.evictions == 4
