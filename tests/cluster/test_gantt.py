"""Unit tests for Gantt-chart timelines, overlays and common-slot search."""

import pytest

from repro.cluster import Interval, Overlay, Timeline, earliest_common_slot


class TestInterval:
    def test_duration(self):
        assert Interval(1.0, 3.5).duration == 2.5

    def test_bad_interval_rejected(self):
        with pytest.raises(ValueError):
            Interval(2.0, 1.0)

    def test_ordering_by_start(self):
        assert Interval(1.0, 2.0) < Interval(3.0, 4.0)


class TestTimeline:
    def test_empty_is_free(self):
        tl = Timeline("t")
        assert tl.is_free(0.0, 100.0)
        assert tl.earliest_slot(5.0) == 0.0
        assert tl.horizon == 0.0

    def test_reserve_and_conflict(self):
        tl = Timeline("t")
        tl.reserve(1.0, 2.0)
        assert not tl.is_free(0.0, 1.5)
        assert not tl.is_free(2.5, 3.5)
        assert tl.is_free(3.0, 5.0)
        with pytest.raises(ValueError):
            tl.reserve(2.0, 1.0)

    def test_adjacent_reservations_allowed(self):
        tl = Timeline("t")
        tl.reserve(0.0, 1.0)
        tl.reserve(1.0, 1.0)  # back-to-back is fine
        assert len(tl) == 2

    def test_earliest_slot_in_gap(self):
        tl = Timeline("t")
        tl.reserve(0.0, 1.0)
        tl.reserve(3.0, 1.0)
        assert tl.earliest_slot(2.0) == 1.0
        assert tl.earliest_slot(2.5) == 4.0  # gap too small

    def test_earliest_slot_not_before(self):
        tl = Timeline("t")
        tl.reserve(0.0, 1.0)
        assert tl.earliest_slot(1.0, not_before=0.5) == 1.0
        assert tl.earliest_slot(1.0, not_before=2.0) == 2.0

    def test_earliest_slot_inside_busy(self):
        tl = Timeline("t")
        tl.reserve(0.0, 10.0)
        assert tl.earliest_slot(1.0, not_before=5.0) == 10.0

    def test_next_free(self):
        tl = Timeline("t")
        tl.reserve(1.0, 2.0)
        assert tl.next_free(0.0) == 0.0
        assert tl.next_free(1.5) == 3.0

    def test_zero_duration(self):
        tl = Timeline("t")
        tl.reserve(0.0, 2.0)
        assert tl.earliest_slot(0.0, not_before=1.0) == 2.0

    def test_busy_time_and_horizon(self):
        tl = Timeline("t")
        tl.reserve(0.0, 1.0)
        tl.reserve(5.0, 2.0)
        assert tl.busy_time() == 3.0
        assert tl.horizon == 7.0

    def test_many_reservations_sorted(self):
        tl = Timeline("t")
        for start in (6.0, 2.0, 4.0, 0.0):
            tl.reserve(start, 1.0)
        starts = [iv.start for iv in tl.intervals]
        assert starts == sorted(starts)

    def test_tag_preserved(self):
        tl = Timeline("t")
        iv = tl.reserve(0.0, 1.0, tag="xfer:f1")
        assert iv.tag == "xfer:f1"


class TestOverlay:
    def test_virtual_blocks_slot(self):
        tl = Timeline("t")
        ov = Overlay(tl)
        ov.reserve(0.0, 2.0)
        assert ov.earliest_slot(1.0) == 2.0
        # base is untouched
        assert tl.earliest_slot(1.0) == 0.0

    def test_combines_base_and_virtual(self):
        tl = Timeline("t")
        tl.reserve(0.0, 1.0)
        ov = Overlay(tl)
        ov.reserve(1.0, 1.0)
        assert ov.earliest_slot(1.0) == 2.0

    def test_gap_between_base_and_virtual(self):
        tl = Timeline("t")
        tl.reserve(0.0, 1.0)
        tl.reserve(5.0, 1.0)
        ov = Overlay(tl)
        ov.reserve(1.0, 1.0)
        assert ov.earliest_slot(2.0) == 2.0  # gap [2,5)
        assert ov.earliest_slot(4.0) == 6.0

    def test_conflicting_virtual_rejected(self):
        tl = Timeline("t")
        ov = Overlay(tl)
        ov.reserve(0.0, 2.0)
        with pytest.raises(ValueError):
            ov.reserve(1.0, 1.0)

    def test_commit_writes_through(self):
        tl = Timeline("t")
        ov = Overlay(tl)
        ov.reserve(0.0, 2.0, tag="a")
        ov.reserve(3.0, 1.0, tag="b")
        ov.commit()
        assert len(tl) == 2
        assert not ov.virtual
        assert not tl.is_free(0.5, 1.0)


class TestCommonSlot:
    def test_single_resource(self):
        tl = Timeline("a")
        tl.reserve(0.0, 3.0)
        assert earliest_common_slot([tl], 1.0) == 3.0

    def test_two_resources_interleaved(self):
        a = Timeline("a")
        b = Timeline("b")
        a.reserve(0.0, 2.0)
        b.reserve(2.0, 2.0)
        # a free from 2, b free [0,2) and from 4 -> first common 1.0-slot: 4.0
        assert earliest_common_slot([a, b], 1.0) == 4.0

    def test_fits_common_gap(self):
        a = Timeline("a")
        b = Timeline("b")
        a.reserve(0.0, 1.0)
        a.reserve(4.0, 1.0)
        b.reserve(0.0, 2.0)
        # common gap [2,4) fits 2.0
        assert earliest_common_slot([a, b], 2.0) == 2.0
        assert earliest_common_slot([a, b], 3.0) == 5.0

    def test_not_before_respected(self):
        a = Timeline("a")
        assert earliest_common_slot([a], 1.0, not_before=7.5) == 7.5

    def test_empty_resources(self):
        assert earliest_common_slot([], 1.0, not_before=3.0) == 3.0

    def test_with_overlays(self):
        a = Timeline("a")
        ov = Overlay(a)
        ov.reserve(0.0, 5.0)
        b = Timeline("b")
        b.reserve(5.0, 1.0)
        assert earliest_common_slot([ov, b], 1.0) == 6.0
