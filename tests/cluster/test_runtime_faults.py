"""Runtime-level fault injection: crashes, retries, failover, disk loss.

Driver-level recovery (rescheduling across surviving nodes) is covered in
``tests/core/test_driver_faults.py``; here the Runtime is driven directly
so individual fault mechanics are observable through the audit trail.
"""

import math

import pytest

from repro.batch import Batch, FileInfo, Task
from repro.cluster import ClusterState, ComputeNode, Platform, Runtime, StorageNode
from repro.faults import DiskLoss, FaultModel, FaultSpec, NodeCrash
from repro.workloads import generate_image_batch


def make_platform(num_compute=2, num_storage=1, disk_space_mb=math.inf):
    return Platform(
        compute_nodes=tuple(
            ComputeNode(i, disk_space_mb=disk_space_mb, local_disk_bw=200.0)
            for i in range(num_compute)
        ),
        storage_nodes=tuple(
            StorageNode(s, disk_bw=100.0) for s in range(num_storage)
        ),
        storage_network_bw=1000.0,
        compute_network_bw=1000.0,
    )


def make_runtime(platform, batch, spec=None, audit=False):
    state = ClusterState.initial(platform, batch)
    faults = FaultModel(spec) if spec is not None else None
    return Runtime(platform, state, audit=audit, faults=faults), state


class TestNullModel:
    def test_null_fault_model_is_bit_identical(self):
        # Even an *instantiated* null model (not just faults=None) must
        # reproduce the fault-free trace exactly.
        batch = generate_image_batch(16, "high", 2, seed=0)
        platform = make_platform(num_compute=4, num_storage=2)
        mapping = {t.task_id: i % 4 for i, t in enumerate(batch.tasks)}

        rt_plain, _ = make_runtime(platform, batch)
        res_plain = rt_plain.execute(batch.tasks, mapping, None)

        rt_null, _ = make_runtime(platform, batch, FaultSpec())
        res_null = rt_null.execute(batch.tasks, mapping, None)

        assert res_null.makespan == res_plain.makespan
        assert res_null.failed_tasks == []
        assert [r.completion for r in res_null.records] == [
            r.completion for r in res_plain.records
        ]


class TestNodeCrash:
    def test_crash_mid_subbatch_fails_remaining_tasks(self):
        # Node 1 dies at t=5; whatever it had not finished comes back in
        # failed_tasks, and nothing on node 1 extends past the crash (E6).
        batch = generate_image_batch(12, "high", 1, seed=0)
        platform = make_platform(num_compute=2)
        mapping = {t.task_id: i % 2 for i, t in enumerate(batch.tasks)}
        spec = FaultSpec(node_crashes=(NodeCrash(1, 5.0),))
        rt, state = make_runtime(platform, batch, spec, audit=True)

        res = rt.execute(batch.tasks, mapping, None)

        assert state.dead_nodes == {1}
        assert res.failed_tasks  # the crash interrupted real work
        on_node_1 = {t.task_id for t in batch.tasks if mapping[t.task_id] == 1}
        assert set(res.failed_tasks) <= on_node_1
        done = {r.task_id for r in res.records}
        assert done.isdisjoint(res.failed_tasks)
        assert done | set(res.failed_tasks) == {t.task_id for t in batch.tasks}
        for iv in rt.node_tl[1].intervals:
            assert iv.end <= 5.0 + 1e-9
        assert rt.trail is not None
        crashes = rt.trail.crashes
        assert len(crashes) == 1
        assert crashes[0].node == 1 and crashes[0].time == 5.0
        assert rt.faults is not None
        assert rt.faults.stats.node_crashes == 1
        assert rt.faults.stats.files_lost == len(crashes[0].lost_files)

    def test_dead_node_rejected_on_next_execute(self):
        # After the crash, a second sub-batch mapped onto the dead node
        # immediately fails those tasks instead of scheduling them.
        batch = generate_image_batch(8, "high", 1, seed=0)
        platform = make_platform(num_compute=2)
        spec = FaultSpec(node_crashes=(NodeCrash(1, 0.5),))
        rt, state = make_runtime(platform, batch, spec)
        first, second = batch.tasks[:4], batch.tasks[4:]

        rt.execute(first, {t.task_id: i % 2 for i, t in enumerate(first)}, None)
        assert 1 in state.dead_nodes

        res2 = rt.execute(second, {t.task_id: 1 for t in second}, None)
        assert set(res2.failed_tasks) == {t.task_id for t in second}
        assert res2.records == []


class TestRetriesAndFailover:
    def flaky_spec(self, rate=0.5, seed=0, attempts=4):
        return FaultSpec(
            transfer_failure_rate=rate,
            max_transfer_attempts=attempts,
            seed=seed,
        )

    def run_flaky(self, seed=0):
        batch = generate_image_batch(16, "high", 2, seed=0)
        platform = make_platform(num_compute=4, num_storage=2)
        mapping = {t.task_id: i % 4 for i, t in enumerate(batch.tasks)}
        rt, _ = make_runtime(platform, batch, self.flaky_spec(seed=seed), audit=True)
        res = rt.execute(batch.tasks, mapping, None)
        return rt, res

    def test_retry_backoff_is_deterministic(self):
        rt_a, res_a = self.run_flaky(seed=4)
        rt_b, res_b = self.run_flaky(seed=4)
        assert res_a.makespan == res_b.makespan
        assert rt_a.faults.stats.to_dict() == rt_b.faults.stats.to_dict()
        assert [
            (e.file_id, e.dest, e.attempt, e.start)
            for e in rt_a.trail.failed_transfers
        ] == [
            (e.file_id, e.dest, e.attempt, e.start)
            for e in rt_b.trail.failed_transfers
        ]

    def test_different_fault_seed_changes_outcome(self):
        _, res_a = self.run_flaky(seed=0)
        _, res_b = self.run_flaky(seed=1)
        assert res_a.makespan != res_b.makespan

    def test_failures_slow_the_batch_down(self):
        batch = generate_image_batch(16, "high", 2, seed=0)
        platform = make_platform(num_compute=4, num_storage=2)
        mapping = {t.task_id: i % 4 for i, t in enumerate(batch.tasks)}
        rt_plain, _ = make_runtime(platform, batch)
        plain = rt_plain.execute(batch.tasks, mapping, None).makespan
        rt_flaky, res_flaky = self.run_flaky(seed=4)
        assert res_flaky.makespan > plain
        stats = rt_flaky.faults.stats
        assert stats.transfer_failures > 0
        assert stats.retries == stats.transfer_failures

    def test_every_failed_transfer_eventually_recovers(self):
        # E7, asserted directly: each failed (file, dest) attempt is
        # followed (in commit order) by a successful transfer.
        rt, _ = self.run_flaky(seed=4)
        trail = rt.trail
        assert trail.failed_transfers  # the scenario actually failed things
        for fail in trail.failed_transfers:
            assert any(
                ev.file_id == fail.file_id
                and ev.dest == fail.dest
                and ev.seq > fail.seq
                for ev in trail.transfers
            )

    def test_failover_picks_a_different_source(self):
        # Rate 1.0 with 3 attempts: every staging session goes
        # fail/fail/succeed. Once node 0 holds a replica of "f", node 1's
        # session has two sources (replica from node 0 is cheaper than the
        # storage cluster), so the retry rotation must alternate them.
        files = {"f": FileInfo("f", 100.0, 0)}
        batch = Batch(
            [Task("t0", ("f",), 1.0), Task("t1", ("f",), 1.0)], files
        )
        platform = make_platform(num_compute=2)
        spec = self.flaky_spec(rate=1.0, attempts=3)
        rt, _ = make_runtime(platform, batch, spec, audit=True)

        rt.execute([batch.task("t0")], {"t0": 0}, None)
        rt.execute([batch.task("t1")], {"t1": 1}, None)

        fails = [e for e in rt.trail.failed_transfers if e.dest == 1]
        assert [e.attempt for e in fails] == [0, 1]
        # First (cheapest) try is the compute-side replica, the retry
        # fails over to the next-cheapest source: the storage cluster.
        assert fails[0].kind == "replica" and fails[0].source_node == 0
        assert fails[1].kind == "remote"
        assert rt.faults.stats.failovers >= 1
        success = [
            e for e in rt.trail.transfers if e.dest == 1 and e.file_id == "f"
        ]
        assert len(success) == 1

    def test_backoff_separates_attempts(self):
        # Consecutive attempts of one session are spaced by at least the
        # configured backoff.
        files = {"f": FileInfo("f", 100.0, 0)}
        batch = Batch([Task("t0", ("f",), 1.0)], files)
        platform = make_platform(num_compute=1)
        spec = FaultSpec(
            transfer_failure_rate=1.0,
            max_transfer_attempts=3,
            backoff_base_s=2.0,
            backoff_factor=2.0,
        )
        rt, _ = make_runtime(platform, batch, spec, audit=True)
        rt.execute(batch.tasks, {"t0": 0}, None)
        fails = sorted(rt.trail.failed_transfers, key=lambda e: e.attempt)
        assert len(fails) == 2
        assert fails[1].start >= fails[0].end + 2.0 - 1e-9
        success = rt.trail.transfers[0]
        assert success.start >= fails[1].end + 4.0 - 1e-9


class TestDiskLoss:
    def test_capacity_shrinks_at_event_time(self):
        batch = generate_image_batch(12, "high", 1, seed=0)
        platform = make_platform(num_compute=2, disk_space_mb=2000.0)
        mapping = {t.task_id: i % 2 for i, t in enumerate(batch.tasks)}
        spec = FaultSpec(disk_losses=(DiskLoss(0, 0.0, 500.0),))
        rt, state = make_runtime(platform, batch, spec)
        rt.execute(batch.tasks, mapping, None)
        assert state.caches[0].capacity_mb == pytest.approx(1500.0)
        assert state.caches[1].capacity_mb == pytest.approx(2000.0)
        assert rt.faults.stats.disk_losses == 1
