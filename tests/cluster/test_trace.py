"""Tests for Gantt trace export."""

import json

import pytest

from repro.batch import Batch, FileInfo, Task
from repro.cluster import (
    ClusterState,
    Runtime,
    osc_xio,
    render_ascii,
    to_chrome_trace,
    trace_events,
)
from repro.cluster.trace import TraceEvent


@pytest.fixture
def executed_runtime():
    platform = osc_xio(num_compute=2, num_storage=2)
    files = {
        "a": FileInfo("a", 210.0, 0),
        "b": FileInfo("b", 210.0, 1),
    }
    batch = Batch(
        [Task("t0", ("a",), 1.0), Task("t1", ("b",), 1.0)], files
    )
    state = ClusterState.initial(platform, batch)
    rt = Runtime(platform, state)
    rt.execute(batch.tasks, {"t0": 0, "t1": 1})
    return rt


class TestTraceEvents:
    def test_events_sorted(self, executed_runtime):
        events = trace_events(executed_runtime)
        assert events
        starts = [e.start for e in events]
        assert starts == sorted(starts)

    def test_kinds_classified(self, executed_runtime):
        kinds = {e.kind for e in trace_events(executed_runtime)}
        assert "xfer" in kinds
        assert "exec" in kinds

    def test_event_fields(self):
        e = TraceEvent("compute0", 1.0, 3.0, "exec:t0")
        assert e.kind == "exec"
        assert e.duration == 2.0
        assert TraceEvent("x", 0, 1, "weird").kind == "other"

    def test_covers_all_resources_with_work(self, executed_runtime):
        resources = {e.resource for e in trace_events(executed_runtime)}
        assert "compute0" in resources
        assert "compute1" in resources
        assert "storage0" in resources


class TestAsciiRendering:
    def test_contains_rows_and_legend(self, executed_runtime):
        out = render_ascii(executed_runtime)
        assert "compute0" in out
        assert "storage1" in out
        assert "x=transfer" in out
        assert "#" in out  # some execution rendered

    def test_empty_runtime(self):
        platform = osc_xio(num_compute=1, num_storage=1)
        state = ClusterState(platform, {})
        rt = Runtime(platform, state)
        assert render_ascii(rt) == "(empty gantt)"

    def test_width_respected(self, executed_runtime):
        out = render_ascii(executed_runtime, width=40)
        body_lines = [l for l in out.splitlines()[1:-1]]
        for line in body_lines:
            name, _, chart = line.partition("  ")
            assert len(chart) <= 41


class TestChromeTrace:
    def test_valid_json_with_events(self, executed_runtime):
        doc = json.loads(to_chrome_trace(executed_runtime))
        events = doc["traceEvents"]
        complete = [e for e in events if e.get("ph") == "X"]
        meta = [e for e in events if e.get("ph") == "M"]
        assert complete
        assert meta
        for e in complete:
            assert e["dur"] >= 0
            assert e["ts"] >= 0

    def test_microsecond_scaling(self, executed_runtime):
        doc = json.loads(to_chrome_trace(executed_runtime))
        events = trace_events(executed_runtime)
        max_end_us = max((e.end for e in events)) * 1e6
        max_ts = max(
            e["ts"] + e["dur"]
            for e in doc["traceEvents"]
            if e.get("ph") == "X"
        )
        assert max_ts == pytest.approx(max_end_us)


class TestChromeTraceSchema:
    """Validate the JSON event schema against the chrome://tracing format."""

    def test_top_level_shape(self, executed_runtime):
        doc = json.loads(to_chrome_trace(executed_runtime))
        assert set(doc) == {"traceEvents"}
        assert isinstance(doc["traceEvents"], list)

    def test_complete_event_fields(self, executed_runtime):
        doc = json.loads(to_chrome_trace(executed_runtime))
        for e in doc["traceEvents"]:
            if e["ph"] != "X":
                continue
            # "Complete" events require name/cat/ph/pid/tid/ts/dur.
            assert set(e) >= {"name", "cat", "ph", "pid", "tid", "ts", "dur"}
            assert isinstance(e["name"], str) and e["name"]
            assert e["cat"] in ("xfer", "push", "exec", "other")
            assert e["pid"] == 0
            assert isinstance(e["tid"], int)
            assert isinstance(e["ts"], float)
            assert isinstance(e["dur"], float)

    def test_metadata_names_every_thread(self, executed_runtime):
        doc = json.loads(to_chrome_trace(executed_runtime))
        meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        for e in meta:
            assert e["name"] == "thread_name"
            assert e["args"]["name"]
        named_tids = {e["tid"] for e in meta}
        used_tids = {e["tid"] for e in doc["traceEvents"] if e["ph"] == "X"}
        assert used_tids <= named_tids

    def test_tids_are_distinct_per_resource(self, executed_runtime):
        doc = json.loads(to_chrome_trace(executed_runtime))
        meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        names = [e["args"]["name"] for e in meta]
        tids = [e["tid"] for e in meta]
        assert len(set(names)) == len(names)
        assert len(set(tids)) == len(tids)

    def test_events_match_trace_events(self, executed_runtime):
        doc = json.loads(to_chrome_trace(executed_runtime))
        tid_to_name = {
            e["tid"]: e["args"]["name"]
            for e in doc["traceEvents"]
            if e["ph"] == "M"
        }
        exported = {
            (tid_to_name[e["tid"]], e["ts"], e["dur"], e["name"])
            for e in doc["traceEvents"]
            if e["ph"] == "X"
        }
        expected = {
            (ev.resource, ev.start * 1e6, ev.duration * 1e6, ev.tag)
            for ev in trace_events(executed_runtime)
        }
        assert exported == expected

    def test_empty_runtime_exports_only_metadata(self):
        from repro.cluster import osc_xio

        platform = osc_xio(num_compute=1, num_storage=1)
        state = ClusterState(platform, {})
        rt = Runtime(platform, state)
        doc = json.loads(to_chrome_trace(rt))
        assert all(e["ph"] == "M" for e in doc["traceEvents"])
        # One thread_name record per resource (nodes + storage + link).
        assert len(doc["traceEvents"]) >= 2
