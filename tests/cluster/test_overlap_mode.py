"""Tests for the I/O-compute overlap extension (relaxed Eq. 12 model)."""

import pytest

from repro.batch import Batch, FileInfo, Task
from repro.cluster import ClusterState, Runtime, osc_xio, trace_events
from repro.core import run_batch
from repro.workloads import generate_synthetic_batch


def make(platform, tasks, files):
    batch = Batch(tasks, files)
    state = ClusterState.initial(platform, batch)
    return batch, state


class TestOverlapRuntime:
    def test_staging_overlaps_execution(self):
        # Two tasks on one node, each with one 210 MB file (1s transfer at
        # 210 MB/s, ~1.05s read, 0.21s compute). In the paper's model the
        # second transfer waits for the first execution; with overlap it
        # proceeds during it.
        platform = osc_xio(num_compute=1, num_storage=2)
        files = {
            "a": FileInfo("a", 210.0, 0),
            "b": FileInfo("b", 210.0, 1),
        }
        tasks = [Task("t0", ("a",), 0.21), Task("t1", ("b",), 0.21)]

        batch, state = make(platform, tasks, files)
        strict = Runtime(platform, state)
        strict_res = strict.execute(batch.tasks, {"t0": 0, "t1": 0})

        batch, state = make(platform, tasks, files)
        relaxed = Runtime(platform, state, overlap_io_compute=True)
        relaxed_res = relaxed.execute(batch.tasks, {"t0": 0, "t1": 0})

        assert relaxed_res.makespan < strict_res.makespan - 1e-6

    def test_strict_mode_keeps_port_cpu_exclusive(self):
        platform = osc_xio(num_compute=1, num_storage=2)
        files = {"a": FileInfo("a", 210.0, 0), "b": FileInfo("b", 210.0, 1)}
        tasks = [Task("t0", ("a",), 0.5), Task("t1", ("b",), 0.5)]
        batch, state = make(platform, tasks, files)
        rt = Runtime(platform, state)
        rt.execute(batch.tasks, {"t0": 0, "t1": 0})
        ivs = sorted(rt.node_tl[0].intervals, key=lambda iv: iv.start)
        for a, b in zip(ivs, ivs[1:]):
            assert a.end <= b.start + 1e-9

    def test_overlap_mode_has_cpu_timelines(self):
        platform = osc_xio(num_compute=2, num_storage=1)
        files = {"a": FileInfo("a", 50.0, 0)}
        batch, state = make(platform, [Task("t", ("a",), 1.0)], files)
        rt = Runtime(platform, state, overlap_io_compute=True)
        rt.execute(batch.tasks, {"t": 0})
        assert rt.cpu_tl is not None
        # Executions land on the cpu timeline, transfers on the port.
        exec_events = [
            e for e in trace_events(rt) if e.kind == "exec"
        ]
        assert exec_events
        assert all(e.resource.startswith("cpu") for e in exec_events)

    def test_overlap_never_slower(self):
        platform = osc_xio(num_compute=2, num_storage=2)
        batch = generate_synthetic_batch(
            14, 18, 3, 2, hot_probability=0.5, seed=5
        )
        strict = run_batch(batch, platform, "bipartition")
        relaxed = run_batch(
            batch, platform, "bipartition", overlap_io_compute=True
        )
        assert relaxed.makespan <= strict.makespan * 1.01

    def test_invalid_ordering_rejected(self):
        platform = osc_xio(num_compute=1, num_storage=1)
        state = ClusterState(platform, {})
        with pytest.raises(ValueError):
            Runtime(platform, state, ordering="lifo")
