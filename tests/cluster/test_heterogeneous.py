"""Tests for the heterogeneous-compute-speed extension."""

import pytest

from repro.batch import Batch, FileInfo, Task
from repro.cluster import ClusterState, ComputeNode, Platform, Runtime, StorageNode
from repro.core import run_batch
from repro.workloads import generate_synthetic_batch


def hetero_platform(speeds=(1.0, 4.0)):
    return Platform(
        compute_nodes=tuple(
            ComputeNode(i, speed=s) for i, s in enumerate(speeds)
        ),
        storage_nodes=(StorageNode(0, disk_bw=210.0),),
        storage_network_bw=1000.0,
        compute_network_bw=1000.0,
    )


class TestPlatform:
    def test_speed_validation(self):
        with pytest.raises(ValueError):
            ComputeNode(0, speed=0.0)

    def test_task_compute_time_scales(self):
        p = hetero_platform()
        assert p.task_compute_time(0, 8.0) == 8.0
        assert p.task_compute_time(1, 8.0) == 2.0

    def test_homogeneity_flag(self):
        assert hetero_platform((1.0, 1.0)).is_homogeneous
        assert not hetero_platform((1.0, 2.0)).is_homogeneous


class TestRuntimeHonoursSpeed:
    def test_exec_duration_scales_with_speed(self):
        p = hetero_platform((1.0, 4.0))
        files = {"a": FileInfo("a", 210.0, 0), "b": FileInfo("b", 210.0, 0)}
        # identical tasks placed on the slow and the fast node
        tasks = [Task("slow", ("a",), 8.0), Task("fast", ("b",), 8.0)]
        batch = Batch(tasks, files)
        state = ClusterState.initial(p, batch)
        rt = Runtime(p, state)
        res = rt.execute(batch.tasks, {"slow": 0, "fast": 1})
        rec = {r.task_id: r for r in res.records}
        slow_exec = rec["slow"].completion - rec["slow"].exec_start
        fast_exec = rec["fast"].completion - rec["fast"].exec_start
        # Same read time (1.05 s); compute 8 s vs 2 s.
        assert slow_exec - fast_exec == pytest.approx(6.0)


class TestSchedulersExploitSpeed:
    @pytest.mark.parametrize("scheme", ["minmin", "jdp", "maxmin", "sufferage"])
    def test_fast_node_gets_more_work(self, scheme):
        # Compute-heavy tasks (tiny files): a 4x faster node should receive
        # the majority of tasks under any completion-time-driven heuristic.
        p = hetero_platform((1.0, 4.0))
        files = {f"f{i}": FileInfo(f"f{i}", 1.0, 0) for i in range(12)}
        tasks = [Task(f"t{i}", (f"f{i}",), 10.0) for i in range(12)]
        batch = Batch(tasks, files)
        res = run_batch(batch, p, scheme)
        on_fast = sum(
            1
            for sb in res.sub_batches
            for t, node in sb.plan.mapping.items()
            if node == 1
        )
        assert on_fast > 6, f"{scheme} put only {on_fast}/12 tasks on the fast node"

    def test_hetero_beats_forced_balance(self):
        # A speed-aware mapping must beat one that ignores speed: compare
        # makespans between the hetero platform and the same tasks forced
        # into an even split.
        p = hetero_platform((1.0, 4.0))
        files = {f"f{i}": FileInfo(f"f{i}", 1.0, 0) for i in range(10)}
        tasks = [Task(f"t{i}", (f"f{i}",), 10.0) for i in range(10)]
        batch = Batch(tasks, files)
        smart = run_batch(batch, p, "minmin")

        state = ClusterState.initial(p, batch)
        rt = Runtime(p, state)
        forced = rt.execute(
            batch.tasks, {f"t{i}": i % 2 for i in range(10)}
        )
        assert smart.makespan < forced.makespan

    def test_ip_accounts_for_speed(self):
        from repro.core import IPScheduler

        p = hetero_platform((1.0, 4.0))
        files = {f"f{i}": FileInfo(f"f{i}", 1.0, 0) for i in range(6)}
        tasks = [Task(f"t{i}", (f"f{i}",), 10.0) for i in range(6)]
        batch = Batch(tasks, files)
        res = run_batch(
            batch, p, IPScheduler(time_limit=20.0, mip_rel_gap=0.0)
        )
        on_fast = sum(
            1
            for sb in res.sub_batches
            for t, node in sb.plan.mapping.items()
            if node == 1
        )
        # Optimal split for 10s tasks on speeds (1, 4): ~4:1 ratio.
        assert on_fast >= 4

    def test_bipartition_still_valid_on_hetero(self):
        p = hetero_platform((1.0, 2.0))
        batch = generate_synthetic_batch(12, 16, 2, 1, seed=2)
        res = run_batch(batch, p, "bipartition")
        assert res.num_tasks == 12
