"""Tests for the Section 6 runtime engine against hand-computed schedules."""

import math

import pytest

from repro.batch import Batch, FileInfo, Task
from repro.cluster import (
    ClusterState,
    ComputeNode,
    PlannedSource,
    Platform,
    Runtime,
    StagingPlan,
    StorageNode,
)


def make_platform(
    num_compute=2,
    num_storage=2,
    disk_space_mb=math.inf,
    storage_bw=100.0,
    compute_bw=1000.0,
    local_bw=200.0,
    shared_link=None,
):
    return Platform(
        compute_nodes=tuple(
            ComputeNode(i, disk_space_mb=disk_space_mb, local_disk_bw=local_bw)
            for i in range(num_compute)
        ),
        storage_nodes=tuple(
            StorageNode(s, disk_bw=storage_bw) for s in range(num_storage)
        ),
        storage_network_bw=1000.0,
        compute_network_bw=compute_bw,
        shared_link_bw=shared_link,
    )


def run(platform, batch, mapping, plan=None, **kwargs):
    state = ClusterState.initial(platform, batch)
    rt = Runtime(platform, state, **kwargs)
    res = rt.execute(batch.tasks, mapping, plan)
    return res, state, rt


class TestSingleTask:
    def test_remote_read_compute_pipeline(self):
        # 100 MB file: remote 1.0s (100 MB/s), read 0.5s (200 MB/s),
        # compute 2.0s -> completion at 3.5s.
        platform = make_platform()
        batch = Batch(
            [Task("t", ("f",), 2.0)], {"f": FileInfo("f", 100.0, 0)}
        )
        res, state, _ = run(platform, batch, {"t": 0})
        assert res.makespan == pytest.approx(3.5)
        rec = res.records[0]
        assert rec.transfers_done == pytest.approx(1.0)
        assert rec.exec_start == pytest.approx(1.0)
        assert state.stats.remote_transfers == 1

    def test_two_files_serialized_on_dest_port(self):
        # Two 100 MB files on different storage nodes: the destination's
        # single port serialises them -> transfers done at 2.0.
        platform = make_platform()
        batch = Batch(
            [Task("t", ("f0", "f1"), 0.0)],
            {"f0": FileInfo("f0", 100.0, 0), "f1": FileInfo("f1", 100.0, 1)},
        )
        res, _, _ = run(platform, batch, {"t": 0})
        assert res.records[0].transfers_done == pytest.approx(2.0)

    def test_file_already_cached_costs_nothing(self):
        platform = make_platform()
        batch = Batch([Task("t", ("f",), 1.0)], {"f": FileInfo("f", 100.0, 0)})
        state = ClusterState.initial(platform, batch)
        state.place(0, "f")
        rt = Runtime(platform, state)
        res = rt.execute(batch.tasks, {"t": 0})
        # Only read (0.5) + compute (1.0).
        assert res.makespan == pytest.approx(1.5)
        assert state.stats.remote_transfers == 0


class TestReplication:
    def _shared_file_batch(self):
        return Batch(
            [Task("t0", ("f",), 1.0), Task("t1", ("f",), 1.0)],
            {"f": FileInfo("f", 100.0, 0)},
        )

    def test_replica_preferred_when_source_idle(self):
        # f pre-placed on idle node 0: replication (0.1s at 1000 MB/s)
        # beats remote (1.0s at 100 MB/s) for the task on node 1.
        platform = make_platform()
        batch = Batch([Task("t1", ("f",), 0.5)], {"f": FileInfo("f", 100.0, 0)})
        state = ClusterState.initial(platform, batch)
        state.place(0, "f")
        rt = Runtime(platform, state)
        res = rt.execute(batch.tasks, {"t1": 1})
        assert state.stats.replications == 1
        assert state.stats.remote_transfers == 0
        assert res.records[0].transfers_done == pytest.approx(0.1)

    def test_remote_wins_when_source_busy(self):
        # Both tasks need f; after t0 commits, node 0 is busy executing, so
        # t1's replica would start only after t0 finishes — remote transfer
        # from the (earlier-free) storage port wins under the single-port
        # model, exactly the contention effect the paper describes.
        platform = make_platform()
        res, state, _ = run(
            platform, self._shared_file_batch(), {"t0": 0, "t1": 1}
        )
        assert state.stats.remote_transfers == 2
        assert state.stats.replications == 0

    def test_no_replication_flag(self):
        platform = make_platform()
        res, state, _ = run(
            platform,
            self._shared_file_batch(),
            {"t0": 0, "t1": 1},
            allow_replication=False,
        )
        assert state.stats.replications == 0
        assert state.stats.remote_transfers == 2

    def test_replication_occupies_source_node(self):
        # The source node can't execute while sending (single port).
        platform = make_platform(compute_bw=10.0)  # replication slow: 10s
        batch = self._shared_file_batch()
        res, state, rt = run(platform, batch, {"t0": 0, "t1": 1})
        if state.stats.replications:
            # Find the replication interval on node 0's timeline and check
            # it doesn't overlap node 0's execution.
            ivs = rt.node_tl[0].intervals
            for a in ivs:
                for b in ivs:
                    if a is not b:
                        assert a.end <= b.start + 1e-9 or b.end <= a.start + 1e-9

    def test_replication_waits_for_source_copy(self):
        # t1 can only replicate f after it lands on node 0 at t=1.0.
        platform = make_platform()
        batch = self._shared_file_batch()
        res, state, _ = run(platform, batch, {"t0": 0, "t1": 1})
        rec1 = next(r for r in res.records if r.task_id == "t1")
        if state.stats.replications:
            assert rec1.transfers_done >= 1.0 + 0.1 - 1e-9


class TestContention:
    def test_storage_port_serializes_across_nodes(self):
        # Two distinct files on the SAME storage node to different compute
        # nodes: the storage port serialises them.
        platform = make_platform()
        batch = Batch(
            [Task("t0", ("f0",), 0.0), Task("t1", ("f1",), 0.0)],
            {"f0": FileInfo("f0", 100.0, 0), "f1": FileInfo("f1", 100.0, 0)},
        )
        res, _, rt = run(platform, batch, {"t0": 0, "t1": 1})
        # Storage timeline busy 2s with no overlap.
        assert rt.storage_tl[0].busy_time() == pytest.approx(2.0)
        done = sorted(r.transfers_done for r in res.records)
        assert done[0] == pytest.approx(1.0)
        assert done[1] == pytest.approx(2.0)

    def test_different_storage_nodes_parallel(self):
        platform = make_platform()
        batch = Batch(
            [Task("t0", ("f0",), 0.0), Task("t1", ("f1",), 0.0)],
            {"f0": FileInfo("f0", 100.0, 0), "f1": FileInfo("f1", 100.0, 1)},
        )
        res, _, _ = run(platform, batch, {"t0": 0, "t1": 1})
        for r in res.records:
            assert r.transfers_done == pytest.approx(1.0)

    def test_shared_link_serializes_everything(self):
        platform = make_platform(shared_link=100.0)
        batch = Batch(
            [Task("t0", ("f0",), 0.0), Task("t1", ("f1",), 0.0)],
            {"f0": FileInfo("f0", 100.0, 0), "f1": FileInfo("f1", 100.0, 1)},
        )
        res, _, rt = run(platform, batch, {"t0": 0, "t1": 1})
        assert rt.link_tl is not None
        assert rt.link_tl.busy_time() == pytest.approx(2.0)
        done = sorted(r.transfers_done for r in res.records)
        assert done == [pytest.approx(1.0), pytest.approx(2.0)]

    def test_no_staging_during_execution(self):
        # All reservations on a compute node's timeline are disjoint, i.e.
        # no transfer overlaps an execution on the same node.
        platform = make_platform()
        files = {f"f{i}": FileInfo(f"f{i}", 100.0, i % 2) for i in range(6)}
        tasks = [
            Task(f"t{i}", (f"f{i}", f"f{(i + 1) % 6}"), 0.5) for i in range(6)
        ]
        batch = Batch(tasks, files)
        res, _, rt = run(platform, batch, {f"t{i}": i % 2 for i in range(6)})
        for tl in rt.node_tl:
            ivs = sorted(tl.intervals, key=lambda iv: iv.start)
            for a, b in zip(ivs, ivs[1:]):
                assert a.end <= b.start + 1e-9


class TestPlans:
    def test_planned_remote_followed(self):
        platform = make_platform()
        batch = Batch(
            [Task("t0", ("f",), 0.0), Task("t1", ("f",), 0.0)],
            {"f": FileInfo("f", 100.0, 0)},
        )
        plan = StagingPlan(
            sources={
                ("f", 0): PlannedSource("remote"),
                ("f", 1): PlannedSource("remote"),
            }
        )
        res, state, _ = run(platform, batch, {"t0": 0, "t1": 1}, plan)
        # Plan forbids replication even though it would be cheaper.
        assert state.stats.remote_transfers == 2
        assert state.stats.replications == 0

    def test_planned_replica_followed(self):
        platform = make_platform(compute_bw=50.0)  # replication slower (2s)
        batch = Batch(
            [Task("t0", ("f",), 0.0), Task("t1", ("f",), 0.0)],
            {"f": FileInfo("f", 100.0, 0)},
        )
        plan = StagingPlan(
            sources={
                ("f", 0): PlannedSource("remote"),
                ("f", 1): PlannedSource("replica", source_node=0),
            }
        )
        res, state, _ = run(platform, batch, {"t0": 0, "t1": 1}, plan)
        # Follows the plan although remote would have been faster.
        assert state.stats.replications == 1

    def test_planned_replica_falls_back_when_source_missing(self):
        platform = make_platform()
        batch = Batch(
            [Task("t1", ("f",), 0.0)], {"f": FileInfo("f", 100.0, 0)}
        )
        plan = StagingPlan(
            sources={("f", 1): PlannedSource("replica", source_node=0)}
        )
        # Node 0 never receives f; the runtime must fall back to remote.
        res, state, _ = run(platform, batch, {"t1": 1}, plan)
        assert state.stats.remote_transfers == 1

    def test_pushes_create_replicas(self):
        platform = make_platform()
        batch = Batch(
            [Task("t", ("g",), 0.0)],
            {"f": FileInfo("f", 100.0, 0), "g": FileInfo("g", 100.0, 1)},
        )
        plan = StagingPlan(pushes=[("f", 1)])
        res, state, _ = run(platform, batch, {"t": 0}, plan)
        assert state.has_file(1, "f")

    def test_push_skipped_if_present(self):
        platform = make_platform()
        batch = Batch([Task("t", ("f",), 0.0)], {"f": FileInfo("f", 100.0, 0)})
        state = ClusterState.initial(platform, batch)
        state.place(1, "f")
        rt = Runtime(platform, state)
        rt.execute(batch.tasks, {"t": 0}, StagingPlan(pushes=[("f", 1)]))
        assert state.stats.remote_transfers <= 1  # only t's own fetch


class TestDiskPressure:
    def test_on_demand_eviction(self):
        platform = make_platform(disk_space_mb=250.0)
        files = {f"f{i}": FileInfo(f"f{i}", 100.0, 0) for i in range(4)}
        tasks = [Task(f"t{i}", (f"f{i}",), 0.1) for i in range(4)]
        batch = Batch(tasks, files)
        res, state, _ = run(platform, batch, {f"t{i}": 0 for i in range(4)})
        # 4 x 100 MB through a 250 MB cache requires at least 2 evictions.
        assert state.stats.evictions >= 2
        assert state.caches[0].used_mb <= 250.0

    def test_pinned_task_files_survive(self):
        # A task needing two files on a 250 MB disk: both must coexist.
        platform = make_platform(disk_space_mb=250.0)
        files = {f"f{i}": FileInfo(f"f{i}", 100.0, 0) for i in range(3)}
        tasks = [
            Task("t0", ("f0", "f1"), 0.1),
            Task("t1", ("f1", "f2"), 0.1),
        ]
        batch = Batch(tasks, files)
        res, state, _ = run(platform, batch, {"t0": 0, "t1": 0})
        assert len(res.records) == 2
        state.check_consistency()


class TestOrderingAndClock:
    def test_ect_order_prefers_cheap_task(self):
        # On one node: t_small (no transfer needed after t_big stages f?) —
        # t_cached's file is pre-placed, so it should run first.
        platform = make_platform()
        files = {
            "cached": FileInfo("cached", 100.0, 0),
            "far": FileInfo("far", 500.0, 0),
        }
        batch = Batch(
            [Task("tc", ("cached",), 0.1), Task("tf", ("far",), 0.1)], files
        )
        state = ClusterState.initial(platform, batch)
        state.place(0, "cached")
        rt = Runtime(platform, state)
        res = rt.execute(batch.tasks, {"tc": 0, "tf": 0})
        assert res.completion_order[0] == "tc"

    def test_clock_carries_across_executions(self):
        platform = make_platform()
        files = {"f": FileInfo("f", 100.0, 0), "g": FileInfo("g", 100.0, 0)}
        b1 = Batch([Task("t0", ("f",), 1.0)], files)
        state = ClusterState(platform, files)
        rt = Runtime(platform, state)
        r1 = rt.execute(b1.tasks, {"t0": 0})
        b2 = Batch([Task("t1", ("g",), 1.0)], files)
        r2 = rt.execute(b2.tasks, {"t1": 1})
        assert r2.start_time == pytest.approx(r1.makespan)
        assert r2.makespan > r1.makespan

    def test_all_tasks_complete_once(self):
        platform = make_platform()
        files = {f"f{i}": FileInfo(f"f{i}", 50.0, i % 2) for i in range(5)}
        tasks = [Task(f"t{i}", (f"f{i}",), 0.2) for i in range(5)]
        batch = Batch(tasks, files)
        res, _, _ = run(platform, batch, {f"t{i}": i % 2 for i in range(5)})
        assert sorted(r.task_id for r in res.records) == sorted(
            t.task_id for t in tasks
        )

    def test_candidate_limit_still_completes(self):
        platform = make_platform()
        files = {f"f{i}": FileInfo(f"f{i}", 50.0, i % 2) for i in range(8)}
        tasks = [Task(f"t{i}", (f"f{i}",), 0.2) for i in range(8)]
        batch = Batch(tasks, files)
        res, _, _ = run(
            platform, batch, {f"t{i}": 0 for i in range(8)}, candidate_limit=2
        )
        assert len(res.records) == 8

    def test_bad_mapping_rejected(self):
        platform = make_platform()
        batch = Batch([Task("t", ("f",), 1.0)], {"f": FileInfo("f", 1.0, 0)})
        state = ClusterState.initial(platform, batch)
        rt = Runtime(platform, state)
        with pytest.raises(ValueError):
            rt.execute(batch.tasks, {})
        with pytest.raises(ValueError):
            rt.execute(batch.tasks, {"t": 99})

    def test_makespan_is_max_completion(self):
        platform = make_platform()
        files = {f"f{i}": FileInfo(f"f{i}", 50.0, 0) for i in range(4)}
        tasks = [Task(f"t{i}", (f"f{i}",), float(i)) for i in range(4)]
        batch = Batch(tasks, files)
        res, _, _ = run(platform, batch, {f"t{i}": i % 2 for i in range(4)})
        assert res.makespan == pytest.approx(
            max(r.completion for r in res.records)
        )
