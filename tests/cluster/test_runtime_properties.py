"""Property-based invariants of the runtime engine.

On random batches and mappings, regardless of platform parameters:

* every task completes exactly once, after all its inputs are available;
* no resource timeline ever double-books (checked structurally);
* transfer accounting matches timeline contents;
* disabling replication yields remote-only traffic;
* makespans are never *below* obvious lower bounds (critical path of the
  largest single node's work cannot be beaten).
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.batch import Batch, FileInfo, Task
from repro.cluster import ClusterState, ComputeNode, Platform, Runtime, StorageNode


@st.composite
def scenario(draw):
    rng = np.random.default_rng(draw(st.integers(0, 2**31 - 1)))
    num_compute = draw(st.integers(1, 4))
    num_storage = draw(st.integers(1, 3))
    num_files = draw(st.integers(1, 8))
    num_tasks = draw(st.integers(1, 8))

    files = {
        f"f{i}": FileInfo(
            f"f{i}",
            float(rng.uniform(10.0, 200.0)),
            int(rng.integers(0, num_storage)),
        )
        for i in range(num_files)
    }
    tasks = []
    for k in range(num_tasks):
        size = int(rng.integers(1, min(3, num_files) + 1))
        chosen = rng.choice(num_files, size=size, replace=False)
        tasks.append(
            Task(
                f"t{k}",
                tuple(f"f{i}" for i in sorted(chosen)),
                float(rng.uniform(0.0, 5.0)),
            )
        )
    platform = Platform(
        compute_nodes=tuple(ComputeNode(i) for i in range(num_compute)),
        storage_nodes=tuple(
            StorageNode(s, disk_bw=float(rng.uniform(20, 300)))
            for s in range(num_storage)
        ),
        storage_network_bw=float(rng.uniform(50, 1000)),
        compute_network_bw=float(rng.uniform(50, 1000)),
        shared_link_bw=float(rng.uniform(10, 100))
        if draw(st.booleans())
        else None,
    )
    mapping = {
        t.task_id: int(rng.integers(0, num_compute)) for t in tasks
    }
    return platform, Batch(tasks, files), mapping


def _timelines(rt):
    tls = list(rt.node_tl) + list(rt.storage_tl)
    if rt.link_tl is not None:
        tls.append(rt.link_tl)
    return tls


@settings(max_examples=50, deadline=None)
@given(scenario())
def test_every_task_completes_once(sc):
    platform, batch, mapping = sc
    state = ClusterState.initial(platform, batch)
    rt = Runtime(platform, state)
    res = rt.execute(batch.tasks, mapping)
    assert sorted(r.task_id for r in res.records) == sorted(
        t.task_id for t in batch.tasks
    )
    state.check_consistency()


@settings(max_examples=50, deadline=None)
@given(scenario())
def test_no_timeline_double_booking(sc):
    platform, batch, mapping = sc
    state = ClusterState.initial(platform, batch)
    rt = Runtime(platform, state)
    rt.execute(batch.tasks, mapping)
    for tl in _timelines(rt):
        ivs = sorted(tl.intervals, key=lambda iv: iv.start)
        for a, b in zip(ivs, ivs[1:]):
            assert a.end <= b.start + 1e-9, (tl.name, a, b)


@settings(max_examples=50, deadline=None)
@given(scenario())
def test_execution_follows_transfers(sc):
    platform, batch, mapping = sc
    state = ClusterState.initial(platform, batch)
    rt = Runtime(platform, state)
    res = rt.execute(batch.tasks, mapping)
    for rec in res.records:
        assert rec.exec_start >= rec.transfers_done - 1e-9
        assert rec.completion > rec.exec_start - 1e-9


@settings(max_examples=40, deadline=None)
@given(scenario())
def test_no_replication_means_remote_only(sc):
    platform, batch, mapping = sc
    state = ClusterState.initial(platform, batch)
    rt = Runtime(platform, state, allow_replication=False)
    rt.execute(batch.tasks, mapping)
    assert state.stats.replications == 0
    # Every task's inputs reached their node: remote transfer count must
    # equal the number of distinct (node, file) placements.
    placements = sum(len(state.files_on(i)) for i in range(platform.num_compute))
    assert state.stats.remote_transfers == placements


@settings(max_examples=40, deadline=None)
@given(scenario())
def test_makespan_lower_bound(sc):
    """Makespan >= any single node's unavoidable work (its tasks' local
    reads + compute), and >= every file's cheapest possible delivery."""
    platform, batch, mapping = sc
    state = ClusterState.initial(platform, batch)
    rt = Runtime(platform, state)
    res = rt.execute(batch.tasks, mapping)

    for i in range(platform.num_compute):
        node_tasks = [t for t in batch.tasks if mapping[t.task_id] == i]
        unavoidable = sum(
            t.compute_time
            + sum(
                platform.local_read_time(i, batch.file_size(f))
                for f in t.files
            )
            for t in node_tasks
        )
        assert res.makespan >= unavoidable - 1e-6


@settings(max_examples=30, deadline=None)
@given(scenario())
def test_stats_volumes_match_counts(sc):
    platform, batch, mapping = sc
    state = ClusterState.initial(platform, batch)
    rt = Runtime(platform, state)
    rt.execute(batch.tasks, mapping)
    s = state.stats
    assert s.remote_volume_mb >= 0
    if s.remote_transfers == 0:
        assert s.remote_volume_mb == 0
    if s.replications == 0:
        assert s.replication_volume_mb == 0
    # Volumes are sums of real file sizes: bounded by count * max size.
    max_size = max(f.size_mb for f in batch.files.values())
    assert s.remote_volume_mb <= s.remote_transfers * max_size + 1e-9
    assert s.replication_volume_mb <= s.replications * max_size + 1e-9


@settings(max_examples=25, deadline=None)
@given(scenario(), st.integers(1, 3))
def test_candidate_limit_preserves_completeness(sc, limit):
    platform, batch, mapping = sc
    state = ClusterState.initial(platform, batch)
    rt = Runtime(platform, state, candidate_limit=limit)
    res = rt.execute(batch.tasks, mapping)
    assert len(res.records) == len(batch.tasks)


@settings(max_examples=25, deadline=None)
@given(scenario())
def test_fifo_ordering_completes(sc):
    platform, batch, mapping = sc
    state = ClusterState.initial(platform, batch)
    rt = Runtime(platform, state, ordering="fifo")
    res = rt.execute(batch.tasks, mapping)
    assert len(res.records) == len(batch.tasks)
