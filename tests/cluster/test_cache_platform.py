"""Unit tests for disk caches and platform descriptions."""

import math

import pytest

from repro.cluster import (
    CacheFullError,
    ComputeNode,
    DiskCache,
    Platform,
    StorageNode,
    osc_osumed,
    osc_xio,
)


class TestDiskCache:
    def test_add_and_contains(self):
        c = DiskCache(0, 100.0)
        c.add("f1", 40.0)
        assert "f1" in c
        assert c.used_mb == 40.0
        assert c.free_mb == 60.0

    def test_add_same_file_idempotent(self):
        c = DiskCache(0, 100.0)
        c.add("f1", 40.0)
        c.add("f1", 40.0, now=5.0)
        assert c.used_mb == 40.0
        assert c.last_use("f1") == 5.0

    def test_overflow_rejected(self):
        c = DiskCache(0, 100.0)
        c.add("f1", 80.0)
        with pytest.raises(CacheFullError):
            c.add("f2", 30.0)

    def test_remove_returns_size(self):
        c = DiskCache(0, 100.0)
        c.add("f1", 40.0)
        assert c.remove("f1") == 40.0
        assert "f1" not in c
        assert c.used_mb == 0.0

    def test_pin_blocks_eviction(self):
        c = DiskCache(0, 100.0)
        c.add("f1", 60.0)
        c.add("f2", 40.0)
        c.pin("f1")
        victims = c.ensure_space(40.0, victim_order=lambda cands: sorted(cands))
        assert victims == ["f2"]
        assert "f1" in c

    def test_unpin_allows_eviction(self):
        c = DiskCache(0, 100.0)
        c.add("f1", 60.0)
        c.pin("f1")
        c.unpin("f1")
        victims = c.ensure_space(80.0, victim_order=lambda cands: list(cands))
        assert victims == ["f1"]

    def test_double_unpin_rejected(self):
        c = DiskCache(0, 100.0)
        c.add("f1", 10.0)
        with pytest.raises(ValueError):
            c.unpin("f1")

    def test_ensure_space_noop_when_fits(self):
        c = DiskCache(0, 100.0)
        c.add("f1", 10.0)
        assert c.ensure_space(50.0, victim_order=lambda x: list(x)) == []

    def test_ensure_space_fails_when_all_pinned(self):
        c = DiskCache(0, 100.0)
        c.add("f1", 90.0)
        c.pin("f1")
        with pytest.raises(CacheFullError):
            c.ensure_space(50.0, victim_order=lambda x: list(x))

    def test_eviction_order_followed(self):
        c = DiskCache(0, 100.0)
        for i, size in enumerate([30.0, 30.0, 30.0]):
            c.add(f"f{i}", size)
        # used 90/100 -> freeing 65 MB needs two victims, largest name first.
        victims = c.ensure_space(
            65.0, victim_order=lambda cands: sorted(cands, reverse=True)
        )
        assert victims == ["f2", "f1"]

    def test_eviction_counters(self):
        c = DiskCache(0, 100.0)
        c.add("f1", 60.0)
        c.ensure_space(80.0, victim_order=lambda x: list(x))
        assert c.evictions == 1
        assert c.evicted_volume == 60.0

    def test_on_evict_callback(self):
        c = DiskCache(0, 100.0)
        c.add("f1", 60.0)
        seen = []
        c.ensure_space(80.0, victim_order=lambda x: list(x), on_evict=seen.append)
        assert seen == ["f1"]

    def test_infinite_capacity(self):
        c = DiskCache(0, math.inf)
        c.add("f1", 1e9)
        assert c.free_mb == math.inf

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            DiskCache(0, 0.0)


class TestPlatform:
    def test_xio_preset_bandwidths(self):
        p = osc_xio(num_compute=4, num_storage=4)
        # Remote transfers limited by the 210 MB/s storage disks.
        assert p.remote_bandwidth(0) == 210.0
        assert p.replication_bandwidth == 1000.0
        assert p.shared_link_bw is None

    def test_osumed_preset_bandwidths(self):
        p = osc_osumed(num_compute=4, num_storage=4)
        # Remote transfers limited by the shared 100 Mbps link.
        assert p.remote_bandwidth(0) == 12.5
        assert p.shared_link_bw == 12.5
        # Storage disk bandwidths span the paper's 18-25 MB/s range.
        bws = [s.disk_bw for s in p.storage_nodes]
        assert min(bws) >= 18.0
        assert max(bws) <= 25.0

    def test_aggregate_disk_space(self):
        p = osc_xio(num_compute=4, disk_space_mb=40_000.0)
        assert p.aggregate_disk_space == 160_000.0

    def test_unlimited_default(self):
        p = osc_xio()
        assert math.isinf(p.aggregate_disk_space)

    def test_transfer_times(self):
        p = osc_xio()
        assert p.remote_transfer_time(0, 210.0) == pytest.approx(1.0)
        assert p.replication_time(1000.0) == pytest.approx(1.0)
        assert p.compute_time(1000.0) == pytest.approx(1.0)

    def test_min_remote_bandwidth(self):
        p = osc_osumed(num_storage=4)
        assert p.min_remote_bandwidth == 12.5

    def test_node_counts(self):
        p = osc_xio(num_compute=8, num_storage=2)
        assert p.num_compute == 8
        assert p.num_storage == 2

    def test_validation_errors(self):
        with pytest.raises(ValueError):
            Platform(compute_nodes=(), storage_nodes=(StorageNode(0),))
        with pytest.raises(ValueError):
            Platform(
                compute_nodes=(ComputeNode(0),),
                storage_nodes=(StorageNode(0),),
                storage_network_bw=-1.0,
            )
        with pytest.raises(ValueError):
            Platform(
                compute_nodes=(ComputeNode(1),),  # ids must start at 0
                storage_nodes=(StorageNode(0),),
            )

    def test_node_validation(self):
        with pytest.raises(ValueError):
            ComputeNode(0, disk_space_mb=-5.0)
        with pytest.raises(ValueError):
            StorageNode(0, disk_bw=0.0)

    def test_single_storage_osumed(self):
        p = osc_osumed(num_storage=1)
        assert p.storage_nodes[0].disk_bw == pytest.approx(21.5)
