"""Smoke tests: every example script runs and prints sensible output."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, *args: str, timeout: int = 240) -> str:
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    return proc.stdout


def test_examples_directory_complete():
    names = {p.name for p in EXAMPLES.glob("*.py")}
    assert "quickstart.py" in names
    assert len(names) >= 3  # deliverable: at least three runnable examples


@pytest.mark.slow
def test_quickstart():
    out = run_example("quickstart.py")
    for scheme in ("ip", "bipartition", "minmin", "jdp"):
        assert scheme in out
    assert "Batch(" in out


def test_sat_hotspot_study_reduced():
    out = run_example("sat_hotspot_study.py", "--tasks", "16")
    assert "XIO" in out
    assert "OSUMED" in out
    assert "high" in out and "low" in out


def test_image_disk_pressure_reduced():
    out = run_example(
        "image_disk_pressure.py", "--sizes", "40", "80", "--disk-gb", "2"
    )
    assert "bipartition" in out
    assert "tasks" in out


def test_plan_deepdive():
    out = run_example("plan_deepdive.py")
    assert "plan valid: True" in out
    assert "x=transfer" in out
    assert "BiPartition" in out


def test_custom_scheduler():
    out = run_example("custom_scheduler.py")
    assert "roundrobin" in out
    # The data-aware scheme must finish no later than blind round-robin.
    rows = {
        parts[0]: parts
        for parts in (l.split() for l in out.splitlines())
        if parts and parts[0] in ("roundrobin", "bipartition")
    }
    rr_makespan = float(rows["roundrobin"][1].rstrip("s"))
    bp_makespan = float(rows["bipartition"][1].rstrip("s"))
    assert bp_makespan <= rr_makespan * 1.02
