"""Tests for batch/result JSON serialization."""

import json

import pytest

from repro.batch import Batch, FileInfo, Task
from repro.cluster import osc_xio
from repro.core import run_batch
from repro.io import (
    batch_from_dict,
    batch_to_dict,
    load_batch,
    result_to_dict,
    save_batch,
    save_result,
)
from repro.workloads import generate_sat_batch


@pytest.fixture
def batch():
    files = {
        "a": FileInfo("a", 12.5, 0),
        "b": FileInfo("b", 64.0, 1),
    }
    return Batch(
        [Task("t0", ("a", "b"), 1.5), Task("t1", ("b",), 0.25)], files
    )


class TestBatchRoundTrip:
    def test_roundtrip_equality(self, batch):
        rebuilt = batch_from_dict(batch_to_dict(batch))
        assert [t.task_id for t in rebuilt.tasks] == ["t0", "t1"]
        assert rebuilt.task("t0").files == ("a", "b")
        assert rebuilt.task("t0").compute_time == 1.5
        assert rebuilt.file("b").size_mb == 64.0
        assert rebuilt.file("b").storage_node == 1

    def test_file_roundtrip(self, batch, tmp_path):
        p = tmp_path / "batch.json"
        save_batch(batch, p)
        rebuilt = load_batch(p)
        assert batch_to_dict(rebuilt) == batch_to_dict(batch)

    def test_generated_workload_roundtrip(self, tmp_path):
        original = generate_sat_batch(30, "medium", 4, seed=9)
        p = tmp_path / "sat.json"
        save_batch(original, p)
        rebuilt = load_batch(p)
        assert batch_to_dict(rebuilt) == batch_to_dict(original)
        assert rebuilt.distinct_file_mb == original.distinct_file_mb

    def test_bad_kind_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            batch_from_dict({"kind": "pancake", "schema": 1})

    def test_bad_schema_rejected(self, batch):
        doc = batch_to_dict(batch)
        doc["schema"] = 999
        with pytest.raises(ValueError, match="schema"):
            batch_from_dict(doc)

    def test_json_is_stable(self, batch, tmp_path):
        p1, p2 = tmp_path / "a.json", tmp_path / "b.json"
        save_batch(batch, p1)
        save_batch(batch, p2)
        assert p1.read_text() == p2.read_text()


class TestResultSerialization:
    def test_result_dict(self, batch):
        platform = osc_xio(2, 2)
        result = run_batch(batch, platform, "bipartition")
        doc = result_to_dict(result)
        assert doc["kind"] == "batch_result"
        assert doc["scheduler"] == "bipartition"
        assert doc["num_tasks"] == 2
        assert doc["makespan_s"] == pytest.approx(result.makespan)
        assert doc["sub_batches"][0]["mapping"]["t0"] in (0, 1)

    def test_result_file(self, batch, tmp_path):
        platform = osc_xio(2, 2)
        result = run_batch(batch, platform, "minmin")
        p = tmp_path / "res.json"
        save_result(result, p)
        doc = json.loads(p.read_text())
        assert doc["stats"]["remote_transfers"] >= 1
