"""Differential decision-equivalence: optimized kernels vs reference oracles.

The incremental MCT kernel (:mod:`repro.core.mct_kernel`) and the runtime
hot-path caches (:class:`repro.cluster.runtime.Runtime`) keep the original
implementations alive behind ``reference=True``. These tests run both
flavours on the same inputs and require *identical* decisions — mappings,
DecisionLog records, telemetry counters, task records and makespans — not
merely close ones. Layers:

* kernel: one whole-batch ``next_subbatch`` per MCT-family scheme, with
  pre-placed replicas so the replica-aware staging paths are live;
* driver: full ``run_batch`` across every registered scheme;
* stress: disk pressure (eviction ordering), a candidate limit (the
  missing-bytes index), and fault injection (crash + flaky network +
  link-slowdown windows, which exercise the event-driven invalidation).
"""

import numpy as np
import pytest

from repro.cluster.platform import osc_xio
from repro.cluster.state import ClusterState
from repro.core.base import make_scheduler
from repro.core.driver import run_batch
from repro.obs.core import telemetry
from repro.workloads.image import generate_image_batch

FAULTS = {
    "seed": 7,
    "transfer_failure_rate": 0.2,
    "node_crashes": [{"node": 1, "time": 18.0}],
    "link_slowdowns": [{"start": 4.0, "end": 12.0, "factor": 2.5}],
}


def _kernel_run(scheme: str, n: int, c: int, overlap: str, seed: int,
                reference: bool):
    """One whole-batch mapping with telemetry; returns its full trace."""
    batch = generate_image_batch(n, overlap, num_storage=4, seed=seed)
    platform = osc_xio(num_compute=c, num_storage=4)
    state = ClusterState.initial(platform, batch)
    # Pre-place some files so on_node / any_copy / replica costs differ
    # from the cold-start case.
    rng = np.random.default_rng(seed + 99)
    fids = sorted(batch.files)
    for f in rng.choice(fids, size=min(20, len(fids)), replace=False):
        state.place(int(rng.integers(c)), f)
    sched = make_scheduler(scheme, seed=0)
    sched.reference = reference
    telemetry.reset()
    telemetry.enable()
    try:
        plan = sched.next_subbatch(
            batch, [t.task_id for t in batch.tasks], platform, state
        )
        # kernel/* counters are the incremental kernel's work accounting —
        # they describe the optimization itself, not decisions, and exist
        # only on the optimized flavour by design.
        counters = {
            k: v
            for k, v in telemetry.snapshot().get("counters", {}).items()
            if not k.startswith("kernel/")
        }
    finally:
        telemetry.disable()
        telemetry.reset()
    assert sched.decision_log is not None
    log = [d.to_dict() for d in sched.decision_log.decisions]
    return plan.mapping, log, counters


@pytest.mark.parametrize("scheme", ["minmin", "maxmin", "sufferage"])
@pytest.mark.parametrize(
    "n,c,overlap,seed",
    [
        (40, 4, "high", 0),
        (40, 4, "zero", 1),
        (25, 1, "high", 2),
        (7, 3, "low", 3),
        # Large enough that the incremental kernel compacts its live rows
        # (twice: 150 -> 75 -> 37) mid-mapping.
        (150, 4, "high", 4),
    ],
)
def test_kernel_decision_identity(scheme, n, c, overlap, seed):
    ref = _kernel_run(scheme, n, c, overlap, seed, reference=True)
    opt = _kernel_run(scheme, n, c, overlap, seed, reference=False)
    assert opt[0] == ref[0], "mapping diverged"
    assert opt[1] == ref[1], "DecisionLog diverged"
    assert opt[2] == ref[2], "telemetry counters diverged"


def _signature(result):
    """Everything decision-shaped about a BatchResult, exactly."""
    return {
        "makespan": result.makespan,
        "mappings": [sb.plan.mapping for sb in result.sub_batches],
        "records": [
            (r.task_id, r.node, r.transfers_done, r.exec_start, r.completion)
            for sb in result.sub_batches
            for r in sb.execution.records
        ],
        "stats": result.stats,
        "faults": (
            result.fault_stats.to_dict() if result.fault_stats else None
        ),
    }


def _both(scheme: str, n: int = 36, c: int = 4, **kwargs):
    batch = generate_image_batch(n, "high", num_storage=4, seed=3)
    platform = osc_xio(num_compute=c, num_storage=4,
                      disk_space_mb=kwargs.pop("disk_space_mb", float("inf")))
    ref = run_batch(batch, platform, scheme, reference=True, **kwargs)
    opt = run_batch(batch, platform, scheme, reference=False, **kwargs)
    return _signature(ref), _signature(opt)


@pytest.mark.parametrize(
    "scheme", ["minmin", "maxmin", "sufferage", "bipartition", "jdp"]
)
def test_run_batch_identity(scheme):
    ref, opt = _both(scheme)
    assert opt == ref


def test_run_batch_identity_ip():
    # Small instance so the MILP solves quickly; the IP runtime path also
    # covers planned sources with dynamic fallback.
    ref, opt = _both("ip", n=16, scheduler_kwargs={"time_limit": 10.0})
    assert opt == ref


def test_identity_under_disk_pressure():
    # Disks sized to force on-demand eviction: the optimized flavour must
    # pick the same victims through its cached size-ascending order.
    ref, opt = _both("minmin", disk_space_mb=2500.0)
    assert ref["stats"].evictions > 0, "case is vacuous without evictions"
    assert opt == ref


def test_identity_with_candidate_limit():
    # candidate_limit < group size activates the missing-bytes index.
    ref, opt = _both("minmin", candidate_limit=3)
    assert opt == ref


def test_identity_under_faults():
    ref, opt = _both("minmin", faults=FAULTS)
    assert ref["faults"]["node_crashes"] >= 1
    assert opt == ref


def test_identity_faults_and_candidate_limit():
    # Crash + retries + the index's event-driven invalidation, together.
    ref, opt = _both("minmin", candidate_limit=3, faults=FAULTS)
    assert opt == ref


def test_identity_jdp_pushes_with_candidate_limit():
    # JDP's proactive pushes mutate placement before the index is built.
    ref, opt = _both("jdp", candidate_limit=3)
    assert opt == ref
