"""Tests for BiPartition's sub-batch chain ordering."""

import pytest

from repro.batch import Batch, FileInfo, Task
from repro.cluster import osc_xio
from repro.core import BiPartitionScheduler, run_batch


@pytest.fixture
def batch():
    files = {f"f{i}": FileInfo(f"f{i}", 10.0, 0) for i in range(6)}
    tasks = [
        Task("a0", ("f0", "f1"), 1.0),
        Task("b0", ("f2", "f3"), 1.0),
        Task("c0", ("f1", "f4"), 1.0),  # shares f1 with sub-batch A
        Task("d0", ("f5",), 1.0),
    ]
    return Batch(tasks, files)


class TestChainOrder:
    def test_chain_puts_sharing_neighbours_adjacent(self, batch):
        subbatches = [["a0"], ["b0"], ["c0"], ["d0"]]
        ordered = BiPartitionScheduler._chain_order(batch, subbatches)
        flat = [sb[0] for sb in ordered]
        # a0 and c0 share f1 (10 MB); they must end up adjacent.
        ia, ic = flat.index("a0"), flat.index("c0")
        assert abs(ia - ic) == 1

    def test_chain_preserves_content(self, batch):
        subbatches = [["a0"], ["b0"], ["c0"], ["d0"]]
        ordered = BiPartitionScheduler._chain_order(batch, subbatches)
        assert sorted(t for sb in ordered for t in sb) == [
            "a0", "b0", "c0", "d0",
        ]

    def test_short_lists_untouched(self, batch):
        one = [["a0"]]
        two = [["a0"], ["b0"]]
        assert BiPartitionScheduler._chain_order(batch, one) == one
        assert BiPartitionScheduler._chain_order(batch, two) == two

    def test_invalid_order_mode_rejected(self):
        with pytest.raises(ValueError):
            BiPartitionScheduler(subbatch_order="random")

    def test_both_modes_run_end_to_end(self, batch):
        platform = osc_xio(num_compute=2, num_storage=1, disk_space_mb=25.0)
        for order in ("chain", "index"):
            res = run_batch(
                batch,
                platform,
                BiPartitionScheduler(seed=0, subbatch_order=order),
            )
            assert res.num_tasks == 4
