"""Property-based tests of the full driver across all heuristic schedulers.

Random platforms and batches through ``run_batch``: regardless of scheme,
the batch must drain exactly once, statistics must be self-consistent, and
disk capacities must never be exceeded. (The IP scheduler is exercised
separately at small scale — solver time makes it unsuitable for fuzzing.)
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster import ComputeNode, Platform, StorageNode
from repro.core import make_scheduler, run_batch
from repro.workloads import generate_synthetic_batch

HEURISTICS = ("bipartition", "minmin", "jdp", "maxmin", "sufferage")


@st.composite
def driver_scenario(draw):
    seed = draw(st.integers(0, 2**31 - 1))
    rng = np.random.default_rng(seed)
    num_compute = draw(st.integers(1, 3))
    num_storage = draw(st.integers(1, 2))
    num_tasks = draw(st.integers(1, 12))
    files_per_task = draw(st.integers(1, 3))
    num_files = max(files_per_task, draw(st.integers(4, 16)))
    file_mb = float(rng.uniform(5.0, 80.0))
    batch = generate_synthetic_batch(
        num_tasks,
        num_files,
        files_per_task,
        num_storage,
        hot_probability=float(rng.uniform(0, 0.9)),
        file_size_mb=file_mb,
        size_spread=float(rng.uniform(0, 0.5)),
        seed=seed,
    )
    # Disk: either unlimited or tight-but-feasible (>= one task's files).
    if draw(st.booleans()):
        disk = math.inf
    else:
        disk = batch.max_task_footprint_mb() * float(rng.uniform(1.1, 3.0))
    platform = Platform(
        compute_nodes=tuple(
            ComputeNode(i, disk_space_mb=disk) for i in range(num_compute)
        ),
        storage_nodes=tuple(
            StorageNode(s, disk_bw=float(rng.uniform(20, 300)))
            for s in range(num_storage)
        ),
        storage_network_bw=float(rng.uniform(100, 1000)),
        compute_network_bw=float(rng.uniform(100, 1000)),
    )
    return platform, batch


@settings(max_examples=25, deadline=None)
@given(driver_scenario(), st.sampled_from(HEURISTICS))
def test_batch_always_drains(sc, scheme):
    platform, batch = sc
    res = run_batch(batch, platform, scheme, max_subbatches=200)
    executed = [
        r.task_id for sb in res.sub_batches for r in sb.execution.records
    ]
    assert sorted(executed) == sorted(t.task_id for t in batch.tasks)


@settings(max_examples=25, deadline=None)
@given(driver_scenario(), st.sampled_from(HEURISTICS))
def test_stats_self_consistent(sc, scheme):
    platform, batch = sc
    res = run_batch(batch, platform, scheme, max_subbatches=200)
    s = res.stats
    assert s.remote_transfers >= 0
    assert s.remote_volume_mb >= 0
    # Every referenced file must have crossed from storage at least once.
    assert s.remote_transfers >= 1
    # Makespan covers at least the total compute of the busiest possible
    # packing (total compute / num nodes at the fastest speed).
    min_compute = batch.total_compute_time / platform.num_compute
    assert res.makespan >= min_compute / max(
        n.speed for n in platform.compute_nodes
    ) - 1e-6


@settings(max_examples=15, deadline=None)
@given(driver_scenario())
def test_schemes_agree_on_singleton_problems(sc):
    """With one compute node there is no placement freedom: all heuristics
    must produce (nearly) the same makespan."""
    platform, batch = sc
    if platform.num_compute != 1:
        platform = Platform(
            compute_nodes=(platform.compute_nodes[0],),
            storage_nodes=platform.storage_nodes,
            storage_network_bw=platform.storage_network_bw,
            compute_network_bw=platform.compute_network_bw,
        )
    spans = []
    for scheme in ("minmin", "jdp", "bipartition"):
        res = run_batch(batch, platform, scheme, max_subbatches=200)
        spans.append(res.makespan)
    # Task order may differ, but single-node work conservation bounds the
    # spread tightly unless eviction patterns diverge. Tight-disk scenarios
    # can legitimately reach ~1.4x (different execution orders evict and
    # re-fetch different files), so the bound leaves headroom over the
    # worst falsifying example found (1.38x).
    assert max(spans) <= min(spans) * 1.5 + 1e-6


@settings(max_examples=15, deadline=None)
@given(driver_scenario(), st.sampled_from(HEURISTICS))
def test_no_replication_flag_respected(sc, scheme):
    platform, batch = sc
    res = run_batch(
        batch, platform, scheme, allow_replication=False, max_subbatches=200
    )
    assert res.stats.replications == 0
