"""Unit tests for the four schedulers' mapping behaviour."""

import math

import numpy as np
import pytest

from repro.batch import Batch, FileInfo, Task
from repro.cluster import ClusterState, osc_xio
from repro.core import (
    BiPartitionScheduler,
    IPScheduler,
    JobDataPresentScheduler,
    LRUPolicy,
    MinMinScheduler,
    PopularityPolicy,
    estimated_exec_times,
)


def small_batch(num_storage=2):
    """Two pairs of tasks with strong intra-pair file sharing."""
    files = {
        "a": FileInfo("a", 100.0, 0),
        "b": FileInfo("b", 100.0, 1 % num_storage),
        "c": FileInfo("c", 100.0, 0),
        "d": FileInfo("d", 100.0, 1 % num_storage),
    }
    tasks = [
        Task("t0", ("a", "b"), 1.0),
        Task("t1", ("a", "b"), 1.0),
        Task("t2", ("c", "d"), 1.0),
        Task("t3", ("c", "d"), 1.0),
    ]
    return Batch(tasks, files)


@pytest.fixture
def platform():
    return osc_xio(num_compute=2, num_storage=2)


def plan_for(scheduler, batch, platform):
    state = ClusterState.initial(platform, batch)
    pending = [t.task_id for t in batch.tasks]
    return scheduler.next_subbatch(batch, pending, platform, state)


class TestMinMin:
    def test_all_tasks_mapped(self, platform):
        plan = plan_for(MinMinScheduler(), small_batch(), platform)
        assert set(plan.mapping) == {"t0", "t1", "t2", "t3"}
        assert set(plan.mapping.values()) <= {0, 1}

    def test_implicit_replication_spreads_sharers(self, platform):
        # MinMin's ready times accumulate per node while replication is
        # cheap (8 Gbps), so it spreads file-sharing tasks across nodes and
        # creates extra copies — the greedy behaviour the paper's proposed
        # schemes improve on.
        plan = plan_for(MinMinScheduler(), small_batch(), platform)
        assert set(plan.mapping.values()) == {0, 1}

    def test_colocates_when_replication_expensive(self):
        from repro.cluster import ComputeNode, Platform, StorageNode

        slow_rep = Platform(
            compute_nodes=(ComputeNode(0), ComputeNode(1)),
            storage_nodes=(StorageNode(0, disk_bw=100.0), StorageNode(1, disk_bw=100.0)),
            storage_network_bw=1000.0,
            compute_network_bw=5.0,  # replication nearly useless
        )
        plan = plan_for(MinMinScheduler(), small_batch(), slow_rep)
        # Staging dominates: the cheapest MCT for t1/t3 is the node where
        # the pair's files are already planned.
        assert plan.mapping["t0"] == plan.mapping["t1"]
        assert plan.mapping["t2"] == plan.mapping["t3"]

    def test_no_subbatching(self):
        assert not MinMinScheduler.uses_subbatches

    def test_popularity_eviction_policy(self):
        s = MinMinScheduler()
        assert isinstance(s.eviction_policy(small_batch()), PopularityPolicy)

    def test_respects_existing_placement(self, platform):
        batch = small_batch()
        state = ClusterState.initial(platform, batch)
        state.place(1, "a")
        state.place(1, "b")
        plan = MinMinScheduler().next_subbatch(
            batch, [t.task_id for t in batch.tasks], platform, state
        )
        # The first a+b task must go to node 1 where the data sits (zero
        # staging cost); its twin may be spread by the ready-time penalty.
        first_ab = min(
            ("t0", "t1"), key=lambda t: 0 if plan.mapping[t] == 1 else 1
        )
        assert plan.mapping[first_ab] == 1

    def test_balances_when_no_sharing(self, platform):
        files = {f"f{i}": FileInfo(f"f{i}", 100.0, i % 2) for i in range(4)}
        tasks = [Task(f"t{i}", (f"f{i}",), 5.0) for i in range(4)]
        plan = plan_for(MinMinScheduler(), Batch(tasks, files), platform)
        nodes = list(plan.mapping.values())
        assert nodes.count(0) == 2
        assert nodes.count(1) == 2


class TestJDP:
    def test_all_tasks_mapped(self, platform):
        plan = plan_for(JobDataPresentScheduler(), small_batch(), platform)
        assert set(plan.mapping) == {"t0", "t1", "t2", "t3"}

    def test_lru_eviction_policy(self):
        s = JobDataPresentScheduler()
        assert isinstance(s.eviction_policy(small_batch()), LRUPolicy)

    def test_dll_pushes_hot_files(self, platform):
        # Every task reads "hot"; with threshold 2 it must be pushed.
        files = {"hot": FileInfo("hot", 100.0, 0)}
        tasks = [Task(f"t{i}", ("hot",), 1.0) for i in range(6)]
        batch = Batch(tasks, files)
        s = JobDataPresentScheduler(popularity_threshold=2)
        plan = plan_for(s, batch, platform)
        assert plan.staging is not None
        assert ("hot", plan.staging.pushes[0][1]) in plan.staging.pushes

    def test_no_pushes_below_threshold(self, platform):
        files = {f"f{i}": FileInfo(f"f{i}", 10.0, 0) for i in range(4)}
        tasks = [Task(f"t{i}", (f"f{i}",), 1.0) for i in range(4)]
        s = JobDataPresentScheduler(popularity_threshold=2)
        plan = plan_for(s, Batch(tasks, files), platform)
        assert plan.staging.pushes == []

    def test_data_present_wins(self, platform):
        batch = small_batch()
        state = ClusterState.initial(platform, batch)
        state.place(1, "c")
        state.place(1, "d")
        s = JobDataPresentScheduler(popularity_threshold=99)
        plan = s.next_subbatch(
            batch, [t.task_id for t in batch.tasks], platform, state
        )
        assert plan.mapping["t2"] == 1
        assert plan.mapping["t3"] == 1


class TestBiPartition:
    def test_colocates_sharing_pairs(self, platform):
        plan = plan_for(BiPartitionScheduler(seed=0), small_batch(), platform)
        assert plan.mapping["t0"] == plan.mapping["t1"]
        assert plan.mapping["t2"] == plan.mapping["t3"]
        # And the pairs are split across the two nodes for load balance.
        assert plan.mapping["t0"] != plan.mapping["t2"]

    def test_single_subbatch_when_unlimited(self, platform):
        plan = plan_for(BiPartitionScheduler(seed=0), small_batch(), platform)
        assert len(plan.task_ids) == 4

    def test_subbatches_respect_aggregate_disk(self):
        platform = osc_xio(num_compute=2, num_storage=2, disk_space_mb=150.0)
        batch = small_batch()
        # Aggregate 300 MB < 400 MB of distinct files -> at least 2 sub-batches.
        s = BiPartitionScheduler(seed=0)
        state = ClusterState.initial(platform, batch)
        pending = [t.task_id for t in batch.tasks]
        plan = s.next_subbatch(batch, pending, platform, state)
        footprint = batch.subset(plan.task_ids).distinct_file_mb
        assert footprint <= 300.0
        assert len(plan.task_ids) < 4

    def test_estimated_exec_times_positive(self, platform):
        batch = small_batch()
        est = estimated_exec_times(batch, list(batch.tasks), platform)
        assert (est > 0).all()
        # Equal-size tasks with symmetric sharing -> equal estimates.
        assert est[0] == pytest.approx(est[1])

    def test_estimates_grow_with_volume(self, platform):
        files = {
            "small": FileInfo("small", 10.0, 0),
            "big": FileInfo("big", 1000.0, 0),
        }
        tasks = [Task("s", ("small",), 0.1), Task("b", ("big",), 0.1)]
        batch = Batch(tasks, files)
        est = estimated_exec_times(batch, tasks, platform)
        assert est[1] > est[0]

    def test_reset_clears_queue(self, platform):
        s = BiPartitionScheduler(seed=0)
        plan_for(s, small_batch(), platform)
        assert s._queue is not None
        s.reset()
        assert s._queue is None

    def test_disk_repair_defers_tasks(self):
        # One node cannot hold both files of every task: some tasks defer.
        platform = osc_xio(num_compute=1, num_storage=2, disk_space_mb=250.0)
        files = {f"f{i}": FileInfo(f"f{i}", 100.0, i % 2) for i in range(6)}
        tasks = [
            Task(f"t{i}", (f"f{2*i}", f"f{2*i+1}"), 1.0) for i in range(3)
        ]
        batch = Batch(tasks, files)
        s = BiPartitionScheduler(seed=0)
        state = ClusterState.initial(platform, batch)
        plan = s.next_subbatch(
            batch, [t.task_id for t in batch.tasks], platform, state
        )
        # 6 files x 100 MB > 250 MB: not all three tasks can run at once.
        assert 1 <= len(plan.task_ids) < 3


class TestIP:
    def test_optimal_colocation(self, platform):
        s = IPScheduler(time_limit=30.0, mip_rel_gap=0.0)
        plan = plan_for(s, small_batch(), platform)
        assert plan.mapping["t0"] == plan.mapping["t1"]
        assert plan.mapping["t2"] == plan.mapping["t3"]
        assert plan.mapping["t0"] != plan.mapping["t2"]

    def test_staging_plan_produced(self, platform):
        s = IPScheduler(time_limit=30.0)
        plan = plan_for(s, small_batch(), platform)
        assert plan.staging is not None
        # Every (file, node) a task needs has a planned source.
        for t, node in plan.mapping.items():
            for f in small_batch().task(t).files:
                assert (f, node) in plan.staging.sources

    def test_each_file_fetched_remotely_at_least_once(self, platform):
        s = IPScheduler(time_limit=30.0, mip_rel_gap=0.0)
        plan = plan_for(s, small_batch(), platform)
        remote_files = {
            f for (f, i), src in plan.staging.sources.items()
            if src.kind == "remote"
        }
        assert remote_files == {"a", "b", "c", "d"}

    def test_presence_credit_avoids_transfers(self, platform):
        batch = small_batch()
        state = ClusterState.initial(platform, batch)
        for f in ("a", "b", "c", "d"):
            state.place(0, f)
            state.place(1, f)
        s = IPScheduler(time_limit=30.0)
        plan = s.next_subbatch(
            batch, [t.task_id for t in batch.tasks], platform, state
        )
        # Everything is already everywhere: no transfers needed at all.
        assert plan.staging.sources == {}

    def test_limited_disk_two_stage(self):
        platform = osc_xio(num_compute=2, num_storage=2, disk_space_mb=200.0)
        batch = small_batch()
        s = IPScheduler(time_limit=30.0)
        state = ClusterState.initial(platform, batch)
        plan = s.next_subbatch(
            batch, [t.task_id for t in batch.tasks], platform, state
        )
        # Sub-batch selection must not exceed the 400 MB aggregate and the
        # per-node 200 MB constraint; with 4 x 100 MB files, at most one
        # pair's files fit per node.
        assert 1 <= len(plan.task_ids) <= 4
        footprint = batch.subset(plan.task_ids).distinct_file_mb
        assert footprint <= 400.0

    def test_solver_backend_selectable(self, platform):
        files = {"a": FileInfo("a", 100.0, 0)}
        batch = Batch([Task("t0", ("a",), 1.0)], files)
        s = IPScheduler(solver="branch-bound", time_limit=30.0)
        plan = plan_for(s, batch, platform)
        assert plan.mapping["t0"] in (0, 1)

    def test_greedy_subbatch_fallback(self, platform):
        s = IPScheduler()
        batch = small_batch()
        state = ClusterState.initial(platform, batch)
        chosen = s._greedy_subbatch(batch, list(batch.tasks), platform, state)
        assert chosen  # never empty
        assert {t.task_id for t in chosen} <= {t.task_id for t in batch.tasks}

    def test_greedy_allocation_fallback(self, platform):
        s = IPScheduler()
        batch = small_batch()
        state = ClusterState.initial(platform, batch)
        plan = s._greedy_allocation(batch, list(batch.tasks), platform, state)
        assert set(plan.mapping) == {t.task_id for t in batch.tasks}
