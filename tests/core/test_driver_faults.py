"""Driver-level fault recovery: dynamic rescheduling across every scheme.

The contract under test: with faults injected, ``run_batch`` still
completes every task (re-invoking the scheduler on the surviving platform
for tasks a crash killed), the executed trace passes the full invariant
set E1-E7, and a null fault spec is bit-identical to no spec at all.
"""

import pytest

from repro.cluster import osc_xio
from repro.core import run_batch
from repro.faults import FaultSpec, NodeCrash
from repro.workloads import generate_image_batch

SCHEMES = ["minmin", "maxmin", "sufferage", "jdp", "bipartition", "ip"]


def scheme_kwargs(scheme):
    if scheme == "ip":
        return {"time_limit": 3.0, "mip_rel_gap": 0.25}
    return {}


def small_batch(n=16, seed=0):
    return generate_image_batch(n, "high", 4, seed=seed)


CRASH_AND_FLAKY = {
    "node_crashes": [{"node": 1, "time": 5.0}],
    "transfer_failure_rate": 0.2,
    "seed": 3,
}


class TestReschedulingAcrossSchemes:
    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_crash_completes_on_survivors_and_audits(self, scheme):
        batch = small_batch()
        result = run_batch(
            batch,
            osc_xio(4, 4),
            scheme,
            scheduler_kwargs=scheme_kwargs(scheme),
            faults=CRASH_AND_FLAKY,
            audit=True,  # raises AuditError on any E1-E7 violation
        )
        # num_tasks counts *planned* tasks, so rescheduled ones count once
        # per plan they appear in (scheduling overhead really was paid
        # again); unique completions must cover the batch exactly.
        assert result.num_tasks >= len(batch)
        done = {r.task_id for sb in result.sub_batches for r in sb.execution.records}
        assert done == {t.task_id for t in batch.tasks}
        stats = result.fault_stats
        assert stats is not None
        # The crash materialises only if it would interrupt activity; a
        # scheme may legitimately have drained node 1 before t=5 (the node
        # is then a zombie the replica selector still refuses to use).
        assert stats.node_crashes <= 1
        # No completed task may sit on the dead node past its crash time.
        for sb in result.sub_batches:
            for rec in sb.execution.records:
                if rec.node == 1:
                    assert rec.completion <= 5.0 + 1e-6

    @pytest.mark.parametrize("scheme", ["minmin", "jdp", "bipartition"])
    def test_crash_mid_batch_reschedules(self, scheme):
        batch = small_batch()
        result = run_batch(
            batch,
            osc_xio(2, 4),
            scheme,
            faults={"node_crashes": [{"node": 1, "time": 5.0}]},
        )
        stats = result.fault_stats
        assert stats is not None
        # On a 2-node platform a t=5 crash always interrupts real work.
        assert stats.tasks_rescheduled > 0
        done = {r.task_id for sb in result.sub_batches for r in sb.execution.records}
        assert done == {t.task_id for t in batch.tasks}


class TestNullEquivalence:
    @pytest.mark.parametrize("scheme", ["minmin", "jdp", "bipartition"])
    def test_null_spec_bit_identical(self, scheme):
        batch = small_batch()
        platform = osc_xio(4, 4)
        base = run_batch(batch, platform, scheme)
        for null in (None, {}, {"transfer_failure_rate": 0.0}, FaultSpec()):
            res = run_batch(batch, platform, scheme, faults=null)
            assert res.makespan == base.makespan
            assert res.fault_stats is None

    def test_faults_change_the_result(self):
        batch = small_batch()
        platform = osc_xio(4, 4)
        base = run_batch(batch, platform, "minmin")
        flaky = run_batch(
            batch, platform, "minmin",
            faults={"transfer_failure_rate": 0.3, "seed": 1},
        )
        assert flaky.makespan > base.makespan
        assert flaky.fault_stats is not None
        assert flaky.fault_stats.transfer_failures > 0


class TestDeterminism:
    def test_same_spec_same_result(self):
        batch = small_batch()
        platform = osc_xio(4, 4)
        runs = [
            run_batch(batch, platform, "minmin", faults=CRASH_AND_FLAKY)
            for _ in range(2)
        ]
        assert runs[0].makespan == runs[1].makespan
        assert (
            runs[0].fault_stats.to_dict() == runs[1].fault_stats.to_dict()
        )


class TestFailureModes:
    def test_all_nodes_dead_raises(self):
        spec = {
            "node_crashes": [
                {"node": 0, "time": 0.0},
                {"node": 1, "time": 0.0},
            ]
        }
        with pytest.raises(RuntimeError, match="crashed|surviving"):
            run_batch(small_batch(), osc_xio(2, 4), "minmin", faults=spec)

    def test_invalid_spec_rejected_before_running(self):
        with pytest.raises(ValueError):
            run_batch(
                small_batch(),
                osc_xio(2, 4),
                "minmin",
                faults={"transfer_failure_rate": 2.0},
            )


class TestCrashStress:
    @pytest.mark.parametrize("crash_time", [0.0, 2.0, 8.0, 15.0])
    def test_single_crash_any_time_completes(self, crash_time):
        spec = FaultSpec(
            node_crashes=(NodeCrash(2, crash_time),),
            transfer_failure_rate=0.1,
            seed=1,
        )
        batch = small_batch()
        result = run_batch(batch, osc_xio(4, 4), "minmin",
                           faults=spec, audit=True)
        done = {r.task_id for sb in result.sub_batches for r in sb.execution.records}
        assert done == {t.task_id for t in batch.tasks}
