"""Tests for the Scheduler base interface and reset semantics."""

import numpy as np
import pytest

from repro.cluster import ClusterState, osc_xio
from repro.core import (
    BiPartitionScheduler,
    Scheduler,
    SubBatchPlan,
    make_scheduler,
    register_scheduler,
    run_batch,
)
from repro.core.base import _REGISTRY
from repro.workloads import generate_synthetic_batch


class TestSchedulerBase:
    def test_abstract_cannot_instantiate(self):
        with pytest.raises(TypeError):
            Scheduler()  # type: ignore[abstract]

    def test_reset_reseeds_rng(self):
        s = BiPartitionScheduler(seed=11)
        first = s.rng.integers(1_000_000)
        s.reset()
        assert s.rng.integers(1_000_000) == first

    def test_registration_roundtrip(self):
        @register_scheduler("_test_dummy")
        class Dummy(Scheduler):
            uses_subbatches = False

            def next_subbatch(self, batch, pending, platform, state):
                return SubBatchPlan(
                    list(pending), {t: 0 for t in pending}
                )

        try:
            s = make_scheduler("_test_dummy")
            assert s.name == "_test_dummy"
            batch = generate_synthetic_batch(4, 6, 2, 1, seed=0)
            res = run_batch(batch, osc_xio(1, 1), s)
            assert res.num_tasks == 4
        finally:
            _REGISTRY.pop("_test_dummy", None)

    def test_default_eviction_policy_counts_pending(self):
        from repro.core import PopularityPolicy

        batch = generate_synthetic_batch(6, 8, 2, 1, seed=0)
        s = make_scheduler("minmin")
        policy = s.eviction_policy(batch)
        assert isinstance(policy, PopularityPolicy)
        platform = osc_xio(1, 1)
        state = ClusterState.initial(platform, batch)
        hot = max(
            batch.referenced_files(),
            key=lambda f: len(batch.require_map()[f]),
        )
        state.place(0, hot)
        assert policy.popularity(state, hot) > 0

    def test_same_seed_same_plan(self):
        batch = generate_synthetic_batch(12, 16, 3, 2, seed=1)
        platform = osc_xio(2, 2)
        plans = []
        for _ in range(2):
            s = BiPartitionScheduler(seed=7)
            state = ClusterState.initial(platform, batch)
            plan = s.next_subbatch(
                batch, [t.task_id for t in batch.tasks], platform, state
            )
            plans.append(tuple(sorted(plan.mapping.items())))
        assert plans[0] == plans[1]
