"""End-to-end shape tests: the paper's qualitative findings must hold.

These are the headline claims of the evaluation, checked at reduced scale:

* the proposed schemes (IP, BiPartition) beat the baselines on shared I/O;
* BiPartition stays within ~10-15 % of the IP scheme;
* replication beats no-replication when sharers are spread;
* the advantage shrinks as overlap drops;
* IP's scheduling overhead dwarfs every other scheme's.
"""

import pytest

from repro.cluster import osc_osumed, osc_xio
from repro.core import run_batch
from repro.workloads import generate_image_batch, generate_sat_batch

N_TASKS = 32  # reduced scale; the benchmark harness runs larger sweeps


@pytest.fixture(scope="module")
def xio():
    return osc_xio(num_compute=4, num_storage=4)


@pytest.fixture(scope="module")
def results_high(xio):
    batch = generate_image_batch(N_TASKS, "high", 4, seed=0)
    out = {}
    for scheme in ("bipartition", "minmin", "jdp"):
        out[scheme] = run_batch(batch, xio, scheme)
    out["ip"] = run_batch(
        batch, xio, "ip",
        scheduler_kwargs={"time_limit": 25.0, "mip_rel_gap": 0.05},
    )
    return out


class TestFig3Shapes:
    def test_proposed_beat_minmin(self, results_high):
        for scheme in ("ip", "bipartition"):
            assert (
                results_high[scheme].makespan
                <= results_high["minmin"].makespan * 1.02
            )

    def test_bipartition_close_to_ip(self, results_high):
        ratio = (
            results_high["bipartition"].makespan
            / results_high["ip"].makespan
        )
        # Paper: BiPartition within 5-10% of IP; allow slack for the scaled
        # instance and the IP time limit (IP may even lose slightly).
        assert ratio <= 1.15

    def test_bipartition_minimises_remote_io(self, results_high):
        bp = results_high["bipartition"].stats
        mm = results_high["minmin"].stats
        assert bp.remote_volume_mb <= mm.remote_volume_mb

    def test_ip_overhead_dominates(self, results_high):
        ip_ms = results_high["ip"].scheduling_ms_per_task
        for scheme in ("bipartition", "minmin", "jdp"):
            assert ip_ms > 10 * results_high[scheme].scheduling_ms_per_task


class TestOverlapTrend:
    def test_benefit_shrinks_with_overlap(self, xio):
        """BiPartition's advantage over MinMin shrinks as sharing drops."""
        ratios = []
        for overlap in ("high", "zero"):
            batch = generate_image_batch(N_TASKS, overlap, 4, seed=0)
            bp = run_batch(batch, xio, "bipartition")
            mm = run_batch(batch, xio, "minmin")
            ratios.append(mm.makespan / bp.makespan)
        assert ratios[0] >= ratios[1] - 0.05

    def test_zero_overlap_roughly_equal(self, xio):
        batch = generate_image_batch(N_TASKS, "zero", 4, seed=0)
        bp = run_batch(batch, xio, "bipartition")
        mm = run_batch(batch, xio, "minmin")
        assert mm.makespan == pytest.approx(bp.makespan, rel=0.25)


class TestFig5aShape:
    def test_replication_helps_on_contended_storage(self):
        platform = osc_osumed(num_compute=8, num_storage=4)
        batch = generate_sat_batch(N_TASKS, "high", 4, seed=0)
        rep = run_batch(batch, platform, "bipartition")
        norep = run_batch(
            batch, platform, "bipartition", allow_replication=False
        )
        assert norep.makespan >= rep.makespan
        assert norep.stats.replications == 0


class TestOsumedVsXio:
    def test_osumed_much_slower(self):
        """The 100 Mbps shared link makes OSUMED runs far slower than XIO."""
        batch = generate_sat_batch(N_TASKS, "high", 4, seed=0)
        xio_res = run_batch(batch, osc_xio(4, 4), "bipartition")
        osumed_res = run_batch(batch, osc_osumed(4, 4), "bipartition")
        assert osumed_res.makespan > 3 * xio_res.makespan
