"""Hand-computed verification of the Eq. 25/26 execution-time estimate."""

import pytest

from repro.batch import Batch, FileInfo, Task
from repro.cluster import ComputeNode, Platform, StorageNode
from repro.core import estimated_exec_times


@pytest.fixture
def platform():
    # BW_s = 100 (storage disk), BW_c = 400 (interconnect),
    # BW_l = 200 (local disk), C = 0.001 s/MB.
    return Platform(
        compute_nodes=(
            ComputeNode(0, local_disk_bw=200.0),
            ComputeNode(1, local_disk_bw=200.0),
        ),
        storage_nodes=(StorageNode(0, disk_bw=100.0),),
        storage_network_bw=1000.0,
        compute_network_bw=400.0,
    )


def test_single_unshared_file(platform):
    # s_j = 1: Prob_FNE = 1 -> Tr = 1/BW_s; second term vanishes.
    files = {"f": FileInfo("f", 100.0, 0)}
    batch = Batch([Task("t", ("f",), 0.5)], files)
    est = estimated_exec_times(batch, list(batch.tasks), platform)
    expected = 100.0 * (1 / 100.0 + 1 / 200.0 + 0.001)
    assert est[0] == pytest.approx(expected)


def test_shared_file_two_tasks(platform):
    # Two tasks share f: s_j = 2, T = 2, K = 2.
    # Prob_FNE = 1/2; Prob_FE = (2/2) * (1/2) = 1/2.
    # Tr = 0.5/100 + 0.5 * 0.5 / min(100, 400) = 0.005 + 0.0025 = 0.0075.
    files = {"f": FileInfo("f", 100.0, 0)}
    batch = Batch(
        [Task("t0", ("f",), 0.0), Task("t1", ("f",), 0.0)], files
    )
    est = estimated_exec_times(batch, list(batch.tasks), platform)
    expected = 100.0 * (0.0075 + 1 / 200.0 + 0.001)
    assert est[0] == pytest.approx(expected)
    assert est[1] == pytest.approx(expected)


def test_mixed_shared_and_private(platform):
    # t0 reads shared f (s=2) and private g (s=1); t1 reads f only.
    files = {"f": FileInfo("f", 50.0, 0), "g": FileInfo("g", 200.0, 0)}
    batch = Batch(
        [Task("t0", ("f", "g"), 0.0), Task("t1", ("f",), 0.0)], files
    )
    est = estimated_exec_times(batch, list(batch.tasks), platform)
    tr_f = 0.5 / 100.0 + 0.5 * (1 - 0.5) / 100.0  # s=2, T=2, K=2
    tr_g = 1.0 / 100.0
    local_comp = 1 / 200.0 + 0.001
    exp_t0 = 50.0 * (tr_f + local_comp) + 200.0 * (tr_g + local_comp)
    exp_t1 = 50.0 * (tr_f + local_comp)
    assert est[0] == pytest.approx(exp_t0)
    assert est[1] == pytest.approx(exp_t1)


def test_bw_mix_uses_minimum(platform):
    """Eq. 25's second term divides by min(BW_s, BW_c), per the paper."""
    fast_interconnect = platform  # BW_c=400 > BW_s=100 -> min is BW_s
    files = {"f": FileInfo("f", 100.0, 0)}
    batch = Batch(
        [Task("t0", ("f",), 0.0), Task("t1", ("f",), 0.0)], files
    )
    est_fast = estimated_exec_times(batch, list(batch.tasks), fast_interconnect)

    slow = Platform(
        compute_nodes=(
            ComputeNode(0, local_disk_bw=200.0),
            ComputeNode(1, local_disk_bw=200.0),
        ),
        storage_nodes=(StorageNode(0, disk_bw=100.0),),
        storage_network_bw=1000.0,
        compute_network_bw=50.0,  # now min(BW_s, BW_c) = 50
    )
    est_slow = estimated_exec_times(batch, list(batch.tasks), slow)
    assert est_slow[0] > est_fast[0]
