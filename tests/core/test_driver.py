"""Tests for the three-stage batch driver."""

import pytest

from repro.batch import Batch, FileInfo, Task
from repro.cluster import osc_xio
from repro.core import (
    BiPartitionScheduler,
    MinMinScheduler,
    run_batch,
)
from repro.workloads import generate_synthetic_batch


def shared_batch():
    files = {
        "a": FileInfo("a", 100.0, 0),
        "b": FileInfo("b", 100.0, 1),
        "c": FileInfo("c", 100.0, 0),
        "d": FileInfo("d", 100.0, 1),
    }
    tasks = [
        Task("t0", ("a", "b"), 1.0),
        Task("t1", ("a", "b"), 1.0),
        Task("t2", ("c", "d"), 1.0),
        Task("t3", ("c", "d"), 1.0),
    ]
    return Batch(tasks, files)


class TestRunBatch:
    def test_runs_by_name(self):
        res = run_batch(shared_batch(), osc_xio(2, 2), "bipartition")
        assert res.scheduler == "bipartition"
        assert res.num_tasks == 4
        assert res.makespan > 0

    def test_runs_with_instance(self):
        res = run_batch(
            shared_batch(), osc_xio(2, 2), MinMinScheduler(seed=3)
        )
        assert res.num_tasks == 4

    def test_scheduler_kwargs_forwarded(self):
        res = run_batch(
            shared_batch(),
            osc_xio(2, 2),
            "jdp",
            scheduler_kwargs={"popularity_threshold": 1},
        )
        assert res.num_tasks == 4

    def test_all_tasks_executed_exactly_once(self):
        res = run_batch(shared_batch(), osc_xio(2, 2), "bipartition")
        executed = [
            r.task_id for sb in res.sub_batches for r in sb.execution.records
        ]
        assert sorted(executed) == ["t0", "t1", "t2", "t3"]

    def test_makespan_positive_and_consistent(self):
        res = run_batch(shared_batch(), osc_xio(2, 2), "minmin")
        last = max(
            r.completion
            for sb in res.sub_batches
            for r in sb.execution.records
        )
        assert res.makespan == pytest.approx(last)

    def test_scheduling_time_measured(self):
        res = run_batch(shared_batch(), osc_xio(2, 2), "bipartition")
        assert res.scheduling_seconds > 0.0

    def test_no_replication_flag(self):
        res = run_batch(
            shared_batch(), osc_xio(2, 2), "bipartition",
            allow_replication=False,
        )
        assert res.stats.replications == 0

    def test_subbatching_under_disk_pressure(self):
        # 8 distinct 100 MB files (800 MB) vs 500 MB aggregate disk: the
        # batch cannot run in one sub-batch, but each 200 MB task fits.
        platform = osc_xio(num_compute=2, num_storage=2, disk_space_mb=250.0)
        files = {f"f{i}": FileInfo(f"f{i}", 100.0, i % 2) for i in range(8)}
        tasks = [
            Task(f"t{i}", (f"f{2 * i}", f"f{2 * i + 1}"), 1.0)
            for i in range(4)
        ]
        res = run_batch(Batch(tasks, files), platform, "bipartition")
        assert res.num_sub_batches >= 2
        assert res.num_tasks == 4

    def test_single_task_too_large_rejected(self):
        platform = osc_xio(num_compute=2, num_storage=2, disk_space_mb=150.0)
        with pytest.raises(ValueError, match="footprint"):
            run_batch(shared_batch(), platform, "bipartition")

    def test_base_scheme_single_subbatch_with_evictions(self):
        platform = osc_xio(num_compute=2, num_storage=2, disk_space_mb=250.0)
        batch = generate_synthetic_batch(
            12, 12, 2, 2, file_size_mb=100.0, seed=0
        )
        res = run_batch(batch, platform, "minmin")
        assert res.num_sub_batches == 1
        assert res.stats.evictions > 0  # 1.2 GB through 500 MB of cache

    def test_max_subbatches_guard(self):
        platform = osc_xio(num_compute=2, num_storage=2)
        with pytest.raises(RuntimeError):
            run_batch(
                shared_batch(), platform, "bipartition", max_subbatches=0
            )

    def test_candidate_limit_passes_through(self):
        res = run_batch(
            shared_batch(), osc_xio(2, 2), "minmin", candidate_limit=1
        )
        assert res.num_tasks == 4

    def test_results_deterministic_given_seed(self):
        a = run_batch(
            shared_batch(), osc_xio(2, 2), BiPartitionScheduler(seed=5)
        )
        b = run_batch(
            shared_batch(), osc_xio(2, 2), BiPartitionScheduler(seed=5)
        )
        assert a.makespan == pytest.approx(b.makespan)
        assert a.stats.remote_transfers == b.stats.remote_transfers


class TestDiskConstraintHonoured:
    @pytest.mark.parametrize("scheme", ["bipartition", "minmin", "jdp"])
    def test_caches_never_exceed_capacity(self, scheme):
        platform = osc_xio(num_compute=2, num_storage=2, disk_space_mb=300.0)
        batch = generate_synthetic_batch(
            16, 10, 2, 2, file_size_mb=100.0, hot_probability=0.5, seed=1
        )
        res = run_batch(batch, platform, scheme)
        assert res.num_tasks == 16
        # The run finishing is itself the proof: CacheFullError would have
        # been raised on violation. Also check final occupancy.
        # (State is internal to run_batch; re-run via makespan sanity.)
        assert res.makespan > 0

    def test_ip_two_stage_under_pressure(self):
        platform = osc_xio(num_compute=2, num_storage=2, disk_space_mb=220.0)
        batch = shared_batch()
        res = run_batch(
            batch,
            platform,
            "ip",
            scheduler_kwargs={"time_limit": 20.0},
        )
        assert res.num_tasks == 4
        assert res.num_sub_batches >= 1
