"""Brute-force verification of the IP formulation (Eqs. 1-13).

For micro-instances (2 nodes, <= 3 tasks, <= 4 files) we can enumerate
every task mapping and every legal staging decision, evaluate the paper's
cost model (Eq. 9-13 plus the local-read term the runtime charges), and
compare the optimum with the IP scheduler's reported solution. This checks
the *formulation* — constraints and objective — independently of any
solver, and both solver backends against each other.
"""

import itertools
import math

import pytest

from repro.batch import Batch, FileInfo, Task
from repro.cluster import ClusterState, osc_xio
from repro.core.ip_scheduler import IPScheduler

C = 2  # compute nodes


def brute_force_makespan(batch: Batch, platform) -> float:
    """Optimal Eq. 9-13 makespan over all mappings and stagings."""
    tasks = list(batch.tasks)
    files = sorted(batch.referenced_files())
    t_rep = 1.0 / platform.replication_bandwidth

    best = math.inf
    for mapping in itertools.product(range(C), repeat=len(tasks)):
        needed = [set() for _ in range(C)]
        for t, node in zip(tasks, mapping):
            needed[node].update(t.files)

        # Staging options per file: enumerate every legal (X, R, Y)
        # micro-assignment for C=2 — placements may exceed the needing set
        # (relay copies: fetch remotely on the idle node, replicate to the
        # busy one), exactly what Eqs. 1-8 permit.
        per_file_options = []
        for f in files:
            nodes = {i for i in range(C) if f in needed[i]}
            if not nodes:
                per_file_options.append([()])
                continue
            opts = []
            for placed in ({0}, {1}, {0, 1}):
                if not nodes <= placed:
                    continue
                for sources in itertools.product(
                    ("remote", "replica"), repeat=len(placed)
                ):
                    placement = tuple(
                        (n, kind, 1 - n if kind == "replica" else None)
                        for n, kind in zip(sorted(placed), sources)
                    )
                    # Eq. 8: at least one remote fetch.
                    if all(kind != "remote" for _, kind, _ in placement):
                        continue
                    # Eq. 1: a replica's source must hold the file.
                    if any(
                        kind == "replica" and src not in placed
                        for _, kind, src in placement
                    ):
                        continue
                    # Note Eq. 2 would forbid replicating *to* a node with
                    # no local demand; relay copies arrive by remote
                    # transfer only, which the enumeration above allows.
                    if any(
                        kind == "replica" and n not in nodes
                        for n, kind, _ in placement
                    ):
                        continue
                    opts.append(placement)
            per_file_options.append(opts)

        for combo in itertools.product(*per_file_options):
            exec_cost = [0.0, 0.0]
            # Computation + local read per node.
            for t, node in zip(tasks, mapping):
                read = sum(
                    platform.local_read_time(node, batch.file_size(f))
                    for f in t.files
                )
                exec_cost[node] += (
                    platform.task_compute_time(node, t.compute_time) + read
                )
            # Transfers.
            for f, placements in zip(files, combo):
                size = batch.file_size(f)
                for node, kind, src in placements:
                    if kind == "remote":
                        bw = platform.remote_bandwidth(
                            batch.file(f).storage_node
                        )
                        exec_cost[node] += size / bw
                    else:
                        cost = t_rep * size
                        exec_cost[node] += cost  # inbound
                        exec_cost[src] += cost  # outbound
            best = min(best, max(exec_cost))
    return best


def micro_instances():
    plat = osc_xio(num_compute=C, num_storage=2)
    cases = []

    f = {
        "a": FileInfo("a", 420.0, 0),
        "b": FileInfo("b", 210.0, 1),
    }
    cases.append(
        (
            "shared-heavy",
            Batch(
                [
                    Task("t0", ("a",), 1.0),
                    Task("t1", ("a", "b"), 1.0),
                    Task("t2", ("b",), 1.0),
                ],
                f,
            ),
            plat,
        )
    )

    g = {
        "x": FileInfo("x", 630.0, 0),
        "y": FileInfo("y", 105.0, 0),
        "z": FileInfo("z", 105.0, 1),
    }
    cases.append(
        (
            "skewed-sizes",
            Batch(
                [
                    Task("t0", ("x", "y"), 2.0),
                    Task("t1", ("x", "z"), 0.5),
                ],
                g,
            ),
            plat,
        )
    )

    h = {
        "p": FileInfo("p", 210.0, 0),
        "q": FileInfo("q", 210.0, 1),
        "r": FileInfo("r", 210.0, 0),
        "s": FileInfo("s", 210.0, 1),
    }
    cases.append(
        (
            "disjoint-pairs",
            Batch(
                [
                    Task("t0", ("p", "q"), 1.0),
                    Task("t1", ("r", "s"), 1.0),
                ],
                h,
            ),
            plat,
        )
    )
    return cases


@pytest.mark.parametrize(
    "name,batch,plat", micro_instances(), ids=[c[0] for c in micro_instances()]
)
def test_ip_matches_brute_force(name, batch, plat):
    expected = brute_force_makespan(batch, plat)
    scheduler = IPScheduler(time_limit=60.0, mip_rel_gap=0.0)
    state = ClusterState.initial(plat, batch)
    scheduler.next_subbatch(
        batch, [t.task_id for t in batch.tasks], plat, state
    )
    sol = scheduler.last_solution
    assert sol is not None and sol.status.has_solution
    assert sol.objective == pytest.approx(expected, rel=1e-6), name


@pytest.mark.parametrize(
    "name,batch,plat", micro_instances(), ids=[c[0] for c in micro_instances()]
)
def test_backends_agree_on_ip_model(name, batch, plat):
    objectives = []
    for backend in ("highs", "branch-bound"):
        scheduler = IPScheduler(
            solver=backend, time_limit=120.0, mip_rel_gap=0.0
        )
        state = ClusterState.initial(plat, batch)
        scheduler.next_subbatch(
            batch, [t.task_id for t in batch.tasks], plat, state
        )
        assert scheduler.last_solution is not None
        objectives.append(scheduler.last_solution.objective)
    assert objectives[0] == pytest.approx(objectives[1], rel=1e-6)
