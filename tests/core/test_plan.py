"""Tests for plan/result containers and the scheduler registry."""

import pytest

from repro.cluster import StagingPlan
from repro.cluster.state import TransferStats
from repro.cluster.stats import ExecutionResult
from repro.core import (
    BatchResult,
    SubBatchPlan,
    SubBatchResult,
    available_schedulers,
    make_scheduler,
)


class TestSubBatchPlan:
    def test_valid_plan(self):
        p = SubBatchPlan(task_ids=["a", "b"], mapping={"a": 0, "b": 1})
        assert p.staging is None

    def test_missing_mapping_rejected(self):
        with pytest.raises(ValueError):
            SubBatchPlan(task_ids=["a", "b"], mapping={"a": 0})

    def test_with_staging(self):
        p = SubBatchPlan(
            task_ids=["a"], mapping={"a": 0}, staging=StagingPlan()
        )
        assert p.staging.pushes == []


class TestBatchResult:
    def _result(self):
        r = BatchResult(scheduler="x", makespan=10.0, scheduling_seconds=0.5)
        exec_res = ExecutionResult(start_time=0.0, makespan=10.0)
        r.sub_batches.append(
            SubBatchResult(
                plan=SubBatchPlan(["a", "b"], {"a": 0, "b": 0}),
                execution=exec_res,
                scheduling_seconds=0.5,
            )
        )
        r.stats = TransferStats(remote_transfers=3, remote_volume_mb=30.0)
        return r

    def test_counts(self):
        r = self._result()
        assert r.num_sub_batches == 1
        assert r.num_tasks == 2

    def test_scheduling_ms_per_task(self):
        r = self._result()
        assert r.scheduling_ms_per_task == pytest.approx(250.0)

    def test_zero_tasks(self):
        r = BatchResult(scheduler="x", makespan=0.0, scheduling_seconds=0.0)
        assert r.scheduling_ms_per_task == 0.0

    def test_summary_contains_key_numbers(self):
        s = self._result().summary()
        assert "x" in s
        assert "10.0s" in s
        assert "remote 3" in s


class TestRegistry:
    def test_all_four_registered(self):
        names = available_schedulers()
        for expected in ("ip", "bipartition", "minmin", "jdp"):
            assert expected in names

    def test_make_by_name(self):
        s = make_scheduler("minmin")
        assert s.name == "minmin"
        assert not s.uses_subbatches

    def test_kwargs_passed(self):
        s = make_scheduler("ip", time_limit=5.0)
        assert s.time_limit == 5.0

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            make_scheduler("quantum")

    def test_seed_controls_rng(self):
        a = make_scheduler("bipartition", seed=1)
        b = make_scheduler("bipartition", seed=1)
        assert a.rng.integers(1000) == b.rng.integers(1000)
