"""Detailed tests of the JDP + Data Least Loaded baseline behaviour."""

import pytest

from repro.batch import Batch, FileInfo, Task
from repro.cluster import ClusterState, osc_xio
from repro.core import JobDataPresentScheduler, run_batch


def plan_for(scheduler, batch, platform, state=None):
    state = state or ClusterState.initial(platform, batch)
    return scheduler.next_subbatch(
        batch, [t.task_id for t in batch.tasks], platform, state
    )


class TestThreshold:
    def test_default_threshold_scales_with_batch(self):
        platform = osc_xio(num_compute=4, num_storage=2)
        # 64 tasks / (4 * 4) = 4: files with >= 4 pending accesses push.
        files = {"hot": FileInfo("hot", 10.0, 0)}
        files.update(
            {f"c{i}": FileInfo(f"c{i}", 10.0, 1) for i in range(64)}
        )
        tasks = [Task(f"t{i}", ("hot", f"c{i}"), 1.0) for i in range(64)]
        batch = Batch(tasks, files)
        plan = plan_for(JobDataPresentScheduler(), batch, platform)
        pushed = {f for f, _ in plan.staging.pushes}
        assert "hot" in pushed
        assert not any(f.startswith("c") for f in pushed)

    def test_explicit_threshold_respected(self):
        platform = osc_xio(num_compute=2, num_storage=1)
        files = {"f": FileInfo("f", 10.0, 0), "g": FileInfo("g", 10.0, 0)}
        tasks = [
            Task("t0", ("f",), 1.0),
            Task("t1", ("f",), 1.0),
            Task("t2", ("g",), 1.0),
        ]
        batch = Batch(tasks, files)
        plan = plan_for(
            JobDataPresentScheduler(popularity_threshold=2), batch, platform
        )
        pushed = {f for f, _ in plan.staging.pushes}
        assert pushed == {"f"}  # g has one access only


class TestDllTargeting:
    def test_push_to_least_loaded(self):
        platform = osc_xio(num_compute=3, num_storage=1)
        files = {
            "a": FileInfo("a", 10.0, 0),
            "b": FileInfo("b", 10.0, 0),
        }
        tasks = [Task(f"t{i}", ("a",), 1.0) for i in range(4)] + [
            Task("u0", ("b",), 1.0),
            Task("u1", ("b",), 1.0),
        ]
        batch = Batch(tasks, files)
        plan = plan_for(
            JobDataPresentScheduler(popularity_threshold=2), batch, platform
        )
        # Two hot files -> two pushes on two *different* (least loaded)
        # nodes.
        targets = [n for _, n in plan.staging.pushes]
        assert len(targets) == 2
        assert len(set(targets)) == 2

    def test_push_skipped_when_already_replicated(self):
        platform = osc_xio(num_compute=2, num_storage=1)
        files = {"f": FileInfo("f", 10.0, 0)}
        tasks = [Task(f"t{i}", ("f",), 1.0) for i in range(4)]
        batch = Batch(tasks, files)
        state = ClusterState.initial(platform, batch)
        state.place(0, "f")
        plan = plan_for(
            JobDataPresentScheduler(popularity_threshold=2),
            batch,
            platform,
            state,
        )
        # DLL would push to node 0 (least loaded), but f already sits there.
        assert ("f", 0) not in plan.staging.pushes

    def test_end_to_end_pushes_materialise(self):
        platform = osc_xio(num_compute=2, num_storage=1)
        files = {"f": FileInfo("f", 100.0, 0)}
        files.update({f"c{i}": FileInfo(f"c{i}", 50.0, 0) for i in range(4)})
        tasks = [Task(f"t{i}", ("f", f"c{i}"), 0.5) for i in range(4)]
        batch = Batch(tasks, files)
        res = run_batch(
            batch,
            platform,
            JobDataPresentScheduler(popularity_threshold=2),
        )
        assert res.num_tasks == 4
        # The push plus per-node staging means f reaches both nodes at most
        # once each.
        assert res.stats.remote_volume_mb + res.stats.replication_volume_mb \
            <= batch.total_access_mb
