"""Integration tests of multi-sub-batch behaviour (Section 4.2 semantics)."""

import pytest

from repro.batch import Batch, FileInfo, Task
from repro.cluster import ClusterState, Runtime, osc_xio
from repro.core import BiPartitionScheduler, IPScheduler, run_batch


def pressured_setup():
    """8 x 100 MB files, 4 two-file tasks, 250 MB disks -> 2+ sub-batches.

    Tasks t0/t1 share files with t2/t3 across the sub-batch boundary, so
    copies created by the first sub-batch are reusable by the second.
    """
    platform = osc_xio(num_compute=2, num_storage=2, disk_space_mb=250.0)
    files = {f"f{i}": FileInfo(f"f{i}", 100.0, i % 2) for i in range(6)}
    tasks = [
        Task("t0", ("f0", "f1"), 1.0),
        Task("t1", ("f2", "f3"), 1.0),
        Task("t2", ("f0", "f4"), 1.0),  # reuses f0
        Task("t3", ("f2", "f5"), 1.0),  # reuses f2
    ]
    return platform, Batch(tasks, files)


class TestPresenceCreditAcrossSubBatches:
    def test_ip_reuses_copies(self):
        platform, batch = pressured_setup()
        res = run_batch(
            batch,
            platform,
            IPScheduler(time_limit=30.0),
            max_subbatches=10,
        )
        assert res.num_tasks == 4
        # 6 distinct files; without reuse 8 transfers would be needed (each
        # task stages both inputs). With presence credit / dynamic reuse at
        # most 8 total placements, of which some must be cache hits: total
        # transferred volume stays below the naive 800 MB.
        total = res.stats.remote_volume_mb + res.stats.replication_volume_mb
        assert total <= 800.0 - 1e-6

    def test_bipartition_bounded_transfers(self):
        platform, batch = pressured_setup()
        res = run_batch(batch, platform, BiPartitionScheduler(seed=0))
        assert res.num_tasks == 4
        # BiPartition decouples mapping from staging: with per-node disks
        # too small to co-locate the sharing pairs, a shared file can
        # legitimately be fetched once per needing node (the runtime may
        # even prefer remote over a replica whose source node is busy).
        # The hard bound is one transfer per (task, file) access.
        total = res.stats.remote_volume_mb + res.stats.replication_volume_mb
        assert total <= batch.total_access_mb + 1e-6
        # And the batch footprint itself was respected per sub-batch.
        for sb in res.sub_batches:
            assert batch.subset(sb.plan.task_ids).distinct_file_mb <= 500.0

    def test_subbatches_execute_sequentially(self):
        platform, batch = pressured_setup()
        res = run_batch(batch, platform, BiPartitionScheduler(seed=0))
        if res.num_sub_batches >= 2:
            ends = [sb.execution.makespan for sb in res.sub_batches]
            starts = [sb.execution.start_time for sb in res.sub_batches]
            for prev_end, nxt_start in zip(ends, starts[1:]):
                assert nxt_start >= prev_end - 1e-9

    def test_eviction_between_subbatches_recorded(self):
        # Tight disks force evictions between sub-batches.
        platform = osc_xio(num_compute=1, num_storage=2, disk_space_mb=220.0)
        files = {f"f{i}": FileInfo(f"f{i}", 100.0, i % 2) for i in range(6)}
        tasks = [
            Task(f"t{i}", (f"f{2 * i}", f"f{2 * i + 1}"), 0.5)
            for i in range(3)
        ]
        batch = Batch(tasks, files)
        res = run_batch(batch, platform, BiPartitionScheduler(seed=0))
        assert res.num_tasks == 3
        assert res.stats.evictions >= 2  # old pairs evicted for new ones


class TestInFlightFiles:
    def test_execution_waits_for_inflight_arrival(self):
        """A later task must not start before a file still in transit for
        an earlier commit has actually arrived."""
        platform = osc_xio(num_compute=1, num_storage=1)
        files = {
            "big": FileInfo("big", 2100.0, 0),  # 10s remote transfer
            "tiny": FileInfo("tiny", 21.0, 0),
        }
        tasks = [
            Task("first", ("big",), 0.1),
            Task("second", ("big", "tiny"), 0.1),
        ]
        batch = Batch(tasks, files)
        state = ClusterState.initial(platform, batch)
        rt = Runtime(platform, state)
        res = rt.execute(batch.tasks, {"first": 0, "second": 0})
        rec = {r.task_id: r for r in res.records}
        # "second" reuses the in-flight/arrived copy of big: it must start
        # after big's arrival (10s) and never re-transfer it.
        assert rec["second"].exec_start >= 10.0 - 1e-6
        assert state.stats.remote_volume_mb == pytest.approx(2121.0)
