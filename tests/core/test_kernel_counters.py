"""Incremental-kernel work counters: pinned values, decision neutrality.

The counters added to :class:`repro.core.mct_kernel.KernelStats`
(``value_rows_skipped``, ``compactions``, ``flip_shortcut_hits``) are pure
accumulators over the kernel's existing control flow — adding them must not
change a single decision, and on a fixed cell their values are exact
(the kernel is deterministic). ``repro profile`` and the run manifest
surface them through the ``kernel/*`` telemetry counters.
"""

import pytest

from repro.cluster.platform import osc_xio
from repro.cluster.state import ClusterState
from repro.core.base import make_scheduler
from repro.core.driver import run_batch
from repro.obs.core import telemetry
from repro.workloads.image import generate_image_batch


@pytest.fixture(autouse=True)
def clean_registry():
    telemetry.reset()
    telemetry.disable()
    yield
    telemetry.reset()
    telemetry.disable()


def map_once(scheme="minmin", n=200, c=8, reference=False):
    batch = generate_image_batch(n, "high", num_storage=8, seed=0)
    platform = osc_xio(num_compute=c, num_storage=8)
    state = ClusterState.initial(platform, batch)
    sched = make_scheduler(scheme, seed=0)
    sched.reference = reference
    plan = sched.next_subbatch(
        batch, [t.task_id for t in batch.tasks], platform, state
    )
    return plan.mapping, sched.kernel_stats


class TestCounters:
    def test_pinned_values_on_fixed_cell(self):
        # Large enough that every counter is live: two live-row
        # compactions (200 -> 100 -> 50), flip shortcuts and column-only
        # row updates. Exact values — the kernel is deterministic.
        _, stats = map_once()
        doc = stats.to_dict()
        assert doc["compactions"] == 2
        assert doc["flip_shortcut_hits"] == 124
        assert doc["value_rows_skipped"] == 138
        assert doc["evaluations_saved"] == 130578

    def test_counters_are_decision_neutral(self):
        opt, stats = map_once(reference=False)
        ref, ref_stats = map_once(reference=True)
        assert opt == ref
        assert stats is not None
        assert ref_stats is None  # reference path has no incremental stats

    def test_small_cell_has_zero_compactions(self):
        # Compaction triggers at live*2 <= cap with cap >= 64; a tiny
        # batch never reaches it.
        _, stats = map_once(n=20, c=4)
        assert stats.to_dict()["compactions"] == 0

    def test_counters_flow_into_telemetry(self):
        batch = generate_image_batch(16, "high", 4, seed=0)
        platform = osc_xio(num_compute=4, num_storage=4)
        result = run_batch(
            batch, platform, "minmin", candidate_limit=25, telemetry=True
        )
        counters = result.telemetry["counters"]
        assert counters["kernel/tasks"] == 16.0
        assert "kernel/flip_shortcut_hits" in counters
        assert "kernel/value_rows_skipped" in counters
        assert "kernel/compactions" in counters

    def test_reference_run_has_no_kernel_counters(self):
        batch = generate_image_batch(16, "high", 4, seed=0)
        platform = osc_xio(num_compute=4, num_storage=4)
        result = run_batch(
            batch, platform, "minmin", candidate_limit=25,
            telemetry=True, reference=True,
        )
        assert not any(
            k.startswith("kernel/") for k in result.telemetry["counters"]
        )
