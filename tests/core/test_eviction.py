"""Tests for the eviction policies (Eq. 22 popularity, LRU, size)."""

import pytest

from repro.batch import Batch, FileInfo, Task
from repro.cluster import ClusterState, osc_xio
from repro.core import LRUPolicy, PopularityPolicy, SizePolicy


@pytest.fixture
def setup():
    platform = osc_xio(num_compute=2, num_storage=2, disk_space_mb=1000.0)
    files = {
        "small_hot": FileInfo("small_hot", 10.0, 0),
        "big_hot": FileInfo("big_hot", 100.0, 0),
        "small_cold": FileInfo("small_cold", 10.0, 1),
        "big_cold": FileInfo("big_cold", 100.0, 1),
    }
    tasks = [
        Task("t0", ("small_hot", "big_hot"), 1.0),
        Task("t1", ("small_hot", "big_hot"), 1.0),
        Task("t2", ("small_hot",), 1.0),
        Task("t3", ("small_cold", "big_cold"), 1.0),
    ]
    batch = Batch(tasks, files)
    state = ClusterState.initial(platform, batch)
    for f in files:
        state.place(0, f)
    return batch, state


class TestPopularity:
    def test_formula(self, setup):
        batch, state = setup
        policy = PopularityPolicy.for_batch(batch)
        # freq(small_hot)=3, size=10, copies=1 -> 30
        assert policy.popularity(state, "small_hot") == pytest.approx(30.0)
        # freq(big_hot)=2, size=100 -> 200
        assert policy.popularity(state, "big_hot") == pytest.approx(200.0)

    def test_copies_divide_popularity(self, setup):
        batch, state = setup
        policy = PopularityPolicy.for_batch(batch)
        before = policy.popularity(state, "big_hot")
        state.place(1, "big_hot")
        assert policy.popularity(state, "big_hot") == pytest.approx(before / 2)

    def test_order_least_popular_first(self, setup):
        batch, state = setup
        policy = PopularityPolicy.for_batch(batch)
        order = policy.order(state, 0, state.files_on(0))
        # small_cold: 1*10=10 is least popular; big_hot: 200 most.
        assert order[0] == "small_cold"
        assert order[-1] == "big_hot"

    def test_update_pending(self, setup):
        batch, state = setup
        policy = PopularityPolicy.for_batch(batch)
        policy.update_pending({"big_hot": 0, "small_cold": 5})
        assert policy.popularity(state, "big_hot") == 0.0
        assert policy.popularity(state, "small_cold") == pytest.approx(50.0)

    def test_unknown_file_zero(self, setup):
        batch, state = setup
        state.register_files({"x": FileInfo("x", 5.0, 0)})
        policy = PopularityPolicy.for_batch(batch)
        assert policy.popularity(state, "x") == 0.0


class TestLRU:
    def test_least_recent_first(self, setup):
        _, state = setup
        cache = state.caches[0]
        cache.touch("small_hot", 10.0)
        cache.touch("big_hot", 5.0)
        cache.touch("small_cold", 1.0)
        cache.touch("big_cold", 7.0)
        policy = LRUPolicy()
        order = policy.order(state, 0, state.files_on(0))
        assert order == ["small_cold", "big_hot", "big_cold", "small_hot"]

    def test_update_pending_is_noop(self, setup):
        _, state = setup
        policy = LRUPolicy()
        policy.update_pending({"whatever": 3})  # must not raise


class TestSize:
    def test_smallest_first(self, setup):
        _, state = setup
        policy = SizePolicy()
        order = policy.order(state, 0, state.files_on(0))
        assert {order[0], order[1]} == {"small_hot", "small_cold"}
        assert {order[2], order[3]} == {"big_hot", "big_cold"}
