"""Tests for the MaxMin and Sufferage extension baselines."""

import numpy as np
import pytest

from repro.batch import Batch, FileInfo, Task
from repro.cluster import ClusterState, osc_xio
from repro.core import (
    MaxMinScheduler,
    MinMinScheduler,
    SufferageScheduler,
    make_scheduler,
    run_batch,
)
from repro.workloads import generate_synthetic_batch


@pytest.fixture
def platform():
    return osc_xio(num_compute=2, num_storage=2)


def plan_for(scheduler, batch, platform):
    state = ClusterState.initial(platform, batch)
    return scheduler.next_subbatch(
        batch, [t.task_id for t in batch.tasks], platform, state
    )


class TestRegistry:
    def test_registered(self):
        assert make_scheduler("maxmin").name == "maxmin"
        assert make_scheduler("sufferage").name == "sufferage"

    def test_no_subbatching(self):
        assert not MaxMinScheduler.uses_subbatches
        assert not SufferageScheduler.uses_subbatches


class TestPickRules:
    def test_maxmin_picks_largest_best(self):
        s = MaxMinScheduler()
        mct = np.array([[5.0, 6.0], [9.0, 10.0], [1.0, 2.0]])
        k, i = s._pick(mct)
        assert (k, i) == (1, 0)  # task 1 has the largest best (9.0)

    def test_maxmin_ignores_scheduled_rows(self):
        s = MaxMinScheduler()
        mct = np.array([[np.inf, np.inf], [3.0, 4.0]])
        assert s._pick(mct) == (1, 0)

    def test_sufferage_picks_largest_gap(self):
        s = SufferageScheduler()
        # Gaps: task0 -> 1, task1 -> 7, task2 -> 0.
        mct = np.array([[5.0, 6.0], [2.0, 9.0], [4.0, 4.0]])
        k, i = s._pick(mct)
        assert (k, i) == (1, 0)

    def test_sufferage_single_node_degenerates_to_minmin(self):
        s = SufferageScheduler()
        mct = np.array([[5.0], [2.0], [9.0]])
        assert s._pick(mct) == (1, 0)

    def test_minmin_pick_is_global_min(self):
        s = MinMinScheduler()
        mct = np.array([[5.0, 0.5], [2.0, 9.0]])
        assert s._pick(mct) == (0, 1)


class TestEndToEnd:
    @pytest.mark.parametrize("scheme", ["maxmin", "sufferage"])
    def test_full_batch_runs(self, scheme, platform):
        batch = generate_synthetic_batch(
            12, 16, 3, 2, hot_probability=0.5, seed=0
        )
        res = run_batch(batch, platform, scheme)
        assert res.num_tasks == 12
        assert res.makespan > 0

    def test_big_tasks_first_under_maxmin(self, platform):
        # One huge task and several small ones on one node: MaxMin must
        # commit the huge one first.
        files = {
            "big": FileInfo("big", 2000.0, 0),
            **{f"s{i}": FileInfo(f"s{i}", 10.0, 1) for i in range(3)},
        }
        tasks = [Task("huge", ("big",), 10.0)] + [
            Task(f"tiny{i}", (f"s{i}",), 0.1) for i in range(3)
        ]
        batch = Batch(tasks, files)
        single = osc_xio(num_compute=1, num_storage=2)
        state = ClusterState.initial(single, batch)
        s = MaxMinScheduler()
        # Observe the commit order through the mapping loop by checking
        # the plan is complete; order itself is internal, so check instead
        # that the run completes and the makespan is dominated by the big
        # task (no pathological serialization surprises).
        plan = s.next_subbatch(
            batch, [t.task_id for t in batch.tasks], single, state
        )
        assert set(plan.mapping.values()) == {0}

    def test_schedulers_differ_on_heterogeneous_batch(self, platform):
        batch = generate_synthetic_batch(
            20, 30, 3, 2, hot_probability=0.6, size_spread=0.8, seed=3
        )
        mappings = {}
        for scheme in ("minmin", "maxmin", "sufferage"):
            plan = plan_for(make_scheduler(scheme), batch, platform)
            mappings[scheme] = tuple(
                plan.mapping[t.task_id] for t in batch.tasks
            )
        # At least one pair of heuristics must disagree somewhere.
        assert len(set(mappings.values())) >= 2

    def test_family_shares_minmin_machinery(self):
        # Identical single-node problems must give identical mappings.
        batch = generate_synthetic_batch(8, 10, 2, 1, seed=1)
        platform = osc_xio(num_compute=1, num_storage=1)
        for scheme in ("minmin", "maxmin", "sufferage"):
            res = run_batch(batch, platform, scheme)
            assert res.num_tasks == 8
