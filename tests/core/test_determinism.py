"""Reproducibility: identical inputs must give identical results.

The whole pipeline is seeded (generators and schedulers use
``numpy.random.Generator``; the runtime is deterministic given a plan), so
experiment records must be bit-for-bit repeatable — a requirement for a
reproduction repository.
"""

import pytest

from repro.cluster import osc_osumed, osc_xio
from repro.core import run_batch
from repro.io import batch_to_dict, result_to_dict
from repro.workloads import generate_image_batch, generate_sat_batch

SCHEMES = ("bipartition", "minmin", "jdp", "maxmin", "sufferage")


@pytest.mark.parametrize("scheme", SCHEMES)
def test_run_twice_identical(scheme):
    platform = osc_xio(4, 4)
    batch = generate_image_batch(24, "high", 4, seed=5)
    a = run_batch(batch, platform, scheme, scheduler_kwargs={"seed": 3})
    b = run_batch(batch, platform, scheme, scheduler_kwargs={"seed": 3})
    da, db = result_to_dict(a), result_to_dict(b)
    # Wall-clock scheduling time differs; everything else must match.
    for d in (da, db):
        d.pop("scheduling_seconds")
        for sb in d["sub_batches"]:
            sb.pop("scheduling_seconds")
    assert da == db


def test_generators_stable_across_calls():
    for gen, level in (
        (generate_image_batch, "medium"),
        (generate_sat_batch, "low"),
    ):
        a = gen(30, level, 4, seed=9)
        b = gen(30, level, 4, seed=9)
        assert batch_to_dict(a) == batch_to_dict(b)


def test_platform_presets_are_value_objects():
    assert osc_xio(4, 4) == osc_xio(4, 4)
    assert osc_osumed(2, 3) == osc_osumed(2, 3)
    assert osc_xio(4, 4) != osc_xio(4, 2)


def test_seed_changes_scheduler_not_simulation():
    """Different scheduler seeds may give different mappings, but the same
    mapping always simulates to the same makespan."""
    platform = osc_xio(4, 4)
    batch = generate_image_batch(24, "high", 4, seed=5)
    r1 = run_batch(batch, platform, "bipartition", scheduler_kwargs={"seed": 1})
    r2 = run_batch(batch, platform, "bipartition", scheduler_kwargs={"seed": 1})
    assert r1.makespan == pytest.approx(r2.makespan, abs=0)
