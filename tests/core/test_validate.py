"""Tests for sub-batch plan validation."""

import pytest

from repro.batch import Batch, FileInfo, Task
from repro.cluster import ClusterState, PlannedSource, StagingPlan, osc_xio
from repro.core import SubBatchPlan, validate_plan
from repro.core.validate import ValidationReport, Violation


@pytest.fixture
def setup():
    platform = osc_xio(num_compute=2, num_storage=2, disk_space_mb=250.0)
    files = {
        "a": FileInfo("a", 100.0, 0),
        "b": FileInfo("b", 100.0, 1),
        "c": FileInfo("c", 100.0, 0),
    }
    tasks = [
        Task("t0", ("a", "b"), 1.0),
        Task("t1", ("c",), 1.0),
    ]
    return platform, Batch(tasks, files)


class TestMappingChecks:
    def test_valid_plan_passes(self, setup):
        platform, batch = setup
        plan = SubBatchPlan(["t0", "t1"], {"t0": 0, "t1": 1})
        report = validate_plan(plan, batch, platform)
        assert report.ok, str(report)

    def test_invalid_node_flagged(self, setup):
        platform, batch = setup
        plan = SubBatchPlan(["t0"], {"t0": 7})
        report = validate_plan(plan, batch, platform)
        assert any(v.code == "V1" for v in report.violations)

    def test_unknown_task_flagged(self, setup):
        platform, batch = setup
        plan = SubBatchPlan(["ghost"], {"ghost": 0})
        report = validate_plan(plan, batch, platform)
        assert any(v.code == "V1" for v in report.violations)

    def test_unselected_mapping_flagged(self, setup):
        platform, batch = setup
        plan = SubBatchPlan(["t0"], {"t0": 0, "t1": 1})
        report = validate_plan(plan, batch, platform)
        assert any(v.code == "V2" for v in report.violations)


class TestDiskChecks:
    def test_over_capacity_flagged(self, setup):
        platform, batch = setup
        # t0 (200 MB) + t1 (100 MB) on node 0 = 300 > 250 MB.
        plan = SubBatchPlan(["t0", "t1"], {"t0": 0, "t1": 0})
        report = validate_plan(plan, batch, platform)
        assert any(v.code == "V3" for v in report.violations)

    def test_push_counts_toward_disk(self, setup):
        platform, batch = setup
        staging = StagingPlan(pushes=[("c", 0)])
        plan = SubBatchPlan(["t0"], {"t0": 0}, staging=staging)
        report = validate_plan(plan, batch, platform)
        # 200 (t0) + 100 (push) > 250.
        assert any(v.code == "V3" for v in report.violations)

    def test_unlimited_disk_never_flags(self, setup):
        _, batch = setup
        platform = osc_xio(num_compute=2, num_storage=2)
        plan = SubBatchPlan(["t0", "t1"], {"t0": 0, "t1": 0})
        assert validate_plan(plan, batch, platform).ok

    def test_unknown_task_file_flagged_not_dropped(self, setup):
        """A mapped task whose file left the catalog is a V3 violation,
        not a silent under-count of the disk-capacity sum."""
        platform, batch = setup
        del batch.files["b"]  # catalog drift: t0 still references b
        plan = SubBatchPlan(["t0"], {"t0": 0})
        report = validate_plan(plan, batch, platform)
        violations = [v for v in report.violations if v.code == "V3"]
        assert violations, str(report)
        assert "b" in violations[0].message

    def test_unknown_task_file_still_counts_known_files(self, setup):
        """Known files still count toward capacity alongside the V3 report
        for the unknown one (300 MB known > 250 MB disk)."""
        platform, batch = setup
        from repro.batch import Task

        batch.tasks = batch.tasks + (Task("t2", ("a", "c", "ghost"), 1.0),)
        batch._by_id["t2"] = batch.tasks[-1]
        plan = SubBatchPlan(["t0", "t2"], {"t0": 0, "t2": 0})
        report = validate_plan(plan, batch, platform)
        msgs = [v.message for v in report.violations if v.code == "V3"]
        assert any("ghost" in m for m in msgs)
        assert any("disk" in m for m in msgs)


class TestStagingChecks:
    def test_unknown_file_flagged(self, setup):
        platform, batch = setup
        staging = StagingPlan(sources={("zzz", 0): PlannedSource("remote")})
        plan = SubBatchPlan(["t0"], {"t0": 0}, staging=staging)
        report = validate_plan(plan, batch, platform)
        assert any(v.code == "V4" for v in report.violations)

    def test_self_replica_flagged(self, setup):
        platform, batch = setup
        staging = StagingPlan(
            sources={("a", 0): PlannedSource("replica", source_node=0)}
        )
        plan = SubBatchPlan(["t0"], {"t0": 0}, staging=staging)
        report = validate_plan(plan, batch, platform)
        assert any(v.code == "V4" for v in report.violations)

    def test_unsatisfiable_replica_flagged(self, setup):
        platform, batch = setup
        staging = StagingPlan(
            sources={("a", 0): PlannedSource("replica", source_node=1)}
        )
        plan = SubBatchPlan(["t0"], {"t0": 0}, staging=staging)
        report = validate_plan(plan, batch, platform)
        assert any(v.code == "V5" for v in report.violations)

    def test_replica_from_planned_destination_ok(self, setup):
        platform, batch = setup
        staging = StagingPlan(
            sources={
                ("a", 1): PlannedSource("remote"),
                ("a", 0): PlannedSource("replica", source_node=1),
            }
        )
        plan = SubBatchPlan(["t0"], {"t0": 0}, staging=staging)
        report = validate_plan(plan, batch, platform)
        assert not any(v.code == "V5" for v in report.violations)

    def test_replica_from_current_holder_ok(self, setup):
        platform, batch = setup
        state = ClusterState.initial(platform, batch)
        state.place(1, "a")
        staging = StagingPlan(
            sources={("a", 0): PlannedSource("replica", source_node=1)}
        )
        plan = SubBatchPlan(["t0"], {"t0": 0}, staging=staging)
        report = validate_plan(plan, batch, platform, state)
        assert not any(v.code == "V5" for v in report.violations)

    def test_circular_replication_flagged(self, setup):
        """A sources B and B sources A while neither holds the file: the
        chain never terminates in a real copy and must be V5-flagged."""
        platform, batch = setup
        staging = StagingPlan(
            sources={
                ("a", 0): PlannedSource("replica", source_node=1),
                ("a", 1): PlannedSource("replica", source_node=0),
            }
        )
        plan = SubBatchPlan(["t0"], {"t0": 0}, staging=staging)
        report = validate_plan(plan, batch, platform)
        assert sum(v.code == "V5" for v in report.violations) == 2, str(report)

    def test_cycle_broken_by_current_holder_ok(self, setup):
        """The same cycle is realisable once one endpoint holds the file."""
        platform, batch = setup
        state = ClusterState.initial(platform, batch)
        state.place(1, "a")
        staging = StagingPlan(
            sources={
                ("a", 0): PlannedSource("replica", source_node=1),
                ("a", 1): PlannedSource("replica", source_node=0),
            }
        )
        plan = SubBatchPlan(["t0"], {"t0": 0}, staging=staging)
        report = validate_plan(plan, batch, platform, state)
        assert not any(v.code == "V5" for v in report.violations), str(report)

    def test_chain_terminating_in_push_ok(self, setup):
        """Replication chains may terminate in a planned push."""
        platform, batch = setup
        staging = StagingPlan(
            sources={("a", 0): PlannedSource("replica", source_node=1)},
            pushes=[("a", 1)],
        )
        plan = SubBatchPlan(["t0"], {"t0": 0}, staging=staging)
        report = validate_plan(plan, batch, platform)
        assert not any(v.code == "V5" for v in report.violations), str(report)

    def test_long_chain_to_remote_ok_but_detached_cycle_flagged(self, setup):
        """0<-1<-remote is fine; a separate 2-cycle would be flagged (here
        the platform only has two nodes, so chain depth is the point)."""
        platform, batch = setup
        staging = StagingPlan(
            sources={
                ("a", 1): PlannedSource("remote"),
                ("a", 0): PlannedSource("replica", source_node=1),
            }
        )
        plan = SubBatchPlan(["t0"], {"t0": 0}, staging=staging)
        report = validate_plan(plan, batch, platform)
        assert not any(v.code == "V5" for v in report.violations), str(report)

    def test_bad_push_flagged(self, setup):
        platform, batch = setup
        staging = StagingPlan(pushes=[("nope", 0), ("a", 99)])
        plan = SubBatchPlan(["t0"], {"t0": 1}, staging=staging)
        report = validate_plan(plan, batch, platform)
        codes = {v.code for v in report.violations}
        assert "V7" in codes


class TestReportApi:
    def test_raise_if_invalid(self):
        r = ValidationReport()
        r.add("V1", "boom")
        with pytest.raises(ValueError, match="V1"):
            r.raise_if_invalid()

    def test_ok_report_does_not_raise(self):
        ValidationReport().raise_if_invalid()

    def test_str_rendering(self):
        r = ValidationReport([Violation("V3", "too big")])
        assert "V3" in str(r)
        assert str(ValidationReport()) == "OK"


class TestSchedulerOutputsAreValid:
    """The real schedulers' plans must pass validation (integration)."""

    @pytest.mark.parametrize("scheme", ["minmin", "jdp", "bipartition", "maxmin", "sufferage"])
    def test_heuristic_plans_valid(self, scheme):
        from repro.core import make_scheduler
        from repro.workloads import generate_synthetic_batch

        platform = osc_xio(num_compute=3, num_storage=2)
        batch = generate_synthetic_batch(
            15, 20, 3, 2, hot_probability=0.5, seed=4
        )
        scheduler = make_scheduler(scheme)
        state = ClusterState.initial(platform, batch)
        plan = scheduler.next_subbatch(
            batch, [t.task_id for t in batch.tasks], platform, state
        )
        report = validate_plan(plan, batch, platform, state)
        assert report.ok, str(report)

    def test_ip_plan_valid(self):
        from repro.core import IPScheduler
        from repro.workloads import generate_synthetic_batch

        platform = osc_xio(num_compute=2, num_storage=2)
        batch = generate_synthetic_batch(
            6, 8, 2, 2, hot_probability=0.6, seed=2
        )
        scheduler = IPScheduler(time_limit=20.0)
        state = ClusterState.initial(platform, batch)
        plan = scheduler.next_subbatch(
            batch, [t.task_id for t in batch.tasks], platform, state
        )
        report = validate_plan(plan, batch, platform, state)
        assert report.ok, str(report)
