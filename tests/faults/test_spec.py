"""Tests for the declarative fault-spec layer (repro.faults.spec)."""

import json

import pytest

from repro.faults import (
    DiskLoss,
    FaultSpec,
    LinkSlowdown,
    NodeCrash,
    resolve_spec,
)


class TestValidation:
    def test_default_is_null(self):
        assert FaultSpec().is_null

    def test_rate_out_of_range(self):
        with pytest.raises(ValueError, match="transfer_failure_rate"):
            FaultSpec(transfer_failure_rate=1.5)
        with pytest.raises(ValueError, match="transfer_failure_rate"):
            FaultSpec(transfer_failure_rate=-0.1)

    def test_duplicate_crash_rejected(self):
        with pytest.raises(ValueError, match="duplicate crash"):
            FaultSpec(node_crashes=(NodeCrash(1, 5.0), NodeCrash(1, 9.0)))

    def test_bad_crash_fields(self):
        with pytest.raises(ValueError):
            NodeCrash(-1, 5.0)
        with pytest.raises(ValueError):
            NodeCrash(0, -1.0)

    def test_bad_slowdown(self):
        with pytest.raises(ValueError, match="end must be after"):
            LinkSlowdown(5.0, 5.0, 2.0)
        with pytest.raises(ValueError, match="factor"):
            LinkSlowdown(0.0, 5.0, 0.5)
        with pytest.raises(ValueError, match="scope"):
            LinkSlowdown(0.0, 5.0, 2.0, scope="uplink")

    def test_bad_disk_loss(self):
        with pytest.raises(ValueError, match="lost_mb"):
            DiskLoss(0, 1.0, 0.0)

    def test_bad_backoff(self):
        with pytest.raises(ValueError, match="max_transfer_attempts"):
            FaultSpec(max_transfer_attempts=0)
        with pytest.raises(ValueError, match="backoff_factor"):
            FaultSpec(backoff_factor=0.5)

    def test_lists_normalised_to_tuples(self):
        spec = FaultSpec(node_crashes=[NodeCrash(0, 1.0)])  # type: ignore[arg-type]
        assert isinstance(spec.node_crashes, tuple)


class TestSerialisation:
    def full_spec(self) -> FaultSpec:
        return FaultSpec(
            node_crashes=(NodeCrash(1, 5.0),),
            transfer_failure_rate=0.25,
            max_transfer_attempts=3,
            link_slowdowns=(LinkSlowdown(2.0, 8.0, 2.0, scope="remote"),),
            disk_losses=(DiskLoss(0, 1.0, 500.0),),
            seed=7,
        )

    def test_round_trip(self):
        spec = self.full_spec()
        assert FaultSpec.from_dict(spec.to_dict()) == spec

    def test_unknown_key_rejected(self):
        with pytest.raises(ValueError, match="unknown fault-spec key"):
            FaultSpec.from_dict({"transfer_failure_rate": 0.1, "typo": 1})

    def test_from_json_file(self, tmp_path):
        spec = self.full_spec()
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(spec.to_dict()))
        assert FaultSpec.from_json_file(path) == spec

    def test_from_json_file_rejects_non_object(self, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text("[1, 2]")
        with pytest.raises(ValueError, match="JSON object"):
            FaultSpec.from_json_file(path)


class TestResolveSpec:
    def test_none_resolves_to_none(self):
        assert resolve_spec(None) is None

    def test_null_spec_resolves_to_none(self):
        # The null model must take the exact fault-free code paths, so a
        # spec that injects nothing collapses to "no fault model at all".
        assert resolve_spec(FaultSpec()) is None
        assert resolve_spec({}) is None
        assert resolve_spec({"transfer_failure_rate": 0.0}) is None

    def test_active_spec_passes_through(self):
        spec = FaultSpec(transfer_failure_rate=0.1)
        assert resolve_spec(spec) is spec
        resolved = resolve_spec({"transfer_failure_rate": 0.1})
        assert resolved == spec
