"""Tests for the deterministic fault model (repro.faults.model)."""

import math

from repro.faults import DiskLoss, FaultModel, FaultSpec, LinkSlowdown, NodeCrash


def model(**kwargs) -> FaultModel:
    return FaultModel(FaultSpec(**kwargs))


class TestTransferFailures:
    def test_pure_function_of_arguments(self):
        m = model(transfer_failure_rate=0.5, seed=1)
        draws = [m.transfer_fails("f", 0, 0, 0) for _ in range(10)]
        assert len(set(draws)) == 1  # same key -> same outcome, always

    def test_same_seed_same_outcomes_across_instances(self):
        a = model(transfer_failure_rate=0.5, seed=9)
        b = model(transfer_failure_rate=0.5, seed=9)
        keys = [("f%d" % i, i % 3, i % 2, i % 4) for i in range(50)]
        assert [a.transfer_fails(*k) for k in keys] == [
            b.transfer_fails(*k) for k in keys
        ]

    def test_seed_changes_outcomes(self):
        keys = [("f%d" % i, 0, 0, 0) for i in range(200)]
        a = [model(transfer_failure_rate=0.5, seed=0).transfer_fails(*k) for k in keys]
        b = [model(transfer_failure_rate=0.5, seed=1).transfer_fails(*k) for k in keys]
        assert a != b

    def test_rate_zero_never_fails(self):
        m = model(transfer_failure_rate=0.0)
        assert not any(
            m.transfer_fails("f%d" % i, 0, 0, 0) for i in range(100)
        )

    def test_final_attempt_never_fails(self):
        # No livelock: attempt max_transfer_attempts-1 always succeeds,
        # even at rate 1.0.
        m = model(transfer_failure_rate=1.0, max_transfer_attempts=3)
        for i in range(20):
            assert m.transfer_fails("f%d" % i, 0, 0, 0)
            assert m.transfer_fails("f%d" % i, 0, 0, 1)
            assert not m.transfer_fails("f%d" % i, 0, 0, 2)

    def test_empirical_frequency_tracks_rate(self):
        m = model(transfer_failure_rate=0.3, seed=5)
        n = 4000
        fails = sum(m.transfer_fails("f%d" % i, i % 4, 0, 0) for i in range(n))
        assert abs(fails / n - 0.3) < 0.03

    def test_fresh_instance_redraws(self):
        # Advancing the staging-instance counter must give an independent
        # draw (otherwise a re-staged file repeats its fate forever).
        m = model(transfer_failure_rate=0.5, seed=2)
        outcomes = {
            m.transfer_fails("f", 0, inst, 0) for inst in range(64)
        }
        assert outcomes == {True, False}


class TestBackoff:
    def test_exponential_then_capped(self):
        m = model(
            transfer_failure_rate=0.5,
            backoff_base_s=2.0,
            backoff_factor=2.0,
            backoff_cap_s=10.0,
        )
        assert m.backoff(0) == 2.0
        assert m.backoff(1) == 4.0
        assert m.backoff(2) == 8.0
        assert m.backoff(3) == 10.0  # capped, not 16
        assert m.backoff(10) == 10.0


class TestCrashes:
    def test_crash_time_defaults_to_inf(self):
        m = model()
        assert m.crash_time(0) == math.inf
        assert not m.crashed_by(0, 1e12)

    def test_crash_time_and_crashed_by(self):
        m = model(node_crashes=(NodeCrash(1, 5.0),))
        assert m.crash_time(1) == 5.0
        assert m.crash_time(0) == math.inf
        assert not m.crashed_by(1, 4.99)
        assert m.crashed_by(1, 5.0)


class TestSlowdowns:
    def test_window_and_scope(self):
        m = model(
            link_slowdowns=(
                LinkSlowdown(2.0, 8.0, 2.0, scope="remote"),
            )
        )
        assert m.slowdown_factor("remote", 5.0) == 2.0
        assert m.slowdown_factor("replica", 5.0) == 1.0  # wrong scope
        assert m.slowdown_factor("remote", 1.0) == 1.0  # before window
        assert m.slowdown_factor("remote", 8.0) == 1.0  # end-exclusive

    def test_overlapping_windows_compound(self):
        m = model(
            link_slowdowns=(
                LinkSlowdown(0.0, 10.0, 2.0),
                LinkSlowdown(5.0, 15.0, 3.0),
            )
        )
        assert m.slowdown_factor("remote", 2.0) == 2.0
        assert m.slowdown_factor("remote", 7.0) == 6.0
        assert m.slowdown_factor("remote", 12.0) == 3.0


class TestDiskLosses:
    def test_losses_through_time(self):
        m = model(
            disk_losses=(
                DiskLoss(0, 1.0, 100.0),
                DiskLoss(1, 5.0, 200.0),
            )
        )
        assert m.disk_losses_through(0.5) == []
        assert m.disk_losses_through(1.0) == [(0, 100.0)]
        assert m.disk_losses_through(10.0) == [(0, 100.0), (1, 200.0)]
