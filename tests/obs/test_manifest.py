"""Run-manifest assembly, schema validation, golden file, NDJSON, traces."""

import copy
import json
from pathlib import Path

import pytest

from repro.cluster.platform import osc_xio
from repro.core.driver import run_batch
from repro.obs import (
    MANIFEST_KIND,
    MANIFEST_VERSION,
    build_manifest,
    load_schema,
    manifest_to_ndjson,
    merge_snapshots,
    merged_chrome_trace,
    validate_manifest,
    write_manifest,
    write_ndjson,
)
from repro.obs.core import telemetry
from repro.obs.schema import validate
from repro.workloads import generate_image_batch

GOLDEN_PATH = Path(__file__).with_name("golden_manifest.json")


@pytest.fixture(autouse=True)
def clean_registry():
    telemetry.reset()
    telemetry.disable()
    yield
    telemetry.reset()
    telemetry.disable()


def golden_result():
    """The fixed run behind the checked-in golden manifest (deterministic)."""
    batch = generate_image_batch(16, "high", 4, seed=0)
    platform = osc_xio(num_compute=4, num_storage=4, disk_space_mb=4000.0)
    return run_batch(
        batch, platform, "minmin", candidate_limit=25, telemetry=True
    )


def normalize(manifest: dict) -> dict:
    """Strip everything wall-clock- or environment-dependent.

    Span *counts* are deterministic (they mirror simulated control flow) but
    their timings are not; versions and the scheduling wall time vary by
    machine. Everything else in the manifest derives from the simulation and
    must be bit-stable across runs.
    """
    doc = copy.deepcopy(manifest)
    doc["versions"] = {k: "normalized" for k in doc["versions"]}
    doc["config_digest"] = "0" * 64
    doc["result"]["scheduling_seconds"] = 0.0
    tel = doc.get("telemetry")
    if tel:
        tel["spans"] = {
            path: {
                "count": span["count"],
                "total_s": 0.0,
                "mean_s": 0.0,
                "min_s": 0.0,
                "max_s": 0.0,
            }
            for path, span in tel["spans"].items()
        }
    return doc


class TestBuildManifest:
    def test_validates_against_checked_in_schema(self):
        manifest = build_manifest(golden_result(), config_digest="0" * 64)
        assert validate_manifest(manifest) == []
        assert manifest["kind"] == MANIFEST_KIND
        assert manifest["manifest_version"] == MANIFEST_VERSION

    def test_validates_without_telemetry_attachments(self):
        # run_batch(telemetry=False) leaves metrics/telemetry/decisions None;
        # the schema declares them nullable.
        batch = generate_image_batch(6, "high", 4, seed=0)
        result = run_batch(batch, osc_xio(), "jdp")
        manifest = build_manifest(result)
        assert validate_manifest(manifest) == []
        assert manifest["metrics"] is None
        assert manifest["telemetry"] is None

    def test_schema_rejects_mutations(self):
        manifest = build_manifest(golden_result(), config_digest="0" * 64)
        missing = dict(manifest)
        del missing["stats"]
        assert validate_manifest(missing)
        extra = dict(manifest)
        extra["surprise"] = 1
        assert validate_manifest(extra)
        wrong = copy.deepcopy(manifest)
        wrong["result"]["makespan_s"] = "fast"
        assert validate_manifest(wrong)

    def test_matches_golden_file(self):
        got = normalize(build_manifest(golden_result(), config_digest="0" * 64))
        want = json.loads(GOLDEN_PATH.read_text())
        assert got == want

    def test_golden_file_itself_validates(self):
        golden = json.loads(GOLDEN_PATH.read_text())
        assert validate(golden, load_schema()) == []

    def test_write_manifest_round_trips(self, tmp_path):
        manifest = build_manifest(golden_result(), config_digest="0" * 64)
        path = write_manifest(manifest, tmp_path / "m.json")
        assert json.loads(path.read_text()) == manifest


class TestNdjson:
    def test_lines_parse_and_header_leads(self, tmp_path):
        manifest = build_manifest(golden_result(), config_digest="0" * 64)
        path = write_ndjson(manifest, tmp_path / "m.ndjson")
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert lines[0]["type"] == "header"
        assert lines[0]["scheme"] == "minmin"
        kinds = {line["type"] for line in lines}
        assert {"header", "counter", "span", "metric", "decisions"} <= kinds

    def test_every_counter_becomes_a_line(self):
        manifest = build_manifest(golden_result(), config_digest="0" * 64)
        lines = [json.loads(s) for s in manifest_to_ndjson(manifest)]
        names = {ln["name"] for ln in lines if ln["type"] == "counter"}
        assert names == set(manifest["telemetry"]["counters"])


class TestMergeSnapshots:
    def test_counters_sum_spans_merge(self):
        a = {
            "counters": {"n": 2},
            "gauges": {"g": 1.0},
            "spans": {"s": {"count": 1, "total_s": 1.0, "mean_s": 1.0,
                            "min_s": 1.0, "max_s": 1.0}},
        }
        b = {
            "counters": {"n": 3, "m": 1},
            "gauges": {"g": 2.0},
            "spans": {"s": {"count": 3, "total_s": 3.0, "mean_s": 1.0,
                            "min_s": 0.5, "max_s": 2.0}},
        }
        merged = merge_snapshots([a, b])
        assert merged["counters"] == {"n": 5.0, "m": 1.0}
        assert merged["gauges"]["g"] == 2.0  # last wins
        span = merged["spans"]["s"]
        assert span["count"] == 4 and span["total_s"] == 4.0
        assert span["min_s"] == 0.5 and span["max_s"] == 2.0
        assert span["mean_s"] == pytest.approx(1.0)

    def test_empty_is_empty(self):
        assert merge_snapshots([]) == {"counters": {}, "gauges": {}, "spans": {}}


class TestMergedChromeTrace:
    def test_both_processes_present(self):
        telemetry.reset()
        telemetry.enable(keep_events=True)
        try:
            batch = generate_image_batch(8, "high", 4, seed=0)
            result = run_batch(batch, osc_xio(), "minmin", telemetry=True)
            doc = json.loads(merged_chrome_trace(result.runtime, telemetry))
        finally:
            telemetry.keep_events = False
        events = doc["traceEvents"]
        pids = {ev["pid"] for ev in events}
        assert pids == {0, 1}
        tele_spans = [ev for ev in events if ev.get("cat") == "telemetry"]
        assert tele_spans, "wall-clock span events missing from merged trace"
        names = {ev["name"] for ev in events if ev.get("ph") == "M"}
        assert "process_name" in names and "thread_name" in names
