"""Self-contained HTML run report (`repro.obs.report` + the report CLI)."""

import json

import pytest

from repro.cli import main
from repro.cluster.platform import osc_xio
from repro.core.driver import run_batch
from repro.faults import FaultSpec
from repro.obs import build_manifest, load_trajectory, render_report, write_report
from repro.obs.core import telemetry
from repro.workloads.image import generate_image_batch


@pytest.fixture(autouse=True)
def clean_registry():
    telemetry.reset()
    telemetry.disable()
    yield
    telemetry.reset()
    telemetry.disable()


def run_manifest(faults=None):
    batch = generate_image_batch(16, "high", 4, seed=0)
    platform = osc_xio(num_compute=4, num_storage=4, disk_space_mb=4000.0)
    result = run_batch(
        batch, platform, "minmin", candidate_limit=25,
        telemetry=True, timeseries=True, faults=faults,
    )
    return build_manifest(result, config_digest="0" * 64)


def assert_self_contained(text: str):
    """The acceptance bar: one offline file, no external anything."""
    assert text.lower().startswith("<!doctype html>")
    assert "<script" not in text.lower()
    assert "<link" not in text.lower()
    assert "src=" not in text.lower()  # no <img>/<iframe> fetches
    assert "@import" not in text.lower()


class TestRenderReport:
    def test_basic_report(self):
        text = render_report(run_manifest())
        assert_self_contained(text)
        assert "<svg" in text  # sparklines rendered inline
        assert "minmin" in text
        assert "disk_used_mb/compute0" in text

    def test_report_without_timeseries_still_renders(self):
        manifest = run_manifest()
        manifest.pop("timeseries")
        text = render_report(manifest)
        assert_self_contained(text)

    def test_baseline_adds_diff_section(self):
        a = run_manifest()
        slow = FaultSpec.from_dict(
            {"link_slowdowns": [{"start": 0.0, "end": 1e6, "factor": 6.0,
                                 "scope": "all"}]}
        )
        b = run_manifest(faults=slow)
        text = render_report(b, baseline=a)
        assert_self_contained(text)
        assert "dominant" in text
        assert "stage" in text

    def test_fault_events_marked(self):
        slow = FaultSpec.from_dict(
            {"link_slowdowns": [{"start": 0.0, "end": 1e6, "factor": 6.0,
                                 "scope": "all"}]}
        )
        text = render_report(run_manifest(faults=slow))
        assert "slowdown-start" in text

    def test_trajectory_section(self):
        points = [
            {"kind": "repro-bench-point", "sha": "abc12345",
             "cell": "mapping/minmin/n1000c32", "speedup": 3.1,
             "decision_checked": True},
            {"kind": "repro-bench-point", "sha": "def67890",
             "cell": "mapping/minmin/n1000c32", "speedup": 3.3,
             "decision_checked": True},
        ]
        text = render_report(run_manifest(), trajectory=points)
        assert_self_contained(text)
        assert "mapping/minmin/n1000c32" in text


class TestTrajectoryIO:
    def test_load_trajectory(self, tmp_path):
        path = tmp_path / "traj.jsonl"
        lines = [
            json.dumps({"kind": "repro-bench-point", "sha": "aaaa", "cell": "x",
                        "speedup": 2.0, "decision_checked": True}),
            json.dumps({"kind": "other", "noise": 1}),
            "not json at all",
        ]
        path.write_text("\n".join(lines) + "\n")
        points = load_trajectory(path)
        assert len(points) == 1
        assert points[0]["cell"] == "x"

    def test_missing_file_is_empty(self, tmp_path):
        assert load_trajectory(tmp_path / "nope.jsonl") == []

    def test_append_then_load_round_trip(self, tmp_path):
        from repro.experiments.bench import BenchCellResult, append_trajectory

        cells = [
            BenchCellResult(
                cell="mapping/minmin/n600c32", kind="mapping", scheme="minmin",
                num_tasks=600, num_compute=32, repeats=1,
                reference_s=0.2, optimized_s=0.1,
            ),
            BenchCellResult(
                cell="e2e/minmin/n120c8", kind="end_to_end", scheme="minmin",
                num_tasks=120, num_compute=8, repeats=1,
                reference_s=0.5, optimized_s=0.5,
            ),
        ]
        path = tmp_path / "traj.jsonl"
        append_trajectory(cells, path, sha="cafe1234")
        append_trajectory(cells, path, sha="beef5678")
        points = load_trajectory(path)
        assert len(points) == 4
        assert points[0]["speedup"] == 2.0
        assert points[0]["sha"] == "cafe1234"
        assert all(p["decision_checked"] for p in points)


class TestWriteReport:
    def test_write_report(self, tmp_path):
        out = tmp_path / "report.html"
        path = write_report(run_manifest(), out)
        assert path == out
        assert_self_contained(out.read_text())

    def test_cli_report(self, tmp_path):
        a = tmp_path / "a.json"
        a.write_text(json.dumps(run_manifest()))
        out = tmp_path / "report.html"
        assert main(["report", str(a), "--out", str(out)]) == 0
        assert_self_contained(out.read_text())

    def test_cli_report_with_baseline(self, tmp_path):
        a = tmp_path / "a.json"
        a.write_text(json.dumps(run_manifest()))
        out = tmp_path / "report.html"
        assert main(["report", str(a), str(a), "--out", str(out)]) == 0
        text = out.read_text()
        assert_self_contained(text)
        assert "dominant" in text
