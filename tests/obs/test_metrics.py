"""Derived run metrics: utilization bounds, conservation, audit cross-check."""

import pytest

from repro.cluster.platform import osc_xio
from repro.core.driver import run_batch
from repro.obs.core import telemetry
from repro.obs.metrics import IDLE_GAP_BUCKETS, compute_metrics
from repro.workloads import generate_image_batch


@pytest.fixture(autouse=True)
def clean_registry():
    telemetry.reset()
    telemetry.disable()
    yield
    telemetry.reset()
    telemetry.disable()


def _fig5b_like(num_tasks: int = 24, scheme: str = "bipartition"):
    """A reduced disk-pressure cell in Fig. 5(b)'s configuration."""
    batch = generate_image_batch(num_tasks, "high", 4, seed=0)
    platform = osc_xio(num_compute=4, num_storage=4, disk_space_mb=4000.0)
    return run_batch(
        batch, platform, scheme, candidate_limit=25, telemetry=True, audit=True
    )


class TestRunMetrics:
    def test_utilizations_and_fractions_bounded(self):
        result = _fig5b_like()
        m = result.metrics
        assert m is not None
        assert m.makespan_s == pytest.approx(result.makespan)
        for name, u in m.node_exec_utilization.items():
            assert 0.0 <= u <= 1.0, name
        assert 0.0 <= m.mean_exec_utilization <= 1.0
        for name, f in m.port_busy_fraction.items():
            assert 0.0 <= f <= 1.0 + 1e-9, name
        assert 0.0 <= m.disk_hit_ratio <= 1.0
        assert m.file_reuse_factor >= 1.0
        assert 0.0 <= m.replicated_fraction <= 1.0

    def test_histogram_covers_all_buckets(self):
        m = _fig5b_like().metrics
        assert len(m.idle_gap_histogram) == len(IDLE_GAP_BUCKETS) + 1
        assert all(v >= 0 for v in m.idle_gap_histogram.values())

    def test_byte_conservation(self):
        # Every staged MB is still resident or was evicted (Section 4.2/4.3
        # bookkeeping): the residual must vanish even under disk pressure.
        m = _fig5b_like(num_tasks=32, scheme="minmin").metrics
        assert m.conservation_residual_mb == pytest.approx(0.0, abs=1e-6)

    def test_stats_mirror_transfer_stats(self):
        result = _fig5b_like()
        m, s = result.metrics, result.stats
        assert (m.remote_transfers, m.replications, m.evictions) == (
            s.remote_transfers, s.replications, s.evictions
        )
        assert m.cache_hits == s.cache_hits
        assert m.cache_hit_volume_mb == pytest.approx(s.cache_hit_volume_mb)

    def test_metrics_cross_check_audit_trail(self):
        # The derived metrics and the E1-E5 audit trail are independent
        # accountings of the same execution; their byte totals must agree.
        result = _fig5b_like(num_tasks=32, scheme="minmin")
        trail = result.runtime.trail
        assert trail is not None
        m = result.metrics
        remote_mb = sum(t.size_mb for t in trail.transfers if t.kind == "remote")
        replica_mb = sum(t.size_mb for t in trail.transfers if t.kind == "replica")
        evicted_mb = sum(e.size_mb for e in trail.evictions)
        assert m.remote_volume_mb == pytest.approx(remote_mb)
        assert m.replication_volume_mb == pytest.approx(replica_mb)
        # Between-sub-batch evictions also land on the trail (the driver
        # passes it to _pre_evict), so the totals match exactly.
        assert m.evicted_volume_mb == pytest.approx(evicted_mb)

    def test_compute_metrics_without_decisions(self):
        result = _fig5b_like()
        records = [r for sb in result.sub_batches for r in sb.execution.records]
        m = compute_metrics(result.runtime, records, None)
        assert m.estimation is None
        assert m.makespan_s == pytest.approx(result.makespan)


class TestCacheHitAccounting:
    def test_cache_hits_recorded_for_resident_inputs(self):
        # High overlap + persistent state means later tasks find inputs
        # already on their node: those must surface as cache hits.
        result = _fig5b_like()
        assert result.stats.cache_hits > 0
        assert result.stats.cache_hit_volume_mb > 0.0

    def test_no_hits_means_no_volume(self):
        batch = generate_image_batch(4, "zero", 4, seed=3)
        result = run_batch(batch, osc_xio(num_compute=4), "jdp", telemetry=True)
        if result.stats.cache_hits == 0:
            assert result.stats.cache_hit_volume_mb == 0.0
