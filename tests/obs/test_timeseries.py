"""Simulated-time series probes: determinism, schema, merge, null object.

The probe layer (:mod:`repro.obs.timeseries`) samples the cluster at commit
points in *simulated* time only, so its output is a pure function of the
run's decisions — exact golden comparison, not tolerance bands. These tests
pin that: a checked-in golden block, byte-identical aggregation across
worker counts, schema rejection of mutated blocks, and the allocation-free
disabled path (``timeseries=None``/``False`` must never construct a probe).
"""

import json
from pathlib import Path

import pytest

from repro.cluster.platform import osc_xio
from repro.core.driver import run_batch
from repro.experiments import ExperimentConfig
from repro.obs import validate_manifest
from repro.obs.core import telemetry
from repro.obs.export import build_manifest
from repro.obs.timeseries import (
    ProbeConfig,
    TimeSeriesProbe,
    merge_timeseries,
    resolve_timeseries,
)
from repro.parallel import run_cells
from repro.workloads.image import generate_image_batch

GOLDEN_PATH = Path(__file__).with_name("golden_timeseries.json")


@pytest.fixture(autouse=True)
def clean_registry():
    telemetry.reset()
    telemetry.disable()
    yield
    telemetry.reset()
    telemetry.disable()


def golden_run(**overrides):
    batch = generate_image_batch(16, "high", 4, seed=0)
    platform = osc_xio(num_compute=4, num_storage=4, disk_space_mb=4000.0)
    kwargs = dict(candidate_limit=25, timeseries=True)
    kwargs.update(overrides)
    return run_batch(batch, platform, "minmin", **kwargs)


class TestResolve:
    def test_null_forms_disable(self):
        assert resolve_timeseries(None) is None
        assert resolve_timeseries(False) is None
        assert resolve_timeseries({}) is None

    def test_true_and_mapping_enable(self):
        assert resolve_timeseries(True) == ProbeConfig()
        cfg = resolve_timeseries({"budget": 64})
        assert cfg == ProbeConfig(budget=64)
        assert resolve_timeseries(cfg) is cfg

    def test_bad_values_raise(self):
        with pytest.raises(TypeError):
            resolve_timeseries(512)
        with pytest.raises(ValueError):
            ProbeConfig(budget=1)


class TestDisabledPath:
    """``timeseries`` off must be allocation-free, not merely empty."""

    @pytest.mark.parametrize("value", [None, False, {}])
    def test_no_probe_constructed(self, monkeypatch, value):
        def boom(self, *a, **k):
            raise AssertionError("TimeSeriesProbe constructed while disabled")

        monkeypatch.setattr(TimeSeriesProbe, "__init__", boom)
        result = golden_run(timeseries=value)
        assert result.timeseries is None

    def test_default_is_off(self, monkeypatch):
        monkeypatch.setattr(
            TimeSeriesProbe,
            "__init__",
            lambda *a, **k: (_ for _ in ()).throw(AssertionError("probe")),
        )
        batch = generate_image_batch(6, "high", 4, seed=0)
        result = run_batch(batch, osc_xio(), "minmin")
        assert result.timeseries is None

    def test_disabled_makespan_matches_enabled(self):
        off = golden_run(timeseries=False)
        on = golden_run(timeseries=True)
        assert off.makespan == on.makespan
        assert off.stats == on.stats


class TestGolden:
    def test_matches_golden_file(self):
        got = json.loads(json.dumps(golden_run().timeseries, sort_keys=True))
        want = json.loads(GOLDEN_PATH.read_text())
        assert got == want

    def test_deterministic_across_runs(self):
        a = golden_run().timeseries
        b = golden_run().timeseries
        assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)

    def test_expected_shape(self):
        ts = golden_run().timeseries
        assert ts["version"] == 1
        assert ts["samples"] == 16  # one sample per committed task
        assert "ready_tasks" in ts["series"]
        assert "remote_mb" in ts["series"]
        for node in range(4):
            assert f"disk_used_mb/compute{node}" in ts["series"]
            assert f"port_busy_s/compute{node}" in ts["series"]


class TestSchema:
    def manifest(self):
        return build_manifest(golden_run(), config_digest="0" * 64)

    def test_block_validates_in_manifest(self):
        assert validate_manifest(self.manifest()) == []

    def test_probe_free_manifest_has_no_block(self):
        manifest = build_manifest(golden_run(timeseries=False))
        assert "timeseries" not in manifest
        assert validate_manifest(manifest) == []

    def test_rejects_mutations(self):
        base = self.manifest()

        missing = json.loads(json.dumps(base))
        del missing["timeseries"]["budget"]
        assert validate_manifest(missing)

        extra = json.loads(json.dumps(base))
        extra["timeseries"]["surprise"] = 1
        assert validate_manifest(extra)

        corrupt = json.loads(json.dumps(base))
        name = next(iter(corrupt["timeseries"]["series"]))
        corrupt["timeseries"]["series"][name]["points"] = [["late", 1.0]]
        assert validate_manifest(corrupt)

        bad_event = json.loads(json.dumps(base))
        bad_event["timeseries"]["events"] = [{"kind": "crash"}]  # no t
        assert validate_manifest(bad_event)


class TestDownsampling:
    def test_merge_adjacent_keeps_later_points(self):
        probe = TimeSeriesProbe(ProbeConfig(budget=4), num_compute=0, state=None)
        for i in range(8):
            probe._point("x", "u", float(i), float(i))
        series = probe.to_dict()["series"]["x"]
        assert series["points"] == [[1.0, 1.0], [3.0, 3.0], [5.0, 5.0], [7.0, 7.0]]
        assert probe.to_dict()["compactions"] == 1

    def test_bounded_at_twice_budget(self):
        probe = TimeSeriesProbe(ProbeConfig(budget=8), num_compute=0, state=None)
        for i in range(10_000):
            probe._point("x", "u", float(i), float(i))
        points = probe.to_dict()["series"]["x"]["points"]
        assert len(points) <= 2 * 8 - 1
        assert points[-1] == [9999.0, 9999.0]


class TestWorkerMerge:
    """workers=1 and workers=N must aggregate byte-identical blocks."""

    def configs(self):
        base = dict(
            experiment="test",
            workload="image",
            overlap="high",
            num_tasks=8,
            storage="xio",
            seed=0,
            timeseries=True,
        )
        return [
            ExperimentConfig(scheme=s, **base)
            for s in ("minmin", "jdp", "bipartition")
        ]

    def aggregate(self, workers):
        from repro.parallel import aggregate_cells

        cells = run_cells(self.configs(), workers=workers, cache=False)
        return aggregate_cells(cells)

    def test_identical_across_worker_counts(self):
        serial = self.aggregate(1)
        parallel = self.aggregate(2)
        assert serial["timeseries"] is not None
        assert json.dumps(serial["timeseries"], sort_keys=True) == json.dumps(
            parallel["timeseries"], sort_keys=True
        )

    def test_merge_is_key_sorted_union(self):
        merged = merge_timeseries({"b": {"x": 2}, "a": {"x": 1}})
        assert list(merged) == ["a", "b"]
        assert merged["a"] == {"x": 1}

    def test_timeseries_not_in_cache_key(self):
        from repro.parallel.cache import config_key

        cfg_on = self.configs()[0]
        import dataclasses

        cfg_off = dataclasses.replace(cfg_on, timeseries=False)
        assert config_key(cfg_on) == config_key(cfg_off)
