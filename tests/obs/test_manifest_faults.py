"""Fault counters in the run manifest: present only for faulty runs.

The golden-manifest test (test_manifest.py) pins the fault-free shape; here
the other side of the contract is pinned: a run with an active fault spec
gains a ``faults`` object that validates against the schema, flows through
NDJSON, and never appears on fault-free runs.
"""

import json

import pytest

from repro.cluster.platform import osc_xio
from repro.core.driver import run_batch
from repro.obs import build_manifest, manifest_to_ndjson, validate_manifest
from repro.obs.core import telemetry
from repro.workloads import generate_image_batch

FAULTS = {
    "node_crashes": [{"node": 1, "time": 5.0}],
    "transfer_failure_rate": 0.2,
    "seed": 3,
}


@pytest.fixture(autouse=True)
def clean_registry():
    telemetry.reset()
    telemetry.disable()
    yield
    telemetry.reset()
    telemetry.disable()


def faulty_result(faults=FAULTS):
    batch = generate_image_batch(16, "high", 4, seed=0)
    platform = osc_xio(num_compute=4, num_storage=4, disk_space_mb=4000.0)
    return run_batch(
        batch, platform, "minmin", candidate_limit=25,
        telemetry=True, faults=faults,
    )


class TestFaultsInManifest:
    def test_faulty_run_carries_faults_and_validates(self):
        manifest = build_manifest(faulty_result(), config_digest="0" * 64)
        assert validate_manifest(manifest) == []
        faults = manifest["faults"]
        assert faults["transfer_failures"] > 0
        assert faults["retries"] == faults["transfer_failures"]
        assert faults["tasks_rescheduled"] >= 0
        # Strictly JSON-serialisable (no NaN/inf literals).
        json.dumps(manifest, allow_nan=False)

    def test_fault_free_run_omits_the_key(self):
        manifest = build_manifest(faulty_result(faults=None), config_digest="0" * 64)
        assert "faults" not in manifest
        assert validate_manifest(manifest) == []

    def test_null_spec_omits_the_key(self):
        # A null spec resolves to "no fault model", so the manifest must be
        # byte-identical to a fault-free run's — including the absent key.
        manifest = build_manifest(
            faulty_result(faults={"transfer_failure_rate": 0.0}),
            config_digest="0" * 64,
        )
        assert "faults" not in manifest

    def test_schema_rejects_malformed_faults(self):
        manifest = build_manifest(faulty_result(), config_digest="0" * 64)
        wrong = json.loads(json.dumps(manifest))
        wrong["faults"]["node_crashes"] = -1
        assert validate_manifest(wrong)
        extra = json.loads(json.dumps(manifest))
        extra["faults"]["surprise"] = 1
        assert validate_manifest(extra)

    def test_ndjson_gains_a_faults_line(self):
        manifest = build_manifest(faulty_result(), config_digest="0" * 64)
        lines = [json.loads(s) for s in manifest_to_ndjson(manifest)]
        fault_lines = [ln for ln in lines if ln["type"] == "faults"]
        assert len(fault_lines) == 1
        assert fault_lines[0]["transfer_failures"] == (
            manifest["faults"]["transfer_failures"]
        )

    def test_fault_free_ndjson_has_no_faults_line(self):
        manifest = build_manifest(faulty_result(faults=None), config_digest="0" * 64)
        lines = [json.loads(s) for s in manifest_to_ndjson(manifest)]
        assert not [ln for ln in lines if ln["type"] == "faults"]
