"""Decision-log recording and replay against executed task records."""

import math

import pytest

from repro.cluster.platform import osc_xio
from repro.cluster.stats import TaskRecord
from repro.core.driver import run_batch
from repro.obs.core import telemetry
from repro.obs.decisions import Decision, DecisionLog
from repro.workloads import generate_image_batch


@pytest.fixture(autouse=True)
def clean_registry():
    telemetry.reset()
    telemetry.disable()
    yield
    telemetry.reset()
    telemetry.disable()


def _record(task_id: str, completion: float) -> TaskRecord:
    return TaskRecord(
        task_id=task_id, node=0, transfers_done=0.0, exec_start=0.0,
        completion=completion,
    )


class TestDecisionLog:
    def test_record_and_len(self):
        log = DecisionLog(scheme="minmin")
        log.record("t0", 1, reason="global-min-mct", estimated_completion=2.0)
        assert len(log) == 1
        d = log.decisions[0]
        assert d.scheme == "minmin" and d.node == 1

    def test_replay_matches_and_reports_error(self):
        log = DecisionLog(scheme="x")
        log.record("t0", 0, reason="r", estimated_completion=10.0)
        log.record("t1", 0, reason="r", estimated_completion=5.0)
        log.record("ghost", 0, reason="r", estimated_completion=1.0)
        replay = log.replay([_record("t0", 12.0), _record("t1", 5.0)])
        assert len(replay.matched) == 2
        assert replay.unmatched == ["ghost"]
        assert replay.max_abs_error_s == pytest.approx(2.0)
        assert replay.mean_abs_error_s == pytest.approx(1.0)
        assert replay.bias_s == pytest.approx(1.0)  # realized later than estimated

    def test_summary_shapes(self):
        log = DecisionLog(scheme="x")
        log.record("t0", 0, reason="r", estimated_completion=1.0, evaluated=4, ties=1)
        doc = log.summary([_record("t0", 1.0)])
        assert doc["decisions"] == 1 and doc["evaluated"] == 4 and doc["ties"] == 1
        assert doc["replay"]["matched"] == 1
        assert doc["replay"]["mean_abs_error_s"] == pytest.approx(0.0)

    def test_decision_to_dict_round_trips(self):
        d = Decision("t", 2, "s", "r", 3.0, 8, 0)
        doc = d.to_dict()
        assert doc["task_id"] == "t" and doc["estimated_completion"] == 3.0


class TestSchedulerIntegration:
    def test_no_log_without_telemetry(self):
        batch = generate_image_batch(8, "high", 4, seed=0)
        result = run_batch(batch, osc_xio(), "minmin")
        assert result.decision_log is None

    def test_minmin_logs_one_decision_per_task(self):
        batch = generate_image_batch(10, "high", 4, seed=0)
        result = run_batch(batch, osc_xio(), "minmin", telemetry=True)
        log = result.decision_log
        assert log is not None and len(log) == 10
        assert {d.task_id for d in log.decisions} == {t.task_id for t in batch.tasks}
        assert all(d.reason == "global-min-mct" for d in log.decisions)
        assert all(d.evaluated > 0 for d in log.decisions)

    def test_single_node_estimates_match_execution(self):
        # On one compute node with unlimited disk the MCT model and the
        # Section 6 runtime coincide: no contention, no eviction, the same
        # serial stage+execute accounting. Estimation error is float noise.
        batch = generate_image_batch(12, "high", 4, seed=1)
        platform = osc_xio(num_compute=1, num_storage=4)
        result = run_batch(batch, platform, "minmin", telemetry=True)
        records = [
            r for sb in result.sub_batches for r in sb.execution.records
        ]
        replay = result.decision_log.replay(records)
        assert not replay.unmatched
        assert replay.max_abs_error_s < 1e-6

    def test_multi_node_estimates_stay_finite(self):
        batch = generate_image_batch(12, "high", 4, seed=0)
        result = run_batch(batch, osc_xio(), "sufferage", telemetry=True)
        log = result.decision_log
        assert all(math.isfinite(d.estimated_completion) for d in log.decisions)
        assert all(d.reason == "max-sufferage" for d in log.decisions)
        est = result.metrics.estimation
        assert est is not None and est["replay"]["matched"] == 12
