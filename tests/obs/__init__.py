"""Tests for the repro.obs telemetry/observability layer."""
