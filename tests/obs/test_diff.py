"""Cross-run regression attribution (`repro.obs.diff` + the diff CLI)."""

import json

import pytest

from repro.cli import main
from repro.cluster.platform import osc_xio
from repro.core.driver import run_batch
from repro.faults import FaultSpec
from repro.obs import build_manifest, diff_manifests, format_diff, load_run
from repro.obs.core import telemetry
from repro.obs.diff import DEFAULT_FAIL_OVER
from repro.workloads.image import generate_image_batch


@pytest.fixture(autouse=True)
def clean_registry():
    telemetry.reset()
    telemetry.disable()
    yield
    telemetry.reset()
    telemetry.disable()


def run_manifest(faults=None):
    batch = generate_image_batch(16, "high", 4, seed=0)
    platform = osc_xio(num_compute=4, num_storage=4, disk_space_mb=4000.0)
    result = run_batch(
        batch, platform, "minmin", candidate_limit=25,
        telemetry=True, timeseries=True, faults=faults,
    )
    return build_manifest(result, config_digest="0" * 64)


SLOWDOWN = FaultSpec.from_dict(
    {"link_slowdowns": [{"start": 0.0, "end": 1e6, "factor": 6.0, "scope": "all"}]}
)


class TestDiffManifests:
    def test_identical_runs_within_gate(self):
        m = run_manifest()
        diff = diff_manifests(m, m)
        assert diff.delta_s == 0.0
        assert not diff.exceeds()
        assert diff.metric_rows == []  # zero deltas are dropped

    def test_slowdown_attributed_to_staging(self):
        a = run_manifest()
        b = run_manifest(faults=SLOWDOWN)
        diff = diff_manifests(a, b)
        assert diff.delta_s > 0
        assert diff.exceeds(DEFAULT_FAIL_OVER)
        # A global link slowdown is pure staging time: the top attribution
        # row must be a stage phase, and the dominant line must name it.
        top = diff.rows[0]
        assert top.phase == "stage"
        dominant = diff.dominant()
        assert "stage" in dominant and top.node in dominant
        assert "metric" in dominant

    def test_to_dict_round_trips_through_json(self):
        a = run_manifest()
        b = run_manifest(faults=SLOWDOWN)
        doc = json.loads(json.dumps(diff_manifests(a, b).to_dict()))
        assert doc["rows"][0]["phase"] == "stage"
        assert doc["dominant"].startswith("dominant:")

    def test_metricless_manifests_degrade_with_note(self):
        a = run_manifest()
        bare = dict(a)
        bare["metrics"] = None
        diff = diff_manifests(bare, a)
        assert diff.rows == []
        assert any("phase attribution unavailable" in n for n in diff.notes)

    def test_format_diff_is_stable_text(self):
        a = run_manifest()
        text = format_diff(diff_manifests(a, a))
        assert text.startswith("makespan:")
        assert "dominant:" in text


class TestLoadRun:
    def test_loads_manifest_file(self, tmp_path):
        m = run_manifest()
        path = tmp_path / "run.json"
        path.write_text(json.dumps(m))
        assert load_run(path)["config_digest"] == "0" * 64

    def test_lifts_bench_cell(self, tmp_path):
        doc = {
            "kind": "repro-bench",
            "cells": {"fig5b/n50/minmin": {"makespan_s": 123.0}},
        }
        path = tmp_path / "BENCH.json"
        path.write_text(json.dumps(doc))
        lifted = load_run(f"{path}#fig5b/n50/minmin")
        assert lifted["result"]["makespan_s"] == 123.0
        assert lifted["scheme"] == "minmin"
        assert lifted["metrics"] is None

    def test_bench_without_fragment_raises(self, tmp_path):
        path = tmp_path / "BENCH.json"
        path.write_text(json.dumps({"kind": "repro-bench", "cells": {}}))
        with pytest.raises(ValueError, match="#"):
            load_run(path)

    def test_unknown_cell_raises(self, tmp_path):
        path = tmp_path / "BENCH.json"
        path.write_text(json.dumps({"kind": "repro-bench", "cells": {}}))
        with pytest.raises(KeyError):
            load_run(f"{path}#nope")


class TestCli:
    def write(self, tmp_path, name, manifest):
        path = tmp_path / name
        path.write_text(json.dumps(manifest))
        return str(path)

    def test_exit_zero_within_gate(self, tmp_path, capsys):
        a = self.write(tmp_path, "a.json", run_manifest())
        assert main(["diff", a, a]) == 0
        assert "within" in capsys.readouterr().out

    def test_exit_nonzero_on_drift(self, tmp_path, capsys):
        a = self.write(tmp_path, "a.json", run_manifest())
        b = self.write(tmp_path, "b.json", run_manifest(faults=SLOWDOWN))
        assert main(["diff", a, b]) == 1
        captured = capsys.readouterr()
        assert "FAIL" in captured.err
        assert "stage" in captured.out  # attribution names the phase

    def test_json_output(self, tmp_path):
        a = self.write(tmp_path, "a.json", run_manifest())
        out = tmp_path / "diff.json"
        assert main(["diff", a, a, "--json", str(out)]) == 0
        doc = json.loads(out.read_text())
        assert doc["delta_s"] == 0.0
