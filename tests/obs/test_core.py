"""Unit tests for the telemetry registry (counters, gauges, spans)."""

import math

import pytest

from repro.obs.core import SpanStats, Telemetry, _NULL_SPAN, telemetry


@pytest.fixture
def reg() -> Telemetry:
    return Telemetry(enabled=True)


class TestDisabledOverhead:
    def test_disabled_span_is_the_shared_null_object(self):
        t = Telemetry(enabled=False)
        assert t.span("a") is _NULL_SPAN
        assert t.span("b") is t.span("c")

    def test_disabled_collects_nothing(self):
        t = Telemetry(enabled=False)
        t.count("c")
        t.gauge("g", 1.0)
        with t.span("s"):
            pass
        assert t.counters == {} and t.gauges == {} and t.spans == {}

    def test_module_singleton_starts_disabled(self):
        assert telemetry.enabled is False

    def test_timed_calls_through_when_disabled(self):
        t = Telemetry(enabled=False)

        @t.timed("f")
        def f(x):
            return x + 1

        assert f(1) == 2
        assert t.spans == {}


class TestSpans:
    def test_nesting_aggregates_under_joined_path(self, reg):
        with reg.span("a"):
            with reg.span("b"):
                pass
            with reg.span("b"):
                pass
        assert set(reg.spans) == {"a", "a/b"}
        assert reg.spans["a/b"].count == 2
        assert reg.spans["a"].count == 1

    def test_stack_unwinds_on_exception(self, reg):
        with pytest.raises(ValueError):
            with reg.span("outer"):
                with reg.span("inner"):
                    raise ValueError("boom")
        # Both spans completed (exceptions propagate but still pop the stack).
        assert set(reg.spans) == {"outer", "outer/inner"}
        with reg.span("after"):
            pass
        assert "after" in reg.spans  # not "outer/after"

    def test_keep_events_records_each_occurrence(self):
        t = Telemetry(enabled=True, keep_events=True)
        with t.span("a"):
            with t.span("b"):
                pass
        paths = [path for path, _, _ in t.events]
        assert paths == ["a/b", "a"]  # inner finishes first
        for _, start, dur in t.events:
            assert start >= 0.0 and dur >= 0.0

    def test_timed_decorator_uses_given_name(self, reg):
        @reg.timed("work")
        def f():
            return 7

        assert f() == 7
        assert reg.spans["work"].count == 1

    def test_top_spans_orders_by_total(self, reg):
        reg.spans["x"] = SpanStats(count=1, total_s=0.5, min_s=0.5, max_s=0.5)
        reg.spans["y"] = SpanStats(count=2, total_s=1.5, min_s=0.5, max_s=1.0)
        assert [p for p, _ in reg.top_spans(2)] == ["y", "x"]


class TestScalars:
    def test_counters_accumulate(self, reg):
        reg.count("n")
        reg.count("n", 4)
        assert reg.counters["n"] == 5

    def test_gauges_keep_last(self, reg):
        reg.gauge("g", 1.0)
        reg.gauge("g", 3.0)
        assert reg.gauges["g"] == 3.0

    def test_reset_clears_data_not_enabled_flag(self, reg):
        reg.count("n")
        with reg.span("s"):
            pass
        reg.reset()
        assert reg.counters == {} and reg.spans == {} and reg.events == []
        assert reg.enabled is True

    def test_snapshot_is_json_ready(self, reg):
        reg.count("c", 2)
        reg.gauge("g", 0.5)
        with reg.span("s"):
            pass
        snap = reg.snapshot()
        assert snap["counters"] == {"c": 2}
        assert snap["gauges"] == {"g": 0.5}
        assert set(snap["spans"]["s"]) == {"count", "total_s", "mean_s", "min_s", "max_s"}


class TestSpanStats:
    def test_add_and_mean(self):
        s = SpanStats()
        s.add(1.0)
        s.add(3.0)
        assert s.count == 2 and s.total_s == 4.0 and s.mean_s == 2.0
        assert s.min_s == 1.0 and s.max_s == 3.0

    def test_merge(self):
        a = SpanStats(count=1, total_s=1.0, min_s=1.0, max_s=1.0)
        b = SpanStats(count=2, total_s=5.0, min_s=0.5, max_s=4.5)
        a.merge(b)
        assert a.count == 3 and a.total_s == 6.0
        assert a.min_s == 0.5 and a.max_s == 4.5

    def test_empty_to_dict_has_no_inf(self):
        assert not any(math.isinf(v) for v in SpanStats().to_dict().values())
