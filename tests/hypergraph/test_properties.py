"""Property-based tests for the hypergraph partitioner invariants."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.hypergraph import (
    Hypergraph,
    binw_partition,
    connectivity_1,
    cut_weight,
    fm_refine,
    imbalance,
    incident_net_weights,
    kway_partition,
    multilevel_bisect,
)


@st.composite
def random_hypergraph(draw):
    n = draw(st.integers(min_value=2, max_value=24))
    num_nets = draw(st.integers(min_value=1, max_value=30))
    rng = np.random.default_rng(draw(st.integers(0, 2**31 - 1)))
    nets = []
    for _ in range(num_nets):
        size = int(rng.integers(2, min(6, n) + 1))
        nets.append(rng.choice(n, size=size, replace=False).tolist())
    vweights = rng.uniform(0.5, 4.0, size=n)
    nweights = rng.uniform(0.5, 10.0, size=num_nets)
    return Hypergraph(n, nets, vertex_weights=vweights, net_weights=nweights)


@settings(max_examples=40, deadline=None)
@given(random_hypergraph(), st.integers(0, 1000))
def test_bisect_produces_valid_two_way(h, seed):
    parts = multilevel_bisect(h, np.random.default_rng(seed))
    assert len(parts) == h.num_vertices
    assert set(parts.tolist()) <= {0, 1}


@settings(max_examples=40, deadline=None)
@given(random_hypergraph(), st.integers(2, 5), st.integers(0, 1000))
def test_kway_assigns_every_vertex_in_range(h, k, seed):
    parts = kway_partition(h, k, np.random.default_rng(seed), epsilon=0.5)
    assert len(parts) == h.num_vertices
    assert parts.min() >= 0
    assert parts.max() < k


@settings(max_examples=30, deadline=None)
@given(random_hypergraph(), st.integers(0, 1000))
def test_connectivity_lower_bound(h, seed):
    """connectivity-1 >= cut weight for any partition, and both are 0 for
    the trivial partition."""
    parts = kway_partition(h, 3, np.random.default_rng(seed), epsilon=0.5)
    assert connectivity_1(h, parts) >= cut_weight(h, parts) - 1e-9
    trivial = np.zeros(h.num_vertices, dtype=int)
    assert connectivity_1(h, trivial) == 0.0


@settings(max_examples=30, deadline=None)
@given(random_hypergraph(), st.integers(0, 1000))
def test_fm_never_increases_cut_from_feasible(h, seed):
    rng = np.random.default_rng(seed)
    parts = rng.integers(0, 2, size=h.num_vertices)
    cap = h.total_vertex_weight  # always feasible
    refined = fm_refine(h, parts, (cap, cap), rng=rng)
    assert cut_weight(h, refined) <= cut_weight(h, parts) + 1e-9


@settings(max_examples=30, deadline=None)
@given(random_hypergraph(), st.integers(0, 1000))
def test_binw_bound_holds(h, seed):
    bound = max(h.total_net_weight / 2, h.net_weights.max() * 1.5)
    res = binw_partition(h, bound, np.random.default_rng(seed))
    inw = incident_net_weights(h, res.parts, res.num_parts)
    for p in range(res.num_parts):
        if p not in res.oversized_parts:
            assert inw[p] <= bound + 1e-6


@settings(max_examples=30, deadline=None)
@given(random_hypergraph(), st.integers(0, 1000))
def test_contract_preserves_totals(h, seed):
    rng = np.random.default_rng(seed)
    nc = max(1, h.num_vertices // 2)
    cluster_of = rng.integers(0, nc, size=h.num_vertices)
    # make contiguous
    uniq = np.unique(cluster_of)
    remap = {int(u): i for i, u in enumerate(uniq)}
    cluster_of = np.array([remap[int(c)] for c in cluster_of])
    coarse = h.contract(cluster_of)
    assert coarse.total_vertex_weight == pytest.approx(h.total_vertex_weight)
    # Net weight is conserved between surviving nets and anchors.
    total = coarse.total_net_weight + coarse.anchored_weights.sum()
    assert total == pytest.approx(h.total_net_weight + h.anchored_weights.sum())


@settings(max_examples=30, deadline=None)
@given(random_hypergraph(), st.integers(0, 1000))
def test_sub_hypergraph_incident_weight_invariant(h, seed):
    """Net splitting must preserve each subset's incident net weight."""
    rng = np.random.default_rng(seed)
    size = rng.integers(1, h.num_vertices + 1)
    subset = rng.choice(h.num_vertices, size=size, replace=False)
    sub, ids = h.sub_hypergraph(subset)
    assert sub.incident_net_weight(range(sub.num_vertices)) == pytest.approx(
        h.incident_net_weight(ids)
    )


@settings(max_examples=20, deadline=None)
@given(random_hypergraph(), st.integers(0, 1000))
def test_recursive_bisection_cut_accounting(h, seed):
    """Sum of bisection cuts equals the k-way connectivity-1 cost.

    This is the net-splitting invariant the partitioner relies on; verify it
    by re-deriving connectivity-1 from the final partition.
    """
    parts = kway_partition(h, 4, np.random.default_rng(seed), epsilon=0.5)
    # Recompute connectivity from scratch.
    total = 0.0
    for j in range(h.num_nets):
        lam = len({int(parts[v]) for v in h.pins(j)})
        total += h.net_weights[j] * (lam - 1)
    assert total == pytest.approx(connectivity_1(h, parts))
