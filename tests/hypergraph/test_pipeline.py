"""Tests for the multilevel pipeline: coarsening, initial, FM, bisection."""

import numpy as np
import pytest

from repro.hypergraph import (
    Hypergraph,
    coarsen,
    compute_gains,
    cut_weight,
    fm_refine,
    greedy_growing_bipartition,
    heavy_connectivity_matching,
    initial_bipartition,
    multilevel_bisect,
    random_bipartition,
)
from repro.hypergraph.coarsen import project_partition


def two_cliques(k: int = 8, bridge_weight: float = 1.0) -> Hypergraph:
    """Two densely-shared vertex groups joined by one light net.

    Any decent bisector must cut only the bridge.
    """
    nets = []
    weights = []
    for base in (0, k):
        for i in range(base, base + k):
            for j in range(i + 1, base + k):
                nets.append([i, j])
                weights.append(5.0)
    nets.append([0, k])
    weights.append(bridge_weight)
    return Hypergraph(2 * k, nets, net_weights=weights)


class TestMatching:
    def test_cluster_ids_contiguous(self):
        h = two_cliques(4)
        rng = np.random.default_rng(0)
        c = heavy_connectivity_matching(h, rng)
        assert set(c.tolist()) == set(range(int(c.max()) + 1))

    def test_pairs_only(self):
        h = two_cliques(4)
        rng = np.random.default_rng(0)
        c = heavy_connectivity_matching(h, rng)
        _, counts = np.unique(c, return_counts=True)
        assert counts.max() <= 2

    def test_respects_weight_cap(self):
        h = Hypergraph(2, [[0, 1]], vertex_weights=[5.0, 5.0])
        rng = np.random.default_rng(0)
        c = heavy_connectivity_matching(h, rng, max_cluster_weight=6.0)
        assert c[0] != c[1]

    def test_matches_heavily_connected(self):
        # Vertices 0-1 share a heavy net; 2 is lightly attached.
        h = Hypergraph(3, [[0, 1], [1, 2]], net_weights=[100.0, 1.0])
        rng = np.random.default_rng(1)
        c = heavy_connectivity_matching(h, rng)
        assert c[0] == c[1]
        assert c[2] != c[0]


class TestCoarsen:
    def test_reaches_target(self):
        h = two_cliques(16)
        coarsest, levels = coarsen(h, np.random.default_rng(0), target_vertices=8)
        assert coarsest.num_vertices <= max(8, h.num_vertices)
        assert coarsest.num_vertices < h.num_vertices
        assert levels  # at least one level

    def test_weight_conserved(self):
        h = two_cliques(8)
        coarsest, _ = coarsen(h, np.random.default_rng(0), target_vertices=4)
        assert coarsest.total_vertex_weight == pytest.approx(h.total_vertex_weight)

    def test_projection_roundtrip(self):
        h = two_cliques(8)
        rng = np.random.default_rng(0)
        coarsest, levels = coarsen(h, rng, target_vertices=4)
        coarse_parts = np.arange(coarsest.num_vertices) % 2
        fine_parts = None
        for fine, parts in project_partition(levels, coarse_parts):
            assert len(parts) == fine.num_vertices
            fine_parts = parts
        assert fine_parts is not None
        assert len(fine_parts) == h.num_vertices


class TestInitial:
    def test_random_hits_target(self):
        h = two_cliques(8)
        rng = np.random.default_rng(0)
        parts = random_bipartition(h, rng, h.total_vertex_weight / 2)
        w0 = h.vertex_weights[parts == 0].sum()
        assert w0 >= h.total_vertex_weight / 2  # filled up to the target
        assert set(parts.tolist()) <= {0, 1}

    def test_greedy_growing_prefers_clique(self):
        h = two_cliques(8)
        rng = np.random.default_rng(2)
        parts = greedy_growing_bipartition(h, rng, h.total_vertex_weight / 2)
        # The grown part should be one whole clique (cut == bridge weight).
        assert cut_weight(h, parts) == pytest.approx(1.0)

    def test_initial_returns_best(self):
        h = two_cliques(6)
        parts = initial_bipartition(h, np.random.default_rng(3), tries=4)
        assert cut_weight(h, parts) <= 5.0


class TestFM:
    def test_gains_computation(self):
        h = Hypergraph(2, [[0, 1]], net_weights=[3.0])
        gains = compute_gains(h, np.array([0, 1]))
        # Moving either vertex uncuts the net.
        assert gains.tolist() == [3.0, 3.0]

    def test_gains_negative_for_internal(self):
        h = Hypergraph(2, [[0, 1]], net_weights=[3.0])
        gains = compute_gains(h, np.array([0, 0]))
        assert gains.tolist() == [-3.0, -3.0]

    def test_improves_bad_partition(self):
        h = two_cliques(6)
        # Interleaved (bad) partition.
        bad = np.array([i % 2 for i in range(h.num_vertices)])
        cap = h.total_vertex_weight * 0.6
        refined = fm_refine(h, bad, (cap, cap), rng=np.random.default_rng(0))
        assert cut_weight(h, refined) < cut_weight(h, bad)

    def test_never_worsens(self):
        rng = np.random.default_rng(7)
        h = two_cliques(5)
        for _ in range(5):
            parts = rng.integers(0, 2, size=h.num_vertices)
            cap = h.total_vertex_weight  # no balance pressure
            refined = fm_refine(h, parts, (cap, cap), rng=rng)
            assert cut_weight(h, refined) <= cut_weight(h, parts) + 1e-9

    def test_respects_balance_bound(self):
        h = two_cliques(6)
        bad = np.array([i % 2 for i in range(h.num_vertices)])
        cap = h.total_vertex_weight * 0.55
        refined = fm_refine(h, bad, (cap, cap), rng=np.random.default_rng(0))
        w = np.zeros(2)
        np.add.at(w, refined, h.vertex_weights)
        assert w[0] <= cap + 1e-9
        assert w[1] <= cap + 1e-9

    def test_restores_feasibility(self):
        h = Hypergraph(4, [[0, 1], [2, 3]], vertex_weights=[1, 1, 1, 1])
        # Everything on side 0; bound forces a 2/2 split.
        parts = np.zeros(4, dtype=int)
        refined = fm_refine(h, parts, (2.0, 2.0), rng=np.random.default_rng(0))
        w = np.zeros(2)
        np.add.at(w, refined, h.vertex_weights)
        assert w.max() <= 2.0 + 1e-9


class TestMultilevelBisect:
    def test_finds_bridge_cut(self):
        h = two_cliques(12)
        parts = multilevel_bisect(h, np.random.default_rng(0))
        assert cut_weight(h, parts) == pytest.approx(1.0)

    def test_balance(self):
        h = two_cliques(12)
        parts = multilevel_bisect(h, np.random.default_rng(0), epsilon=0.05)
        w = np.zeros(2)
        np.add.at(w, parts, h.vertex_weights)
        assert w.max() <= h.total_vertex_weight * 0.5 * 1.05 + 1e-9

    def test_uneven_targets(self):
        h = Hypergraph(10, [[i, (i + 1) % 10] for i in range(10)])
        parts = multilevel_bisect(
            h, np.random.default_rng(1), target0_fraction=0.3, epsilon=0.34
        )
        w0 = h.vertex_weights[parts == 0].sum()
        assert 1 <= w0 <= 5  # roughly 30% of 10

    def test_trivial_sizes(self):
        assert multilevel_bisect(
            Hypergraph(0, []), np.random.default_rng(0)
        ).tolist() == []
        assert multilevel_bisect(
            Hypergraph(1, [[0]]), np.random.default_rng(0)
        ).tolist() == [0]
