"""Tests for K-way recursive bisection and BINW partitioning."""

import numpy as np
import pytest

from repro.hypergraph import (
    Hypergraph,
    binw_partition,
    connectivity_1,
    imbalance,
    incident_net_weights,
    kway_partition,
    part_weights,
)


def clustered_graph(groups: int, size: int, seed: int = 0) -> Hypergraph:
    """``groups`` clusters of ``size`` vertices with intra-cluster nets plus
    a few weak inter-cluster nets."""
    rng = np.random.default_rng(seed)
    nets, weights = [], []
    n = groups * size
    for g in range(groups):
        base = g * size
        for i in range(base, base + size):
            for j in range(i + 1, base + size):
                nets.append([i, j])
                weights.append(4.0)
    for _ in range(groups):
        a, b = rng.choice(n, size=2, replace=False)
        if a != b:
            nets.append([int(a), int(b)])
            weights.append(0.5)
    return Hypergraph(n, nets, net_weights=weights)


class TestKWay:
    def test_produces_k_parts(self):
        h = clustered_graph(4, 6)
        parts = kway_partition(h, 4, np.random.default_rng(0))
        assert set(parts.tolist()) == {0, 1, 2, 3}

    def test_respects_epsilon(self):
        h = clustered_graph(4, 6)
        parts = kway_partition(h, 4, np.random.default_rng(0), epsilon=0.15)
        assert imbalance(h, parts, 4) <= 0.15 + 1e-9

    def test_recovers_clusters(self):
        h = clustered_graph(4, 8, seed=1)
        parts = kway_partition(h, 4, np.random.default_rng(1))
        # Each natural cluster should land in a single part: connectivity
        # cost is then only the weak bridges.
        assert connectivity_1(h, parts) <= 4 * 0.5 + 1e-9

    def test_beats_random(self):
        rng = np.random.default_rng(5)
        h = clustered_graph(4, 8, seed=2)
        parts = kway_partition(h, 4, rng)
        random_parts = rng.integers(0, 4, size=h.num_vertices)
        assert connectivity_1(h, parts) < connectivity_1(h, random_parts)

    def test_k1_trivial(self):
        h = clustered_graph(2, 4)
        parts = kway_partition(h, 1, np.random.default_rng(0))
        assert set(parts.tolist()) == {0}

    def test_non_power_of_two(self):
        h = clustered_graph(3, 6)
        parts = kway_partition(h, 3, np.random.default_rng(0), epsilon=0.2)
        assert set(parts.tolist()) == {0, 1, 2}
        assert imbalance(h, parts, 3) <= 0.2 + 1e-6

    def test_k_larger_than_vertices(self):
        h = Hypergraph(3, [[0, 1, 2]])
        parts = kway_partition(h, 8, np.random.default_rng(0))
        # Every vertex assigned to a valid part id; no crash.
        assert parts.min() >= 0
        assert parts.max() < 8

    def test_k_invalid(self):
        h = Hypergraph(2, [[0, 1]])
        with pytest.raises(ValueError):
            kway_partition(h, 0, np.random.default_rng(0))

    def test_all_vertices_assigned(self):
        h = clustered_graph(4, 5)
        parts = kway_partition(h, 4, np.random.default_rng(0))
        assert len(parts) == h.num_vertices
        assert (parts >= 0).all()


class TestBinw:
    def test_bound_respected(self):
        h = clustered_graph(4, 6)
        bound = h.total_net_weight / 3
        res = binw_partition(h, bound, np.random.default_rng(0))
        inw = incident_net_weights(h, res.parts, res.num_parts)
        assert (inw <= bound + 1e-9).all()
        assert res.oversized_parts == ()

    def test_single_part_when_bound_large(self):
        h = clustered_graph(2, 4)
        res = binw_partition(
            h, h.total_net_weight * 2, np.random.default_rng(0)
        )
        assert res.num_parts == 1

    def test_all_vertices_assigned(self):
        h = clustered_graph(3, 6)
        res = binw_partition(h, h.total_net_weight / 2, np.random.default_rng(0))
        assert (res.parts >= 0).all()
        assert len(res.parts) == h.num_vertices

    def test_oversized_singleton_flagged(self):
        # One vertex with an incident net weight exceeding any bound.
        h = Hypergraph(2, [[0, 1]], net_weights=[100.0])
        res = binw_partition(h, 10.0, np.random.default_rng(0))
        assert res.num_parts == 2
        assert len(res.oversized_parts) == 2  # both singletons over the bound

    def test_tight_bound_gives_more_parts(self):
        h = clustered_graph(4, 6, seed=3)
        rng = np.random.default_rng(0)
        loose = binw_partition(h, h.total_net_weight / 2, rng)
        tight = binw_partition(h, h.total_net_weight / 5, np.random.default_rng(0))
        assert tight.num_parts >= loose.num_parts

    def test_invalid_bound(self):
        h = Hypergraph(2, [[0, 1]])
        with pytest.raises(ValueError):
            binw_partition(h, 0.0, np.random.default_rng(0))

    def test_cluster_structure_exploited(self):
        # Bound sized for exactly one cluster: BINW should cut few nets.
        h = clustered_graph(4, 6, seed=4)
        per_cluster = h.total_net_weight / 4
        res = binw_partition(
            h, per_cluster * 1.2, np.random.default_rng(2)
        )
        # 4 natural clusters -> close to 4 parts and low connectivity cost.
        assert 3 <= res.num_parts <= 8
        assert connectivity_1(h, res.parts) <= h.total_net_weight * 0.1
