"""Partition quality regression tests on structured instances.

Fixed, analysable hypergraphs with known good cuts: the multilevel
partitioner must land within a constant factor of the optimum on them.
These guard against silent quality regressions (a partitioner that is
valid but bad would still pass the structural tests).
"""

import numpy as np
import pytest

from repro.hypergraph import (
    Hypergraph,
    binw_partition,
    connectivity_1,
    cut_weight,
    incident_net_weights,
    kway_partition,
    multilevel_bisect,
)


def grid_hypergraph(rows: int, cols: int) -> Hypergraph:
    """2D mesh: vertices on a grid, one unit net per adjacent pair.

    Optimal bisection cut of an ``r x c`` grid (c even) is ``r``.
    """
    def vid(r, c):
        return r * cols + c

    nets = []
    for r in range(rows):
        for c in range(cols):
            if c + 1 < cols:
                nets.append([vid(r, c), vid(r, c + 1)])
            if r + 1 < rows:
                nets.append([vid(r, c), vid(r + 1, c)])
    return Hypergraph(rows * cols, nets)


def ring_of_cliques(k: int, size: int) -> Hypergraph:
    """k cliques joined in a ring by unit bridges; optimal k-way cut = k."""
    nets = []
    weights = []
    n = k * size
    for g in range(k):
        base = g * size
        for i in range(base, base + size):
            for j in range(i + 1, base + size):
                nets.append([i, j])
                weights.append(10.0)
        nets.append([base, ((g + 1) % k) * size])
        weights.append(1.0)
    return Hypergraph(n, nets, net_weights=weights)


class TestGridBisection:
    @pytest.mark.parametrize("rows,cols", [(4, 8), (6, 8), (8, 8)])
    def test_bisection_near_optimal(self, rows, cols):
        h = grid_hypergraph(rows, cols)
        best = min(
            cut_weight(h, multilevel_bisect(h, np.random.default_rng(seed)))
            for seed in range(3)
        )
        # Optimal vertical cut costs `rows`; accept up to 2x.
        assert best <= 2 * rows

    def test_balance_maintained(self):
        h = grid_hypergraph(6, 8)
        parts = multilevel_bisect(h, np.random.default_rng(0), epsilon=0.05)
        sizes = np.bincount(parts, minlength=2)
        assert abs(sizes[0] - sizes[1]) <= 0.05 * h.num_vertices + 1


class TestRingOfCliques:
    def test_kway_finds_cliques(self):
        k, size = 4, 7
        h = ring_of_cliques(k, size)
        best = min(
            connectivity_1(
                h, kway_partition(h, k, np.random.default_rng(seed), epsilon=0.1)
            )
            for seed in range(3)
        )
        # Optimal: only the k unit bridges are cut -> cost k.
        assert best <= 3 * k

    def test_binw_isolates_cliques(self):
        k, size = 4, 6
        h = ring_of_cliques(k, size)
        clique_weight = 10.0 * size * (size - 1) / 2
        res = binw_partition(
            h, clique_weight * 1.3, np.random.default_rng(1)
        )
        inw = incident_net_weights(h, res.parts, res.num_parts)
        assert (inw <= clique_weight * 1.3 + 1e-9).all()
        # Should need roughly one part per clique, not shred them.
        assert res.num_parts <= 2 * k


class TestScaleSanity:
    def test_large_instance_completes_fast(self):
        import time

        rng = np.random.default_rng(0)
        n, m = 2000, 1500
        nets = [
            rng.choice(n, size=int(rng.integers(2, 6)), replace=False).tolist()
            for _ in range(m)
        ]
        h = Hypergraph(n, nets)
        t0 = time.perf_counter()
        parts = kway_partition(h, 16, rng, epsilon=0.1)
        elapsed = time.perf_counter() - t0
        assert len(set(parts.tolist())) == 16
        assert elapsed < 30.0  # generous CI bound; typically ~1s
