"""Unit tests for the Hypergraph data structure."""

import numpy as np
import pytest

from repro.hypergraph import Hypergraph


@pytest.fixture
def small():
    # 4 vertices; nets: {0,1} w=2, {1,2,3} w=3, {0,3} w=5
    return Hypergraph(
        4,
        [[0, 1], [1, 2, 3], [0, 3]],
        vertex_weights=[1.0, 2.0, 3.0, 4.0],
        net_weights=[2.0, 3.0, 5.0],
    )


class TestConstruction:
    def test_counts(self, small):
        assert small.num_vertices == 4
        assert small.num_nets == 3
        assert small.num_pins == 7

    def test_pins_sorted_and_deduped(self):
        h = Hypergraph(3, [[2, 0, 2, 1]])
        assert h.pins(0) == (0, 1, 2)

    def test_vertex_net_incidence(self, small):
        assert small.nets_of(0) == (0, 2)
        assert small.nets_of(1) == (0, 1)
        assert small.nets_of(2) == (1,)

    def test_default_weights(self):
        h = Hypergraph(2, [[0, 1]])
        assert h.vertex_weights.tolist() == [1.0, 1.0]
        assert h.net_weights.tolist() == [1.0]

    def test_totals(self, small):
        assert small.total_vertex_weight == 10.0
        assert small.total_net_weight == 10.0

    def test_degree(self, small):
        assert small.degree(3) == 2

    def test_empty_net_rejected(self):
        with pytest.raises(ValueError):
            Hypergraph(2, [[]])

    def test_out_of_range_pin_rejected(self):
        with pytest.raises(ValueError):
            Hypergraph(2, [[0, 5]])

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            Hypergraph(2, [[0, 1]], vertex_weights=[1.0, -1.0])

    def test_wrong_weight_length_rejected(self):
        with pytest.raises(ValueError):
            Hypergraph(2, [[0, 1]], net_weights=[1.0, 2.0])

    def test_zero_vertices(self):
        h = Hypergraph(0, [])
        assert h.num_vertices == 0
        assert h.num_nets == 0


class TestIncidentNetWeight:
    def test_single_vertex(self, small):
        assert small.incident_net_weight([0]) == 7.0  # nets 0 and 2

    def test_union_not_double_counted(self, small):
        # Vertices 0 and 1 share net 0; its weight counts once.
        assert small.incident_net_weight([0, 1]) == 10.0

    def test_all_vertices(self, small):
        assert small.incident_net_weight(range(4)) == 10.0

    def test_anchored_weight_added(self):
        h = Hypergraph(2, [[0, 1]], anchored_weights=[4.0, 0.0])
        assert h.incident_net_weight([0]) == 5.0
        assert h.incident_net_weight([1]) == 1.0

    def test_empty_set(self, small):
        assert small.incident_net_weight([]) == 0.0


class TestContract:
    def test_merges_vertex_weights(self, small):
        coarse = small.contract([0, 0, 1, 1])
        assert coarse.num_vertices == 2
        assert coarse.vertex_weights.tolist() == [3.0, 7.0]

    def test_net_pins_mapped(self, small):
        coarse = small.contract([0, 0, 1, 1])
        # net {0,1}->{0} degenerates; {1,2,3}->{0,1}; {0,3}->{0,1}; the two
        # surviving identical nets merge with summed weight 8.
        assert coarse.num_nets == 1
        assert coarse.pins(0) == (0, 1)
        assert coarse.net_weights.tolist() == [8.0]

    def test_degenerate_net_anchored(self, small):
        coarse = small.contract([0, 0, 1, 1])
        assert coarse.anchored_weights.tolist() == [2.0, 0.0]

    def test_incident_weight_preserved_under_contraction(self, small):
        coarse = small.contract([0, 0, 1, 1])
        # Cluster {0,1} had incident nets {0,1,2} = 10 in the fine graph.
        assert coarse.incident_net_weight([0]) == 10.0

    def test_identity_contraction(self, small):
        coarse = small.contract([0, 1, 2, 3])
        assert coarse.num_vertices == 4
        assert coarse.num_nets == 3

    def test_non_contiguous_clusters_rejected(self, small):
        with pytest.raises(ValueError):
            small.contract([0, 0, 2, 2])

    def test_wrong_length_rejected(self, small):
        with pytest.raises(ValueError):
            small.contract([0, 0])


class TestSubHypergraph:
    def test_restriction(self, small):
        sub, ids = small.sub_hypergraph([1, 2, 3])
        assert ids.tolist() == [1, 2, 3]
        assert sub.num_vertices == 3
        # net {1,2,3} survives fully; {0,1} -> {1} anchored; {0,3} -> {3} anchored
        assert sub.num_nets == 1
        assert sub.pins(0) == (0, 1, 2)

    def test_anchoring_on_split(self, small):
        sub, ids = small.sub_hypergraph([1, 2, 3])
        # local vertex 0 is global 1 (net {0,1} w=2 anchored there);
        # local 2 is global 3 (net {0,3} w=5 anchored there).
        assert sub.anchored_weights.tolist() == [2.0, 0.0, 5.0]

    def test_weights_carried(self, small):
        sub, _ = small.sub_hypergraph([1, 3])
        assert sub.vertex_weights.tolist() == [2.0, 4.0]

    def test_incident_weight_preserved(self, small):
        # Incident net weight of {1,2} must match the original graph.
        sub, ids = small.sub_hypergraph([1, 2])
        assert sub.incident_net_weight(range(2)) == small.incident_net_weight([1, 2])

    def test_duplicate_input_ids_collapsed(self, small):
        sub, ids = small.sub_hypergraph([1, 1, 2])
        assert sub.num_vertices == 2

    def test_out_of_range_rejected(self, small):
        with pytest.raises(ValueError):
            small.sub_hypergraph([0, 99])

    def test_empty_subset(self, small):
        sub, ids = small.sub_hypergraph([])
        assert sub.num_vertices == 0
        assert len(ids) == 0
