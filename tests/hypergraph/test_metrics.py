"""Unit tests for partition quality metrics."""

import numpy as np
import pytest

from repro.hypergraph import (
    Hypergraph,
    connectivity_1,
    cut_weight,
    imbalance,
    incident_net_weights,
    net_connectivity,
    part_weights,
    partition_stats,
    validate_partition,
)


@pytest.fixture
def h():
    # Figure-2-like example: 5 tasks, files a..d as nets.
    return Hypergraph(
        5,
        [[0, 1], [1, 2, 3], [3, 4], [0, 4]],
        vertex_weights=[1, 1, 2, 2, 4],
        net_weights=[10, 20, 30, 40],
    )


class TestCutAndConnectivity:
    def test_all_same_part_no_cut(self, h):
        parts = [0] * 5
        assert cut_weight(h, parts) == 0.0
        assert connectivity_1(h, parts) == 0.0

    def test_single_cut_net(self, h):
        parts = [0, 0, 0, 0, 1]
        # nets {3,4} and {0,4} are cut
        assert cut_weight(h, parts) == 70.0
        assert connectivity_1(h, parts) == 70.0

    def test_connectivity_counts_lambda_minus_one(self, h):
        parts = [0, 1, 2, 1, 0]
        # net {1,2,3}: parts {1,2,1} -> lambda=2 -> 20
        assert net_connectivity(h, parts, 1) == 2
        # net {0,1}: lambda=2 -> 10; {3,4}: {1,0} -> 30; {0,4}: {0,0} -> 0
        assert connectivity_1(h, parts) == 60.0

    def test_three_way_net(self):
        h3 = Hypergraph(3, [[0, 1, 2]], net_weights=[7.0])
        assert connectivity_1(h3, [0, 1, 2]) == 14.0  # lambda=3
        assert cut_weight(h3, [0, 1, 2]) == 7.0

    def test_connectivity_at_least_cut(self, h):
        rng = np.random.default_rng(3)
        for _ in range(10):
            parts = rng.integers(0, 3, size=5)
            assert connectivity_1(h, parts) >= cut_weight(h, parts)


class TestWeightsAndBalance:
    def test_part_weights(self, h):
        w = part_weights(h, [0, 0, 1, 1, 1], 2)
        assert w.tolist() == [2.0, 8.0]

    def test_imbalance_perfect(self, h):
        w = imbalance(h, [0, 0, 0, 1, 1], 2)  # 4 vs 6 -> max/avg - 1 = 0.2
        assert w == pytest.approx(0.2)

    def test_imbalance_zero_for_equal(self):
        h2 = Hypergraph(4, [[0, 1], [2, 3]])
        assert imbalance(h2, [0, 0, 1, 1], 2) == pytest.approx(0.0)

    def test_num_parts_override(self, h):
        w = part_weights(h, [0] * 5, num_parts=3)
        assert w.tolist() == [10.0, 0.0, 0.0]


class TestIncidentNetWeights:
    def test_cut_net_counts_in_both_parts(self, h):
        parts = [0, 0, 0, 0, 1]
        inw = incident_net_weights(h, parts, 2)
        # part 1 = {4}: touches nets {3,4} and {0,4} -> 70
        assert inw[1] == 70.0
        # part 0 touches all nets -> 100
        assert inw[0] == 100.0

    def test_anchored_counted(self):
        h2 = Hypergraph(2, [[0, 1]], net_weights=[3.0], anchored_weights=[5.0, 0.0])
        inw = incident_net_weights(h2, [0, 1], 2)
        assert inw.tolist() == [8.0, 3.0]

    def test_matches_incident_net_weight_method(self, h):
        parts = np.array([0, 1, 0, 1, 0])
        inw = incident_net_weights(h, parts, 2)
        for p in range(2):
            vs = np.flatnonzero(parts == p)
            assert inw[p] == pytest.approx(h.incident_net_weight(vs))


class TestValidation:
    def test_wrong_length(self, h):
        with pytest.raises(ValueError):
            cut_weight(h, [0, 1])

    def test_negative_part(self, h):
        with pytest.raises(ValueError):
            cut_weight(h, [0, 0, 0, 0, -1])

    def test_stats_bundle(self, h):
        stats = partition_stats(h, [0, 0, 1, 1, 1])
        assert stats.num_parts == 2
        assert stats.cut_weight == cut_weight(h, [0, 0, 1, 1, 1])
        assert stats.connectivity_1 == connectivity_1(h, [0, 0, 1, 1, 1])
        assert len(stats.incident_net_weights) == 2
