"""Property tests of the overlap metrics and generator invariants."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.batch import overlap_fraction, pairwise_overlap
from repro.workloads import (
    generate_image_batch,
    generate_sat_batch,
    image_groups,
    sat_groups,
    within_group_overlap,
)


@settings(max_examples=20, deadline=None)
@given(
    st.sampled_from(["high", "medium", "low"]),
    st.integers(4, 60),
    st.integers(1, 6),
    st.integers(0, 1000),
)
def test_sat_batches_always_valid(level, n_tasks, n_storage, seed):
    b = generate_sat_batch(n_tasks, level, n_storage, seed=seed)
    assert len(b) == n_tasks
    for t in b.tasks:
        assert t.compute_time > 0
        for f in t.files:
            assert 0 <= b.file(f).storage_node < n_storage
    assert 0.0 <= overlap_fraction(b) < 1.0
    assert 0.0 <= within_group_overlap(b, sat_groups(b)) <= 1.0


@settings(max_examples=20, deadline=None)
@given(
    st.sampled_from(["high", "medium", "zero"]),
    st.integers(4, 60),
    st.integers(1, 6),
    st.integers(0, 1000),
)
def test_image_batches_always_valid(level, n_tasks, n_storage, seed):
    b = generate_image_batch(n_tasks, level, n_storage, seed=seed)
    assert len(b) == n_tasks
    for t in b.tasks:
        assert len(t.files) in (8, 9)  # CT window or MRI series
    assert 0.0 <= within_group_overlap(b, image_groups(b)) <= 1.0


@settings(max_examples=20, deadline=None)
@given(st.integers(4, 40), st.integers(0, 500))
def test_metrics_bounded(n_tasks, seed):
    b = generate_sat_batch(n_tasks, "medium", 4, seed=seed)
    pw = pairwise_overlap(b)
    of = overlap_fraction(b)
    assert 0.0 <= pw <= 1.0
    assert 0.0 <= of < 1.0


def test_pairwise_sampling_close_to_exact():
    b = generate_sat_batch(60, "high", 4, seed=0)
    exact = pairwise_overlap(b)
    sampled = pairwise_overlap(b, sample_pairs=600, seed=1)
    assert sampled == pytest.approx(exact, abs=0.12)


def test_within_group_never_below_global_for_sat():
    """Within-set overlap is at least the all-pairs overlap: cross-set
    pairs contribute zero by construction."""
    for seed in range(3):
        b = generate_sat_batch(40, "high", 4, seed=seed)
        assert within_group_overlap(b, sat_groups(b)) >= pairwise_overlap(b) - 1e-9
