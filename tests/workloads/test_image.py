"""Tests for the IMAGE (biomedical imaging) workload emulator."""

import numpy as np
import pytest

from repro.batch import overlap_fraction
from repro.workloads import (
    IMAGE_PRESETS,
    affinity_group_of,
    generate_image_batch,
    image_groups,
    within_group_overlap,
)
from repro.workloads.image import (
    CT_MB,
    CT_WINDOW,
    MRI_MB,
    MRI_PER_STUDY,
    NUM_PATIENTS,
    STUDIES_PER_PATIENT,
)


class TestGeneration:
    def test_task_count(self):
        b = generate_image_batch(50, "high", 4, seed=0)
        assert len(b) == 50

    def test_ct_and_mri_tasks(self):
        b = generate_image_batch(100, "high", 4, seed=0, ct_fraction=0.5)
        ct = [t for t in b.tasks if "ct" in t.files[0]]
        mri = [t for t in b.tasks if "mri" in t.files[0]]
        assert len(ct) + len(mri) == 100
        assert 20 <= len(ct) <= 80  # roughly half each
        for t in ct:
            assert len(t.files) == CT_WINDOW
        for t in mri:
            assert len(t.files) == MRI_PER_STUDY

    def test_file_sizes(self):
        b = generate_image_batch(50, "high", 4, seed=0)
        for f in b.files.values():
            assert f.size_mb in (CT_MB, MRI_MB)

    def test_dataset_totals_match_paper(self):
        # 2 GB per patient, 2 TB total.
        per_patient = STUDIES_PER_PATIENT * (CT_MB + MRI_PER_STUDY * MRI_MB)
        assert per_patient == pytest.approx(2000.0)
        assert NUM_PATIENTS * per_patient == pytest.approx(2_000_000.0)

    def test_round_robin_storage(self):
        b = generate_image_batch(100, "medium", 4, seed=0)
        nodes = {f.storage_node for f in b.files.values()}
        assert nodes == {0, 1, 2, 3}

    def test_ct_only_tasks(self):
        b = generate_image_batch(20, "high", 4, seed=0, ct_fraction=1.0)
        for t in b.tasks:
            assert all("ct" in f for f in t.files)
            assert b.task_input_mb(t) == pytest.approx(CT_WINDOW * CT_MB)

    def test_compute_time_proportional(self):
        b = generate_image_batch(20, "high", 4, seed=0)
        for t in b.tasks:
            assert t.compute_time == pytest.approx(b.task_input_mb(t) * 0.001)

    def test_determinism(self):
        b1 = generate_image_batch(30, "medium", 4, seed=3)
        b2 = generate_image_batch(30, "medium", 4, seed=3)
        assert [t.files for t in b1.tasks] == [t.files for t in b2.tasks]

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            generate_image_batch(10, "nope", 4)
        with pytest.raises(ValueError):
            generate_image_batch(0, "high", 4)
        with pytest.raises(ValueError):
            generate_image_batch(NUM_PATIENTS + 1, "zero", 4)

    def test_low_is_zero_alias(self):
        assert IMAGE_PRESETS["low"] is IMAGE_PRESETS["zero"]


class TestOverlapStructure:
    def test_zero_overlap_is_disjoint(self):
        b = generate_image_batch(100, "zero", 4, seed=0)
        assert overlap_fraction(b) == 0.0

    def test_affinity_group_parsing(self):
        b = generate_image_batch(20, "high", 4, seed=0)
        for t in b.tasks:
            patient, modality = affinity_group_of(b, t.task_id)
            assert patient.startswith("p")
            assert modality in ("ct", "mri")

    @pytest.mark.parametrize(
        "level,target,tolerance",
        [("high", 0.85, 0.10), ("medium", 0.40, 0.12)],
    )
    def test_within_group_overlap(self, level, target, tolerance):
        vals = []
        for seed in range(5):
            b = generate_image_batch(100, level, 4, seed=seed)
            vals.append(within_group_overlap(b, image_groups(b)))
        assert np.mean(vals) == pytest.approx(target, abs=tolerance)

    def test_levels_ordered(self):
        vals = []
        for lvl in ("high", "medium", "zero"):
            b = generate_image_batch(100, lvl, 4, seed=0)
            vals.append(within_group_overlap(b, image_groups(b)))
        assert vals[0] > vals[1] > vals[2] == 0.0

    def test_fig5b_footprints(self):
        """Aggregate data requirements match the paper's Fig. 5(b) setup:
        ~40 GB at 500 tasks growing to ~330 GB at 4000 tasks."""
        b500 = generate_image_batch(500, "high", 4, seed=1)
        b4000 = generate_image_batch(4000, "high", 4, seed=1)
        assert 25_000 <= b500.distinct_file_mb <= 60_000
        assert 200_000 <= b4000.distinct_file_mb <= 400_000

    def test_hot_pool_scales_with_tasks(self):
        small = generate_image_batch(100, "high", 4, seed=0)
        large = generate_image_batch(400, "high", 4, seed=0)
        assert large.distinct_file_mb > small.distinct_file_mb
