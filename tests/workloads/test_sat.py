"""Tests for the SAT (satellite data) workload emulator."""

import numpy as np
import pytest

from repro.batch import overlap_fraction
from repro.workloads import (
    SAT_PRESETS,
    generate_sat_batch,
    hotspot_of,
    sat_groups,
    within_group_overlap,
)
from repro.workloads.sat import FILE_MB, GRID_X, GRID_Y, NUM_DAYS, SatConfig


class TestGeneration:
    def test_task_count(self):
        b = generate_sat_batch(50, "high", 4, seed=0)
        assert len(b) == 50

    def test_files_per_task_high(self):
        b = generate_sat_batch(40, "high", 4, seed=0)
        for t in b.tasks:
            assert len(t.files) == 8  # paper: 8 files/task for high overlap

    def test_files_per_task_medium_low(self):
        for lvl in ("medium", "low"):
            b = generate_sat_batch(40, lvl, 4, seed=0)
            for t in b.tasks:
                assert len(t.files) == 14  # paper: 14 files/task

    def test_file_size_is_50mb(self):
        b = generate_sat_batch(20, "high", 4, seed=0)
        for f in b.files.values():
            assert f.size_mb == FILE_MB

    def test_dataset_bounds(self):
        b = generate_sat_batch(100, "low", 4, seed=0)
        # All files within the 10 x 5 x 20 grid (max 1000 distinct files).
        assert len(b.referenced_files()) <= GRID_X * GRID_Y * NUM_DAYS

    def test_compute_time_proportional_to_volume(self):
        b = generate_sat_batch(10, "high", 4, seed=0)
        for t in b.tasks:
            assert t.compute_time == pytest.approx(b.task_input_mb(t) * 0.001)

    def test_storage_nodes_in_range(self):
        b = generate_sat_batch(50, "medium", 4, seed=0)
        for f in b.files.values():
            assert 0 <= f.storage_node < 4

    def test_storage_spread(self):
        # Hilbert declustering must spread files across all storage nodes.
        b = generate_sat_batch(100, "low", 4, seed=0)
        nodes = {f.storage_node for f in b.files.values()}
        assert nodes == {0, 1, 2, 3}

    def test_determinism(self):
        b1 = generate_sat_batch(30, "high", 4, seed=7)
        b2 = generate_sat_batch(30, "high", 4, seed=7)
        assert [t.files for t in b1.tasks] == [t.files for t in b2.tasks]

    def test_seed_changes_batch(self):
        b1 = generate_sat_batch(30, "medium", 4, seed=1)
        b2 = generate_sat_batch(30, "medium", 4, seed=2)
        assert [t.files for t in b1.tasks] != [t.files for t in b2.tasks]

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            generate_sat_batch(10, "extreme", 4)
        with pytest.raises(ValueError):
            generate_sat_batch(0, "high", 4)


class TestHotspotStructure:
    def test_four_sets_day_disjoint(self):
        b = generate_sat_batch(80, "high", 4, seed=0)
        days_by_set: dict[int, set[int]] = {}
        for t in b.tasks:
            s = hotspot_of(t.task_id)
            for f in t.files:
                day = int(f.split("_")[1][1:])
                days_by_set.setdefault(s, set()).add(day)
        sets = list(days_by_set.values())
        for i in range(len(sets)):
            for j in range(i + 1, len(sets)):
                assert not (sets[i] & sets[j])

    def test_no_cross_set_file_sharing(self):
        b = generate_sat_batch(80, "medium", 4, seed=0)
        owner: dict[str, int] = {}
        for t in b.tasks:
            s = hotspot_of(t.task_id)
            for f in t.files:
                assert owner.setdefault(f, s) == s

    def test_round_robin_assignment(self):
        b = generate_sat_batch(8, "high", 4, seed=0)
        assert [hotspot_of(t.task_id) for t in b.tasks] == [0, 1, 2, 3] * 2


class TestOverlapCalibration:
    """The presets must land near the paper's 85 / 40 / 10 per cent."""

    @pytest.mark.parametrize(
        "level,target,tolerance",
        [("high", 0.85, 0.10), ("medium", 0.40, 0.10), ("low", 0.10, 0.08)],
    )
    def test_within_set_overlap(self, level, target, tolerance):
        vals = []
        for seed in range(5):
            b = generate_sat_batch(100, level, 4, seed=seed)
            vals.append(within_group_overlap(b, sat_groups(b)))
        assert np.mean(vals) == pytest.approx(target, abs=tolerance)

    def test_levels_are_ordered(self):
        measured = {}
        for lvl in ("high", "medium", "low"):
            b = generate_sat_batch(100, lvl, 4, seed=0)
            measured[lvl] = within_group_overlap(b, sat_groups(b))
        assert measured["high"] > measured["medium"] > measured["low"]

    def test_global_sharing_ordered(self):
        fracs = [
            overlap_fraction(generate_sat_batch(100, lvl, 4, seed=0))
            for lvl in ("high", "medium", "low")
        ]
        assert fracs[0] > fracs[1] > fracs[2]


class TestConfigValidation:
    def test_preset_windows_valid(self):
        for cfg in SAT_PRESETS.values():
            cfg.validate()

    def test_invalid_day_window(self):
        cfg = SatConfig(window=(1, 1, 6), jitter=(0, 0, 0))
        with pytest.raises(ValueError):
            cfg.validate()

    def test_invalid_spatial_window(self):
        cfg = SatConfig(window=(9, 1, 1), jitter=(3, 0, 0), bases=((0, 0),) * 4)
        with pytest.raises(ValueError):
            cfg.validate()

    def test_files_per_task_property(self):
        assert SAT_PRESETS["high"].files_per_task == 8
        assert SAT_PRESETS["medium"].files_per_task == 14
