"""Tests for the synthetic workload generator and overlap helper."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.batch import overlap_fraction
from repro.workloads import generate_synthetic_batch, within_group_overlap


class TestSynthetic:
    def test_basic_shape(self):
        b = generate_synthetic_batch(20, 50, 5, 4, seed=0)
        assert len(b) == 20
        for t in b.tasks:
            assert len(t.files) == 5

    def test_hot_probability_increases_sharing(self):
        cold = generate_synthetic_batch(
            50, 200, 5, 4, hot_probability=0.0, seed=0
        )
        hot = generate_synthetic_batch(
            50, 200, 5, 4, hot_probability=0.9, seed=0
        )
        assert overlap_fraction(hot) > overlap_fraction(cold)

    def test_size_spread(self):
        b = generate_synthetic_batch(
            10, 50, 5, 4, file_size_mb=100.0, size_spread=0.5, seed=0
        )
        sizes = [f.size_mb for f in b.files.values()]
        assert min(sizes) < 100.0 < max(sizes)
        assert all(50.0 <= s <= 150.0 for s in sizes)

    def test_constant_sizes_by_default(self):
        b = generate_synthetic_batch(10, 50, 5, 4, file_size_mb=42.0, seed=0)
        assert {f.size_mb for f in b.files.values()} == {42.0}

    def test_storage_round_robin(self):
        b = generate_synthetic_batch(10, 40, 5, 4, seed=0)
        assert {f.storage_node for f in b.files.values()} == {0, 1, 2, 3}

    def test_validation(self):
        with pytest.raises(ValueError):
            generate_synthetic_batch(5, 3, 10, 2)  # more files/task than files
        with pytest.raises(ValueError):
            generate_synthetic_batch(5, 10, 2, 2, hot_probability=1.5)

    @settings(max_examples=25, deadline=None)
    @given(
        st.integers(1, 30),
        st.integers(5, 60),
        st.integers(1, 5),
        st.integers(1, 4),
        st.floats(0.0, 1.0),
        st.integers(0, 100),
    )
    def test_generated_batches_always_valid(
        self, n_tasks, n_files, fpt, n_storage, hot, seed
    ):
        fpt = min(fpt, n_files)
        b = generate_synthetic_batch(
            n_tasks, n_files, fpt, n_storage, hot_probability=hot, seed=seed
        )
        assert len(b) == n_tasks
        for t in b.tasks:
            assert len(t.files) == fpt
            assert len(set(t.files)) == fpt
            assert t.compute_time >= 0
        for f in b.files.values():
            assert 0 <= f.storage_node < n_storage


class TestWithinGroupOverlap:
    def test_identical_tasks_full_overlap(self):
        b = generate_synthetic_batch(4, 10, 10, 1, seed=0)
        # All tasks read every file.
        assert within_group_overlap(b, lambda tid: 0) == pytest.approx(1.0)

    def test_singleton_groups_zero(self):
        b = generate_synthetic_batch(4, 20, 3, 1, seed=0)
        assert within_group_overlap(b, lambda tid: tid) == 0.0

    def test_group_separation(self):
        b = generate_synthetic_batch(10, 100, 4, 1, hot_probability=0.0, seed=0)
        all_pairs = within_group_overlap(b, lambda tid: 0)
        assert 0.0 <= all_pairs <= 1.0
