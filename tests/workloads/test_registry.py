"""Workload registry round-trip: every name generates and configures."""

import pytest

from repro.experiments.runner import ExperimentConfig
from repro.workloads import WORKLOADS, available_workloads, make_batch


class TestRegistry:
    def test_names(self):
        assert available_workloads() == sorted(WORKLOADS)
        for name in ("sat", "image", "synthetic", "hilbert", "overlap"):
            assert name in WORKLOADS

    @pytest.mark.parametrize("workload", sorted(WORKLOADS))
    @pytest.mark.parametrize("overlap", ["high", "medium", "low"])
    def test_every_entry_generates(self, workload, overlap):
        batch = make_batch(workload, 8, overlap, 4, seed=1)
        assert len(batch.tasks) == 8
        assert batch.files
        for f in batch.files.values():
            assert 0 <= f.storage_node < 4
        # Deterministic: same call, same batch.
        again = make_batch(workload, 8, overlap, 4, seed=1)
        assert [t.task_id for t in again.tasks] == [
            t.task_id for t in batch.tasks
        ]
        assert again.distinct_file_mb == batch.distinct_file_mb

    def test_unknown_workload(self):
        with pytest.raises(ValueError, match="unknown workload"):
            make_batch("mapreduce", 8, "high", 4)

    @pytest.mark.parametrize("workload", ["sat", "hilbert", "overlap"])
    def test_unknown_overlap_level(self, workload):
        with pytest.raises(ValueError):
            make_batch(workload, 8, "extreme", 4)


class TestExperimentConfigRoundTrip:
    @pytest.mark.parametrize("workload", sorted(WORKLOADS))
    def test_config_accepts_registry_names(self, workload):
        cfg = ExperimentConfig(
            experiment="reg", workload=workload, overlap="medium",
            num_tasks=6, storage="xio",
        )
        batch = cfg.batch()
        reference = make_batch(workload, 6, "medium", cfg.num_storage,
                               seed=cfg.seed)
        assert [t.task_id for t in batch.tasks] == [
            t.task_id for t in reference.tasks
        ]
        assert batch.distinct_file_mb == reference.distinct_file_mb

    def test_unknown_workload_rejected(self):
        with pytest.raises(ValueError, match="unknown workload"):
            ExperimentConfig(
                experiment="reg", workload="mapreduce", overlap="high",
                num_tasks=6, storage="xio",
            )

    def test_unknown_storage_rejected(self):
        with pytest.raises(ValueError, match="unknown storage"):
            ExperimentConfig(
                experiment="reg", workload="sat", overlap="high",
                num_tasks=6, storage="lustre",
            )
