"""Tests for the Hilbert curve and declustering."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.workloads import (
    decluster,
    hilbert_d2xy,
    hilbert_order_for,
    hilbert_xy2d,
)


class TestCurve:
    def test_order1_layout(self):
        # Order-1 curve visits (0,0) (0,1) (1,1) (1,0).
        coords = [hilbert_d2xy(1, d) for d in range(4)]
        assert coords == [(0, 0), (0, 1), (1, 1), (1, 0)]

    def test_roundtrip_order3(self):
        for d in range(64):
            x, y = hilbert_d2xy(3, d)
            assert hilbert_xy2d(3, x, y) == d

    def test_bijection_order4(self):
        seen = set()
        for d in range(256):
            seen.add(hilbert_d2xy(4, d))
        assert len(seen) == 256

    def test_adjacent_distances_are_neighbours(self):
        # Consecutive curve positions differ by exactly one grid step.
        for d in range(255):
            x0, y0 = hilbert_d2xy(4, d)
            x1, y1 = hilbert_d2xy(4, d + 1)
            assert abs(x0 - x1) + abs(y0 - y1) == 1

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            hilbert_xy2d(2, 4, 0)
        with pytest.raises(ValueError):
            hilbert_d2xy(2, 16)

    def test_order_for(self):
        assert hilbert_order_for(1, 1) == 0
        assert hilbert_order_for(2, 2) == 1
        assert hilbert_order_for(10, 5) == 4
        assert hilbert_order_for(16, 16) == 4
        assert hilbert_order_for(17, 3) == 5


@settings(max_examples=50, deadline=None)
@given(st.integers(1, 6), st.data())
def test_roundtrip_property(order, data):
    n = 1 << order
    x = data.draw(st.integers(0, n - 1))
    y = data.draw(st.integers(0, n - 1))
    d = hilbert_xy2d(order, x, y)
    assert hilbert_d2xy(order, d) == (x, y)


class TestDecluster:
    def test_assigns_all_cells(self):
        cells = [(x, y) for x in range(10) for y in range(5)]
        m = decluster(cells, 4)
        assert set(m) == set(cells)
        assert set(m.values()) <= {0, 1, 2, 3}

    def test_balanced_assignment(self):
        cells = [(x, y) for x in range(8) for y in range(8)]
        m = decluster(cells, 4)
        counts = np.bincount(list(m.values()), minlength=4)
        assert counts.max() - counts.min() <= 1

    def test_spatial_window_spreads_across_nodes(self):
        # A 2x2 window should rarely hit a single storage node.
        cells = [(x, y) for x in range(16) for y in range(16)]
        m = decluster(cells, 4)
        hits = {m[(x, y)] for x in range(4, 6) for y in range(4, 6)}
        assert len(hits) >= 2

    def test_single_storage(self):
        m = decluster([(0, 0), (1, 1)], 1)
        assert set(m.values()) == {0}

    def test_empty(self):
        assert decluster([], 3) == {}

    def test_invalid_storage_count(self):
        with pytest.raises(ValueError):
            decluster([(0, 0)], 0)
