"""Tests for the content-addressed on-disk result cache."""

import dataclasses
import json
import math

from repro.experiments import ExperimentConfig, run_config
from repro.parallel import CACHE_SALT, ResultCache, config_key


def cfg(**overrides) -> ExperimentConfig:
    base = dict(
        experiment="test",
        workload="image",
        overlap="high",
        num_tasks=8,
        storage="xio",
        scheme="bipartition",
        seed=0,
    )
    base.update(overrides)
    return ExperimentConfig(**base)


class TestConfigKey:
    def test_stable_across_calls(self):
        assert config_key(cfg(), "high") == config_key(cfg(), "high")

    def test_sensitive_to_every_field(self):
        base = config_key(cfg(), "high")
        assert config_key(cfg(seed=1), "high") != base
        assert config_key(cfg(num_tasks=9), "high") != base
        assert config_key(cfg(scheme="minmin"), "high") != base
        assert config_key(cfg(storage="osumed"), "high") != base
        assert config_key(cfg(allow_replication=False), "high") != base
        assert config_key(cfg(scheduler_kwargs={"time_limit": 5.0}), "high") != base

    def test_telemetry_flag_is_non_semantic(self):
        # Observability toggles don't change the Record, so they must not
        # invalidate cached cells.
        assert config_key(cfg(telemetry=True), "high") == config_key(cfg(), "high")

    def test_sensitive_to_x(self):
        assert config_key(cfg(), "high") != config_key(cfg(), "medium")
        assert config_key(cfg(), 100) != config_key(cfg(), 200)

    def test_infinite_disk_is_hashable(self):
        # The default disk_space_mb is math.inf, which JSON cannot spell.
        key = config_key(cfg(disk_space_mb=math.inf))
        assert key != config_key(cfg(disk_space_mb=1000.0))

    def test_scheduler_kwargs_order_irrelevant(self):
        a = cfg(scheduler_kwargs={"a": 1, "b": 2})
        b = cfg(scheduler_kwargs={"b": 2, "a": 1})
        assert config_key(a) == config_key(b)

    def test_fault_spec_is_semantic(self):
        # Regression guard: a faulty run must never collide with its
        # fault-free twin's cached Record (CACHE_SALT was bumped to v2
        # when the faults field was added for exactly this reason).
        base = config_key(cfg(), "high")
        flaky = config_key(cfg(faults={"transfer_failure_rate": 0.2}), "high")
        assert flaky != base
        assert (
            config_key(cfg(faults={"transfer_failure_rate": 0.4}), "high")
            != flaky
        )
        assert (
            config_key(cfg(faults={"transfer_failure_rate": 0.2}), "high")
            == flaky
        )
        crash = config_key(
            cfg(faults={"node_crashes": [{"node": 1, "time": 5.0}]}), "high"
        )
        assert crash not in (base, flaky)

    def test_salt_invalidates_pre_fault_entries(self):
        assert CACHE_SALT != "repro-cache-v1"


class TestResultCache:
    def test_miss_then_hit_round_trip(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        c = cfg()
        assert cache.get(c, "high") is None
        assert cache.stats.misses == 1

        record = run_config(c, "high")
        cache.put(c, "high", record, manifest={"elapsed_s": 0.5})
        assert cache.stats.stores == 1

        replayed = cache.get(c, "high")
        assert replayed == record
        assert cache.stats.hits == 1
        assert len(cache) == 1

    def test_invalidated_when_config_field_changes(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        c = cfg()
        cache.put(c, "high", run_config(c, "high"))
        changed = dataclasses.replace(c, seed=7)
        assert cache.get(changed, "high") is None

    def test_entry_records_provenance(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        c = cfg()
        manifest = {"config_digest": config_key(c, "high"), "elapsed_s": 1.25}
        path = cache.put(c, "high", run_config(c, "high"), manifest=manifest)
        doc = json.loads(path.read_text())
        assert doc["salt"] == CACHE_SALT
        assert doc["config"]["scheme"] == "bipartition"
        assert doc["manifest"]["elapsed_s"] == 1.25
        assert doc["key"] == config_key(c, "high")

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        c = cfg()
        path = cache.put(c, "high", run_config(c, "high"))
        path.write_text("{not json")
        assert cache.get(c, "high") is None

    def test_clear_removes_everything(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        for seed in range(3):
            c = cfg(seed=seed)
            cache.put(c, "high", run_config(c, "high"))
        assert len(cache) == 3
        assert cache.clear() == 3
        assert len(cache) == 0
        assert cache.get(cfg(seed=0), "high") is None

    def test_clear_on_missing_dir(self, tmp_path):
        assert ResultCache(tmp_path / "nope").clear() == 0
