"""Tests for the parallel experiment fan-out (`repro.parallel.pool`)."""

import dataclasses

import pytest

from repro import parallel
from repro.experiments import ExperimentConfig, fig5b_batch_size
from repro.parallel import ResultCache, map_configs, run_cells
from repro.parallel import pool as pool_module


def cells(schemes=("bipartition", "minmin", "jdp"), **overrides):
    base = dict(
        experiment="test",
        workload="image",
        overlap="high",
        num_tasks=8,
        storage="xio",
        seed=0,
    )
    base.update(overrides)
    configs = [ExperimentConfig(scheme=s, **base) for s in schemes]
    return configs, [base["overlap"]] * len(configs)


def strip_timing(records):
    """Timing is wall-clock and legitimately varies run to run."""
    return [dataclasses.replace(r, scheduling_ms_per_task=0.0) for r in records]


class TestMapConfigs:
    def test_matches_serial_run_config(self):
        from repro.experiments import run_config

        configs, xs = cells()
        expected = [run_config(c, x) for c, x in zip(configs, xs)]
        got = map_configs(configs, xs, workers=1)
        assert strip_timing(got) == strip_timing(expected)

    @pytest.mark.skipif(
        not parallel.fork_available(), reason="platform cannot fork"
    )
    def test_workers2_identical_to_serial(self):
        configs, xs = cells()
        serial = map_configs(configs, xs, workers=1)
        fanned = map_configs(configs, xs, workers=2)
        assert strip_timing(serial) == strip_timing(fanned)

    def test_order_preserved(self):
        configs, xs = cells(schemes=("jdp", "bipartition", "minmin"))
        records = map_configs(configs, xs, workers=2)
        assert [r.scheme for r in records] == ["jdp", "bipartition", "minmin"]

    def test_mismatched_xs_rejected(self):
        configs, xs = cells()
        with pytest.raises(ValueError):
            map_configs(configs, xs[:-1])

    def test_empty_input(self):
        assert map_configs([], []) == []

    def test_serial_fallback_without_fork(self, monkeypatch):
        monkeypatch.setattr(pool_module, "fork_available", lambda: False)
        configs, xs = cells()
        records = map_configs(configs, xs, workers=4)
        assert [r.scheme for r in records] == ["bipartition", "minmin", "jdp"]


class TestCacheIntegration:
    def test_second_run_is_all_hits_and_no_simulation(self, tmp_path, monkeypatch):
        cache = ResultCache(tmp_path / "cache")
        configs, xs = cells()
        first = run_cells(configs, xs, cache=cache)
        assert [c.cached for c in first] == [False, False, False]

        calls = []
        real = pool_module.run_config_cell

        def counting(cfg, x=None):
            calls.append(cfg)
            return real(cfg, x)

        monkeypatch.setattr(pool_module, "run_config_cell", counting)
        second = run_cells(configs, xs, cache=cache)
        assert [c.cached for c in second] == [True, True, True]
        assert calls == []  # zero simulations on the replay
        assert [c.record for c in second] == [c.record for c in first]

    def test_changed_field_misses(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        configs, xs = cells()
        run_cells(configs, xs, cache=cache)
        changed = [dataclasses.replace(c, num_tasks=9) for c in configs]
        again = run_cells(changed, xs, cache=cache)
        assert all(not c.cached for c in again)

    def test_cache_false_disables_configured_default(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        parallel.configure(cache=cache)
        try:
            configs, xs = cells(schemes=("jdp",))
            run_cells(configs, xs)  # populates the default cache
            assert len(cache) == 1
            replay = run_cells(configs, xs, cache=False)
            assert not replay[0].cached
        finally:
            parallel.configure(workers=None, cache=None)

    def test_per_cell_timing_recorded(self, tmp_path):
        configs, xs = cells(schemes=("jdp",))
        cache = ResultCache(tmp_path / "cache")
        fresh = run_cells(configs, xs, cache=cache)
        assert fresh[0].elapsed_s > 0
        replay = run_cells(configs, xs, cache=cache)
        assert replay[0].elapsed_s == 0.0


class TestDefaults:
    def test_env_workers(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        parallel.configure(workers=None, cache=None)
        assert parallel.default_workers() == 1
        monkeypatch.setenv("REPRO_WORKERS", "3")
        assert parallel.default_workers() == 3
        monkeypatch.setenv("REPRO_WORKERS", "junk")
        assert parallel.default_workers() == 1

    def test_configure_overrides_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "3")
        parallel.configure(workers=2)
        try:
            assert parallel.default_workers() == 2
        finally:
            parallel.configure(workers=None, cache=None)

    def test_env_cache_dir(self, monkeypatch, tmp_path):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        assert parallel.default_cache() is None
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "envcache"))
        cache = parallel.default_cache()
        assert cache is not None
        assert str(cache.root).endswith("envcache")


class TestFigureIntegration:
    def test_figure_sweep_replays_from_cache(self, tmp_path, monkeypatch):
        cache = ResultCache(tmp_path / "cache")
        kwargs = dict(
            batch_sizes=(6, 12),
            disk_space_mb=1500.0,
            schemes=("bipartition",),
            cache=cache,
        )
        first = fig5b_batch_size(**kwargs)

        def boom(cfg, x=None):  # any simulation on the replay is a failure
            raise AssertionError(f"re-simulated {cfg}")

        monkeypatch.setattr(pool_module, "run_config_cell", boom)
        second = fig5b_batch_size(**kwargs)
        assert second.records == first.records
        assert cache.stats.hits == 2
