"""Tests for the executed-trace auditor (E1-E5)."""

import dataclasses
import math

import pytest

from repro.analysis.audit import AuditError, AuditReport, audit_runtime
from repro.batch import Batch, FileInfo, Task
from repro.cluster import (
    ClusterState,
    ComputeNode,
    Platform,
    Runtime,
    StorageNode,
    TaskRecord,
)
from repro.cluster.gantt import Interval
from repro.core import run_batch
from repro.experiments import ExperimentConfig, run_config
from repro.workloads import generate_synthetic_batch


def make_platform(num_compute=2, num_storage=2, disk_space_mb=math.inf):
    return Platform(
        compute_nodes=tuple(
            ComputeNode(i, disk_space_mb=disk_space_mb, local_disk_bw=200.0)
            for i in range(num_compute)
        ),
        storage_nodes=tuple(
            StorageNode(s, disk_bw=100.0) for s in range(num_storage)
        ),
        storage_network_bw=1000.0,
        compute_network_bw=1000.0,
    )


def small_run(disk_space_mb=math.inf):
    """Two tasks sharing a file across two nodes; audited runtime."""
    platform = make_platform(disk_space_mb=disk_space_mb)
    batch = Batch(
        [Task("t0", ("a", "b"), 1.0), Task("t1", ("a",), 1.0)],
        {"a": FileInfo("a", 100.0, 0), "b": FileInfo("b", 100.0, 1)},
    )
    state = ClusterState.initial(platform, batch)
    rt = Runtime(platform, state, audit=True)
    res = rt.execute(batch.tasks, {"t0": 0, "t1": 1})
    return rt, res


# Reduced-scale stand-ins for the six figure drivers (same workload,
# platform shape and scheme families as repro.experiments.figures).
FIGURE_CONFIGS = {
    "fig3": ExperimentConfig(
        experiment="fig3-osumed", workload="image", overlap="high",
        num_tasks=12, storage="osumed", scheme="bipartition", audit=True,
    ),
    "fig4": ExperimentConfig(
        experiment="fig4-osumed", workload="sat", overlap="medium",
        num_tasks=12, storage="osumed", scheme="minmin", audit=True,
    ),
    "fig5a": ExperimentConfig(
        experiment="fig5a", workload="sat", overlap="high", num_tasks=12,
        storage="osumed", num_compute=4, num_storage=2,
        scheme="bipartition", allow_replication=False, audit=True,
    ),
    "fig5b": ExperimentConfig(
        experiment="fig5b", workload="image", overlap="high", num_tasks=24,
        storage="xio", disk_space_mb=2000.0, scheme="jdp",
        candidate_limit=10, audit=True,
    ),
    "fig6a": ExperimentConfig(
        experiment="fig6a", workload="image", overlap="high", num_tasks=16,
        storage="xio", num_compute=6, num_storage=3, scheme="bipartition",
        candidate_limit=10, audit=True,
    ),
    "fig6b": ExperimentConfig(
        experiment="fig6b", workload="image", overlap="high", num_tasks=8,
        storage="xio", num_compute=2, num_storage=2, scheme="ip",
        scheduler_kwargs={"time_limit": 10.0, "mip_rel_gap": 0.1},
        audit=True,
    ),
}


class TestFigureDriversAuditClean:
    @pytest.mark.parametrize("fig", sorted(FIGURE_CONFIGS))
    def test_figure_config_passes_audit(self, fig):
        # run_config -> run_batch(audit=True) raises AuditError on any
        # violation, so a returned record proves the trace verified.
        record = run_config(FIGURE_CONFIGS[fig])
        assert record.makespan_s > 0.0


class TestRandomizedSchedulesAuditClean:
    @pytest.mark.parametrize("scheme", ["minmin", "maxmin", "sufferage"])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_mct_family_zero_violations(self, scheme, seed):
        platform = make_platform(num_compute=3, num_storage=2,
                                 disk_space_mb=200.0)
        batch = generate_synthetic_batch(
            18, 24, 3, 2, hot_probability=0.6, seed=seed
        )
        result = run_batch(batch, platform, scheme, audit=True)
        assert result.audit_report is not None
        assert result.audit_report.ok, str(result.audit_report)
        assert result.audit_report.checked_events > 0

    def test_disk_pressure_run_with_evictions_audits_clean(self):
        platform = make_platform(num_compute=2, num_storage=2,
                                 disk_space_mb=160.0)
        batch = generate_synthetic_batch(
            14, 20, 3, 2, hot_probability=0.3, seed=5
        )
        result = run_batch(batch, platform, "minmin", audit=True)
        assert result.audit_report.ok, str(result.audit_report)
        # The point of this configuration is to exercise the eviction path.
        assert result.stats.evictions > 0

    def test_overlap_ablation_skips_e4_only(self):
        platform = make_platform(num_compute=2, num_storage=2)
        batch = generate_synthetic_batch(10, 12, 2, 2, seed=3)
        result = run_batch(
            batch, platform, "minmin", overlap_io_compute=True, audit=True
        )
        assert result.audit_report.ok, str(result.audit_report)


class TestCleanTrace:
    def test_small_run_verifies(self):
        rt, res = small_run()
        report = audit_runtime(rt, [res])
        assert report.ok, str(report)
        assert report.checked_events == len(rt.trail.transfers) + len(
            rt.trail.execs
        )

    def test_requires_trail(self):
        platform = make_platform()
        batch = Batch([Task("t", ("a",), 1.0)],
                      {"a": FileInfo("a", 10.0, 0)})
        state = ClusterState.initial(platform, batch)
        rt = Runtime(platform, state)  # audit disabled
        rt.execute(batch.tasks, {"t": 0})
        with pytest.raises(ValueError, match="audit=True"):
            audit_runtime(rt)


class TestCorruptedTraces:
    """Each deliberately corrupted trace must be flagged with its code."""

    def test_port_interval_overlap_flagged_e1(self):
        rt, _ = small_run()
        tl = rt.node_tl[0]
        first = tl.intervals[0]
        # Bypass reserve() — splice an overlapping busy interval in.
        mid = (first.start + first.end) / 2
        tl._intervals.append(Interval(mid, first.end + 1.0, "xfer:evil->0"))
        tl._starts.append(mid)
        report = audit_runtime(rt)
        assert any(v.code == "E1" for v in report.violations), str(report)

    def test_transfer_after_exec_start_flagged_e2(self):
        rt, _ = small_run()
        trail = rt.trail
        tr = trail.transfers[0]
        trail.transfers[0] = dataclasses.replace(tr, end=tr.end + 1000.0)
        report = audit_runtime(rt)
        assert any(v.code == "E2" for v in report.violations), str(report)

    def test_missing_transfer_flagged_e2(self):
        rt, _ = small_run()
        consumed = rt.trail.transfers[0]
        rt.trail.transfers[:] = [
            t for t in rt.trail.transfers if t.file_id != consumed.file_id
        ]
        report = audit_runtime(rt)
        assert any(
            v.code == "E2" and "no transfer" in v.message
            for v in report.violations
        ), str(report)

    def test_disk_overflow_flagged_e3(self):
        rt, _ = small_run(disk_space_mb=250.0)
        rt.trail.record_transfer("huge", 10_000.0, "remote", 0, 0, 0.0, 1.0)
        report = audit_runtime(rt)
        assert any(v.code == "E3" for v in report.violations), str(report)

    def test_phantom_eviction_flagged_e3(self):
        rt, _ = small_run()
        rt.trail.record_eviction(1, "never-staged", 50.0)
        report = audit_runtime(rt)
        assert any(
            v.code == "E3" and "never staged" in v.message
            for v in report.violations
        ), str(report)

    def test_staging_during_execution_flagged_e4(self):
        rt, _ = small_run()
        tl = rt.node_tl[0]
        ex = next(iv for iv in tl.intervals if iv.tag.startswith("exec:"))
        tl._intervals.append(
            Interval(ex.start + 0.1, ex.end - 0.1, "xfer:smuggled->0")
        )
        tl._starts.append(ex.start + 0.1)
        report = audit_runtime(rt)
        assert any(v.code == "E4" for v in report.violations), str(report)

    def test_tampered_record_flagged_e5(self):
        rt, res = small_run()
        rec = res.records[0]
        bad = dataclasses.replace(res, records=[
            dataclasses.replace(rec, exec_start=rec.exec_start - 5.0)
        ])
        report = audit_runtime(rt, [bad])
        assert any(v.code == "E5" for v in report.violations), str(report)

    def test_record_without_exec_event_flagged_e5(self):
        rt, res = small_run()
        ghost = TaskRecord("ghost", 0, 0.0, 0.0, 1.0)
        bad = dataclasses.replace(res, records=[*res.records, ghost])
        report = audit_runtime(rt, [bad])
        assert any(
            v.code == "E5" and "ghost" in v.message
            for v in report.violations
        ), str(report)


class TestReportApi:
    def test_raise_if_violations(self):
        report = AuditReport()
        report.add("E1", "boom")
        with pytest.raises(AuditError, match=r"\[E1\] boom"):
            report.raise_if_violations()

    def test_clean_report_is_ok(self):
        report = AuditReport()
        report.raise_if_violations()
        assert report.ok and str(report) == "OK"

    def test_run_batch_attaches_report(self):
        platform = make_platform()
        batch = generate_synthetic_batch(6, 8, 2, 2, seed=1)
        audited = run_batch(batch, platform, "minmin", audit=True)
        plain = run_batch(batch, platform, "minmin")
        assert audited.audit_report is not None and audited.audit_report.ok
        assert plain.audit_report is None
        assert audited.makespan == pytest.approx(plain.makespan)
