"""Tests for the parallel-purity lint (:mod:`repro.analysis.purity`).

``fixtures_purity/impure_worker.py`` plants the three impurity shapes the
lint exists for (global reseed, shared-state mutation, uncached env read);
the real worker tree under ``src/repro`` must check clean — its only
legitimate reseed (:func:`repro.parallel.pool._seed_cell`) carries a
justified ``noqa`` escape.
"""

from __future__ import annotations

from pathlib import Path

from repro.analysis.purity import check_paths, check_source, iter_rules, main

FIXTURES = Path(__file__).parent / "fixtures_purity"
SRC_REPRO = Path(__file__).resolve().parents[2] / "src" / "repro"


class TestRuleRegistry:
    def test_single_rule(self):
        assert [r.code for r in iter_rules()] == ["RPR009"]


class TestPlantedFixture:
    def test_all_three_impurities_found(self):
        findings = check_paths([FIXTURES / "impure_worker.py"])
        assert findings and all(f.code == "RPR009" for f in findings)
        messages = "\n".join(f.message for f in findings)
        assert "random.seed" in messages
        assert "_SEEN" in messages
        assert "REPRO_SECRET_KNOB" in messages

    def test_findings_name_the_worker_entry(self):
        findings = check_paths([FIXTURES / "impure_worker.py"])
        assert all("impure_worker:cell" in f.message for f in findings)

    def test_transitive_callee_is_walked(self):
        # The ``_SEEN`` mutation lives in ``_helper``, one call away from
        # the worker — the traversal must reach it.
        findings = check_paths([FIXTURES / "impure_worker.py"])
        helper_lines = [f for f in findings if "_SEEN" in f.message]
        assert helper_lines, findings

    def test_clean_worker_has_no_findings(self):
        assert check_paths([FIXTURES / "clean_worker.py"]) == []

    def test_allow_env_silences_the_env_read(self):
        findings = check_paths(
            [FIXTURES / "impure_worker.py"], allow_env=["REPRO_SECRET_KNOB"]
        )
        assert all("REPRO_SECRET_KNOB" not in f.message for f in findings)
        assert findings  # the other impurities remain


class TestEntryDiscovery:
    def test_submit_entries_are_discovered(self):
        src = (
            "from concurrent.futures import ProcessPoolExecutor\n"
            "import random\n"
            "def job(x):\n"
            "    random.seed(x)\n"
            "    return x\n"
            "def run():\n"
            "    pool = ProcessPoolExecutor()\n"
            "    return pool.submit(job, 1).result()\n"
        )
        findings = check_source(src, "pool_submit.py")
        assert [f.code for f in findings] == ["RPR009"]

    def test_no_executor_means_no_entries(self):
        src = (
            "import random\n"
            "def job(x):\n"
            "    random.seed(x)\n"  # impure, but never pooled
            "    return x\n"
        )
        assert check_source(src, "serial.py") == []

    def test_explicit_entry_overrides_discovery(self):
        src = (
            "import random\n"
            "def job(x):\n"
            "    random.seed(x)\n"
            "    return x\n"
        )
        findings = check_source(src, "serial.py", entries=["serial:job"])
        assert [f.code for f in findings] == ["RPR009"]

    def test_global_statement_is_flagged(self):
        src = (
            "from concurrent.futures import ProcessPoolExecutor\n"
            "_COUNT = 0\n"
            "def job(x):\n"
            "    global _COUNT\n"
            "    _COUNT += 1\n"
            "    return x\n"
            "def run(xs):\n"
            "    with ProcessPoolExecutor() as pool:\n"
            "        return list(pool.map(job, xs))\n"
        )
        findings = check_source(src, "counting.py")
        assert findings and all(f.code == "RPR009" for f in findings)

    def test_noqa_suppresses(self):
        src = (
            "from concurrent.futures import ProcessPoolExecutor\n"
            "import random\n"
            "def job(x):\n"
            "    random.seed(x)  # repro: noqa[RPR009]\n"
            "    return x\n"
            "def run(xs):\n"
            "    with ProcessPoolExecutor() as pool:\n"
            "        return list(pool.map(job, xs))\n"
        )
        assert check_source(src, "escaped.py") == []


class TestRepoWorkersAreClean:
    def test_whole_tree_checks_clean(self):
        # The one sanctioned reseed (repro.parallel.pool._seed_cell) is
        # escaped in-module; nothing else may show up.
        assert check_paths([SRC_REPRO]) == []

    def test_seed_cell_escape_is_the_only_one(self):
        # The checkers' own sources mention the escape in docstrings, so
        # the scan skips src/repro/analysis itself.
        escapes = []
        for file in sorted(SRC_REPRO.rglob("*.py")):
            if file.parent.name == "analysis":
                continue
            for i, line in enumerate(file.read_text().splitlines(), 1):
                if "noqa[RPR009]" in line:
                    escapes.append((file.name, i))
        assert [name for name, _ in escapes] == ["pool.py", "pool.py"]


class TestMainEntry:
    def test_findings_exit_one(self, capsys):
        assert main([str(FIXTURES / "impure_worker.py")]) == 1
        out = capsys.readouterr().out
        assert "RPR009" in out

    def test_clean_exit_zero(self, capsys):
        assert main([str(FIXTURES / "clean_worker.py")]) == 0
        assert "clean" in capsys.readouterr().out

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        assert "RPR009" in capsys.readouterr().out

    def test_github_format(self, capsys):
        assert main([str(FIXTURES), "--format", "github"]) == 1
        out = capsys.readouterr().out
        assert "::error file=" in out and "title=RPR009" in out

    def test_allow_env_flag(self, capsys):
        code = main(
            [str(FIXTURES / "impure_worker.py"), "--allow-env", "REPRO_SECRET_KNOB"]
        )
        assert code == 1  # reseed + mutation remain
        assert "REPRO_SECRET_KNOB" not in capsys.readouterr().out
