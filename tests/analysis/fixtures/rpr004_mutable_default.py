"""Lint fixture: mutable default arguments (RPR004)."""


def bad_list_default(tasks=[]):  # RPR004
    return tasks


def bad_dict_call_default(mapping=dict()):  # RPR004
    return mapping


def good_none_default(tasks=None):
    return tasks if tasks is not None else []
