"""Lint fixture: exact equality on simulated-time floats (RPR002)."""


def bad_exact_makespan(result, expected):
    return result.makespan == expected  # RPR002


def bad_exec_start(record):
    if record.exec_start != 0.0:  # RPR002
        return True
    return False


def good_tolerant(result, expected, eps=1e-9):
    return abs(result.makespan - expected) <= eps


def good_none_check(record):
    return record.exec_start is not None and record.start_time == None  # noqa: E711
