"""Lint fixture: unseeded randomness (RPR001). Never imported by tests."""

import random

import numpy as np
from numpy.random import default_rng


def bad_global_draw():
    return random.random()  # RPR001: module-level RNG


def bad_unseeded_instance():
    return random.Random()  # RPR001: no seed argument


def bad_numpy_legacy():
    return np.random.rand(3)  # RPR001: legacy numpy global RNG


def bad_unseeded_generator():
    return default_rng()  # RPR001: no seed argument


def good_seeded(seed):
    rng = random.Random(seed)
    gen = default_rng(seed)
    return rng.random() + gen.random()
