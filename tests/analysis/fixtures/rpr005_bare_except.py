"""Lint fixture: bare ``except:`` clauses (RPR005)."""


def bad_bare_except(action):
    try:
        return action()
    except:  # RPR005
        return None


def good_narrow_except(action):
    try:
        return action()
    except ValueError:
        return None
