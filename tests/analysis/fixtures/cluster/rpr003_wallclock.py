"""Lint fixture: wall-clock reads in a simulator module (RPR003).

Lives under a ``cluster/`` directory so the path-scoped rule applies.
"""

import time
from datetime import datetime


def bad_wallclock_stamp():
    return time.time()  # RPR003: wall clock in simulator code


def bad_datetime_now():
    return datetime.now()  # RPR003


def good_overhead_measurement():
    # perf_counter is the sanctioned way to measure scheduling overhead;
    # it never feeds simulated timestamps.
    return time.perf_counter()
