"""Lint fixture: every violation here carries a ``repro: noqa`` escape."""

import random


def suppressed_draw():
    return random.random()  # repro: noqa[RPR001]


def suppressed_default(acc=[]):  # repro: noqa
    try:
        return acc
    except:  # repro: noqa[RPR005, RPR001]
        return None
