"""Tests for the repo-specific AST linter (RPR001-RPR005)."""

from pathlib import Path

import pytest

import repro
from repro.analysis import iter_rules, lint_paths, lint_source
from repro.analysis.lint import main

FIXTURES = Path(__file__).parent / "fixtures"
SRC_REPRO = Path(repro.__file__).parent


def codes(source, path="mod.py", select=None):
    return [f.code for f in lint_source(source, path, select)]


class TestRuleRegistry:
    def test_five_rules_in_order(self):
        assert [r.code for r in iter_rules()] == [
            "RPR001", "RPR002", "RPR003", "RPR004", "RPR005"
        ]


class TestRPR001Randomness:
    def test_global_module_call(self):
        src = "import random\nx = random.randint(0, 3)\n"
        assert codes(src) == ["RPR001"]

    def test_unseeded_instance(self):
        assert codes("import random\nr = random.Random()\n") == ["RPR001"]

    def test_seeded_instance_ok(self):
        assert codes("import random\nr = random.Random(42)\n") == []

    def test_aliased_numpy_global(self):
        src = "import numpy as np\nv = np.random.shuffle(xs)\n"
        assert codes(src) == ["RPR001"]

    def test_unseeded_default_rng(self):
        src = "import numpy as np\ng = np.random.default_rng()\n"
        assert codes(src) == ["RPR001"]

    def test_seeded_default_rng_ok(self):
        src = "import numpy as np\ng = np.random.default_rng(7)\n"
        assert codes(src) == []

    def test_from_import_of_global_fn(self):
        assert codes("from random import choice\n") == ["RPR001"]

    def test_from_numpy_random_import_global(self):
        assert codes("from numpy.random import rand\n") == ["RPR001"]

    def test_direct_default_rng_import(self):
        src = "from numpy.random import default_rng\ng = default_rng()\n"
        assert codes(src) == ["RPR001"]
        seeded = "from numpy.random import default_rng\ng = default_rng(3)\n"
        assert codes(seeded) == []

    def test_unrelated_module_not_confused(self):
        # A local object named `random` must not trip the rule.
        src = "random = make_policy()\nx = random.random()\n"
        assert codes(src) == []


class TestRPR002TimeEquality:
    def test_eq_on_makespan(self):
        assert codes("ok = res.makespan == 3.5\n") == ["RPR002"]

    def test_noteq_on_bare_name(self):
        assert codes("if ect != best: pass\n") == ["RPR002"]

    def test_suffix_match(self):
        assert codes("hit = node_ect == cand_ect\n") == ["RPR002"]

    def test_ordering_comparisons_ok(self):
        assert codes("ok = res.makespan <= 3.5\n") == []

    def test_none_and_str_exempt(self):
        assert codes("ok = rec.exec_start is None\n") == []
        assert codes("ok = rec.exec_start == None\n") == []
        assert codes("ok = kind == 'start'\n") == []

    def test_non_time_names_ok(self):
        assert codes("ok = node == best_node\n") == []


class TestRPR003WallClock:
    SRC = "import time\nstamp = time.time()\n"

    def test_flagged_in_sim_module(self):
        assert codes(self.SRC, path="src/repro/cluster/runtime.py") == ["RPR003"]
        assert codes(self.SRC, path="src/repro/core/driver.py") == ["RPR003"]

    def test_ignored_outside_sim_packages(self):
        assert codes(self.SRC, path="src/repro/experiments/runner.py") == []

    def test_perf_counter_allowed(self):
        src = "import time\nt0 = time.perf_counter()\n"
        assert codes(src, path="src/repro/core/driver.py") == []

    def test_datetime_now(self):
        src = "from datetime import datetime\nd = datetime.now()\n"
        assert codes(src, path="src/repro/cluster/state.py") == ["RPR003"]

    def test_from_time_import_time(self):
        src = "from time import time\n"
        assert codes(src, path="src/repro/core/jdp.py") == ["RPR003"]


class TestRPR004MutableDefaults:
    def test_literal_defaults(self):
        assert codes("def f(a=[]): pass\n") == ["RPR004"]
        assert codes("def f(a={}): pass\n") == ["RPR004"]

    def test_constructor_defaults(self):
        assert codes("def f(a=dict()): pass\n") == ["RPR004"]

    def test_kwonly_default(self):
        assert codes("def f(*, a=[]): pass\n") == ["RPR004"]

    def test_lambda_default(self):
        assert codes("g = lambda a=[]: a\n") == ["RPR004"]

    def test_none_and_tuple_ok(self):
        assert codes("def f(a=None, b=()): pass\n") == []


class TestRPR005BareExcept:
    def test_bare_flagged(self):
        src = "try:\n    x()\nexcept:\n    pass\n"
        assert codes(src) == ["RPR005"]

    def test_typed_ok(self):
        src = "try:\n    x()\nexcept Exception:\n    pass\n"
        assert codes(src) == []


class TestSuppressionAndSelection:
    def test_noqa_all_codes(self):
        src = "import random\nx = random.random()  # repro: noqa\n"
        assert codes(src) == []

    def test_noqa_specific_code(self):
        src = "import random\nx = random.random()  # repro: noqa[RPR001]\n"
        assert codes(src) == []

    def test_noqa_other_code_does_not_suppress(self):
        src = "import random\nx = random.random()  # repro: noqa[RPR005]\n"
        assert codes(src) == ["RPR001"]

    def test_select_filters(self):
        src = "import random\n\ndef f(a=[]):\n    return random.random()\n"
        assert codes(src) == ["RPR004", "RPR001"]
        assert codes(src, select=["RPR004"]) == ["RPR004"]

    def test_syntax_error_reported_not_raised(self):
        findings = lint_source("def f(:\n", "broken.py")
        assert [f.code for f in findings] == ["RPR000"]


class TestFixtureFiles:
    """End-to-end over real files: each deliberate violation is caught."""

    def test_each_rule_fires_on_its_fixture(self):
        findings = lint_paths([FIXTURES])
        by_file = {}
        for f in findings:
            by_file.setdefault(Path(f.path).name, set()).add(f.code)
        assert by_file["rpr001_random.py"] == {"RPR001"}
        assert by_file["rpr002_time_compare.py"] == {"RPR002"}
        assert by_file["rpr003_wallclock.py"] == {"RPR003"}
        assert by_file["rpr004_mutable_default.py"] == {"RPR004"}
        assert by_file["rpr005_bare_except.py"] == {"RPR005"}
        assert "suppressed.py" not in by_file  # noqa escapes hold

    def test_fixture_finding_count(self):
        assert len(lint_paths([FIXTURES])) == 11

    def test_findings_point_at_lines(self):
        f = next(
            f for f in lint_paths([FIXTURES / "rpr005_bare_except.py"])
        )
        assert f.line == 7
        assert str(f).startswith(f"{f.path}:7:")


class TestRepoIsClean:
    def test_src_repro_lints_clean(self):
        assert lint_paths([SRC_REPRO]) == []


class TestMainEntry:
    def test_clean_tree_exits_zero(self, capsys):
        assert main([str(SRC_REPRO)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_findings_exit_one(self, capsys):
        assert main([str(FIXTURES)]) == 1
        out = capsys.readouterr().out
        assert "RPR001" in out and "11 findings" in out

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in ("RPR001", "RPR005"):
            assert code in out

    def test_select_option(self, capsys):
        assert main([str(FIXTURES), "--select", "RPR002"]) == 1
        out = capsys.readouterr().out
        assert "RPR002" in out and "RPR001" not in out
