"""Tests for the dimensional-analysis checker (:mod:`repro.analysis.units`).

The planted-bug fixtures under ``fixtures_units/`` carry exactly the error
shapes the checker exists for (swapped divide, mixed add, cross-dimension
comparison); the annotated simulator tree itself must check clean with zero
suppressions in ``core/`` and ``cluster/``.
"""

from __future__ import annotations

from pathlib import Path

from repro.analysis.dims import (
    DIMS_BY_NAME,
    Dim,
    convention_dim,
)
from repro.analysis.units import check_paths, check_source, iter_rules, main

FIXTURES = Path(__file__).parent / "fixtures_units"
SRC_REPRO = Path(__file__).resolve().parents[2] / "src" / "repro"


class TestRuleRegistry:
    def test_codes_in_order(self):
        assert [r.code for r in iter_rules()] == ["RPR006", "RPR007", "RPR008"]

    def test_summaries_are_nonempty(self):
        assert all(r.summary for r in iter_rules())


class TestDims:
    def test_aliases_are_annotated_floats(self):
        # The aliases must be transparent to runtime code: plain floats.
        from repro.analysis import dims

        for name in ("MB", "MBps", "Seconds", "Milliseconds", "SecondsPerMB"):
            alias = getattr(dims, name)
            marker = alias.__metadata__[0]
            assert isinstance(marker, Dim)
        assert DIMS_BY_NAME["MB"].data == 1
        assert DIMS_BY_NAME["MBps"] == Dim(data=1, time=-1, label="MBps")
        assert DIMS_BY_NAME["Seconds"].time == 1

    def test_conventions(self):
        assert convention_dim("size_mb") == DIMS_BY_NAME["MB"]
        assert convention_dim("bw_mbps") == DIMS_BY_NAME["MBps"]
        assert convention_dim("bw") == DIMS_BY_NAME["MBps"]
        assert convention_dim("timeout_s") == DIMS_BY_NAME["Seconds"]
        assert convention_dim("elapsed_ms") == DIMS_BY_NAME["Milliseconds"]
        assert convention_dim("hit_rate") == DIMS_BY_NAME["Dimensionless"]
        assert convention_dim("plain_name") is None

    def test_per_mb_names_are_not_megabytes(self):
        # ``compute_cost_per_mb`` ends in ``_mb`` but is seconds-per-MB
        # territory: the convention must not claim it is a size.
        assert convention_dim("compute_cost_per_mb") is None
        assert convention_dim("cost_s_per_mb") == DIMS_BY_NAME["SecondsPerMB"]


class TestPlantedFixtures:
    def _only(self, name: str):
        findings = check_paths([FIXTURES / name])
        assert len(findings) == 1, findings
        return findings[0]

    def test_swapped_divide_is_rpr008(self):
        f = self._only("swapped_divide.py")
        assert f.code == "RPR008"
        assert "Seconds" in f.message

    def test_mixed_add_is_rpr006(self):
        f = self._only("mixed_add.py")
        assert f.code == "RPR006"
        assert "MB" in f.message and "Seconds" in f.message

    def test_mixed_compare_is_rpr007_via_conventions(self):
        f = self._only("mixed_compare.py")
        assert f.code == "RPR007"

    def test_mixed_minmax_is_rpr007(self):
        f = self._only("mixed_minmax.py")
        assert f.code == "RPR007"
        assert "min()" in f.message

    def test_clean_fixture_has_no_findings(self):
        assert check_paths([FIXTURES / "clean.py"]) == []

    def test_whole_fixture_dir(self):
        codes = sorted(f.code for f in check_paths([FIXTURES]))
        assert codes == ["RPR006", "RPR007", "RPR007", "RPR008"]


class TestCheckSource:
    def test_annotation_seeds_lattice(self):
        src = (
            "def f(size_mb: MB, delay_s: Seconds) -> Seconds:\n"
            "    return size_mb + delay_s\n"
        )
        findings = check_source(src)
        assert [f.code for f in findings] == ["RPR006"]

    def test_assignment_tracks_dimensions(self):
        src = (
            "def f(size_mb: MB, bw: MBps) -> Seconds:\n"
            "    t = size_mb / bw\n"
            "    return t\n"
        )
        assert check_source(src) == []

    def test_wrong_assignment_dimension_flagged(self):
        src = (
            "x_mb: MB = 10.0\n"
            "def f(delay_s: Seconds) -> Seconds:\n"
            "    if delay_s < x_mb:\n"
            "        return 0.0\n"
            "    return delay_s\n"
        )
        findings = check_source(src)
        assert [f.code for f in findings] == ["RPR007"]

    def test_cross_function_return_dims_propagate(self):
        src = (
            "def cost(size_mb: MB, bw: MBps) -> Seconds:\n"
            "    return size_mb / bw\n"
            "def caller(size_mb: MB, bw: MBps) -> MB:\n"
            "    return cost(size_mb, bw)\n"
        )
        findings = check_source(src)
        assert [f.code for f in findings] == ["RPR008"]
        assert findings[0].line == 4

    def test_numeric_literals_are_polymorphic(self):
        src = (
            "def f(size_mb: MB) -> MB:\n"
            "    return 2.0 * size_mb + 1.5\n"
        )
        assert check_source(src) == []

    def test_optional_annotations_unwrap(self):
        src = (
            "def f(limit_s: Seconds | None, elapsed_s: Seconds) -> bool:\n"
            "    return limit_s is not None and elapsed_s > limit_s\n"
        )
        assert check_source(src) == []

    def test_syntax_error_becomes_rpr000(self):
        findings = check_source("def broken(:\n")
        assert [f.code for f in findings] == ["RPR000"]

    def test_noqa_suppresses(self):
        src = (
            "def f(size_mb: MB, delay_s: Seconds):\n"
            "    return size_mb + delay_s  # repro: noqa[RPR006]\n"
        )
        assert check_source(src) == []


class TestCrossModuleHarvest:
    def test_check_paths_shares_annotations_across_files(self, tmp_path):
        (tmp_path / "defs.py").write_text(
            "def transfer_time(size_mb: MB, bw: MBps) -> Seconds:\n"
            "    return size_mb / bw\n"
        )
        (tmp_path / "use.py").write_text(
            "def bad(size_mb):\n"
            "    return size_mb + transfer_time(size_mb)\n"
        )
        findings = check_paths([tmp_path])
        assert [f.code for f in findings] == ["RPR006"]
        assert findings[0].path.endswith("use.py")


class TestRepoIsDimensionallyClean:
    def test_whole_tree_checks_clean(self):
        assert check_paths([SRC_REPRO]) == []

    def test_no_units_suppressions_in_core_or_cluster(self):
        # Acceptance bar: the annotated simulator needs zero escapes.
        for pkg in ("core", "cluster"):
            for file in sorted((SRC_REPRO / pkg).rglob("*.py")):
                text = file.read_text()
                for code in ("RPR006", "RPR007", "RPR008", "RPR009"):
                    assert code not in text, f"{file} suppresses {code}"


class TestMainEntry:
    def test_clean_exit_zero(self, capsys):
        assert main([str(FIXTURES / "clean.py")]) == 0
        assert "clean" in capsys.readouterr().out

    def test_findings_exit_one(self, capsys):
        assert main([str(FIXTURES)]) == 1
        out = capsys.readouterr().out
        assert "4 findings" in out

    def test_select(self, capsys):
        assert main([str(FIXTURES), "--select", "RPR008"]) == 1
        out = capsys.readouterr().out
        assert "1 finding" in out and "RPR008" in out

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        assert "RPR006" in out and "RPR008" in out

    def test_github_format(self, capsys):
        assert main([str(FIXTURES / "mixed_add.py"), "--format", "github"]) == 1
        out = capsys.readouterr().out
        assert "::error file=" in out and "title=RPR006" in out

    def test_json_format(self, capsys):
        import json

        assert main([str(FIXTURES / "mixed_add.py"), "--format", "json"]) == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc[0]["code"] == "RPR006"
