"""Planted bugs: a process-pool worker touching shared state (RPR009).

Three distinct impurities, all reachable from the ``cell`` worker:

* ``random.seed`` reseeds a process-global RNG;
* ``_helper`` appends to a module-level list (hidden cross-cell state);
* the worker reads an environment variable that is not part of any
  result-cache key.
"""

import os
import random
from concurrent.futures import ProcessPoolExecutor

_SEEN: list = []


def _helper(x):
    _SEEN.append(x)


def cell(x):
    random.seed(42)
    _helper(x)
    knob = os.environ.get("REPRO_SECRET_KNOB", "")
    return (x, knob)


def sweep(xs):
    with ProcessPoolExecutor(max_workers=2) as pool:
        return list(pool.map(cell, xs))
