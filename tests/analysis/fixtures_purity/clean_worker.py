"""A pure process-pool worker: the purity lint must report nothing."""

from concurrent.futures import ProcessPoolExecutor


def cell(x):
    return x * x


def sweep(xs):
    with ProcessPoolExecutor() as pool:
        return list(pool.map(cell, xs))
