"""Edge cases of the shared ``# repro: noqa[...]`` escape and renderers.

All three checkers (lint, units, purity) share :mod:`repro.analysis.common`;
these tests pin down the corner cases of the escape syntax — multiple codes,
whitespace, unknown codes, continuation lines — and the three output
formats.
"""

from __future__ import annotations

import json

from repro.analysis.common import (
    FORMATS,
    Finding,
    filter_findings,
    noqa_codes,
    render_findings,
)
from repro.analysis.lint import lint_source


class TestNoqaParsing:
    def test_bare_noqa_suppresses_everything(self):
        assert noqa_codes("x = 1  # repro: noqa") == frozenset()

    def test_single_code(self):
        assert noqa_codes("x = 1  # repro: noqa[RPR001]") == {"RPR001"}

    def test_multiple_codes_with_spaces(self):
        line = "x = 1  # repro: noqa[RPR001, RPR006 , RPR009]"
        assert noqa_codes(line) == {"RPR001", "RPR006", "RPR009"}

    def test_case_insensitive(self):
        assert noqa_codes("x = 1  # REPRO: NOQA[rpr002]") == {"RPR002"}

    def test_no_marker(self):
        assert noqa_codes("x = 1  # plain comment") is None
        assert noqa_codes("x = 1") is None

    def test_unknown_code_does_not_suppress_others(self):
        src = "import random\nrandom.random()  # repro: noqa[RPR999]\n"
        findings = lint_source(src)
        assert [f.code for f in findings] == ["RPR001"]

    def test_listed_code_must_match(self):
        src = "import random\nrandom.random()  # repro: noqa[RPR002]\n"
        assert [f.code for f in lint_source(src)] == ["RPR001"]
        src_ok = "import random\nrandom.random()  # repro: noqa[RPR001]\n"
        assert lint_source(src_ok) == []


class TestContinuationLines:
    def _finding(self, **kw):
        base = dict(
            path="x.py", line=1, col=0, code="RPR006", message="mixed"
        )
        base.update(kw)
        return Finding(**base)

    def test_noqa_on_first_line(self):
        lines = ["a = (size_mb  # repro: noqa[RPR006]", "     + delay_s)"]
        f = self._finding(line=1, end_line=2)
        assert filter_findings([f], lines) == []

    def test_noqa_on_last_line_of_multiline_expression(self):
        lines = ["a = (size_mb", "     + delay_s)  # repro: noqa[RPR006]"]
        f = self._finding(line=1, end_line=2)
        assert filter_findings([f], lines) == []

    def test_noqa_on_middle_line_does_not_suppress(self):
        lines = [
            "a = (size_mb",
            "     # repro: noqa[RPR006]",
            "     + delay_s)",
        ]
        f = self._finding(line=1, end_line=3)
        assert filter_findings([f], lines) == [f]

    def test_without_end_line_only_first_line_counts(self):
        lines = ["a = (size_mb", "     + delay_s)  # repro: noqa[RPR006]"]
        f = self._finding(line=1, end_line=None)
        assert filter_findings([f], lines) == [f]

    def test_select_filter(self):
        f6 = self._finding(code="RPR006")
        f7 = self._finding(code="RPR007", col=4)
        got = filter_findings([f7, f6], ["a = b"], select=["RPR007"])
        assert got == [f7]

    def test_sorted_by_position(self):
        f_late = self._finding(line=5)
        f_early = self._finding(line=2)
        got = filter_findings([f_late, f_early], ["x"] * 6)
        assert [f.line for f in got] == [2, 5]


class TestRenderFormats:
    F = Finding("src/x.py", 3, 4, "RPR006", "50% slower\nsecond line")

    def test_formats_tuple(self):
        assert FORMATS == ("text", "json", "github")

    def test_text(self):
        out = render_findings([self.F], "text")
        assert "src/x.py:3:4: RPR006" in out
        assert out.endswith("1 finding")

    def test_text_clean(self):
        assert render_findings([], "text") == "clean: no findings"

    def test_json_round_trips(self):
        doc = json.loads(render_findings([self.F], "json"))
        assert doc == [
            {
                "path": "src/x.py",
                "line": 3,
                "col": 4,
                "end_line": None,
                "code": "RPR006",
                "message": "50% slower\nsecond line",
            }
        ]

    def test_github_escapes_workflow_syntax(self):
        out = render_findings([self.F], "github")
        line = out.splitlines()[0]
        # Columns are 1-based for GitHub annotations; % and newlines must
        # be escaped or the workflow command is cut short.
        assert line.startswith("::error file=src/x.py,line=3,col=5,title=RPR006::")
        assert "%25" in line and "%0A" in line
        assert "\n50" not in line


class TestCliAggregation:
    """``repro lint`` runs all nine codes in one pass."""

    def test_lint_command_reports_units_and_purity_codes(self, capsys, tmp_path):
        from repro.cli import main as cli_main

        bad = tmp_path / "bad.py"
        bad.write_text(
            "import random\n"
            "from concurrent.futures import ProcessPoolExecutor\n"
            "def job(size_mb, delay_s):\n"
            "    random.seed(0)\n"
            "    return size_mb + delay_s\n"
            "def run(xs):\n"
            "    with ProcessPoolExecutor() as pool:\n"
            "        return list(pool.map(job, xs))\n"
        )
        assert cli_main(["lint", str(bad)]) == 1
        out = capsys.readouterr().out
        assert "RPR006" in out  # units: size_mb + delay_s
        assert "RPR009" in out  # purity: reseed inside a pooled worker

    def test_lint_list_rules_shows_all_nine(self, capsys):
        from repro.cli import main as cli_main

        assert cli_main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for n in range(1, 10):
            assert f"RPR00{n}" in out

    def test_units_and_purity_subcommands(self, capsys, tmp_path):
        from repro.cli import main as cli_main

        clean = tmp_path / "clean.py"
        clean.write_text("def f(x):\n    return x\n")
        assert cli_main(["units", str(clean)]) == 0
        assert cli_main(["purity", str(clean)]) == 0
        out = capsys.readouterr().out
        assert out.count("clean: no findings") == 2
