"""Dimensionally correct module: the checker must report nothing here."""

from repro.analysis.dims import MB, MBps, Seconds


def transfer_time(size_mb: MB, bw: MBps) -> Seconds:
    return size_mb / bw


def slack(deadline_s: Seconds, eta_s: Seconds) -> Seconds:
    return max(0.0, deadline_s - eta_s)


def total_volume(sizes_mb: list) -> MB:
    total = 0.0
    for size_mb in sizes_mb:
        total += size_mb
    return total
