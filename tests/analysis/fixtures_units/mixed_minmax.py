"""Planted bug: min() over a size and a completion time (RPR007)."""


def worst(size_mb, eta_s):
    return min(size_mb, eta_s)
