"""Planted bug: adds a file size to a delay (MB + Seconds, RPR006)."""

from repro.analysis.dims import MB, Seconds


def padded_size(size_mb: MB, delay_s: Seconds) -> MB:
    return size_mb + delay_s
