"""Planted bug: compares a size against a timeout (RPR007).

No annotations at all — both dimensions come from the ``*_mb`` / ``*_s``
naming conventions.
"""


def too_big(size_mb, timeout_s):
    return size_mb > timeout_s
