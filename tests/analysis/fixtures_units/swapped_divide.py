"""Planted bug: multiplies size by bandwidth where it should divide.

The result has dimension MB^2/s, not seconds — the checker must flag the
return against the ``Seconds`` annotation (RPR008).
"""

from repro.analysis.dims import MB, MBps, Seconds


def transfer_time(size_mb: MB, bw: MBps) -> Seconds:
    return size_mb * bw
