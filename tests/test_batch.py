"""Unit tests for the batch/task/file data model and sharing metrics."""

import pytest

from repro.batch import (
    Batch,
    FileInfo,
    Task,
    overlap_fraction,
    pairwise_overlap,
)


@pytest.fixture
def batch():
    files = {
        "a": FileInfo("a", 10.0, 0),
        "b": FileInfo("b", 20.0, 1),
        "c": FileInfo("c", 30.0, 0),
    }
    tasks = [
        Task("t0", ("a", "b"), 1.0),
        Task("t1", ("b", "c"), 2.0),
        Task("t2", ("a", "b", "c"), 3.0),
    ]
    return Batch(tasks, files)


class TestValidation:
    def test_file_validation(self):
        with pytest.raises(ValueError):
            FileInfo("f", 0.0, 0)
        with pytest.raises(ValueError):
            FileInfo("f", 5.0, -1)

    def test_task_validation(self):
        with pytest.raises(ValueError):
            Task("t", (), 1.0)
        with pytest.raises(ValueError):
            Task("t", ("a", "a"), 1.0)
        with pytest.raises(ValueError):
            Task("t", ("a",), -1.0)

    def test_unknown_file_rejected(self):
        with pytest.raises(ValueError):
            Batch([Task("t", ("zzz",), 1.0)], {})

    def test_duplicate_task_ids_rejected(self):
        f = {"a": FileInfo("a", 1.0, 0)}
        with pytest.raises(ValueError):
            Batch([Task("t", ("a",), 1.0), Task("t", ("a",), 2.0)], f)


class TestAccessors:
    def test_len_iter(self, batch):
        assert len(batch) == 3
        assert [t.task_id for t in batch] == ["t0", "t1", "t2"]

    def test_lookup(self, batch):
        assert batch.task("t1").compute_time == 2.0
        assert batch.file("c").size_mb == 30.0
        assert batch.file_size("a") == 10.0

    def test_task_input_mb(self, batch):
        assert batch.task_input_mb("t0") == 30.0
        assert batch.task_input_mb(batch.task("t2")) == 60.0

    def test_access_map(self, batch):
        acc = batch.access_map()
        assert acc["t0"] == ("a", "b")

    def test_require_map(self, batch):
        req = batch.require_map()
        assert set(req["b"]) == {"t0", "t1", "t2"}
        assert set(req["a"]) == {"t0", "t2"}

    def test_referenced_files(self, batch):
        assert batch.referenced_files() == {"a", "b", "c"}

    def test_volumes(self, batch):
        assert batch.distinct_file_mb == 60.0
        assert batch.total_access_mb == 30.0 + 50.0 + 60.0
        assert batch.total_compute_time == 6.0
        assert batch.max_task_footprint_mb() == 60.0

    def test_subset(self, batch):
        sub = batch.subset(["t0"])
        assert len(sub) == 1
        assert sub.referenced_files() == {"a", "b"}

    def test_subset_unknown_task(self, batch):
        with pytest.raises(KeyError):
            batch.subset(["nope"])


class TestOverlapMetrics:
    def test_overlap_fraction_zero_when_disjoint(self):
        files = {f"f{i}": FileInfo(f"f{i}", 1.0, 0) for i in range(4)}
        tasks = [Task(f"t{i}", (f"f{i}",), 1.0) for i in range(4)]
        assert overlap_fraction(Batch(tasks, files)) == 0.0

    def test_overlap_fraction_high_when_identical(self):
        files = {"f": FileInfo("f", 1.0, 0)}
        tasks = [Task(f"t{i}", ("f",), 1.0) for i in range(10)]
        assert overlap_fraction(Batch(tasks, files)) == pytest.approx(0.9)

    def test_pairwise_identical(self):
        files = {"f": FileInfo("f", 1.0, 0), "g": FileInfo("g", 1.0, 0)}
        tasks = [Task(f"t{i}", ("f", "g"), 1.0) for i in range(3)]
        assert pairwise_overlap(Batch(tasks, files)) == pytest.approx(1.0)

    def test_pairwise_disjoint(self):
        files = {f"f{i}": FileInfo(f"f{i}", 1.0, 0) for i in range(4)}
        tasks = [
            Task("t0", ("f0", "f1"), 1.0),
            Task("t1", ("f2", "f3"), 1.0),
        ]
        assert pairwise_overlap(Batch(tasks, files)) == 0.0

    def test_pairwise_partial(self, batch):
        # pairs: (t0,t1): |{b}|/2=0.5; (t0,t2): |{a,b}|/2=1.0; (t1,t2): 1.0
        assert pairwise_overlap(batch) == pytest.approx((0.5 + 1.0 + 1.0) / 3)

    def test_pairwise_sampling(self):
        files = {f"f{i}": FileInfo(f"f{i}", 1.0, 0) for i in range(3)}
        tasks = [Task(f"t{i}", ("f0",), 1.0) for i in range(30)]
        b = Batch(tasks, files)
        assert pairwise_overlap(b, sample_pairs=50, seed=1) == pytest.approx(1.0)

    def test_single_task_batch(self):
        files = {"f": FileInfo("f", 1.0, 0)}
        b = Batch([Task("t", ("f",), 1.0)], files)
        assert pairwise_overlap(b) == 0.0
        assert overlap_fraction(b) == 0.0
