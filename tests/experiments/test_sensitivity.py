"""Tests for the replication-advantage sensitivity sweep."""

import pytest

from repro.experiments import replication_advantage_sweep


class TestSweepStructure:
    @pytest.fixture(scope="class")
    def table(self):
        return replication_advantage_sweep(
            ratios=(1.0, 10.0),
            num_tasks=12,
            schemes=("bipartition", "minmin"),
        )

    def test_record_grid(self, table):
        assert len(table.records) == 4  # 2 ratios x 2 schemes
        assert {r.x for r in table.records} == {1.0, 10.0}
        assert {r.scheme for r in table.records} == {"bipartition", "minmin"}

    def test_makespans_positive(self, table):
        assert all(r.makespan_s > 0 for r in table.records)

    def test_cheaper_replication_never_slower_for_bipartition(self, table):
        by = {
            r.x: r.makespan_s
            for r in table.records
            if r.scheme == "bipartition"
        }
        # More interconnect bandwidth can only help a fixed mapping.
        assert by[10.0] <= by[1.0] * 1.05

    def test_platform_name_encodes_ratio(self):
        from repro.experiments.sensitivity import _platform

        p = _platform(100.0, 500.0)
        assert p.name == "sweep-5x"
        assert p.replication_bandwidth == 500.0
        assert p.remote_bandwidth(0) == 100.0
