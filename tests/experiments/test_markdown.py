"""Tests for the EXPERIMENTS.md generator (tiny scale)."""

import pytest

from repro.experiments.markdown import (
    _overlap_observation,
    generate_experiments_markdown,
)
from repro.experiments.report import Record, Table


class TestOverlapObservation:
    def _table(self):
        t = Table("demo")
        for scheme, span in (("bipartition", 10.0), ("minmin", 15.0), ("ip", 9.0)):
            t.add(
                Record(
                    experiment="e", workload="image", scheme=scheme,
                    x="high", makespan_s=span,
                )
            )
        return t

    def test_mentions_best_scheme(self):
        obs = _overlap_observation(self._table())
        assert "best=ip" in obs

    def test_ratio_reported(self):
        obs = _overlap_observation(self._table())
        assert "1.50x faster than minmin" in obs
        assert "bipartition/ip = 1.11" in obs


@pytest.mark.slow
def test_generate_markdown_tiny():
    md = generate_experiments_markdown(
        num_tasks=8,
        ip_time_limit=5.0,
        fig5b_sizes=(20, 40),
        fig5b_disk_mb=1200.0,
        fig6_tasks=24,
        fig6_nodes=(2, 4),
    )
    # Every figure section present.
    for heading in (
        "Figure 3(a)", "Figure 3(b)", "Figure 4(a)", "Figure 4(b)",
        "Figure 5(a)", "Figure 5(b)", "Figure 6(a)", "Figure 6(b)",
        "Known deviations",
    ):
        assert heading in md, heading
    # Tables rendered with data rows.
    assert "bipartition" in md
    assert "makespan_s" in md
