"""Structure tests for the remaining figure builders at tiny scale."""

import pytest

from repro.experiments import (
    fig4_sat_overlap,
    fig5b_batch_size,
    fig6a_compute_scaling,
    fig6b_scheduling_overhead,
)


class TestFig4:
    def test_reduced_grid(self):
        t = fig4_sat_overlap(
            storage="xio", num_tasks=8, schemes=("bipartition", "jdp")
        )
        assert len(t.records) == 6
        assert {r.workload for r in t.records} == {"sat"}
        assert {r.x for r in t.records} == {"high", "medium", "low"}


class TestFig5b:
    def test_reduced_grid(self):
        t = fig5b_batch_size(
            batch_sizes=(12, 24),
            disk_space_mb=1500.0,
            schemes=("bipartition", "minmin"),
        )
        assert len(t.records) == 4
        assert {r.x for r in t.records} == {12, 24}

    def test_makespan_grows_with_batch(self):
        t = fig5b_batch_size(
            batch_sizes=(12, 36),
            disk_space_mb=1500.0,
            schemes=("bipartition",),
        )
        by = {r.x: r.makespan_s for r in t.records}
        assert by[36] > by[12]


class TestFig6a:
    def test_reduced_grid(self):
        t = fig6a_compute_scaling(
            node_counts=(2, 4), num_tasks=16, schemes=("bipartition",)
        )
        assert len(t.records) == 2
        by = {r.x: r.makespan_s for r in t.records}
        # Doubling nodes should not slow the tiny batch down much.
        assert by[4] <= by[2] * 1.2


class TestFig6b:
    def test_ip_truncated_and_timed(self):
        t = fig6b_scheduling_overhead(
            node_counts=(2,),
            num_tasks=16,
            schemes=("ip", "jdp"),
            ip_task_cap=6,
            ip_time_limit=5.0,
        )
        ip = next(r for r in t.records if r.scheme == "ip")
        jdp = next(r for r in t.records if r.scheme == "jdp")
        assert ip.scheduling_ms_per_task > jdp.scheduling_ms_per_task
