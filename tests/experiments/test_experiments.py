"""Tests for the experiment runner, figure builders and reporting."""

import math

import pytest

from repro.experiments import (
    ExperimentConfig,
    Record,
    Table,
    default_scheduler_kwargs,
    fig3_image_overlap,
    fig5a_replication_benefit,
    run_config,
)


class TestConfig:
    def test_platform_construction(self):
        cfg = ExperimentConfig(
            experiment="t", workload="image", overlap="high",
            num_tasks=10, storage="xio", num_compute=3, num_storage=5,
        )
        p = cfg.platform()
        assert p.num_compute == 3
        assert p.num_storage == 5
        assert p.shared_link_bw is None

    def test_osumed_platform(self):
        cfg = ExperimentConfig(
            experiment="t", workload="sat", overlap="low",
            num_tasks=10, storage="osumed",
        )
        assert cfg.platform().shared_link_bw is not None

    def test_batch_generation(self):
        cfg = ExperimentConfig(
            experiment="t", workload="sat", overlap="high",
            num_tasks=12, storage="xio",
        )
        assert len(cfg.batch()) == 12

    def test_disk_space_applied(self):
        cfg = ExperimentConfig(
            experiment="t", workload="image", overlap="high",
            num_tasks=10, storage="xio", disk_space_mb=5000.0,
        )
        assert cfg.platform().aggregate_disk_space == 20000.0

    def test_default_kwargs(self):
        assert default_scheduler_kwargs("ip")["time_limit"] == 30.0
        assert default_scheduler_kwargs("bipartition") == {}


class TestRunConfig:
    def test_produces_record(self):
        cfg = ExperimentConfig(
            experiment="unit", workload="image", overlap="high",
            num_tasks=8, storage="xio", scheme="bipartition",
        )
        rec = run_config(cfg, x="high")
        assert rec.experiment == "unit"
        assert rec.makespan_s > 0
        assert rec.scheme == "bipartition"

    def test_norep_scheme_label(self):
        cfg = ExperimentConfig(
            experiment="unit", workload="image", overlap="high",
            num_tasks=8, storage="xio", scheme="bipartition",
            allow_replication=False,
        )
        rec = run_config(cfg)
        assert rec.scheme == "bipartition-norep"
        assert rec.replications == 0


class TestFigureBuilders:
    def test_fig3_reduced(self):
        t = fig3_image_overlap(
            storage="xio", num_tasks=8, schemes=("bipartition", "minmin"),
        )
        assert len(t.records) == 6  # 3 overlap levels x 2 schemes
        overlaps = {r.x for r in t.records}
        assert overlaps == {"high", "medium", "zero"}

    def test_fig5a_reduced(self):
        t = fig5a_replication_benefit(num_tasks=8)
        assert len(t.records) == 4  # 2 workloads x (rep, norep)
        schemes = {r.scheme for r in t.records}
        assert "bipartition" in schemes
        assert "bipartition-norep" in schemes


class TestTable:
    def _table(self):
        t = Table("demo")
        t.add(
            Record(
                experiment="e", workload="w", scheme="s", x=1,
                makespan_s=2.5, scheduling_ms_per_task=0.1,
            )
        )
        return t

    def test_render_contains_title_and_data(self):
        out = self._table().render()
        assert "demo" in out
        assert "2.50" in out

    def test_render_custom_columns(self):
        out = self._table().render(columns=("scheme", "makespan_s"))
        assert "scheme" in out
        assert "workload" not in out

    def test_csv(self):
        csv = self._table().to_csv(("scheme", "makespan_s"))
        assert csv.splitlines()[0] == "scheme,makespan_s"
        assert csv.splitlines()[1] == "s,2.50"

    def test_empty_table_renders(self):
        t = Table("empty")
        assert "empty" in t.render()
