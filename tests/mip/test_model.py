"""Unit tests for the MILP modeling DSL."""

import math

import numpy as np
import pytest

from repro.mip import (
    Constraint,
    LinExpr,
    Model,
    ModelError,
    Sense,
    VarType,
)


class TestVarCreation:
    def test_binary_var_bounds(self):
        m = Model()
        x = m.binary_var("x")
        assert x.vtype is VarType.BINARY
        assert (x.lb, x.ub) == (0.0, 1.0)

    def test_integer_var_bounds(self):
        m = Model()
        x = m.integer_var("x", lb=2, ub=7)
        assert x.vtype is VarType.INTEGER
        assert (x.lb, x.ub) == (2.0, 7.0)

    def test_continuous_default_bounds(self):
        m = Model()
        x = m.continuous_var("x")
        assert x.lb == 0.0
        assert x.ub == math.inf

    def test_indices_are_sequential(self):
        m = Model()
        vars_ = [m.binary_var(f"v{i}") for i in range(5)]
        assert [v.index for v in vars_] == list(range(5))

    def test_duplicate_name_rejected(self):
        m = Model()
        m.binary_var("x")
        with pytest.raises(ModelError):
            m.binary_var("x")

    def test_auto_names_unique(self):
        m = Model()
        a = m.binary_var()
        b = m.binary_var()
        assert a.name != b.name

    def test_bad_bounds_rejected(self):
        m = Model()
        with pytest.raises(ModelError):
            m.continuous_var("x", lb=3, ub=1)

    def test_binary_var_dict(self):
        m = Model()
        d = m.binary_var_dict(["a", "b"], "T")
        assert set(d) == {"a", "b"}
        assert d["a"].name == "T[a]"


class TestLinExpr:
    def setup_method(self):
        self.m = Model()
        self.x = self.m.binary_var("x")
        self.y = self.m.binary_var("y")

    def test_add_vars(self):
        e = self.x + self.y
        assert e.coeffs == {0: 1.0, 1: 1.0}

    def test_add_constant(self):
        e = self.x + 3
        assert e.constant == 3.0

    def test_radd(self):
        e = 3 + self.x
        assert e.constant == 3.0
        assert e.coeffs == {0: 1.0}

    def test_sub(self):
        e = self.x - self.y
        assert e.coeffs == {0: 1.0, 1: -1.0}

    def test_rsub(self):
        e = 5 - self.x
        assert e.constant == 5.0
        assert e.coeffs == {0: -1.0}

    def test_scalar_mult(self):
        e = 2 * self.x + self.y * 3
        assert e.coeffs == {0: 2.0, 1: 3.0}

    def test_negation(self):
        e = -self.x
        assert e.coeffs == {0: -1.0}

    def test_combined_terms(self):
        e = self.x + self.x
        assert e.coeffs == {0: 2.0}

    def test_from_terms(self):
        e = LinExpr.from_terms([(self.x, 2.0), (self.y, 1.0), (self.x, 3.0)], 4.0)
        assert e.coeffs == {0: 5.0, 1: 1.0}
        assert e.constant == 4.0

    def test_add_term_inplace(self):
        e = LinExpr()
        e.add_term(self.x, 1.5).add_term(self.x, 0.5)
        assert e.coeffs == {0: 2.0}

    def test_value(self):
        e = 2 * self.x + 3 * self.y + 1
        assert e.value([1.0, 1.0]) == 6.0
        assert e.value([0.0, 1.0]) == 4.0

    def test_numpy_scalars_accepted(self):
        e = np.float64(2.0) * self.x + np.int64(3)
        assert e.coeffs == {0: 2.0}
        assert e.constant == 3.0

    def test_vector_mult_rejected(self):
        with pytest.raises(TypeError):
            self.x * self.y  # bilinear terms are not supported

    def test_bad_operand_rejected(self):
        with pytest.raises(TypeError):
            self.x + "nope"


class TestConstraints:
    def setup_method(self):
        self.m = Model()
        self.x = self.m.binary_var("x")
        self.y = self.m.binary_var("y")

    def test_le_constraint(self):
        c = self.m.add_constr(self.x + self.y <= 1)
        assert c.ub == 1.0
        assert c.lb == -math.inf

    def test_ge_constraint(self):
        c = self.m.add_constr(self.x + self.y >= 1)
        assert c.lb == 1.0
        assert c.ub == math.inf

    def test_eq_constraint(self):
        c = self.m.add_constr(self.x + self.y == 1)
        assert (c.lb, c.ub) == (1.0, 1.0)

    def test_constant_folded_into_bounds(self):
        c = self.m.add_constr(self.x + 2 <= 5)
        assert c.ub == 3.0
        assert c.expr.constant == 0.0

    def test_constraint_naming(self):
        c = self.m.add_constr(self.x <= 1, name="cap")
        assert c.name == "cap"

    def test_default_names_assigned(self):
        c0 = self.m.add_constr(self.x <= 1)
        c1 = self.m.add_constr(self.y <= 1)
        assert c0.name != c1.name

    def test_non_constraint_rejected(self):
        with pytest.raises(ModelError):
            self.m.add_constr(self.x + self.y)  # type: ignore[arg-type]

    def test_violation(self):
        c = Constraint(self.x + self.y, 0.0, 1.0)
        assert c.violation([1.0, 1.0]) == 1.0
        assert c.violation([1.0, 0.0]) == 0.0

    def test_var_le_var(self):
        c = self.m.add_constr(self.x <= self.y)
        assert c.expr.coeffs == {0: 1.0, 1: -1.0}


class TestStandardForm:
    def test_minimize_passthrough(self):
        m = Model(sense=Sense.MINIMIZE)
        x = m.binary_var("x")
        m.set_objective(3 * x + 1)
        sf = m.to_standard_form()
        assert sf.c[0] == 3.0
        assert sf.objective_constant == 1.0
        assert sf.sense_mult == 1.0

    def test_maximize_negates(self):
        m = Model(sense=Sense.MAXIMIZE)
        x = m.binary_var("x")
        m.set_objective(3 * x)
        sf = m.to_standard_form()
        assert sf.c[0] == -3.0
        assert sf.sense_mult == -1.0

    def test_integrality_flags(self):
        m = Model()
        m.binary_var("b")
        m.continuous_var("c")
        m.integer_var("i")
        sf = m.to_standard_form()
        assert sf.integrality.tolist() == [1, 0, 1]

    def test_dense_matrix(self):
        m = Model()
        x = m.binary_var("x")
        y = m.binary_var("y")
        m.add_constr(2 * x + 3 * y <= 6)
        a = m.to_standard_form().dense_matrix()
        assert a.tolist() == [[2.0, 3.0]]

    def test_row_bounds(self):
        m = Model()
        x = m.binary_var("x")
        m.add_constr(x >= 0.5)
        sf = m.to_standard_form()
        assert sf.row_lb[0] == 0.5
        assert sf.row_ub[0] == math.inf


class TestIsFeasible:
    def test_feasible_assignment(self):
        m = Model()
        x = m.binary_var("x")
        y = m.binary_var("y")
        m.add_constr(x + y <= 1)
        assert m.is_feasible([1.0, 0.0])
        assert not m.is_feasible([1.0, 1.0])

    def test_fractional_binary_infeasible(self):
        m = Model()
        m.binary_var("x")
        assert not m.is_feasible([0.5])

    def test_bound_violation_detected(self):
        m = Model()
        m.integer_var("x", lb=0, ub=3)
        assert not m.is_feasible([4.0])

    def test_sense_change_via_set_objective(self):
        m = Model(sense=Sense.MINIMIZE)
        x = m.binary_var("x")
        m.set_objective(x, sense=Sense.MAXIMIZE)
        assert m.sense is Sense.MAXIMIZE
