"""Tests for the MIP presolve pass."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.mip import Model, Sense, Status, presolve, solve


class TestVariableFixing:
    def test_forcing_row_fixes_variables(self):
        # x + y <= 0 with binaries forces both to 0.
        m = Model()
        x = m.binary_var("x")
        y = m.binary_var("y")
        m.add_constr(x + y <= 0)
        res = presolve(m)
        assert not res.infeasible
        assert res.fixed == {"x": 0.0, "y": 0.0}

    def test_lower_forcing(self):
        # x + y >= 2 forces both binaries to 1.
        m = Model()
        x = m.binary_var("x")
        y = m.binary_var("y")
        m.add_constr(x + y >= 2)
        res = presolve(m)
        assert res.fixed == {"x": 1.0, "y": 1.0}

    def test_cascading_fixes(self):
        # z <= x and x <= 0: both end up fixed at 0 after propagation.
        m = Model()
        x = m.binary_var("x")
        z = m.binary_var("z")
        m.add_constr(x <= 0)
        m.add_constr(z <= x)
        res = presolve(m)
        assert res.fixed.get("x") == 0.0
        assert res.fixed.get("z") == 0.0

    def test_integer_rounding(self):
        # 2x <= 5 with x integer tightens to x <= 2.
        m = Model()
        x = m.integer_var("x", lb=0, ub=10)
        m.add_constr(2 * x <= 5)
        res = presolve(m)
        assert res.model.variables[0].ub == 2

    def test_continuous_not_rounded(self):
        m = Model()
        x = m.continuous_var("x", lb=0, ub=10)
        m.add_constr(2 * x <= 5)
        res = presolve(m)
        assert res.model.variables[0].ub == pytest.approx(2.5)


class TestRowHandling:
    def test_redundant_row_removed(self):
        m = Model()
        x = m.binary_var("x")
        y = m.binary_var("y")
        m.add_constr(x + y <= 5)  # always true for binaries
        res = presolve(m)
        assert res.removed_rows == 1
        assert res.model.num_constrs == 0

    def test_binding_row_kept(self):
        m = Model()
        x = m.binary_var("x")
        y = m.binary_var("y")
        m.add_constr(x + y <= 1)
        res = presolve(m)
        assert res.model.num_constrs == 1

    def test_infeasibility_detected(self):
        m = Model()
        x = m.binary_var("x")
        m.add_constr(x >= 2)  # impossible for a binary
        res = presolve(m)
        assert res.infeasible

    def test_conflicting_rows_detected(self):
        m = Model()
        x = m.binary_var("x")
        m.add_constr(x >= 1)
        m.add_constr(x <= 0)
        res = presolve(m)
        assert res.infeasible


class TestSemanticsPreserved:
    def test_objective_preserved(self):
        m = Model(sense=Sense.MAXIMIZE)
        x = m.binary_var("x")
        y = m.binary_var("y")
        m.add_constr(x + y <= 1)
        m.set_objective(3 * x + 2 * y + 1)
        res = presolve(m)
        sol = solve(res.model, "highs")
        assert sol.objective == pytest.approx(4.0)

    def test_paper_eq5_pattern(self):
        # R + Y1 + Y2 <= 1 - 1 (file already present): all zero, and the
        # dependent placement rows become redundant.
        m = Model()
        r = m.binary_var("R")
        y1 = m.binary_var("Y1")
        y2 = m.binary_var("Y2")
        x = m.binary_var("X")
        m.add_constr(r + y1 + y2 <= 0)
        m.add_constr(x <= 1 + r + y1 + y2)  # Eq. 4 with pre=1
        res = presolve(m)
        for name in ("R", "Y1", "Y2"):
            assert res.fixed.get(name) == 0.0
        assert res.model.num_constrs == 0  # both rows resolved

    @settings(max_examples=40, deadline=None)
    @given(st.integers(0, 10_000))
    def test_random_models_same_optimum(self, seed):
        import numpy as np

        rng = np.random.default_rng(seed)
        m = Model(sense=Sense.MAXIMIZE)
        xs = [m.binary_var(f"x{i}") for i in range(int(rng.integers(2, 6)))]
        for _ in range(int(rng.integers(1, 4))):
            coefs = rng.integers(0, 4, size=len(xs))
            bound = int(rng.integers(0, 8))
            m.add_constr(
                sum(int(c) * x for c, x in zip(coefs, xs)) <= bound
            )
        m.set_objective(
            sum(int(c) * x for c, x in zip(rng.integers(-3, 4, size=len(xs)), xs))
        )
        res = presolve(m)
        direct = solve(m, "highs")
        if res.infeasible:
            assert direct.status is Status.INFEASIBLE
            return
        reduced = solve(res.model, "highs")
        assert reduced.status == direct.status
        if direct.status is Status.OPTIMAL:
            assert reduced.objective == pytest.approx(direct.objective)

    def test_branch_bound_uses_presolve(self):
        m = Model()
        x = m.binary_var("x")
        m.add_constr(x >= 2)
        sol = solve(m, "branch-bound")
        assert sol.status is Status.INFEASIBLE
        assert "presolve" in sol.message

    def test_branch_bound_presolve_optional(self):
        m = Model(sense=Sense.MAXIMIZE)
        x = m.binary_var("x")
        m.set_objective(x)
        sol = solve(m, "branch-bound", presolve=False)
        assert sol.objective == pytest.approx(1.0)
