"""Property-based cross-checks of the two MILP backends.

The branch-and-bound solver is built from scratch; HiGHS is an independent
industrial solver. On random models they must agree on feasibility and on
the optimal objective value — a strong correctness oracle for both the
modeling layer's lowering and the B&B search.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.mip import Model, Sense, Status, solve


@st.composite
def random_model(draw):
    """A small random 0-1 model with knapsack/cover style constraints."""
    n = draw(st.integers(min_value=1, max_value=6))
    sense = draw(st.sampled_from([Sense.MINIMIZE, Sense.MAXIMIZE]))
    m = Model("random", sense)
    xs = [m.binary_var(f"x{i}") for i in range(n)]
    coeffs = draw(
        st.lists(
            st.integers(min_value=-5, max_value=5), min_size=n, max_size=n
        )
    )
    n_constrs = draw(st.integers(min_value=0, max_value=4))
    for _ in range(n_constrs):
        row = draw(
            st.lists(
                st.integers(min_value=0, max_value=4), min_size=n, max_size=n
            )
        )
        bound = draw(st.integers(min_value=0, max_value=10))
        kind = draw(st.sampled_from(["le", "ge"]))
        expr = sum(c * x for c, x in zip(row, xs))
        m.add_constr(expr <= bound if kind == "le" else expr >= bound)
    m.set_objective(sum(c * x for c, x in zip(coeffs, xs)))
    return m


def brute_force(m: Model):
    """Enumerate all 0-1 assignments; returns (best_objective, feasible?)."""
    n = m.num_vars
    best = None
    for mask in range(2**n):
        assignment = [(mask >> i) & 1 for i in range(n)]
        if not m.is_feasible(assignment):
            continue
        val = m.objective.value(assignment)
        if best is None:
            best = val
        elif m.sense is Sense.MAXIMIZE:
            best = max(best, val)
        else:
            best = min(best, val)
    return best


@settings(max_examples=60, deadline=None)
@given(random_model())
def test_backends_agree_with_brute_force(m):
    expected = brute_force(m)
    for backend in ("highs", "branch-bound"):
        sol = solve(m, backend)
        if expected is None:
            assert sol.status is Status.INFEASIBLE, backend
        else:
            assert sol.status is Status.OPTIMAL, backend
            assert sol.objective == pytest.approx(expected, abs=1e-6), backend
            assert m.is_feasible(sol.values)


@settings(max_examples=30, deadline=None)
@given(random_model())
def test_solution_values_are_binary(m):
    sol = solve(m, "branch-bound")
    if sol.status.has_solution:
        for v in sol.values:
            assert abs(v - round(v)) < 1e-6


@settings(max_examples=20, deadline=None)
@given(
    st.lists(st.integers(min_value=1, max_value=9), min_size=2, max_size=8),
    st.integers(min_value=1, max_value=30),
)
def test_knapsack_never_exceeds_capacity(weights, capacity):
    m = Model(sense=Sense.MAXIMIZE)
    xs = [m.binary_var(f"x{i}") for i in range(len(weights))]
    m.add_constr(sum(w * x for w, x in zip(weights, xs)) <= capacity)
    m.set_objective(sum(xs))
    sol = solve(m, "branch-bound")
    assert sol.status is Status.OPTIMAL
    used = sum(w * sol.value(x) for w, x in zip(weights, xs))
    assert used <= capacity + 1e-9
    # Greedy lower bound: the solver must pack at least as many items as
    # taking the lightest items first.
    greedy, acc = 0, 0
    for w in sorted(weights):
        if acc + w > capacity:
            break
        acc += w
        greedy += 1
    assert sol.objective >= greedy - 1e-9
