"""Edge-case tests for the MIP layer: degenerate models, bounds, statuses."""

import math

import pytest

from repro.mip import (
    LinExpr,
    Model,
    Sense,
    Status,
    presolve,
    solve,
)


class TestDegenerateModels:
    @pytest.mark.parametrize("backend", ["highs", "branch-bound"])
    def test_no_constraints(self, backend):
        m = Model(sense=Sense.MAXIMIZE)
        x = m.binary_var("x")
        y = m.integer_var("y", lb=-3, ub=4)
        m.set_objective(x + y)
        sol = solve(m, backend)
        assert sol.objective == pytest.approx(5.0)

    @pytest.mark.parametrize("backend", ["highs", "branch-bound"])
    def test_zero_objective(self, backend):
        m = Model()
        x = m.binary_var("x")
        m.add_constr(x >= 1)
        sol = solve(m, backend)
        assert sol.status is Status.OPTIMAL
        assert sol.objective == pytest.approx(0.0)
        assert sol.value(x) == 1

    @pytest.mark.parametrize("backend", ["highs", "branch-bound"])
    def test_negative_integer_bounds(self, backend):
        m = Model()
        x = m.integer_var("x", lb=-10, ub=-2)
        m.set_objective(x)
        sol = solve(m, backend)
        assert sol.objective == pytest.approx(-10.0)

    @pytest.mark.parametrize("backend", ["highs", "branch-bound"])
    def test_fixed_variable_via_bounds(self, backend):
        m = Model()
        x = m.integer_var("x", lb=3, ub=3)
        y = m.binary_var("y")
        m.add_constr(y <= x - 3 + 1)  # y <= 1, trivially
        m.set_objective(x - y, sense=Sense.MINIMIZE)
        sol = solve(m, backend)
        assert sol.value(x) == 3

    @pytest.mark.parametrize("backend", ["highs", "branch-bound"])
    def test_mixed_integer_continuous(self, backend):
        m = Model(sense=Sense.MAXIMIZE)
        x = m.integer_var("x", lb=0, ub=10)
        y = m.continuous_var("y", lb=0, ub=10)
        m.add_constr(x + y <= 7.5)
        m.set_objective(2 * x + y)
        sol = solve(m, backend)
        # x = 7 (integer), y = 0.5.
        assert sol.value(x) == 7
        assert sol.value(y, integral=False) == pytest.approx(0.5)
        assert sol.objective == pytest.approx(14.5)


class TestLinExprEdges:
    def test_empty_expression_value(self):
        assert LinExpr().value([]) == 0.0

    def test_chained_operations(self):
        m = Model()
        x = m.binary_var("x")
        y = m.binary_var("y")
        e = -(2 * x - y) + 1 - y
        assert e.coeffs == {0: -2.0, 1: 0.0}
        assert e.constant == 1.0

    def test_zero_coefficient_kept_harmless(self):
        m = Model()
        x = m.binary_var("x")
        e = x - x
        assert e.value([1.0]) == 0.0


class TestPresolveEdges:
    def test_unconstrained_model_untouched(self):
        m = Model()
        m.binary_var("x")
        res = presolve(m)
        assert not res.infeasible
        assert res.model.num_constrs == 0
        assert res.removed_rows == 0

    def test_objective_constant_survives(self):
        m = Model()
        x = m.binary_var("x")
        m.add_constr(x <= 0)
        m.set_objective(x + 42.0)
        res = presolve(m)
        sol = solve(res.model, "highs")
        assert sol.objective == pytest.approx(42.0)

    def test_infinite_bound_rows(self):
        m = Model()
        x = m.continuous_var("x", lb=0, ub=math.inf)
        m.add_constr(x >= 5)
        res = presolve(m)
        assert not res.infeasible
        assert res.model.variables[0].lb == pytest.approx(5.0)
