"""Solver backend tests: HiGHS and the from-scratch branch and bound.

Every test in ``TestBothBackends`` runs against both solvers, which doubles
as a cross-check of the branch-and-bound implementation against HiGHS.
"""

import math

import pytest

from repro.mip import (
    InfeasibleError,
    Model,
    Sense,
    SolverError,
    Status,
    UnboundedError,
    get_solver,
    solve,
)

BACKENDS = ("highs", "branch-bound")


@pytest.fixture(params=BACKENDS)
def backend(request):
    return request.param


class TestBothBackends:
    def test_trivial_lp(self, backend):
        m = Model()
        x = m.continuous_var("x", lb=0, ub=10)
        m.set_objective(-1 * x)  # maximize x by minimizing -x
        sol = solve(m, backend)
        assert sol.status is Status.OPTIMAL
        assert sol.value(x, integral=False) == pytest.approx(10.0)

    def test_knapsack(self, backend):
        m = Model(sense=Sense.MAXIMIZE)
        x = [m.binary_var(f"x{i}") for i in range(4)]
        weights, values = [2, 3, 4, 5], [3, 4, 5, 8]
        m.add_constr(
            sum(w * xi for w, xi in zip(weights, x)) <= 6
        )
        m.set_objective(sum(v * xi for v, xi in zip(values, x)))
        sol = solve(m, backend)
        assert sol.status is Status.OPTIMAL
        # Optimum 8: either items {0, 2} (w=6, v=8) or item {3} (w=5, v=8).
        assert sol.objective == pytest.approx(8.0)
        assert m.is_feasible(sol.values)

    def test_assignment_problem(self, backend):
        # 3x3 assignment with known optimum.
        cost = [[4, 1, 3], [2, 0, 5], [3, 2, 2]]
        m = Model()
        x = {(i, j): m.binary_var(f"x{i}{j}") for i in range(3) for j in range(3)}
        for i in range(3):
            m.add_constr(sum(x[(i, j)] for j in range(3)) == 1)
        for j in range(3):
            m.add_constr(sum(x[(i, j)] for i in range(3)) == 1)
        m.set_objective(
            sum(cost[i][j] * x[(i, j)] for i in range(3) for j in range(3))
        )
        sol = solve(m, backend)
        assert sol.status is Status.OPTIMAL
        assert sol.objective == pytest.approx(5.0)  # 1 + 2 + 2

    def test_infeasible_model(self, backend):
        m = Model()
        x = m.binary_var("x")
        m.add_constr(x >= 1)
        m.add_constr(x <= 0)
        sol = solve(m, backend)
        assert sol.status is Status.INFEASIBLE
        with pytest.raises(InfeasibleError):
            sol.require_solution()

    def test_integrality_forces_worse_objective(self, backend):
        # LP optimum is fractional; MILP must settle for the integer one.
        m = Model(sense=Sense.MAXIMIZE)
        x = m.integer_var("x", lb=0, ub=10)
        y = m.integer_var("y", lb=0, ub=10)
        m.add_constr(2 * x + 2 * y <= 7)
        m.set_objective(x + y)
        sol = solve(m, backend)
        assert sol.objective == pytest.approx(3.0)  # LP would give 3.5

    def test_equality_constraints(self, backend):
        m = Model()
        x = m.integer_var("x", lb=0, ub=100)
        y = m.integer_var("y", lb=0, ub=100)
        m.add_constr(x + y == 10)
        m.add_constr(x - y == 4)
        m.set_objective(x + y)
        sol = solve(m, backend)
        assert sol.value(x) == 7
        assert sol.value(y) == 3

    def test_empty_model(self, backend):
        m = Model()
        sol = solve(m, backend)
        assert sol.status is Status.OPTIMAL
        assert sol.objective == 0.0

    def test_objective_constant_included(self, backend):
        m = Model()
        x = m.binary_var("x")
        m.add_constr(x >= 1)
        m.set_objective(2 * x + 5)
        sol = solve(m, backend)
        assert sol.objective == pytest.approx(7.0)

    def test_maximization_objective_sign(self, backend):
        m = Model(sense=Sense.MAXIMIZE)
        x = m.binary_var("x")
        m.set_objective(4 * x)
        sol = solve(m, backend)
        assert sol.objective == pytest.approx(4.0)

    def test_solution_check_helper(self, backend):
        m = Model(sense=Sense.MAXIMIZE)
        x = m.binary_var("x")
        m.set_objective(x)
        sol = solve(m, backend)
        assert sol.check(m)

    def test_makespan_structure(self, backend):
        # Mini version of the paper's objective: minimize max load of 2 nodes.
        m = Model()
        t = {(k, i): m.binary_var(f"t{k}{i}") for k in range(4) for i in range(2)}
        span = m.continuous_var("span")
        durations = [3.0, 3.0, 2.0, 2.0]
        for k in range(4):
            m.add_constr(t[(k, 0)] + t[(k, 1)] == 1)
        for i in range(2):
            m.add_constr(
                sum(durations[k] * t[(k, i)] for k in range(4)) <= span
            )
        m.set_objective(span)
        sol = solve(m, backend)
        assert sol.objective == pytest.approx(5.0)


class TestBackendSpecific:
    def test_unknown_solver_rejected(self):
        with pytest.raises(SolverError):
            get_solver("simplex9000")

    def test_bb_node_limit_reports_feasible_or_error(self):
        m = Model(sense=Sense.MAXIMIZE)
        x = [m.binary_var(f"x{i}") for i in range(12)]
        m.add_constr(sum((i + 1) * x[i] for i in range(12)) <= 20)
        m.set_objective(sum((i % 5 + 1) * x[i] for i in range(12)))
        sol = solve(m, "branch-bound", node_limit=1)
        assert sol.status in (Status.FEASIBLE, Status.ERROR, Status.OPTIMAL)

    def test_bb_reports_nodes(self):
        m = Model(sense=Sense.MAXIMIZE)
        x = [m.binary_var(f"x{i}") for i in range(6)]
        m.add_constr(sum(2 * xi for xi in x) <= 5)
        m.set_objective(sum(x))
        sol = solve(m, "branch-bound")
        assert sol.nodes_explored >= 1
        assert sol.objective == pytest.approx(2.0)

    def test_highs_time_limit_still_solves_small(self):
        m = Model()
        x = m.binary_var("x")
        m.add_constr(x >= 1)
        m.set_objective(x)
        sol = solve(m, "highs", time_limit=10.0)
        assert sol.status is Status.OPTIMAL

    def test_value_requires_solution(self):
        m = Model()
        x = m.binary_var("x")
        m.add_constr(x >= 1)
        m.add_constr(x <= 0)
        sol = solve(m, "highs")
        with pytest.raises(SolverError):
            sol.value(x)

    def test_unbounded_lp_detected(self):
        m = Model(sense=Sense.MAXIMIZE)
        x = m.continuous_var("x", lb=0, ub=math.inf)
        m.set_objective(x)
        sol = solve(m, "branch-bound")
        assert sol.status is Status.UNBOUNDED
        with pytest.raises(UnboundedError):
            sol.require_solution()
