"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.workload == "image"
        assert args.schemes == ["bipartition", "minmin"]

    def test_figure_choices(self):
        args = build_parser().parse_args(["figure", "fig5a"])
        assert args.name == "fig5a"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure", "fig9z"])


class TestCommands:
    def test_schedulers(self, capsys):
        assert main(["schedulers"]) == 0
        out = capsys.readouterr().out
        for scheme in ("ip", "bipartition", "minmin", "jdp", "maxmin", "sufferage"):
            assert scheme in out

    def test_workload_describe(self, capsys):
        assert main(["workload", "--workload", "sat", "--tasks", "12"]) == 0
        out = capsys.readouterr().out
        assert "distinct data" in out
        assert "sharing fraction" in out

    def test_run_basic(self, capsys):
        rc = main(
            [
                "run",
                "--workload",
                "synthetic",
                "--tasks",
                "8",
                "--schemes",
                "bipartition",
                "jdp",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "bipartition" in out
        assert "jdp" in out
        assert "makespan" in out

    def test_run_no_replication(self, capsys):
        rc = main(
            [
                "run",
                "--workload",
                "synthetic",
                "--tasks",
                "6",
                "--schemes",
                "minmin",
                "--no-replication",
            ]
        )
        assert rc == 0
        # replica MB column must be zero
        line = next(
            l for l in capsys.readouterr().out.splitlines()
            if l.startswith("minmin")
        )
        assert float(line.split()[4]) == 0.0

    def test_run_with_gantt(self, capsys):
        rc = main(
            [
                "run",
                "--workload",
                "synthetic",
                "--tasks",
                "6",
                "--schemes",
                "bipartition",
                "--gantt",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "x=transfer" in out

    def test_run_with_trace(self, tmp_path, capsys):
        trace_file = tmp_path / "trace.json"
        rc = main(
            [
                "run",
                "--workload",
                "synthetic",
                "--tasks",
                "6",
                "--schemes",
                "bipartition",
                "--trace",
                str(trace_file),
            ]
        )
        assert rc == 0
        doc = json.loads(trace_file.read_text())
        assert doc["traceEvents"]

    def test_figure_fig5a_with_csv(self, tmp_path, capsys):
        csv_file = tmp_path / "fig.csv"
        rc = main(["figure", "fig5a", "--tasks", "12", "--csv", str(csv_file)])
        assert rc == 0
        lines = csv_file.read_text().strip().splitlines()
        assert lines[0].startswith("experiment,")
        assert len(lines) == 5  # header + 2 workloads x (rep, norep)

    def test_workload_save_and_run_load(self, tmp_path, capsys):
        saved = tmp_path / "batch.json"
        rc = main(
            [
                "workload", "--workload", "synthetic", "--tasks", "6",
                "--save", str(saved),
            ]
        )
        assert rc == 0
        assert saved.exists()
        rc = main(
            ["run", "--load", str(saved), "--schemes", "bipartition"]
        )
        assert rc == 0
        assert "bipartition" in capsys.readouterr().out

    def test_run_load_rejects_incompatible_platform(self, tmp_path):
        saved = tmp_path / "batch.json"
        main(
            [
                "workload", "--workload", "synthetic", "--tasks", "4",
                "--storage-nodes", "4", "--save", str(saved),
            ]
        )
        with pytest.raises(SystemExit, match="storage node"):
            main(
                [
                    "run", "--load", str(saved), "--storage-nodes", "1",
                    "--schemes", "minmin",
                ]
            )

    def test_figure_fig3b_reduced(self, capsys):
        rc = main(["figure", "fig3b", "--tasks", "8", "--ip-time-limit", "5"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "bipartition" in out
        assert "zero" in out
