"""Run the doctests embedded in package docstrings."""

import doctest

import pytest

import repro
import repro.mip
import repro.hypergraph


@pytest.mark.parametrize(
    "module", [repro.mip, repro.hypergraph], ids=lambda m: m.__name__
)
def test_module_doctests(module):
    failures, tests = doctest.testmod(
        module, verbose=False, raise_on_error=False
    ).failed, doctest.testmod(module).attempted
    assert tests > 0, f"{module.__name__} has no doctests"
    assert failures == 0


def test_package_quickstart_docstring_runs():
    """The usage example in the top-level package docstring must work."""
    from repro import run_batch, osc_xio
    from repro.workloads import generate_image_batch

    platform = osc_xio(num_compute=4, num_storage=4)
    batch = generate_image_batch(8, "high", platform.num_storage, seed=0)
    result = run_batch(batch, platform, "bipartition")
    assert "bipartition" in result.summary()
