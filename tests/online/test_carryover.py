"""Differential tests for cross-batch state carryover (and the E8 audit).

Warm mode must be *exactly* hand-threading one ClusterState through
successive run_batch calls — the session adds bookkeeping, never
behaviour. Cold mode must be bit-identical to running each dispatch
window as an independent paper-style batch.
"""

import pytest

from repro.analysis.audit import _audit_cross_batch, AuditReport
from repro.batch import Batch, FileInfo, Task
from repro.cluster.events import AuditTrail
from repro.cluster.platform import osc_xio
from repro.cluster.state import ClusterState
from repro.core.driver import run_batch
from repro.online import ClusterSession, stream_from_batch

GB = 1000.0


def _shared_batch():
    """8 jobs over a small hot file set; heavy sharing across the halves."""
    files = {f"f{i}": FileInfo(f"f{i}", 200.0, i % 2) for i in range(6)}
    tasks = [
        Task(f"t{i}", (f"f{i % 3}", f"f{3 + (i % 3)}"), 1.0 + 0.1 * i)
        for i in range(8)
    ]
    return Batch(tasks, files)


def _platform():
    return osc_xio(num_compute=3, num_storage=2, disk_space_mb=5 * GB)


def _stream():
    # First half arrives at t=0, second half much later: deterministic
    # two-window FIFO split whatever the first batch's makespan is.
    batch = _shared_batch()
    times = [0.0] * 4 + [500.0] * 4
    return stream_from_batch(batch, times)


def _executions(batch_result):
    return [
        (rec.task_id, rec.node, rec.transfers_done, rec.exec_start,
         rec.completion)
        for sb in batch_result.sub_batches
        for rec in sb.execution.records
    ]


@pytest.mark.parametrize("scheme", ["bipartition", "minmin"])
class TestWarmDifferential:
    def test_second_batch_matches_hand_threaded_state(self, scheme):
        stream = _stream()
        session = ClusterSession(
            _platform(), stream, scheme, warm=True, audit=True
        )
        res = session.run()
        assert len(res.batches) == 2
        first, second = res.batches

        # Reference: thread one ClusterState by hand, exactly as a user of
        # run_batch(state=...) would, and compare decisions.
        platform = _platform()
        state = ClusterState.initial(platform, stream.batch)
        state.begin_carryover()
        r1 = run_batch(
            stream.batch.subset(list(first.task_ids)), platform, scheme,
            state=state,
        )
        # r1.stats aliases the threaded state's stats: snapshot before the
        # second batch mutates them.
        xb_after_first = r1.stats.cross_batch_hit_volume_mb
        state.begin_carryover()
        r2 = run_batch(
            stream.batch.subset(list(second.task_ids)), platform, scheme,
            state=state,
        )

        assert first.makespan_s == r1.makespan
        assert second.makespan_s == r2.makespan
        assert second.sub_batches == r2.num_sub_batches
        # Decision-identical: same placements, transfers and timings in
        # the carried-over second batch.
        by_batch = {}
        for j in res.jobs:
            by_batch.setdefault(j.batch_index, []).append(j)
        sess_second = {j.task_id: j.completion - j.dispatch for j in by_batch[1]}
        ref_second = {
            task_id: completion
            for task_id, _n, _tr, _es, completion in _executions(r2)
        }
        # Stream-clock mapping (dispatch + t - dispatch) costs one ulp-ish
        # rounding, hence approx rather than bit equality on the times.
        assert sorted(sess_second) == sorted(ref_second)
        for task_id, completion in ref_second.items():
            assert sess_second[task_id] == pytest.approx(completion)
        assert second.stats.cross_batch_hit_volume_mb == pytest.approx(
            r2.stats.cross_batch_hit_volume_mb - xb_after_first
        )

    def test_cold_bit_identical_to_independent_runs(self, scheme):
        stream = _stream()
        res = ClusterSession(
            _platform(), stream, scheme, warm=False, audit=True
        ).run()
        assert len(res.batches) == 2
        for record in res.batches:
            alone = run_batch(
                stream.batch.subset(list(record.task_ids)),
                _platform(),
                scheme,
            )
            assert record.makespan_s == alone.makespan
            assert record.sub_batches == alone.num_sub_batches
            assert record.stats == alone.stats
            sess = {
                j.task_id: j.completion - j.dispatch
                for j in res.jobs
                if j.batch_index == record.index
            }
            ref = {
                task_id: completion
                for task_id, _n, _tr, _es, completion in _executions(alone)
            }
            assert sorted(sess) == sorted(ref)
            for task_id, completion in ref.items():
                assert sess[task_id] == pytest.approx(completion)

    def test_warm_second_batch_reuses_cache(self, scheme):
        # Bipartition may map the second window's groups onto nodes that
        # never cached its files (replicating afresh); the MCT-based
        # schemes chase the cached copies, so assert reuse on minmin only.
        if scheme != "minmin":
            pytest.skip("cache-chasing is placement-dependent; see comment")
        res = ClusterSession(
            _platform(), _stream(), scheme, warm=True, audit=True
        ).run()
        assert res.batches[0].stats.cross_batch_hit_volume_mb == 0.0
        assert res.batches[1].stats.cross_batch_hit_volume_mb > 0.0
        # Warm reuse shows up as remote volume the cold baseline pays.
        cold = ClusterSession(
            _platform(), _stream(), scheme, warm=False
        ).run()
        assert res.stats.remote_volume_mb < cold.stats.remote_volume_mb


class TestE8Audit:
    def _trail(self):
        trail = AuditTrail()
        trail.initial_holdings = {1: {"carried": 100.0}}
        return trail

    def test_clean_attribution_passes(self):
        trail = self._trail()
        trail.record_cache_hit(1, "carried", 100.0, cross_batch=True)
        trail.record_cache_hit(1, "fresh", 50.0, cross_batch=False)
        report = AuditReport()
        _audit_cross_batch(trail, report)
        assert report.ok

    def test_false_cross_batch_claim_rejected(self):
        trail = self._trail()
        # Claimed carried over, but never resident since the prior commit.
        trail.record_cache_hit(1, "fresh", 50.0, cross_batch=True)
        report = AuditReport()
        _audit_cross_batch(trail, report)
        assert not report.ok
        assert report.violations[0].code == "E8"

    def test_missed_cross_batch_attribution_rejected(self):
        trail = self._trail()
        trail.record_cache_hit(1, "carried", 100.0, cross_batch=False)
        report = AuditReport()
        _audit_cross_batch(trail, report)
        assert not report.ok
        assert report.violations[0].code == "E8"

    def test_eviction_breaks_residency(self):
        trail = self._trail()
        trail.record_eviction(1, "carried", 100.0)
        # Re-staged after eviction: a hit on it is now intra-batch.
        trail.record_transfer("carried", 100.0, "remote", 0, 1, 0.0, 1.0)
        trail.record_cache_hit(1, "carried", 100.0, cross_batch=False)
        report = AuditReport()
        _audit_cross_batch(trail, report)
        assert report.ok

    def test_crash_breaks_residency(self):
        trail = self._trail()
        trail.record_crash(1, 1.0, (("carried", 100.0),))
        trail.record_cache_hit(1, "carried", 100.0, cross_batch=True)
        report = AuditReport()
        _audit_cross_batch(trail, report)
        assert not report.ok
