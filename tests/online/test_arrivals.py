"""Arrival processes: determinism, monotonicity, spec dispatch."""

import pytest

from repro.batch import Batch, FileInfo, Task
from repro.online import (
    JobArrival,
    JobStream,
    arrivals_from_spec,
    bursty_arrivals,
    poisson_arrivals,
    stream_from_batch,
    trace_arrivals,
)


def _tiny_batch(n=3):
    files = {"a": FileInfo("a", 10.0, 0)}
    tasks = [Task(f"t{i}", ("a",), 1.0) for i in range(n)]
    return Batch(tasks, files)


class TestPoisson:
    def test_deterministic_per_seed(self):
        assert poisson_arrivals(20, 0.1, seed=3) == poisson_arrivals(20, 0.1, seed=3)
        assert poisson_arrivals(20, 0.1, seed=3) != poisson_arrivals(20, 0.1, seed=4)

    def test_nondecreasing_and_positive(self):
        times = poisson_arrivals(50, 0.5, seed=0)
        assert len(times) == 50
        assert all(t >= 0.0 for t in times)
        assert all(b >= a for a, b in zip(times, times[1:]))

    def test_rate_scales_span(self):
        # Double the rate -> arrivals exactly halve (same exponential draws).
        slow = poisson_arrivals(100, 0.1, seed=1)
        fast = poisson_arrivals(100, 0.2, seed=1)
        assert fast[-1] == pytest.approx(slow[-1] / 2)

    def test_validation(self):
        with pytest.raises(ValueError):
            poisson_arrivals(5, 0.0)
        with pytest.raises(ValueError):
            poisson_arrivals(-1, 1.0)


class TestBursty:
    def test_no_arrival_in_off_window(self):
        on_s, off_s = 30.0, 70.0
        times = bursty_arrivals(200, 1.0, on_s, off_s, seed=2)
        period = on_s + off_s
        for t in times:
            assert t % period <= on_s + 1e-9

    def test_nondecreasing(self):
        times = bursty_arrivals(100, 0.5, 10.0, 50.0, seed=0)
        assert all(b >= a for a, b in zip(times, times[1:]))

    def test_validation(self):
        with pytest.raises(ValueError):
            bursty_arrivals(5, 1.0, 0.0, 10.0)


class TestTrace:
    def test_replay_and_validation(self):
        assert trace_arrivals([0, 1, 5]) == [0.0, 1.0, 5.0]
        with pytest.raises(ValueError):
            trace_arrivals([1.0, 0.5])
        with pytest.raises(ValueError):
            trace_arrivals([-1.0, 2.0])

    def test_cycling_shifts_by_span(self):
        times = arrivals_from_spec({"kind": "trace", "times": [0.0, 2.0, 10.0]}, 7)
        assert times == [0.0, 2.0, 10.0, 10.0, 12.0, 20.0, 20.0]

    def test_truncates_to_num_jobs(self):
        times = arrivals_from_spec({"kind": "trace", "times": [0.0, 1.0, 2.0]}, 2)
        assert times == [0.0, 1.0]


class TestSpec:
    def test_dispatch(self):
        assert arrivals_from_spec(
            {"kind": "poisson", "rate": 0.1, "seed": 5}, 10
        ) == poisson_arrivals(10, 0.1, seed=5)
        assert arrivals_from_spec(
            {"kind": "bursty", "rate": 0.1, "on_s": 5.0, "off_s": 5.0}, 10
        ) == bursty_arrivals(10, 0.1, 5.0, 5.0, seed=0)

    def test_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown arrival kind"):
            arrivals_from_spec({"kind": "weibull"}, 3)


class TestJobStream:
    def test_stream_from_batch(self):
        batch = _tiny_batch(3)
        stream = stream_from_batch(batch, [0.0, 1.0, 4.0])
        assert stream.num_jobs == 3
        assert stream.span_s == 4.0
        assert stream.arrivals[1] == JobArrival("t1", 1.0)

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            stream_from_batch(_tiny_batch(3), [0.0, 1.0])

    def test_validation(self):
        batch = _tiny_batch(2)
        with pytest.raises(ValueError, match="duplicate"):
            JobStream(batch, (JobArrival("t0", 0.0), JobArrival("t0", 1.0)))
        with pytest.raises(ValueError, match="unknown"):
            JobStream(batch, (JobArrival("zzz", 0.0),))
        with pytest.raises(ValueError, match="non-decreasing"):
            JobStream(batch, (JobArrival("t0", 2.0), JobArrival("t1", 1.0)))
