"""ClusterSession end to end: queueing metrics, warm-vs-cold, manifest.

The warm-beats-cold assertions here are the acceptance criterion of the
online subsystem: on a seeded Poisson stream at moderate load, warm
carryover must give strictly lower mean response time and strictly more
cross-batch cache-hit bytes than the cold baseline, for at least two
schemes, with every batch passing the E1-E8 audit.
"""

import pytest

from repro.cluster.platform import osc_osumed
from repro.obs import build_stream_manifest, validate_manifest
from repro.online import (
    ClusterSession,
    SizeCappedWindow,
    isolated_service_time,
    poisson_arrivals,
    stream_from_batch,
)
from repro.workloads import generate_sat_batch

GB = 1000.0


def _stream(num_jobs=24, rate=0.02, seed=0):
    batch = generate_sat_batch(num_jobs, "high", 4, seed)
    return stream_from_batch(batch, poisson_arrivals(num_jobs, rate, seed))


def _platform():
    return osc_osumed(num_compute=4, num_storage=4, disk_space_mb=20 * GB)


def _session(scheme, warm, **kw):
    kw.setdefault("policy", SizeCappedWindow(max_jobs=6))
    return ClusterSession(_platform(), _stream(), scheme, warm=warm, **kw)


class TestWarmBeatsCold:
    @pytest.mark.parametrize("scheme", ["bipartition", "minmin"])
    def test_response_and_reuse(self, scheme):
        warm = _session(scheme, warm=True, audit=True).run()
        cold = _session(scheme, warm=False, audit=True).run()
        assert warm.num_jobs == cold.num_jobs == 24
        # Same stream, same windows: the dispatch schedule may differ only
        # through makespans, but the comparison below is the criterion.
        assert warm.mean_response_s < cold.mean_response_s
        assert warm.cross_batch_hit_volume_mb > cold.cross_batch_hit_volume_mb
        assert cold.cross_batch_hits == 0
        assert cold.cross_batch_hit_volume_mb == 0.0


class TestRecords:
    def test_job_records_consistent(self):
        res = _session("bipartition", warm=True).run()
        stream = _stream()
        arrivals = {a.task_id: a.arrival for a in stream.arrivals}
        assert sorted(j.task_id for j in res.jobs) == sorted(arrivals)
        for j in res.jobs:
            assert j.arrival == arrivals[j.task_id]
            assert j.arrival <= j.dispatch <= j.completion
            assert j.response_s == j.queueing_delay_s + j.service_s
            assert j.slowdown > 0.0
        # Batches partition the job set, dispatches are non-decreasing.
        ids = [t for b in res.batches for t in b.task_ids]
        assert sorted(ids) == sorted(arrivals)
        dispatches = [b.dispatch for b in res.batches]
        assert dispatches == sorted(dispatches)

    def test_per_batch_stats_sum_to_total(self):
        res = _session("minmin", warm=True).run()
        total = sum(b.stats.remote_volume_mb for b in res.batches)
        assert total == pytest.approx(res.stats.remote_volume_mb)
        xb = sum(b.stats.cross_batch_hit_volume_mb for b in res.batches)
        assert xb == pytest.approx(res.cross_batch_hit_volume_mb)

    def test_isolated_time_lower_bounds_cold_service(self):
        res = _session("bipartition", warm=False).run()
        stream = _stream()
        platform = _platform()
        for j in res.jobs:
            iso = isolated_service_time(platform, stream.batch, j.task_id)
            assert j.service_s >= iso - 1e-9

    def test_empty_stream(self):
        stream = _stream()
        empty = stream_from_batch(stream.batch.subset([]), [])
        res = ClusterSession(_platform(), empty, "minmin").run()
        assert res.num_jobs == 0
        assert res.batches == []

    def test_starvation_guard(self):
        class Starver:
            name = "starver"

            def select(self, queued, batch, now):
                return [queued[-1].task_id] if len(queued) > 1 else [
                    queued[0].task_id
                ]

        with pytest.raises(RuntimeError, match="starved"):
            ClusterSession(
                _platform(), _stream(), "minmin", policy=Starver()
            ).run()

    def test_max_batches_guard(self):
        with pytest.raises(RuntimeError, match="max_batches"):
            _session("minmin", warm=True, max_batches=1).run()


class TestManifest:
    @pytest.mark.parametrize("warm", [True, False])
    def test_validates_against_schema(self, warm):
        res = _session("bipartition", warm=warm, timeseries=True).run()
        manifest = build_stream_manifest(
            res, config={"experiment": "test"}, config_digest="abc"
        )
        assert validate_manifest(manifest) == []
        online = manifest["online"]
        assert online["mode"] == ("warm" if warm else "cold")
        assert online["queueing"]["num_jobs"] == 24
        assert len(online["jobs"]) == 24
        # Stitched timeseries marks every dispatch with a batch event.
        marks = [e for e in manifest["timeseries"]["events"]
                 if e["kind"] == "batch"]
        assert len(marks) == len(online["batches"])

    def test_timeseries_on_stream_clock(self):
        res = _session("minmin", warm=True, timeseries=True).run()
        assert res.timeseries is not None
        last_dispatch = res.batches[-1].dispatch
        marks = [e for e in res.timeseries["events"] if e["kind"] == "batch"]
        assert [m["t"] for m in marks] == [b.dispatch for b in res.batches]
        # At least one series carries samples from the last batch (offsets
        # applied), even though sparse series may end earlier.
        latest = max(
            s["points"][-1][0]
            for s in res.timeseries["series"].values()
            if s["points"]
        )
        assert latest >= last_dispatch
