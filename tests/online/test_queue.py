"""Admission policies: windows, fairness, locality grouping."""

import pytest

from repro.batch import Batch, FileInfo, Task
from repro.online import (
    FIFOWindow,
    LocalityWindow,
    QueuedJob,
    SizeCappedWindow,
    make_policy,
)


def _batch_two_groups():
    """Two file-disjoint job groups: t0,t2,t4 share x*, t1,t3,t5 share y*."""
    files = {}
    for fid in ("x0", "x1", "y0", "y1"):
        files[fid] = FileInfo(fid, 100.0, 0)
    tasks = [
        Task("t0", ("x0", "x1"), 1.0),
        Task("t1", ("y0", "y1"), 1.0),
        Task("t2", ("x0", "x1"), 1.0),
        Task("t3", ("y0", "y1"), 1.0),
        Task("t4", ("x0", "x1"), 1.0),
        Task("t5", ("y0", "y1"), 1.0),
    ]
    return Batch(tasks, files)


def _queue(batch):
    return [QueuedJob(t.task_id, float(i)) for i, t in enumerate(batch.tasks)]


class TestFIFO:
    def test_drains_everything_in_arrival_order(self):
        batch = _batch_two_groups()
        sel = FIFOWindow().select(_queue(batch), batch, now=10.0)
        assert sel == ["t0", "t1", "t2", "t3", "t4", "t5"]

    def test_empty_queue_rejected(self):
        with pytest.raises(ValueError):
            FIFOWindow().select([], _batch_two_groups(), now=0.0)


class TestSizeCapped:
    def test_oldest_n(self):
        batch = _batch_two_groups()
        sel = SizeCappedWindow(max_jobs=2).select(_queue(batch), batch, 0.0)
        assert sel == ["t0", "t1"]

    def test_cap_validation(self):
        with pytest.raises(ValueError):
            SizeCappedWindow(max_jobs=0)


class TestLocality:
    def test_groups_by_file_overlap(self):
        # With cap 3 the window seeded by t0 should pull in the other two
        # x-sharing jobs (t2, t4), not the interleaved y-jobs.
        batch = _batch_two_groups()
        sel = LocalityWindow(max_jobs=3).select(_queue(batch), batch, 0.0)
        assert sel == ["t0", "t2", "t4"]

    def test_always_includes_oldest(self):
        batch = _batch_two_groups()
        for cap in (1, 2, 3, 4, 5):
            sel = LocalityWindow(max_jobs=cap).select(_queue(batch), batch, 0.0)
            assert "t0" in sel
            assert len(sel) == cap

    def test_small_queue_drains(self):
        batch = _batch_two_groups()
        queued = _queue(batch)[:3]
        sel = LocalityWindow(max_jobs=8).select(queued, batch, 0.0)
        assert sel == ["t0", "t1", "t2"]

    def test_disjoint_jobs_admitted_oldest_first(self):
        # No sharing at all: locality degenerates to the size-capped window.
        files = {f"f{i}": FileInfo(f"f{i}", 50.0, 0) for i in range(6)}
        tasks = [Task(f"t{i}", (f"f{i}",), 1.0) for i in range(6)]
        batch = Batch(tasks, files)
        sel = LocalityWindow(max_jobs=3).select(_queue(batch), batch, 0.0)
        assert sel == ["t0", "t1", "t2"]

    def test_window_dispatched_in_arrival_order(self):
        batch = _batch_two_groups()
        queued = _queue(batch)
        sel = LocalityWindow(max_jobs=4).select(queued, batch, 0.0)
        positions = [next(i for i, q in enumerate(queued) if q.task_id == t)
                     for t in sel]
        assert positions == sorted(positions)


class TestRegistry:
    def test_make_policy(self):
        assert make_policy("fifo").name == "fifo"
        assert make_policy("size", 4).max_jobs == 4
        assert make_policy("locality").max_jobs == 8

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown admission policy"):
            make_policy("lottery")
