"""Figure 5(b): batch execution time vs batch size under disk pressure.

Paper setup: high-overlap IMAGE, 500-4000 tasks, 4 compute + 4 XIO storage
nodes with 40 GB disks (aggregate footprint grows from ~40 GB to ~330 GB).
Paper shape: base schemes degrade faster as the working set outgrows the
caches and evictions mount; BiPartition's disk-aware sub-batches keep it
cheapest; the IP scheme is absent (prohibitive scheduling overhead).

At the reduced scale the disk size is shrunk proportionally so the
pressure ratio (working set / aggregate disk) matches the paper's sweep.
"""

from repro.experiments import fig5b_batch_size

from conftest import paper_scale, series

if paper_scale():
    SIZES = (500, 1000, 2000, 4000)
    DISK_MB = 40_000.0
else:
    SIZES = (100, 200, 400)
    DISK_MB = 4_000.0


def test_fig5b(benchmark, show):
    table = benchmark.pedantic(
        fig5b_batch_size,
        kwargs=dict(batch_sizes=SIZES, disk_space_mb=DISK_MB),
        rounds=1,
        iterations=1,
    )
    show(table)

    bp = series(table, "bipartition")
    mm = series(table, "minmin")
    jdp = series(table, "jdp")

    # Execution time grows with batch size for every scheme.
    for s in (bp, mm, jdp):
        xs = sorted(s)
        assert all(s[a] < s[b] for a, b in zip(xs, xs[1:]))

    # At the largest size (max disk pressure) BiPartition beats MinMin and
    # is at worst within a few per cent of JDP (paper: best overall).
    top = max(SIZES)
    assert bp[top] <= mm[top] * 1.02
    assert bp[top] <= jdp[top] * 1.10

    # The baselines' relative degradation from the smallest to the largest
    # batch exceeds BiPartition's (the figure's defining feature).
    lo = min(SIZES)
    bp_growth = bp[top] / bp[lo]
    mm_growth = mm[top] / mm[lo]
    assert mm_growth >= bp_growth * 0.95

    # MinMin suffers the most evictions at the top size.
    by_scheme = {
        r.scheme: r.evictions for r in table.records if r.x == top
    }
    assert by_scheme["minmin"] >= by_scheme["bipartition"]
