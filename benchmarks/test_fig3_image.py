"""Figure 3: IMAGE batch execution time vs overlap, OSUMED and XIO storage.

Paper shape: the proposed schemes (IP, BiPartition) beat MinMin and
JDP+DLL at every overlap level; the advantage is largest at high overlap
and vanishes at zero overlap; BiPartition stays within ~10 % of IP.
"""

import pytest

from repro.experiments import fig3_image_overlap

from conftest import paper_scale, series

N_TASKS = 100 if paper_scale() else 40
IP_LIMIT = 60.0 if paper_scale() else 15.0


@pytest.mark.parametrize("storage", ["osumed", "xio"])
def test_fig3(benchmark, show, storage):
    table = benchmark.pedantic(
        fig3_image_overlap,
        kwargs=dict(storage=storage, num_tasks=N_TASKS, ip_time_limit=IP_LIMIT),
        rounds=1,
        iterations=1,
    )
    show(table)

    bp = series(table, "bipartition")
    mm = series(table, "minmin")
    ip = series(table, "ip")
    jdp = series(table, "jdp")

    # Proposed schemes beat MinMin wherever sharing exists.
    for overlap in ("high", "medium"):
        assert bp[overlap] <= mm[overlap] * 1.05, (overlap, bp, mm)
        assert ip[overlap] <= mm[overlap] * 1.10, (overlap, ip, mm)

    # BiPartition within ~15% of (possibly time-limited) IP everywhere.
    for overlap in ("high", "medium", "zero"):
        assert bp[overlap] <= ip[overlap] * 1.15

    # At zero overlap there is nothing to exploit: schemes converge.
    assert bp["zero"] == pytest.approx(mm["zero"], rel=0.30)
    assert bp["zero"] == pytest.approx(jdp["zero"], rel=0.30)

    # Less sharing means more I/O: makespans rise as overlap falls.
    assert bp["high"] < bp["zero"]
