"""Shared helpers for the figure-regeneration benchmarks.

Each benchmark runs one paper figure's sweep at a reduced-but-faithful
scale (the substrate is a simulator, so only relative behaviour matters),
prints the regenerated table (visible with ``pytest -s`` and recorded in
the captured output), and asserts the figure's qualitative shape.

Set ``REPRO_PAPER_SCALE=1`` to run the full paper-scale configurations
(100-4000 task batches; expect long runtimes, dominated by the IP solver).
"""

import os

import pytest


def paper_scale() -> bool:
    return os.environ.get("REPRO_PAPER_SCALE", "0") == "1"


@pytest.fixture
def show():
    """Print a Table through the capture buffer so it lands in reports."""

    def _show(table):
        print("\n" + table.render() + "\n")
        return table

    return _show


def series(table, scheme, workload=None):
    """Extract the makespan series of one scheme, ordered by x."""
    recs = [
        r
        for r in table.records
        if r.scheme == scheme and (workload is None or r.workload == workload)
    ]
    return {r.x: r.makespan_s for r in recs}


def overhead_series(table, scheme):
    recs = [r for r in table.records if r.scheme == scheme]
    return {r.x: r.scheduling_ms_per_task for r in recs}
