"""Shared helpers for the figure-regeneration benchmarks.

Each benchmark runs one paper figure's sweep at a reduced-but-faithful
scale (the substrate is a simulator, so only relative behaviour matters),
prints the regenerated table (visible with ``pytest -s`` and recorded in
the captured output), and asserts the figure's qualitative shape.

Set ``REPRO_PAPER_SCALE=1`` to run the full paper-scale configurations
(100-4000 task batches; expect long runtimes, dominated by the IP solver).

The figure sweeps route through ``repro.parallel``: set
``REPRO_BENCH_WORKERS=N`` to fan each sweep's cells across N processes and
``REPRO_BENCH_CACHE=<dir>`` to replay unchanged cells from an on-disk
result cache (a re-run with the same scale is then pure cache hits).
"""

import os

import pytest

from repro import parallel


def paper_scale() -> bool:
    return os.environ.get("REPRO_PAPER_SCALE", "0") == "1"


@pytest.fixture(scope="session", autouse=True)
def parallel_defaults():
    """Route every figure sweep through the parallel/cached fan-out.

    The figure builders pass ``workers=None``/``cache=None`` by default,
    which defers to the process-wide configuration set here.
    """
    workers = os.environ.get("REPRO_BENCH_WORKERS", "").strip()
    cache_dir = os.environ.get("REPRO_BENCH_CACHE", "").strip()
    parallel.configure(
        workers=int(workers) if workers else None,
        cache=parallel.ResultCache(cache_dir) if cache_dir else None,
    )
    yield
    parallel.configure(workers=None, cache=None)


@pytest.fixture
def show():
    """Print a Table through the capture buffer so it lands in reports."""

    def _show(table):
        print("\n" + table.render() + "\n")
        return table

    return _show


def series(table, scheme, workload=None):
    """Extract the makespan series of one scheme, ordered by x."""
    recs = [
        r
        for r in table.records
        if r.scheme == scheme and (workload is None or r.workload == workload)
    ]
    return {r.x: r.makespan_s for r in recs}


def overhead_series(table, scheme):
    recs = [r for r in table.records if r.scheme == scheme]
    return {r.x: r.scheduling_ms_per_task for r in recs}
