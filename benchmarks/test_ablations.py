"""Ablation benchmarks for the design choices called out in DESIGN.md.

Not figures from the paper — these quantify how much each mechanism
contributes, which the paper asserts qualitatively:

* Eq. 22 popularity eviction vs LRU vs size-only;
* BINW sub-batch selection vs greedy capacity packing;
* Eq. 25/26 probabilistic vertex weights vs compute-only weights;
* Section 6 dynamic ECT ordering vs FIFO ordering;
* HiGHS vs the from-scratch branch-and-bound backend on the IP model.
"""

import pytest

from repro.core import (
    BiPartitionScheduler,
    IPScheduler,
    LRUPolicy,
    PopularityPolicy,
    SizePolicy,
    run_batch,
)
from repro.cluster import osc_xio
from repro.experiments.report import Record, Table
from repro.workloads import generate_image_batch


def _pressured_platform():
    return osc_xio(num_compute=4, num_storage=4, disk_space_mb=4_000.0)


def test_ablation_eviction(benchmark, show):
    """Popularity (Eq. 22) should beat or match LRU/size under pressure."""
    platform = _pressured_platform()
    batch = generate_image_batch(300, "high", 4, seed=0)

    def sweep():
        table = Table("ablation: eviction policy (bipartition, 300 tasks)")
        policies = {
            "popularity": PopularityPolicy.for_batch(batch),
            "lru": LRUPolicy(),
            "size": SizePolicy(),
        }
        for name, policy in policies.items():
            res = run_batch(
                batch,
                platform,
                BiPartitionScheduler(seed=0),
                eviction_policy=policy,
                candidate_limit=25,
            )
            table.add(
                Record(
                    experiment="ablation-eviction",
                    workload="image",
                    scheme=f"bipartition+{name}",
                    x=name,
                    makespan_s=res.makespan,
                    evictions=res.stats.evictions,
                    remote_volume_mb=res.stats.remote_volume_mb,
                )
            )
        return table

    table = benchmark.pedantic(sweep, rounds=1, iterations=1)
    show(table)
    by = {r.x: r.makespan_s for r in table.records}
    # The informed policy is never much worse than the blind ones.
    assert by["popularity"] <= min(by["lru"], by["size"]) * 1.10


def test_ablation_subbatch_selection(benchmark, show):
    """BINW sub-batches vs greedy capacity packing (same second level)."""
    platform = _pressured_platform()
    batch = generate_image_batch(300, "high", 4, seed=0)

    class GreedySubbatch(BiPartitionScheduler):
        """First level replaced by footprint-greedy packing."""

        def _select_subbatches(self, batch, pending, platform):
            budget = platform.aggregate_disk_space
            out, cur, used, used_mb = [], [], set(), 0.0
            for t in pending:  # submission order, no affinity awareness
                files = batch.task(t).files
                extra = sum(
                    batch.file_size(f) for f in files if f not in used
                )
                if cur and used_mb + extra > budget:
                    out.append(cur)
                    cur, used, used_mb = [], set(), 0.0
                    extra = sum(batch.file_size(f) for f in files)
                cur.append(t)
                used.update(files)
                used_mb += extra
            if cur:
                out.append(cur)
            return out

    def sweep():
        table = Table("ablation: sub-batch selection (300 tasks, 16 GB disk)")
        for name, sched in (
            ("binw", BiPartitionScheduler(seed=0)),
            ("greedy-pack", GreedySubbatch(seed=0)),
        ):
            res = run_batch(batch, platform, sched, candidate_limit=25)
            table.add(
                Record(
                    experiment="ablation-subbatch",
                    workload="image",
                    scheme=name,
                    x=name,
                    makespan_s=res.makespan,
                    remote_volume_mb=res.stats.remote_volume_mb,
                    evictions=res.stats.evictions,
                    sub_batches=res.num_sub_batches,
                )
            )
        return table

    table = benchmark.pedantic(sweep, rounds=1, iterations=1)
    show(table)
    by = {r.x: r for r in table.records}
    # Affinity-aware BINW must not move more remote bytes than blind packing.
    assert (
        by["binw"].remote_volume_mb
        <= by["greedy-pack"].remote_volume_mb * 1.05
    )
    assert by["binw"].makespan_s <= by["greedy-pack"].makespan_s * 1.10


def test_ablation_vertex_weights(benchmark, show):
    """Eq. 25/26 I/O-aware vertex weights vs compute-only weights."""
    platform = osc_xio(num_compute=4, num_storage=4)
    batch = generate_image_batch(100, "high", 4, seed=0)

    def sweep():
        table = Table("ablation: second-level vertex weights (100 tasks)")
        for mode in ("estimated", "compute"):
            res = run_batch(
                batch,
                platform,
                BiPartitionScheduler(seed=0, vertex_weight_mode=mode),
            )
            table.add(
                Record(
                    experiment="ablation-weights",
                    workload="image",
                    scheme=f"bipartition-{mode}",
                    x=mode,
                    makespan_s=res.makespan,
                )
            )
        return table

    table = benchmark.pedantic(sweep, rounds=1, iterations=1)
    show(table)
    by = {r.x: r.makespan_s for r in table.records}
    # I/O-aware weighting should help (tasks here are I/O-dominated).
    assert by["estimated"] <= by["compute"] * 1.05


def test_ablation_runtime_ordering(benchmark, show):
    """Section 6 ECT ordering vs FIFO within each group."""
    platform = osc_xio(num_compute=4, num_storage=4)
    batch = generate_image_batch(100, "high", 4, seed=0)

    def sweep():
        table = Table("ablation: runtime task ordering (100 tasks)")
        for ordering in ("ect", "fifo"):
            res = run_batch(
                batch,
                platform,
                BiPartitionScheduler(seed=0),
                ordering=ordering,
            )
            table.add(
                Record(
                    experiment="ablation-ordering",
                    workload="image",
                    scheme=f"bipartition-{ordering}",
                    x=ordering,
                    makespan_s=res.makespan,
                )
            )
        return table

    table = benchmark.pedantic(sweep, rounds=1, iterations=1)
    show(table)
    by = {r.x: r.makespan_s for r in table.records}
    # Finding: with an affinity-aware *mapping*, runtime ordering is a
    # second-order effect — both modes still pick transfer sources
    # dynamically (min-TCT), which is where the Section 6 machinery earns
    # its keep. Assert the two stay within a tight parity band.
    assert by["ect"] <= by["fifo"] * 1.05
    assert by["fifo"] <= by["ect"] * 1.05


def test_ablation_io_compute_overlap(benchmark, show):
    """Cost of the paper's no-staging-during-execution assumption.

    The paper's model (Eq. 12) serialises a node's transfers and
    executions. Relaxing it — a dedicated CPU per node, staging allowed
    during computation — quantifies how much performance that modelling
    choice leaves on the table (a natural future-work extension).
    """
    platform = osc_xio(num_compute=4, num_storage=4)
    batch = generate_image_batch(100, "high", 4, seed=0)

    def sweep():
        table = Table("ablation: I/O-compute overlap (100 tasks)")
        for mode, overlap in (("paper-serial", False), ("overlapped", True)):
            res = run_batch(
                batch,
                platform,
                BiPartitionScheduler(seed=0),
                overlap_io_compute=overlap,
            )
            table.add(
                Record(
                    experiment="ablation-overlap",
                    workload="image",
                    scheme=f"bipartition-{mode}",
                    x=mode,
                    makespan_s=res.makespan,
                )
            )
        return table

    table = benchmark.pedantic(sweep, rounds=1, iterations=1)
    show(table)
    by = {r.x: r.makespan_s for r in table.records}
    # Overlap can only help, and on I/O-heavy batches it helps noticeably.
    assert by["overlapped"] <= by["paper-serial"] * 1.001
    assert by["overlapped"] <= by["paper-serial"] * 0.95


def test_ablation_heterogeneous_speeds(benchmark, show):
    """Extension: per-node CPU speeds (paper assumes homogeneity).

    Compute-heavy synthetic batch on nodes with speeds (1, 1, 4, 4):
    speed-aware heuristics should beat a speed-blind round-robin clearly.
    """
    from repro.cluster import ComputeNode, Platform, StorageNode
    from repro.core import Scheduler, SubBatchPlan
    from repro.workloads import generate_synthetic_batch

    platform = Platform(
        compute_nodes=tuple(
            ComputeNode(i, speed=s) for i, s in enumerate((1.0, 1.0, 4.0, 4.0))
        ),
        storage_nodes=(StorageNode(0), StorageNode(1)),
        storage_network_bw=1000.0,
        compute_network_bw=1000.0,
    )
    batch = generate_synthetic_batch(
        40, 60, 2, 2, file_size_mb=5.0, compute_s_per_mb=1.0, seed=0
    )

    class BlindRR(Scheduler):
        uses_subbatches = False

        def next_subbatch(self, batch, pending, platform, state):
            return SubBatchPlan(
                list(pending),
                {t: k % platform.num_compute for k, t in enumerate(pending)},
            )

    BlindRR.name = "blind-rr"

    def sweep():
        table = Table("ablation: heterogeneous CPU speeds (40 tasks)")
        for name, sched in (
            ("minmin", "minmin"),
            ("sufferage", "sufferage"),
            ("blind-rr", BlindRR()),
        ):
            res = run_batch(batch, platform, sched)
            table.add(
                Record(
                    experiment="ablation-hetero",
                    workload="synthetic",
                    scheme=name,
                    x=name,
                    makespan_s=res.makespan,
                )
            )
        return table

    table = benchmark.pedantic(sweep, rounds=1, iterations=1)
    show(table)
    by = {r.x: r.makespan_s for r in table.records}
    assert by["minmin"] < by["blind-rr"] * 0.8
    assert by["sufferage"] < by["blind-rr"] * 0.8


def test_ablation_solver_backends(benchmark, show):
    """HiGHS and the from-scratch B&B must agree on small IP instances."""
    platform = osc_xio(num_compute=2, num_storage=2)
    batch = generate_image_batch(8, "high", 2, seed=0)

    def sweep():
        table = Table("ablation: IP solver backend (8 tasks, 2 nodes)")
        out = {}
        for backend in ("highs", "branch-bound"):
            res = run_batch(
                batch,
                platform,
                IPScheduler(
                    solver=backend, time_limit=120.0, mip_rel_gap=0.0
                ),
            )
            out[backend] = res
            table.add(
                Record(
                    experiment="ablation-solver",
                    workload="image",
                    scheme=f"ip-{backend}",
                    x=backend,
                    makespan_s=res.makespan,
                    scheduling_ms_per_task=res.scheduling_ms_per_task,
                )
            )
        return table

    table = benchmark.pedantic(sweep, rounds=1, iterations=1)
    show(table)
    by = {r.x: r.makespan_s for r in table.records}
    # Same optimal model -> same simulated makespan (small tolerance for
    # alternative optima realised differently at runtime).
    assert by["highs"] == pytest.approx(by["branch-bound"], rel=0.10)
