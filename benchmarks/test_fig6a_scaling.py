"""Figure 6(a): batch execution time vs number of compute nodes.

Paper setup: 1000 high-overlap IMAGE tasks, 8 XIO storage nodes, compute
nodes swept 2 -> 32. Paper shape: BiPartition best throughout; adding
nodes helps at first, then storage contention and file spreading flatten
the curve (it rises again at 32 nodes).
"""

from repro.experiments import fig6a_compute_scaling

from conftest import paper_scale, series

if paper_scale():
    N_TASKS = 1000
    NODES = (2, 4, 8, 16, 32)
else:
    N_TASKS = 200
    NODES = (2, 4, 8, 16, 32)


def test_fig6a(benchmark, show):
    table = benchmark.pedantic(
        fig6a_compute_scaling,
        kwargs=dict(node_counts=NODES, num_tasks=N_TASKS),
        rounds=1,
        iterations=1,
    )
    show(table)

    bp = series(table, "bipartition")
    mm = series(table, "minmin")
    jdp = series(table, "jdp")

    # BiPartition is the best (or tied-best) scheme at every node count.
    for c in NODES:
        assert bp[c] <= mm[c] * 1.05, (c, bp[c], mm[c])
        assert bp[c] <= jdp[c] * 1.10, (c, bp[c], jdp[c])

    # More nodes help initially...
    assert bp[4] < bp[2]
    # ...but returns diminish: the 2->4 speedup exceeds the 16->32 one.
    gain_small = bp[2] / bp[4]
    gain_large = bp[16] / bp[32]
    assert gain_small > gain_large
