"""Substrate micro-benchmarks: partitioner, solver, runtime throughput.

Unlike the figure benchmarks (single-shot sweeps), these use
pytest-benchmark's statistical timing to track the performance of the three
hot substrates, and assert basic quality alongside speed so a "fast but
broken" regression cannot pass.
"""

import numpy as np
import pytest

from repro.cluster import ClusterState, Runtime, osc_xio
from repro.hypergraph import (
    Hypergraph,
    binw_partition,
    connectivity_1,
    kway_partition,
)
from repro.mip import Model, Sense, solve
from repro.workloads import generate_image_batch, generate_synthetic_batch


def _workload_hypergraph(num_tasks=300, seed=0) -> Hypergraph:
    batch = generate_image_batch(num_tasks, "high", 4, seed=seed)
    fidx, nets, weights = {}, [], []
    for v, t in enumerate(batch.tasks):
        for f in t.files:
            j = fidx.setdefault(f, len(nets))
            if j == len(nets):
                nets.append([])
                weights.append(batch.file_size(f))
            nets[j].append(v)
    return Hypergraph(len(batch), nets, net_weights=weights)


class TestPartitionerPerf:
    def test_kway_300_tasks(self, benchmark):
        h = _workload_hypergraph(300)

        def run():
            return kway_partition(h, 8, np.random.default_rng(0), epsilon=0.1)

        parts = benchmark(run)
        # Quality floor: must beat random by at least 2x.
        rand = np.random.default_rng(1).integers(0, 8, size=h.num_vertices)
        assert connectivity_1(h, parts) < connectivity_1(h, rand) / 2

    def test_binw_300_tasks(self, benchmark):
        h = _workload_hypergraph(300)
        bound = h.total_net_weight / 4

        def run():
            return binw_partition(h, bound, np.random.default_rng(0))

        res = benchmark(run)
        assert res.num_parts >= 2


class TestSolverPerf:
    @staticmethod
    def _assignment_model(n=8):
        rng = np.random.default_rng(0)
        cost = rng.integers(1, 20, size=(n, n))
        m = Model("assign")
        x = {
            (i, j): m.binary_var(f"x{i}_{j}")
            for i in range(n)
            for j in range(n)
        }
        for i in range(n):
            m.add_constr(sum(x[(i, j)] for j in range(n)) == 1)
        for j in range(n):
            m.add_constr(sum(x[(i, j)] for i in range(n)) == 1)
        m.set_objective(
            sum(int(cost[i, j]) * x[(i, j)] for i in range(n) for j in range(n))
        )
        return m

    def test_highs_assignment(self, benchmark):
        m = self._assignment_model()
        sol = benchmark(lambda: solve(m, "highs"))
        assert sol.status.has_solution

    def test_branch_bound_assignment(self, benchmark):
        m = self._assignment_model(5)
        sol = benchmark(lambda: solve(m, "branch-bound"))
        assert sol.status.has_solution


class TestRuntimePerf:
    def test_runtime_200_tasks(self, benchmark):
        platform = osc_xio(num_compute=8, num_storage=4)
        batch = generate_synthetic_batch(
            200, 150, 4, 4, hot_probability=0.6, seed=0
        )
        mapping = {
            t.task_id: k % platform.num_compute
            for k, t in enumerate(batch.tasks)
        }

        def run():
            state = ClusterState.initial(platform, batch)
            rt = Runtime(platform, state, candidate_limit=10)
            return rt.execute(batch.tasks, mapping)

        res = benchmark.pedantic(run, rounds=3, iterations=1)
        assert len(res.records) == 200
