"""Figure 4: SAT batch execution time vs overlap, OSUMED and XIO storage.

Same shape as Figure 3 for the satellite-data workload: affinity-aware
schemes win, most at high overlap; everything is an order of magnitude
slower on OSUMED because of the shared 100 Mbps link.
"""

import pytest

from repro.experiments import fig4_sat_overlap

from conftest import paper_scale, series

N_TASKS = 100 if paper_scale() else 40
IP_LIMIT = 60.0 if paper_scale() else 15.0


@pytest.mark.parametrize("storage", ["osumed", "xio"])
def test_fig4(benchmark, show, storage):
    table = benchmark.pedantic(
        fig4_sat_overlap,
        kwargs=dict(storage=storage, num_tasks=N_TASKS, ip_time_limit=IP_LIMIT),
        rounds=1,
        iterations=1,
    )
    show(table)

    bp = series(table, "bipartition")
    mm = series(table, "minmin")
    ip = series(table, "ip")

    for overlap in ("high", "medium"):
        assert bp[overlap] <= mm[overlap] * 1.05
        assert ip[overlap] <= mm[overlap] * 1.10

    # Makespan grows as sharing drops (more distinct bytes to move).
    assert bp["high"] < bp["medium"] < bp["low"]

    # BiPartition tracks IP within ~15% (paper: 5-10%).
    for overlap in ("high", "medium", "low"):
        assert bp[overlap] <= ip[overlap] * 1.15


def test_fig4_osumed_slower_than_xio(benchmark):
    """Cross-check of the two testbeds at high overlap (paper: OSUMED bars
    are an order of magnitude taller than XIO's)."""
    from repro.experiments import ExperimentConfig, run_config

    def run_pair():
        out = {}
        for storage in ("osumed", "xio"):
            cfg = ExperimentConfig(
                experiment="fig4-crosscheck",
                workload="sat",
                overlap="high",
                num_tasks=N_TASKS,
                storage=storage,
                scheme="bipartition",
            )
            out[storage] = run_config(cfg)
        return out

    pair = benchmark.pedantic(run_pair, rounds=1, iterations=1)
    assert pair["osumed"].makespan_s > 3 * pair["xio"].makespan_s
