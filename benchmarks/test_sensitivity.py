"""Sensitivity sweep (beyond the paper): replication-advantage crossover.

Sweeps the compute-interconnect/storage bandwidth ratio and checks the
crossover documented in ``repro.experiments.sensitivity``: MinMin is
competitive when replication has no advantage and falls behind the
affinity-aware BiPartition as replication gets cheap.
"""

from repro.experiments.sensitivity import replication_advantage_sweep

from conftest import paper_scale

RATIOS = (1.0, 5.0, 20.0)
N_TASKS = 100 if paper_scale() else 40


def test_replication_advantage_crossover(benchmark, show):
    table = benchmark.pedantic(
        replication_advantage_sweep,
        kwargs=dict(ratios=RATIOS, num_tasks=N_TASKS),
        rounds=1,
        iterations=1,
    )
    show(table)

    def gap(ratio):
        by = {
            r.scheme: r.makespan_s for r in table.records if r.x == ratio
        }
        return by["minmin"] / by["bipartition"]

    # The MinMin/BiPartition gap grows from the no-advantage regime to the
    # cheap-replication regime (the crossover).
    assert gap(RATIOS[-1]) > gap(RATIOS[0])
    # And with cheap replication BiPartition clearly wins.
    assert gap(RATIOS[-1]) > 1.05

    # MinMin's implicit replication volume rises with the advantage.
    def reps(ratio):
        return next(
            r.replications
            for r in table.records
            if r.x == ratio and r.scheme == "minmin"
        )

    assert reps(RATIOS[-1]) > reps(RATIOS[0])
