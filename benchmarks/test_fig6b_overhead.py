"""Figure 6(b): per-task scheduling time (ms) vs number of compute nodes.

Paper shape: the IP scheme's overhead is orders of magnitude above every
other scheme and grows with the configuration size; BiPartition and JDP
stay near-zero; MinMin sits in between (it iterates over all task-node
pairs at every step).

As in the paper, the IP scheme cannot be run at the full batch size — it
is measured on a truncated batch and reported per task.
"""

from repro.experiments import fig6b_scheduling_overhead

from conftest import overhead_series, paper_scale

if paper_scale():
    N_TASKS = 1000
    NODES = (2, 4, 8, 16, 32)
    IP_CAP = 48
else:
    N_TASKS = 200
    NODES = (2, 8, 32)
    IP_CAP = 16


def test_fig6b(benchmark, show):
    table = benchmark.pedantic(
        fig6b_scheduling_overhead,
        kwargs=dict(
            node_counts=NODES,
            num_tasks=N_TASKS,
            ip_task_cap=IP_CAP,
            ip_time_limit=10.0,
        ),
        rounds=1,
        iterations=1,
    )
    show(table)

    ip = overhead_series(table, "ip")
    bp = overhead_series(table, "bipartition")
    mm = overhead_series(table, "minmin")
    jdp = overhead_series(table, "jdp")

    for c in NODES:
        # IP is orders of magnitude above everything else.
        assert ip[c] > 20 * max(bp[c], mm[c], jdp[c]), (c, ip, bp, mm, jdp)
        # BiPartition and JDP stay tiny (well under 50 ms/task even scaled).
        assert bp[c] < 50.0
        assert jdp[c] < 50.0

    # IP overhead grows with the configuration size (more Y variables).
    assert ip[max(NODES)] > ip[min(NODES)]


def test_fig6b_minmin_overhead_grows_with_batch(benchmark):
    """The paper's MinMin-vs-JDP overhead gap comes from MinMin's O(T^2 C)
    rescans: its *per-task* scheduling time grows with the batch size while
    JDP's stays flat. Check the growth ratio directly on the mapping step.
    """
    import time

    from repro.cluster import ClusterState, osc_xio
    from repro.core import JobDataPresentScheduler, MinMinScheduler
    from repro.workloads import generate_image_batch

    platform = osc_xio(num_compute=4, num_storage=4)
    sizes = (100, 400) if not paper_scale() else (250, 1000)

    def measure():
        out = {}
        for scheme_name, scheduler in (
            ("minmin", MinMinScheduler()),
            ("jdp", JobDataPresentScheduler()),
        ):
            per_task = []
            for n in sizes:
                batch = generate_image_batch(n, "high", 4, seed=0)
                state = ClusterState.initial(platform, batch)
                pending = [t.task_id for t in batch.tasks]
                t0 = time.perf_counter()
                scheduler.next_subbatch(batch, pending, platform, state)
                per_task.append((time.perf_counter() - t0) / n)
            out[scheme_name] = per_task[1] / per_task[0]  # growth factor
        return out

    growth = benchmark.pedantic(measure, rounds=1, iterations=1)
    print(f"\nper-task overhead growth {sizes[0]}->{sizes[1]}: {growth}\n")
    # MinMin's per-task cost grows (quadratic term in its argmin scan,
    # linear here thanks to vectorisation); JDP's stays near-flat, so
    # MinMin's growth factor must exceed JDP's.
    assert growth["minmin"] > growth["jdp"]
    assert growth["minmin"] > 1.05
