"""Wall-clock speed tests for the incremental scheduling kernels.

Not part of tier-1 (``pytest.ini`` pins ``testpaths = tests``): run them
explicitly with ``PYTHONPATH=src python -m pytest benchmarks/ -q``.

Decision-identity is asserted unconditionally — every bench cell runs both
flavours and compares mappings/makespans before its timing counts
(:mod:`repro.experiments.bench` refuses to report unchecked speedups). The
*speed* floors are additionally gated behind ``REPRO_PERF_ASSERT=1``
because wall-clock ratios are only meaningful on a quiet machine; without
the variable the tests still run both flavours and print the measured
ratio, they just don't fail on it. The CI ``perf-smoke`` job enforces the
2x MinMin floor separately via ``repro bench --min-speedup``.

Floors are set ~20% under ratios measured on the development machine (see
``docs/performance.md`` for the numbers) so they catch regressions, not
scheduler noise. MaxMin and Sufferage clear lower bars by design: their
per-round selection scans are their tie-breaking semantics and are left
untouched, so only the matrix-rebuild share of their round is removed.
"""

import os

import pytest

from repro.experiments.bench import bench_end_to_end_cell, bench_mapping_cell

PERF_ASSERT = os.environ.get("REPRO_PERF_ASSERT") == "1"

def _check(result, floor: float) -> None:
    msg = (
        f"{result.cell}: {result.speedup:.2f}x "
        f"(ref {result.reference_s * 1e3:.1f} ms, "
        f"opt {result.optimized_s * 1e3:.1f} ms, floor {floor}x)"
    )
    print(msg)
    if PERF_ASSERT:
        assert result.speedup >= floor, msg

@pytest.mark.parametrize(
    "scheme,floor",
    [("minmin", 2.0), ("maxmin", 1.4), ("sufferage", 1.2)],
)
def test_mapping_speed_mid_cell(scheme, floor):
    # Mid-size Fig. 6b point: big enough that the reference's per-round
    # full rebuild dominates, small enough to stay fast under pytest.
    # Measured 2.37x / 1.78x / 1.47x on the development machine.
    _check(bench_mapping_cell(scheme, 600, 32, repeats=5), floor)

def test_mapping_speed_fig6b_headline():
    # The acceptance-gate cell: MinMin at the largest Fig. 6b point.
    # Measured 3.1x; the checked-in benchmarks/BENCH_*.json records the
    # >=3x run, the floor here leaves margin for noisier machines.
    _check(bench_mapping_cell("minmin", 1000, 32, repeats=7), 2.5)

def test_end_to_end_not_regressed():
    # Parity guard, not a speedup claim: at this size mapping is a sliver
    # of the wall clock, the Timeline rewrite benefits both flavours by
    # design, and the runtime caches (source memoisation, missing-bytes
    # index, cached eviction order) roughly break even against their
    # bookkeeping. Catch the optimized flavour *regressing* end to end.
    _check(
        bench_end_to_end_cell("minmin", 120, 8, repeats=3, candidate_limit=25),
        0.85,
    )
