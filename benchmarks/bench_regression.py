#!/usr/bin/env python
"""Benchmark-regression gate: reduced figure cells vs a checked-in baseline.

CI runs this twice per pipeline (see ``.github/workflows/ci.yml``):

* ``run`` executes a small fixed grid of experiment cells — reduced fig5b
  (batch-size sweep under disk pressure), reduced fig6b (scheduling
  overhead) and two fault-injection cells — and writes ``BENCH_<sha>.json``
  with each cell's simulated makespan, per-task scheduling wall time and
  end-to-end wall time.
* ``compare`` diffs that file against ``benchmarks/BENCH_baseline.json``
  and exits non-zero if any cell's *simulated makespan* moved by more than
  the tolerance (default 15%, override with ``REPRO_BENCH_TOLERANCE``).

The simulator is deterministic, so makespans should normally be *exactly*
baseline; the tolerance absorbs intentional cost-model tuning without CI
churn, while still catching real regressions. Wall-clock numbers vary by
machine and are reported but never gate.

Refreshing the baseline after an intentional semantic change::

    PYTHONPATH=src python benchmarks/bench_regression.py run \
        --out benchmarks/BENCH_baseline.json
"""

from __future__ import annotations

import argparse
import json
import os
import platform as _platform
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro import __version__  # noqa: E402
from repro.experiments import ExperimentConfig, run_config  # noqa: E402

BASELINE_PATH = Path(__file__).with_name("BENCH_baseline.json")
DEFAULT_TOLERANCE = 0.15

BENCH_SCHEMES = ("bipartition", "minmin", "jdp")


def bench_cells() -> list[tuple[str, ExperimentConfig]]:
    """The fixed benchmark grid: (cell id, config) pairs.

    Cell ids are stable keys in the JSON — extend the grid by appending,
    never by renaming (a rename silently drops the old cell from the gate
    until the baseline is refreshed).
    """
    cells: list[tuple[str, ExperimentConfig]] = []
    # Reduced fig5b: batch-size sweep under disk pressure (4 GB/node).
    for n in (50, 100):
        for scheme in BENCH_SCHEMES:
            cells.append(
                (
                    f"fig5b/n{n}/{scheme}",
                    ExperimentConfig(
                        experiment="bench-fig5b",
                        workload="image",
                        overlap="high",
                        num_tasks=n,
                        storage="xio",
                        disk_space_mb=4000.0,
                        scheme=scheme,
                        candidate_limit=25,
                    ),
                )
            )
    # Reduced fig6b: compute-scaling cells (scheduling overhead profile).
    for c in (2, 8):
        for scheme in BENCH_SCHEMES:
            cells.append(
                (
                    f"fig6b/c{c}/{scheme}",
                    ExperimentConfig(
                        experiment="bench-fig6b",
                        workload="image",
                        overlap="high",
                        num_tasks=60,
                        storage="xio",
                        num_compute=c,
                        num_storage=8,
                        scheme=scheme,
                        candidate_limit=25,
                    ),
                )
            )
    # Fault-injection cells: the recovery path (retries, failover, dynamic
    # rescheduling after a crash) is part of the gated surface too.
    for scheme in ("bipartition", "minmin"):
        cells.append(
            (
                f"faults/r0.2-crash/{scheme}",
                ExperimentConfig(
                    experiment="bench-faults",
                    workload="image",
                    overlap="high",
                    num_tasks=40,
                    storage="xio",
                    scheme=scheme,
                    faults={
                        "node_crashes": [{"node": 1, "time": 5.0}],
                        "transfer_failure_rate": 0.2,
                        "seed": 3,
                    },
                ),
            )
        )
    return cells


def cmd_run(args: argparse.Namespace) -> int:
    results: dict[str, dict[str, float]] = {}
    for cell_id, cfg in bench_cells():
        t0 = time.perf_counter()
        record = run_config(cfg)
        wall = time.perf_counter() - t0
        results[cell_id] = {
            "makespan_s": record.makespan_s,
            "scheduling_ms_per_task": record.scheduling_ms_per_task,
            "wall_s": round(wall, 3),
        }
        print(
            f"{cell_id:28s} makespan {record.makespan_s:9.2f}s   "
            f"wall {wall:6.2f}s"
        )
    doc = {
        "kind": "repro-bench",
        "bench_version": 1,
        "repro_version": __version__,
        "python": _platform.python_version(),
        "cells": results,
    }
    out = Path(args.out)
    with open(out, "w") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"\n{len(results)} cell(s) written to {out}")
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    tolerance = float(
        os.environ.get("REPRO_BENCH_TOLERANCE", str(args.tolerance))
    )
    with open(args.candidate) as fh:
        candidate = json.load(fh)
    with open(args.baseline) as fh:
        baseline = json.load(fh)
    base_cells = baseline["cells"]
    cand_cells = candidate["cells"]

    failures: list[str] = []
    missing = sorted(set(base_cells) - set(cand_cells))
    if missing:
        failures.append(f"cells missing from candidate: {', '.join(missing)}")
    added = sorted(set(cand_cells) - set(base_cells))
    if added:
        print(
            f"note: {len(added)} new cell(s) not in the baseline "
            f"(refresh it to gate them): {', '.join(added)}"
        )

    print(
        f"{'cell':28s} {'baseline':>10s} {'candidate':>10s} {'delta':>8s}   "
        f"wall delta"
    )
    for cell_id in sorted(set(base_cells) & set(cand_cells)):
        base = base_cells[cell_id]
        cand = cand_cells[cell_id]
        old, new = base["makespan_s"], cand["makespan_s"]
        rel = (new - old) / old if old else 0.0
        wall_note = ""
        if base.get("wall_s") and cand.get("wall_s"):
            wrel = (cand["wall_s"] - base["wall_s"]) / base["wall_s"]
            wall_note = f"{wrel:+7.1%} (informational)"
        verdict = "" if abs(rel) <= tolerance else "  <-- FAIL"
        print(
            f"{cell_id:28s} {old:9.2f}s {new:9.2f}s {rel:+8.2%}   "
            f"{wall_note}{verdict}"
        )
        if abs(rel) > tolerance:
            failures.append(
                f"{cell_id}: makespan {old:.2f}s -> {new:.2f}s "
                f"({rel:+.1%}, tolerance {tolerance:.0%})"
            )

    if failures:
        print(f"\nFAIL: {len(failures)} regression(s)")
        for f in failures:
            print(f"  {f}")
        print(
            "\nIf the change is intentional, refresh the baseline:\n"
            "  PYTHONPATH=src python benchmarks/bench_regression.py run "
            "--out benchmarks/BENCH_baseline.json"
        )
        return 1
    print(f"\nOK: all cells within {tolerance:.0%} of baseline")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    sub = parser.add_subparsers(dest="command", required=True)
    pr = sub.add_parser("run", help="run the benchmark grid and write JSON")
    pr.add_argument("--out", default="BENCH_current.json")
    pc = sub.add_parser("compare", help="compare a result file to the baseline")
    pc.add_argument("candidate", help="BENCH_<sha>.json produced by 'run'")
    pc.add_argument("--baseline", default=str(BASELINE_PATH))
    pc.add_argument(
        "--tolerance",
        type=float,
        default=DEFAULT_TOLERANCE,
        help="max relative makespan deviation (REPRO_BENCH_TOLERANCE wins)",
    )
    args = parser.parse_args(argv)
    return cmd_run(args) if args.command == "run" else cmd_compare(args)


if __name__ == "__main__":
    sys.exit(main())
