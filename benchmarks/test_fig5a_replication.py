"""Figure 5(a): benefit of compute-to-compute replication.

8 compute nodes + 4 OSUMED storage nodes, high-overlap 100-task batches of
IMAGE and SAT. Paper shape: disabling replication costs clearly measurable
time, because every re-read of a shared file must then cross the contended
storage cluster (and its shared 100 Mbps uplink).
"""

from repro.experiments import fig5a_replication_benefit

from conftest import paper_scale, series

N_TASKS = 100 if paper_scale() else 60


def test_fig5a(benchmark, show):
    table = benchmark.pedantic(
        fig5a_replication_benefit,
        kwargs=dict(num_tasks=N_TASKS),
        rounds=1,
        iterations=1,
    )
    show(table)

    rep = series(table, "bipartition")
    norep = series(table, "bipartition-norep")

    for workload in ("image", "sat"):
        # Replication never hurts, and helps visibly on at least one app.
        assert norep[workload] >= rep[workload] * 0.999
    improvements = [norep[w] / rep[w] for w in ("image", "sat")]
    assert max(improvements) >= 1.15, improvements

    # No replications may occur in the disabled runs.
    for r in table.records:
        if r.scheme.endswith("-norep"):
            assert r.replications == 0
