"""Workload emulators for the paper's two application classes plus synthetics.

* :func:`generate_sat_batch` — satellite data analysis (hot-spot window
  queries over a chunked spatio-temporal dataset, Hilbert-declustered).
* :func:`generate_image_batch` — biomedical image analysis (patient/study/
  modality selections over an MRI+CT archive, round-robin placement).
* :func:`generate_synthetic_batch` — direct control of sharing for tests.
* :func:`generate_hilbert_batch` — spatial window queries over the
  Hilbert-declustered chunk grid (geometric sharing).
* :func:`generate_overlap_batch` — affinity groups with a directly dialled
  shared-file fraction.

All generators are exposed through the :data:`WORKLOADS` registry under a
uniform ``(num_tasks, overlap, num_storage, seed)`` signature — the single
source of truth for experiment configs and CLI ``--workload`` choices.
"""

from .hilbert import (
    HILBERT_PRESETS,
    decluster,
    generate_hilbert_batch,
    hilbert_d2xy,
    hilbert_order_for,
    hilbert_xy2d,
)
from .image import (
    IMAGE_PRESETS,
    ImageConfig,
    affinity_group_of,
    generate_image_batch,
    image_file_id,
)
from .overlap import (
    OVERLAP_PRESETS,
    generate_overlap_batch,
    image_groups,
    sat_groups,
    within_group_overlap,
)
from .sat import SAT_PRESETS, SatConfig, generate_sat_batch, hotspot_of, sat_file_id
from .synthetic import generate_synthetic_batch

__all__ = [
    "generate_sat_batch",
    "generate_image_batch",
    "generate_synthetic_batch",
    "generate_hilbert_batch",
    "generate_overlap_batch",
    "WORKLOADS",
    "available_workloads",
    "make_batch",
    "SAT_PRESETS",
    "SatConfig",
    "IMAGE_PRESETS",
    "ImageConfig",
    "HILBERT_PRESETS",
    "OVERLAP_PRESETS",
    "sat_file_id",
    "image_file_id",
    "hilbert_xy2d",
    "hilbert_d2xy",
    "hilbert_order_for",
    "decluster",
    "within_group_overlap",
    "sat_groups",
    "image_groups",
    "hotspot_of",
    "affinity_group_of",
]


def _synthetic(num_tasks, overlap, num_storage, seed=0):
    """Adapter: map the overlap level onto the hot-pool probability."""
    levels = {"high": 0.85, "medium": 0.4, "low": 0.1}
    if overlap not in levels:
        raise ValueError(
            f"unknown overlap level {overlap!r}; use {sorted(levels)}"
        )
    return generate_synthetic_batch(
        num_tasks,
        num_files=max(num_tasks * 2, 16),
        files_per_task=4,
        num_storage=num_storage,
        hot_probability=levels[overlap],
        size_spread=0.2,
        seed=seed,
    )


#: Registry of batch generators under the uniform signature
#: ``(num_tasks, overlap, num_storage, seed)``; ``overlap`` is one of
#: ``"high" | "medium" | "low"`` for every entry.
WORKLOADS = {
    "sat": generate_sat_batch,
    "image": generate_image_batch,
    "synthetic": _synthetic,
    "hilbert": generate_hilbert_batch,
    "overlap": generate_overlap_batch,
}


def available_workloads() -> list[str]:
    """Registered workload names, sorted."""
    return sorted(WORKLOADS)


def make_batch(workload, num_tasks, overlap, num_storage, seed=0):
    """Generate a batch by registry name (the CLI/experiments entry point)."""
    try:
        gen = WORKLOADS[workload]
    except KeyError:
        raise ValueError(
            f"unknown workload {workload!r}; use {available_workloads()}"
        ) from None
    return gen(num_tasks, overlap, num_storage, seed)
