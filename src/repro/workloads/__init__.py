"""Workload emulators for the paper's two application classes plus synthetics.

* :func:`generate_sat_batch` — satellite data analysis (hot-spot window
  queries over a chunked spatio-temporal dataset, Hilbert-declustered).
* :func:`generate_image_batch` — biomedical image analysis (patient/study/
  modality selections over an MRI+CT archive, round-robin placement).
* :func:`generate_synthetic_batch` — direct control of sharing for tests.
"""

from .hilbert import decluster, hilbert_d2xy, hilbert_order_for, hilbert_xy2d
from .image import (
    IMAGE_PRESETS,
    ImageConfig,
    affinity_group_of,
    generate_image_batch,
    image_file_id,
)
from .overlap import image_groups, sat_groups, within_group_overlap
from .sat import SAT_PRESETS, SatConfig, generate_sat_batch, hotspot_of, sat_file_id
from .synthetic import generate_synthetic_batch

__all__ = [
    "generate_sat_batch",
    "generate_image_batch",
    "generate_synthetic_batch",
    "SAT_PRESETS",
    "SatConfig",
    "IMAGE_PRESETS",
    "ImageConfig",
    "sat_file_id",
    "image_file_id",
    "hilbert_xy2d",
    "hilbert_d2xy",
    "hilbert_order_for",
    "decluster",
    "within_group_overlap",
    "sat_groups",
    "image_groups",
    "hotspot_of",
    "affinity_group_of",
]
