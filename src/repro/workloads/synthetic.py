"""Direct synthetic batch generator with explicit sharing control.

Used by unit tests, property tests and ablation benchmarks when the domain
flavour of the SAT/IMAGE emulators is unnecessary: a batch of ``num_tasks``
tasks drawing ``files_per_task`` files from a pool, where each draw comes
from a small *hot* pool with probability ``hot_probability`` — a direct dial
for batch-shared I/O intensity.
"""

from __future__ import annotations

import numpy as np

from ..batch import Batch, FileInfo, Task

__all__ = ["generate_synthetic_batch"]


def generate_synthetic_batch(
    num_tasks: int,
    num_files: int,
    files_per_task: int,
    num_storage: int,
    hot_probability: float = 0.0,
    hot_pool_fraction: float = 0.1,
    file_size_mb: float = 50.0,
    size_spread: float = 0.0,
    compute_s_per_mb: float = 0.001,
    seed: int = 0,
) -> Batch:
    """Generate a synthetic batch.

    Parameters
    ----------
    hot_probability:
        Probability that each file draw comes from the hot pool (the first
        ``hot_pool_fraction`` of the files). 0 gives uniform draws.
    size_spread:
        Relative +/- range of uniform file-size variation (0 = constant).
    """
    if files_per_task > num_files:
        raise ValueError("files_per_task cannot exceed num_files")
    if not 0 <= hot_probability <= 1:
        raise ValueError("hot_probability must be in [0, 1]")
    rng = np.random.default_rng(seed)
    hot_count = max(1, int(num_files * hot_pool_fraction))

    sizes = file_size_mb * (
        1.0 + size_spread * rng.uniform(-1.0, 1.0, size=num_files)
    )
    files = {
        f"syn{i:05d}": FileInfo(f"syn{i:05d}", float(sizes[i]), i % num_storage)
        for i in range(num_files)
    }
    ids = list(files)

    tasks = []
    for k in range(num_tasks):
        chosen: set[int] = set()
        while len(chosen) < files_per_task:
            if rng.random() < hot_probability:
                chosen.add(int(rng.integers(0, hot_count)))
            else:
                chosen.add(int(rng.integers(0, num_files)))
        file_ids = tuple(ids[i] for i in sorted(chosen))
        volume = sum(files[f].size_mb for f in file_ids)
        tasks.append(
            Task(
                task_id=f"task{k:05d}",
                files=file_ids,
                compute_time=volume * compute_s_per_mb,
            )
        )
    return Batch(tasks, files)
