"""Overlap measurement within affinity groups.

The paper characterises workloads by the degree of file sharing *among the
tasks that are related* (queries at the same hot spot, studies of the same
patient). :func:`within_group_overlap` is the calibration metric for the
generators' presets: the mean, over all task pairs in the same affinity
group, of ``|A ∩ B| / min(|A|, |B|)``.
"""

from __future__ import annotations

import itertools
from collections.abc import Callable, Hashable

from ..batch import Batch

__all__ = ["within_group_overlap", "sat_groups", "image_groups"]


def within_group_overlap(
    batch: Batch, group_of: Callable[[str], Hashable]
) -> float:
    """Mean pairwise overlap among tasks sharing an affinity group."""
    groups: dict[Hashable, list[frozenset[str]]] = {}
    for t in batch.tasks:
        groups.setdefault(group_of(t.task_id), []).append(frozenset(t.files))
    acc = 0.0
    count = 0
    for sets in groups.values():
        for a, b in itertools.combinations(sets, 2):
            acc += len(a & b) / min(len(a), len(b))
            count += 1
    return acc / count if count else 0.0


def sat_groups(batch: Batch) -> Callable[[str], Hashable]:
    """Affinity grouping for SAT batches (hot-spot set)."""
    from .sat import hotspot_of

    return lambda task_id: hotspot_of(task_id)


def image_groups(batch: Batch) -> Callable[[str], Hashable]:
    """Affinity grouping for IMAGE batches ((patient, modality))."""
    from .image import affinity_group_of

    return lambda task_id: affinity_group_of(batch, task_id)
