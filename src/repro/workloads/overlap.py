"""Overlap measurement within affinity groups, and a direct-dial generator.

The paper characterises workloads by the degree of file sharing *among the
tasks that are related* (queries at the same hot spot, studies of the same
patient). :func:`within_group_overlap` is the calibration metric for the
generators' presets: the mean, over all task pairs in the same affinity
group, of ``|A ∩ B| / min(|A|, |B|)``.

:func:`generate_overlap_batch` turns the metric into a generator: affinity
groups of tasks drawing from a group-shared file set plus per-task private
files, with the shared fraction set directly by the overlap level.
"""

from __future__ import annotations

import itertools
from collections.abc import Callable, Hashable

from ..batch import Batch

__all__ = [
    "within_group_overlap",
    "sat_groups",
    "image_groups",
    "generate_overlap_batch",
    "OVERLAP_PRESETS",
]


def within_group_overlap(
    batch: Batch, group_of: Callable[[str], Hashable]
) -> float:
    """Mean pairwise overlap among tasks sharing an affinity group."""
    groups: dict[Hashable, list[frozenset[str]]] = {}
    for t in batch.tasks:
        groups.setdefault(group_of(t.task_id), []).append(frozenset(t.files))
    acc = 0.0
    count = 0
    for sets in groups.values():
        for a, b in itertools.combinations(sets, 2):
            acc += len(a & b) / min(len(a), len(b))
            count += 1
    return acc / count if count else 0.0


def sat_groups(batch: Batch) -> Callable[[str], Hashable]:
    """Affinity grouping for SAT batches (hot-spot set)."""
    from .sat import hotspot_of

    return lambda task_id: hotspot_of(task_id)


def image_groups(batch: Batch) -> Callable[[str], Hashable]:
    """Affinity grouping for IMAGE batches ((patient, modality))."""
    from .image import affinity_group_of

    return lambda task_id: affinity_group_of(batch, task_id)


#: Shared-file fraction per overlap level — the paper's 85/40/10 targets
#: applied literally (tasks in a group share exactly this fraction).
OVERLAP_PRESETS: dict[str, float] = {"high": 0.85, "medium": 0.4, "low": 0.1}

_FILES_PER_TASK = 8
_GROUP_SIZE = 6
_FILE_MB = 50.0


def generate_overlap_batch(
    num_tasks: int,
    overlap: str,
    num_storage: int,
    seed: int = 0,
) -> Batch:
    """Affinity groups with a directly dialled shared-file fraction.

    Tasks are dealt round-robin into groups of 6. Each task reads 8 files:
    ``round(8 * OVERLAP_PRESETS[overlap])`` drawn from its group's shared
    pool and the rest private to the task, so the within-group overlap *is*
    the preset, by construction. Files are spread over storage nodes
    round-robin in creation order; sizes vary deterministically around
    50 MB so size-based victim orderings never tie.
    """
    import numpy as np

    from ..batch import FileInfo, Task

    if overlap not in OVERLAP_PRESETS:
        raise ValueError(
            f"unknown overlap level {overlap!r}; use {sorted(OVERLAP_PRESETS)}"
        )
    rng = np.random.default_rng(seed)
    shared_per_task = round(_FILES_PER_TASK * OVERLAP_PRESETS[overlap])
    num_groups = max(1, (num_tasks + _GROUP_SIZE - 1) // _GROUP_SIZE)

    files: dict[str, FileInfo] = {}

    def new_file(fid: str) -> str:
        size = float(_FILE_MB * (1.0 + 0.2 * rng.uniform(-1.0, 1.0)))
        files[fid] = FileInfo(fid, size, len(files) % num_storage)
        return fid

    # Each group's shared pool is as large as one task's shared draw, so
    # every group member reads the whole pool: pairwise shared overlap is
    # exactly shared_per_task files.
    shared_pools = [
        [new_file(f"ovl_g{g:03d}_s{i:02d}") for i in range(max(shared_per_task, 1))]
        for g in range(num_groups)
    ]

    tasks = []
    for k in range(num_tasks):
        group = k % num_groups
        shared = shared_pools[group][:shared_per_task]
        private = [
            new_file(f"ovl_t{k:05d}_p{i:02d}")
            for i in range(_FILES_PER_TASK - len(shared))
        ]
        file_ids = tuple(shared + private)
        volume = sum(files[f].size_mb for f in file_ids)
        tasks.append(
            Task(
                task_id=f"ovltask{k:05d}",
                files=file_ids,
                compute_time=volume * 0.001,
            )
        )
    return Batch(tasks, files)
