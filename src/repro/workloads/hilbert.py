"""2-D Hilbert space-filling curve used for declustering SAT files.

The paper distributes the satellite dataset across storage nodes with a
Hilbert-curve based declustering method [Faloutsos & Roseman, PODS'89]:
chunks that are close in space map to nearby curve positions, and assigning
consecutive curve positions to storage nodes round-robin spreads any
spatially clustered query across all storage nodes.

Implements the classic bit-twiddling conversion between the (x, y) cell of a
``2^order x 2^order`` grid and the distance ``d`` along the Hilbert curve.
"""

from __future__ import annotations

__all__ = ["hilbert_d2xy", "hilbert_xy2d", "hilbert_order_for", "decluster"]


def hilbert_xy2d(order: int, x: int, y: int) -> int:
    """Distance along the Hilbert curve of cell ``(x, y)``.

    ``order`` is the curve order: the grid is ``2^order`` cells per side.
    """
    n = 1 << order
    if not (0 <= x < n and 0 <= y < n):
        raise ValueError(f"cell ({x}, {y}) outside 2^{order} grid")
    rx = ry = 0
    d = 0
    s = n >> 1
    while s > 0:
        rx = 1 if (x & s) > 0 else 0
        ry = 1 if (y & s) > 0 else 0
        d += s * s * ((3 * rx) ^ ry)
        x, y = _rotate(s, x, y, rx, ry)
        s >>= 1
    return d


def hilbert_d2xy(order: int, d: int) -> tuple[int, int]:
    """Cell ``(x, y)`` at distance ``d`` along the Hilbert curve."""
    n = 1 << order
    if not (0 <= d < n * n):
        raise ValueError(f"distance {d} outside curve of order {order}")
    x = y = 0
    t = d
    s = 1
    while s < n:
        rx = 1 & (t // 2)
        ry = 1 & (t ^ rx)
        x, y = _rotate(s, x, y, rx, ry)
        x += s * rx
        y += s * ry
        t //= 4
        s <<= 1
    return x, y


def _rotate(s: int, x: int, y: int, rx: int, ry: int) -> tuple[int, int]:
    """Rotate/flip a quadrant as required by the curve construction."""
    if ry == 0:
        if rx == 1:
            x = s - 1 - x
            y = s - 1 - y
        x, y = y, x
    return x, y


def hilbert_order_for(width: int, height: int) -> int:
    """Smallest curve order whose grid covers ``width x height`` cells."""
    order = 0
    while (1 << order) < max(width, height):
        order += 1
    return order


def decluster(
    cells: list[tuple[int, int]], num_storage: int
) -> dict[tuple[int, int], int]:
    """Assign grid cells to storage nodes by Hilbert rank round-robin.

    Cells are ranked by Hilbert distance; rank ``r`` goes to storage node
    ``r mod num_storage``, so spatially adjacent cells land on different
    nodes and a window query touches all storage nodes roughly evenly.
    """
    if num_storage < 1:
        raise ValueError("num_storage must be >= 1")
    if not cells:
        return {}
    order = hilbert_order_for(
        max(c[0] for c in cells) + 1, max(c[1] for c in cells) + 1
    )
    ranked = sorted(cells, key=lambda c: hilbert_xy2d(order, c[0], c[1]))
    return {cell: rank % num_storage for rank, cell in enumerate(ranked)}
