"""2-D Hilbert space-filling curve used for declustering SAT files.

The paper distributes the satellite dataset across storage nodes with a
Hilbert-curve based declustering method [Faloutsos & Roseman, PODS'89]:
chunks that are close in space map to nearby curve positions, and assigning
consecutive curve positions to storage nodes round-robin spreads any
spatially clustered query across all storage nodes.

Implements the classic bit-twiddling conversion between the (x, y) cell of a
``2^order x 2^order`` grid and the distance ``d`` along the Hilbert curve,
plus :func:`generate_hilbert_batch`, a window-query workload generator built
directly on the declustered grid (a geometric cousin of the SAT emulator:
tasks read rectangular chunk windows instead of hot-spot day ranges).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from ..batch import Batch

__all__ = [
    "hilbert_d2xy",
    "hilbert_xy2d",
    "hilbert_order_for",
    "decluster",
    "generate_hilbert_batch",
    "HILBERT_PRESETS",
]


def hilbert_xy2d(order: int, x: int, y: int) -> int:
    """Distance along the Hilbert curve of cell ``(x, y)``.

    ``order`` is the curve order: the grid is ``2^order`` cells per side.
    """
    n = 1 << order
    if not (0 <= x < n and 0 <= y < n):
        raise ValueError(f"cell ({x}, {y}) outside 2^{order} grid")
    rx = ry = 0
    d = 0
    s = n >> 1
    while s > 0:
        rx = 1 if (x & s) > 0 else 0
        ry = 1 if (y & s) > 0 else 0
        d += s * s * ((3 * rx) ^ ry)
        x, y = _rotate(s, x, y, rx, ry)
        s >>= 1
    return d


def hilbert_d2xy(order: int, d: int) -> tuple[int, int]:
    """Cell ``(x, y)`` at distance ``d`` along the Hilbert curve."""
    n = 1 << order
    if not (0 <= d < n * n):
        raise ValueError(f"distance {d} outside curve of order {order}")
    x = y = 0
    t = d
    s = 1
    while s < n:
        rx = 1 & (t // 2)
        ry = 1 & (t ^ rx)
        x, y = _rotate(s, x, y, rx, ry)
        x += s * rx
        y += s * ry
        t //= 4
        s <<= 1
    return x, y


def _rotate(s: int, x: int, y: int, rx: int, ry: int) -> tuple[int, int]:
    """Rotate/flip a quadrant as required by the curve construction."""
    if ry == 0:
        if rx == 1:
            x = s - 1 - x
            y = s - 1 - y
        x, y = y, x
    return x, y


def hilbert_order_for(width: int, height: int) -> int:
    """Smallest curve order whose grid covers ``width x height`` cells."""
    order = 0
    while (1 << order) < max(width, height):
        order += 1
    return order


def decluster(
    cells: list[tuple[int, int]], num_storage: int
) -> dict[tuple[int, int], int]:
    """Assign grid cells to storage nodes by Hilbert rank round-robin.

    Cells are ranked by Hilbert distance; rank ``r`` goes to storage node
    ``r mod num_storage``, so spatially adjacent cells land on different
    nodes and a window query touches all storage nodes roughly evenly.
    """
    if num_storage < 1:
        raise ValueError("num_storage must be >= 1")
    if not cells:
        return {}
    order = hilbert_order_for(
        max(c[0] for c in cells) + 1, max(c[1] for c in cells) + 1
    )
    ranked = sorted(cells, key=lambda c: hilbert_xy2d(order, c[0], c[1]))
    return {cell: rank % num_storage for rank, cell in enumerate(ranked)}


#: Overlap presets for :func:`generate_hilbert_batch`: the fraction of
#: window centres drawn from a small pool of hot centres. Same level names
#: as the SAT/IMAGE presets so the registry exposes a uniform knob.
HILBERT_PRESETS: dict[str, float] = {"high": 0.85, "medium": 0.4, "low": 0.1}

_GRID_SIDE = 16  # chunks per side: 256 chunks total
_WINDOW = 3  # window queries read a 3x3 chunk neighbourhood
_CHUNK_MB = 50.0
_HOT_CENTRES = 4


def generate_hilbert_batch(
    num_tasks: int,
    overlap: str,
    num_storage: int,
    seed: int = 0,
) -> Batch:
    """Spatial window queries over a Hilbert-declustered chunk grid.

    The dataset is a ``16 x 16`` grid of 50 MB chunks assigned to storage
    nodes by :func:`decluster` (Hilbert-rank round-robin), so any query
    window spreads across all storage nodes. Each task reads the ``3 x 3``
    window around a centre; with probability ``HILBERT_PRESETS[overlap]``
    the centre comes from a pool of 4 hot centres (tasks at the same hot
    centre share all 9 chunks), otherwise it is uniform over the grid.
    """
    import numpy as np

    from ..batch import Batch, FileInfo, Task

    if overlap not in HILBERT_PRESETS:
        raise ValueError(
            f"unknown overlap level {overlap!r}; use {sorted(HILBERT_PRESETS)}"
        )
    hot_probability = HILBERT_PRESETS[overlap]
    rng = np.random.default_rng(seed)

    cells = [(x, y) for x in range(_GRID_SIDE) for y in range(_GRID_SIDE)]
    placement = decluster(cells, num_storage)
    lo = _WINDOW // 2
    hi = _GRID_SIDE - 1 - lo

    def chunk_id(x: int, y: int) -> str:
        return f"hil{x:02d}_{y:02d}"

    def draw_centre() -> tuple[int, int]:
        return (
            int(rng.integers(lo, hi + 1)),
            int(rng.integers(lo, hi + 1)),
        )

    hot_centres = [draw_centre() for _ in range(_HOT_CENTRES)]
    files: dict[str, FileInfo] = {}
    tasks = []
    for k in range(num_tasks):
        if rng.random() < hot_probability:
            cx, cy = hot_centres[int(rng.integers(0, _HOT_CENTRES))]
        else:
            cx, cy = draw_centre()
        window = [
            (cx + dx, cy + dy)
            for dx in range(-lo, _WINDOW - lo)
            for dy in range(-lo, _WINDOW - lo)
        ]
        file_ids = []
        volume = 0.0
        for x, y in window:
            fid = chunk_id(x, y)
            if fid not in files:
                # Deterministic per-chunk size variation so cache-victim
                # orderings never tie on equal sizes.
                size = _CHUNK_MB * (1.0 + 0.1 * ((x * _GRID_SIDE + y) % 7) / 7.0)
                files[fid] = FileInfo(fid, size, placement[(x, y)])
            file_ids.append(fid)
            volume += files[fid].size_mb
        tasks.append(
            Task(
                task_id=f"hiltask{k:05d}",
                files=tuple(file_ids),
                compute_time=volume * 0.001,
            )
        )
    return Batch(tasks, files)
