"""Biomedical image analysis workload emulator (the paper's IMAGE application).

Models follow-up imaging studies: ``NUM_PATIENTS`` patients, each with
``STUDIES_PER_PATIENT`` studies (imaging sessions on different days); every
study holds one 64 MB CT volume and nine 4 MB MRI slices — 100 MB per study,
2 GB per patient, 2 TB in total (Section 7's dataset). Images of a patient
are distributed across the storage nodes round-robin.

A task selects images by (patient, study/date range, modality): a CT task
reads the CT volume of ``CT_WINDOW`` consecutive studies (8 files, 512 MB);
an MRI task reads the MRI series of one study (9 files, 36 MB) — matching
the paper's ~8 files per task with 64 MB / 4 MB image sizes.

Overlap is controlled by (a) the size of the *hot patient pool* tasks draw
from and (b) the jitter of the study window, calibrated against the mean
pairwise overlap among tasks of the same (patient, modality) affinity group:

* ``high``   — ~85 % within-group overlap; pool of ``ceil(n/8)`` patients
  also reproduces Fig. 5(b)'s aggregate footprints (500 tasks -> ~40 GB,
  4000 tasks -> ~330 GB);
* ``medium`` — ~40 % within-group overlap, larger pool;
* ``zero``   — every task has a distinct patient: no sharing (the paper's
  0 % IMAGE workload; ``low`` is accepted as an alias).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..batch import Batch, FileInfo, Task

__all__ = [
    "ImageConfig",
    "IMAGE_PRESETS",
    "generate_image_batch",
    "image_file_id",
    "affinity_group_of",
]

NUM_PATIENTS = 1000
STUDIES_PER_PATIENT = 20
MRI_PER_STUDY = 9
CT_MB = 64.0
MRI_MB = 4.0
CT_WINDOW = 8  # studies per CT task
COMPUTE_S_PER_MB = 0.001


@dataclass(frozen=True)
class ImageConfig:
    """Hot-pool and jitter parameters for one overlap level.

    ``hot_pool_divisor`` sets the hot-patient pool size to
    ``ceil(num_tasks / divisor)`` (``None`` = unique patient per task). With
    probability ``jitter_probability`` a CT task's study window start is
    drawn uniformly from ``[0, ct_jitter]`` and an MRI task's study from
    ``[0, mri_jitter]``; otherwise both sit at study 0.
    """

    hot_pool_divisor: float | None
    ct_jitter: int
    mri_jitter: int
    jitter_probability: float = 1.0


# Calibrated to ~85 / 40 / 0 per cent mean pairwise overlap within
# (patient, modality) groups (tests/workloads/test_image.py).
IMAGE_PRESETS: dict[str, ImageConfig] = {
    "high": ImageConfig(
        hot_pool_divisor=8.0, ct_jitter=1, mri_jitter=1, jitter_probability=0.35
    ),
    "medium": ImageConfig(
        hot_pool_divisor=8.0,
        ct_jitter=STUDIES_PER_PATIENT - CT_WINDOW,
        mri_jitter=2,
    ),
    "zero": ImageConfig(hot_pool_divisor=None, ct_jitter=0, mri_jitter=0),
}
IMAGE_PRESETS["low"] = IMAGE_PRESETS["zero"]  # paper's 0 % low-overlap case


def image_file_id(patient: int, study: int, modality: str, index: int = 0) -> str:
    return f"img_p{patient:04d}_s{study:02d}_{modality}{index}"


def _file_info(
    patient: int, study: int, modality: str, index: int, num_storage: int
) -> FileInfo:
    # Round-robin placement of each patient's images across storage nodes,
    # staggered by patient so patients start on different nodes.
    per_study = 1 + MRI_PER_STUDY
    image_index = study * per_study + (0 if modality == "ct" else 1 + index)
    storage = (patient + image_index) % num_storage
    size = CT_MB if modality == "ct" else MRI_MB
    return FileInfo(image_file_id(patient, study, modality, index), size, storage)


def generate_image_batch(
    num_tasks: int,
    overlap: str,
    num_storage: int,
    seed: int = 0,
    ct_fraction: float = 0.5,
) -> Batch:
    """Generate an IMAGE batch with the given overlap level.

    ``ct_fraction`` of the tasks are CT tasks (8 large files each); the rest
    are MRI tasks (9 small files each).
    """
    if overlap not in IMAGE_PRESETS:
        raise ValueError(
            f"unknown overlap level {overlap!r}; use {sorted(IMAGE_PRESETS)}"
        )
    if num_tasks < 1:
        raise ValueError("num_tasks must be >= 1")
    cfg = IMAGE_PRESETS[overlap]
    rng = np.random.default_rng(seed)

    if cfg.hot_pool_divisor is None:
        if num_tasks > NUM_PATIENTS:
            raise ValueError(
                f"zero-overlap workload supports at most {NUM_PATIENTS} tasks"
            )
        pool = rng.choice(NUM_PATIENTS, size=num_tasks, replace=False)
        patient_of = {k: int(pool[k]) for k in range(num_tasks)}
    else:
        pool_size = max(1, math.ceil(num_tasks / cfg.hot_pool_divisor))
        pool = rng.choice(
            NUM_PATIENTS, size=min(pool_size, NUM_PATIENTS), replace=False
        )
        patient_of = {k: int(pool[k % len(pool)]) for k in range(num_tasks)}

    files: dict[str, FileInfo] = {}
    tasks: list[Task] = []

    def add_file(patient: int, study: int, modality: str, index: int = 0) -> str:
        fid = image_file_id(patient, study, modality, index)
        if fid not in files:
            files[fid] = _file_info(patient, study, modality, index, num_storage)
        return fid

    for k in range(num_tasks):
        patient = patient_of[k]
        is_ct = rng.random() < ct_fraction
        jitter = cfg.ct_jitter if is_ct else cfg.mri_jitter
        if rng.random() < cfg.jitter_probability and jitter > 0:
            offset = int(rng.integers(0, jitter + 1))
        else:
            offset = 0
        if is_ct:
            s0 = min(offset, STUDIES_PER_PATIENT - CT_WINDOW)
            accessed = [add_file(patient, s0 + i, "ct") for i in range(CT_WINDOW)]
        else:
            study = offset % STUDIES_PER_PATIENT
            accessed = [
                add_file(patient, study, "mri", i) for i in range(MRI_PER_STUDY)
            ]
        volume = sum(files[f].size_mb for f in accessed)
        tasks.append(
            Task(
                task_id=f"img{k:05d}",
                files=tuple(accessed),
                compute_time=volume * COMPUTE_S_PER_MB,
            )
        )
    return Batch(tasks, files)


def affinity_group_of(batch: Batch, task_id: str) -> tuple[str, str]:
    """(patient, modality) affinity group of a generated IMAGE task."""
    t = batch.task(task_id)
    first = t.files[0]  # img_pXXXX_sYY_<modality><index>
    parts = first.split("_")
    patient = parts[1]
    modality = "ct" if parts[3].startswith("ct") else "mri"
    return patient, modality
