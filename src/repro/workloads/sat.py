"""Satellite data processing workload emulator (the paper's SAT application).

Models the Titan-style remote-sensing dataset [7, 15]: sensor readings are
grouped into spatio-temporal chunks, one chunk per 50 MB file, on a grid of
``GRID_X x GRID_Y`` cells over ``NUM_DAYS`` days (10 x 5 x 20 = 1000 files
= 50 GB, matching Section 7). Files are declustered over the storage nodes
with a Hilbert curve on the spatial cell, offset per day.

A task is a spatio-temporal window query directed at one of four *hot spot*
sets. Each set owns a disjoint range of days, so there is no sharing across
sets (as in the paper); the amount of sharing *within* a set is controlled
by the query window size and the jitter of the window placement.

Overlap levels are calibrated against the mean pairwise file overlap
(``|A ∩ B| / min(|A|, |B|)``) between tasks of the same hot-spot set —
the quantity the paper tunes to 85 % / 40 % / 10 % — with 8 files per task
for ``high`` and 14 for ``medium``/``low``
(tests/workloads/test_sat.py::test_overlap_calibration).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..batch import Batch, FileInfo, Task
from .hilbert import decluster

__all__ = [
    "SatConfig",
    "SAT_PRESETS",
    "generate_sat_batch",
    "sat_file_id",
    "hotspot_of",
]

GRID_X = 10
GRID_Y = 5
NUM_DAYS = 20
FILE_MB = 50.0
NUM_HOTSPOTS = 4
COMPUTE_S_PER_MB = 0.001


@dataclass(frozen=True)
class SatConfig:
    """Window-query parameters for one overlap level.

    ``window`` is the (x, y, days) extent of each query. With probability
    ``jitter_probability`` a task's window corner is displaced from the hot
    spot's base corner by a uniform integer in ``[0, jitter]`` per dimension
    (days are relative to the set's day range); otherwise it sits exactly on
    the base corner.
    """

    window: tuple[int, int, int]
    jitter: tuple[int, int, int]
    jitter_probability: float = 1.0
    bases: tuple[tuple[int, int], ...] = ((1, 0), (6, 0), (1, 3), (6, 3))

    @property
    def files_per_task(self) -> int:
        wx, wy, wd = self.window
        return wx * wy * wd

    def validate(self):
        wx, wy, wd = self.window
        jx, jy, jd = self.jitter
        days_per_set = NUM_DAYS // NUM_HOTSPOTS
        if jd + wd > days_per_set:
            raise ValueError("day window + jitter exceeds a hot spot's day range")
        for bx, by in self.bases:
            if bx + jx + wx > GRID_X or by + jy + wy > GRID_Y:
                raise ValueError(
                    f"base ({bx},{by}) + jitter + window exceeds the grid"
                )


# Calibrated to ~85 / 40 / 10 per cent mean pairwise within-set overlap.
SAT_PRESETS: dict[str, SatConfig] = {
    "high": SatConfig(window=(2, 2, 2), jitter=(1, 0, 0), jitter_probability=0.37),
    "medium": SatConfig(
        window=(7, 2, 1), jitter=(3, 3, 0), bases=((0, 0),) * 4
    ),
    "low": SatConfig(
        window=(7, 2, 1), jitter=(3, 3, 4), bases=((0, 0),) * 4
    ),
}


def sat_file_id(day: int, x: int, y: int) -> str:
    return f"sat_d{day:02d}_x{x}_y{y}"


def _storage_map(num_storage: int) -> dict[tuple[int, int], int]:
    cells = [(x, y) for x in range(GRID_X) for y in range(GRID_Y)]
    return decluster(cells, num_storage)


def generate_sat_batch(
    num_tasks: int,
    overlap: str,
    num_storage: int,
    seed: int = 0,
) -> Batch:
    """Generate a SAT batch with the given overlap level.

    Tasks are dealt round-robin to the four hot-spot sets; set ``s`` owns
    days ``[5s, 5s+5)``.
    """
    if overlap not in SAT_PRESETS:
        raise ValueError(
            f"unknown overlap level {overlap!r}; use {sorted(SAT_PRESETS)}"
        )
    if num_tasks < 1:
        raise ValueError("num_tasks must be >= 1")
    cfg = SAT_PRESETS[overlap]
    cfg.validate()
    rng = np.random.default_rng(seed)
    cell_storage = _storage_map(num_storage)

    wx, wy, wd = cfg.window
    jx, jy, jd = cfg.jitter
    days_per_set = NUM_DAYS // NUM_HOTSPOTS

    files: dict[str, FileInfo] = {}
    tasks: list[Task] = []
    for k in range(num_tasks):
        s = k % NUM_HOTSPOTS
        bx, by = cfg.bases[s]
        if rng.random() < cfg.jitter_probability:
            ox = int(rng.integers(0, jx + 1))
            oy = int(rng.integers(0, jy + 1))
            od = int(rng.integers(0, jd + 1))
        else:
            ox = oy = od = 0
        x0, y0 = bx + ox, by + oy
        d0 = s * days_per_set + od
        accessed: list[str] = []
        for dx in range(wx):
            for dy in range(wy):
                for dd in range(wd):
                    x, y, d = x0 + dx, y0 + dy, d0 + dd
                    fid = sat_file_id(d, x, y)
                    if fid not in files:
                        storage = (cell_storage[(x, y)] + d) % num_storage
                        files[fid] = FileInfo(fid, FILE_MB, storage)
                    accessed.append(fid)
        volume = len(accessed) * FILE_MB
        tasks.append(
            Task(
                task_id=f"sat{k:04d}",
                files=tuple(accessed),
                compute_time=volume * COMPUTE_S_PER_MB,
            )
        )
    return Batch(tasks, files)


def hotspot_of(task_id: str) -> int:
    """Hot-spot set of a generated task (the task's affinity group)."""
    return int(task_id.removeprefix("sat")) % NUM_HOTSPOTS
