"""Dimension vocabulary for the simulator's quantitative code.

Every cost equation of the paper (Eqs. 9-13, 25) mixes file sizes (MB),
bandwidths (MB/s), simulated time (s) and dimensionless counts, yet Python
represents all of them as ``float``.  This module gives each quantity a
name that is

* **zero-cost at runtime** — the aliases are ``typing.Annotated[float, ...]``
  wrappers, so annotated code behaves exactly as before;
* **transparent to mypy** — strict type checking still sees ``float``;
* **visible to the static checker** — :mod:`repro.analysis.units` reads the
  annotations straight off the AST and verifies the arithmetic
  (``MB / MBps -> Seconds``, ``MB + Seconds -> RPR006``, ...).

Dimensions are exponent vectors over the two base units the paper uses,
``data`` (MB) and ``time`` (seconds)::

    MB            = (data=1, time=0)
    MBps          = (data=1, time=-1)
    Seconds       = (data=0, time=1)
    SecondsPerMB  = (data=-1, time=1)     # compute cost per MB, Eq. 10
    Count         = (data=0, time=0)      # integral tallies
    Dimensionless = (data=0, time=0)      # ratios, factors, speeds

Scale is *not* tracked: ``Milliseconds`` shares ``Seconds``' exponents, so
the checker treats a ms/s mixup as dimensionally fine — the vocabulary
exists to catch category errors (a bandwidth where a time belongs), not
unit-prefix slips.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Annotated

__all__ = [
    "Dim",
    "MB",
    "MBps",
    "Seconds",
    "Milliseconds",
    "SecondsPerMB",
    "Count",
    "Dimensionless",
    "DIMS_BY_NAME",
    "convention_dim",
]


@dataclass(frozen=True)
class Dim:
    """One dimension: exponents over the (data, time) base units."""

    data: int = 0
    time: int = 0
    label: str = ""

    def __repr__(self) -> str:
        return self.label or f"Dim(data={self.data}, time={self.time})"


#: File sizes, disk capacities, transferred volumes.
MB = Annotated[float, Dim(data=1, label="MB")]
#: Bandwidths: disk, network, shared links.
MBps = Annotated[float, Dim(data=1, time=-1, label="MBps")]
#: Simulated (or measured) durations and instants.
Seconds = Annotated[float, Dim(time=1, label="Seconds")]
#: Same exponents as Seconds; scale is not tracked (see module docstring).
Milliseconds = Annotated[float, Dim(time=1, label="Milliseconds")]
#: Compute cost per MB of input (Eq. 10's alpha).
SecondsPerMB = Annotated[float, Dim(data=-1, time=1, label="SecondsPerMB")]
#: Integral tallies: replica counts, eviction counts, task counts.
Count = Annotated[int, Dim(label="Count")]
#: Ratios and unitless factors: speeds, failure rates, slowdown factors.
Dimensionless = Annotated[float, Dim(label="Dimensionless")]

#: Alias name -> dimension, as the units checker resolves annotations.
DIMS_BY_NAME: dict[str, Dim] = {
    "MB": Dim(data=1, label="MB"),
    "MBps": Dim(data=1, time=-1, label="MBps"),
    "Seconds": Dim(time=1, label="Seconds"),
    "Milliseconds": Dim(time=1, label="Milliseconds"),
    "SecondsPerMB": Dim(data=-1, time=1, label="SecondsPerMB"),
    "Count": Dim(label="Count"),
    "Dimensionless": Dim(label="Dimensionless"),
}


def convention_dim(name: str) -> Dim | None:
    """Dimension implied by the codebase's naming conventions, if any.

    Used by the units checker to seed unannotated code: ``*_mb`` is a size,
    ``*_bw``/``bw``/``*_mbps`` a bandwidth, ``*_s``/``*_seconds`` a time,
    ``*_rate`` a dimensionless probability.  ``*_per_mb`` deliberately maps
    to nothing except the explicit ``*_s_per_mb`` form — a "cost per MB" is
    not itself megabytes.
    """
    if name.endswith("_s_per_mb"):
        return DIMS_BY_NAME["SecondsPerMB"]
    if name.endswith("_per_mb"):
        return None
    if name.endswith("_mb"):
        return DIMS_BY_NAME["MB"]
    if name.endswith("_mbps"):
        return DIMS_BY_NAME["MBps"]
    if name == "bw" or name.endswith("_bw"):
        return DIMS_BY_NAME["MBps"]
    if name.endswith(("_s", "_seconds")):
        return DIMS_BY_NAME["Seconds"]
    if name.endswith("_ms"):
        return DIMS_BY_NAME["Milliseconds"]
    if name.endswith("_rate"):
        return DIMS_BY_NAME["Dimensionless"]
    return None
