"""Flow-sensitive dimensional analysis (``python -m repro.analysis.units``).

The paper's cost model (Eqs. 9-13, 25) mixes file sizes (MB), bandwidths
(MB/s), simulated times (s) and counts, all spelled ``float`` in Python.  A
swapped ``size_mb / bw`` vs ``size_mb * bw`` type-checks under strict mypy
and only surfaces as a plausible-but-wrong makespan.  This checker proves
the units statically:

========  =============================================================
RPR006    mixed-dimension arithmetic: ``+``/``-``/``%`` on operands of
          two different known dimensions (``MB + Seconds``).
RPR007    comparison across dimensions (``size_mb > deadline_s``), or
          ``min``/``max`` over mixed dimensions.
RPR008    return/assignment dimension mismatch: the inferred dimension
          of an expression contradicts its declared annotation.
========  =============================================================

The lattice is seeded from the :mod:`repro.analysis.dims` annotations on
function signatures and dataclass fields, plus the repo's naming
conventions (``*_mb``, ``*_bw``, ``*_s``, ``*_rate`` — see
:func:`repro.analysis.dims.convention_dim`), and propagated through
arithmetic: ``MB / MBps -> Seconds``, ``MB * SecondsPerMB -> Seconds``,
``Seconds * Dimensionless -> Seconds``.  Anything the checker cannot prove
(numpy arrays, dict lookups, opaque calls) degrades to *unknown* and is
never reported — the checker is deliberately zero-false-positive rather
than complete.

Abstract values:

* ``UNKNOWN``  — opaque; silences all checks downstream.
* ``POLY``     — numeric literals; unifies with any dimension.
* ``(d, t)``   — a known exponent vector over (data, time).
* ``Seq(elt)`` — a homogeneous container; ``sum``/``min``/``max``/indexing
  unwrap it, arithmetic on it is opaque (list concat is not addition).

Suppress with ``# repro: noqa[RPR006]`` on the first or last line of the
offending expression.  Exit status 1 when findings remain.
"""

from __future__ import annotations

import argparse
import ast
import sys
from collections.abc import Sequence
from dataclasses import dataclass
from pathlib import Path
from typing import TypeGuard, Union, cast

from .common import (
    FORMATS,
    Finding,
    Rule,
    filter_findings,
    iter_py_files,
    render_findings,
)
from .dims import DIMS_BY_NAME, convention_dim

__all__ = [
    "Finding",
    "Rule",
    "iter_rules",
    "check_source",
    "check_paths",
    "main",
]

_RULES: tuple[Rule, ...] = (
    Rule("RPR006", "mixed-dimension arithmetic (e.g. MB + Seconds)"),
    Rule("RPR007", "comparison across dimensions (e.g. MB > Seconds)"),
    Rule("RPR008", "return/assignment dimension contradicts its annotation"),
)


def iter_rules() -> tuple[Rule, ...]:
    """The dimensional-analysis rules, in code order."""
    return _RULES


# ---------------------------------------------------------------------------
# Abstract values
# ---------------------------------------------------------------------------

DimVec = tuple[int, int]  # exponents over (data, time)


class _Sentinel:
    __slots__ = ("_name",)

    def __init__(self, name: str) -> None:
        self._name = name

    def __repr__(self) -> str:
        return self._name


#: Opaque value: nothing is known, nothing is checked.
UNKNOWN = _Sentinel("UNKNOWN")
#: Polymorphic numeric literal: unifies with any dimension.
POLY = _Sentinel("POLY")


@dataclass(frozen=True)
class Seq:
    """A homogeneous container of abstract values."""

    elt: AbsVal


AbsVal = Union[_Sentinel, DimVec, Seq]

_ZERO: DimVec = (0, 0)

_VEC_LABELS: dict[DimVec, str] = {
    (1, 0): "MB",
    (1, -1): "MBps",
    (0, 1): "Seconds",
    (-1, 1): "SecondsPerMB",
    (0, 0): "dimensionless",
}


def _label(vec: DimVec) -> str:
    got = _VEC_LABELS.get(vec)
    if got is not None:
        return got
    return f"MB^{vec[0]}*s^{vec[1]}"


def _is_vec(val: AbsVal) -> TypeGuard[DimVec]:
    return isinstance(val, tuple)


# ---------------------------------------------------------------------------
# Annotation parsing
# ---------------------------------------------------------------------------


def _ann_vec(node: ast.expr | None) -> DimVec | None:
    """Dimension named by an annotation expression, or None."""
    if node is None:
        return None
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        try:
            node = ast.parse(node.value, mode="eval").body
        except SyntaxError:
            return None
        return _ann_vec(node)
    if isinstance(node, ast.Name):
        dim = DIMS_BY_NAME.get(node.id)
        return (dim.data, dim.time) if dim is not None else None
    if isinstance(node, ast.Attribute):
        dim = DIMS_BY_NAME.get(node.attr)
        return (dim.data, dim.time) if dim is not None else None
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
        # ``X | None`` keeps X's dimension; ``X | Y`` must agree to count.
        sides = [_strip_none(node.left), _strip_none(node.right)]
        vecs = [_ann_vec(s) for s in sides if s is not None]
        if len(vecs) == 1:
            return vecs[0]
        if len(vecs) == 2 and vecs[0] == vecs[1]:
            return vecs[0]
        return None
    if isinstance(node, ast.Subscript):
        head = node.value
        head_name = (
            head.id if isinstance(head, ast.Name)
            else head.attr if isinstance(head, ast.Attribute)
            else None
        )
        if head_name in ("Optional", "Final"):
            return _ann_vec(node.slice)
        if head_name == "Annotated" and isinstance(node.slice, ast.Tuple):
            for meta in node.slice.elts[1:]:
                vec = _dim_call_vec(meta)
                if vec is not None:
                    return vec
        return None
    return None


def _strip_none(node: ast.expr) -> ast.expr | None:
    if isinstance(node, ast.Constant) and node.value is None:
        return None
    return node


def _dim_call_vec(node: ast.expr) -> DimVec | None:
    """``Dim(data=1, time=-1)`` metadata inside a raw ``Annotated``."""
    if not isinstance(node, ast.Call):
        return None
    fn = node.func
    fn_name = (
        fn.id if isinstance(fn, ast.Name)
        else fn.attr if isinstance(fn, ast.Attribute)
        else None
    )
    if fn_name != "Dim":
        return None
    data, time = 0, 0
    for i, arg in enumerate(node.args):
        if isinstance(arg, ast.Constant) and isinstance(arg.value, int):
            if i == 0:
                data = arg.value
            elif i == 1:
                time = arg.value
    for kw in node.keywords:
        if isinstance(kw.value, ast.Constant) and isinstance(kw.value.value, int):
            if kw.arg == "data":
                data = kw.value.value
            elif kw.arg == "time":
                time = kw.value.value
    return (data, time)


def _convention_vec(name: str) -> DimVec | None:
    dim = convention_dim(name)
    return (dim.data, dim.time) if dim is not None else None


# ---------------------------------------------------------------------------
# Pass 1: harvest dimensions declared anywhere in the checked tree
# ---------------------------------------------------------------------------


class Harvest:
    """Dimensions harvested from annotations, keyed by bare name.

    Names observed with *conflicting* dimensions are blocked entirely —
    the checker only trusts a name-keyed dimension when every declaration
    in the tree agrees.
    """

    def __init__(self) -> None:
        self.funcs: dict[str, DimVec] = {}  # callable name -> return dim
        self.attrs: dict[str, DimVec] = {}  # field/property name -> dim
        self.consts: dict[str, DimVec] = {}  # module-level constant -> dim
        self._blocked: dict[int, set[str]] = {0: set(), 1: set(), 2: set()}

    def _put(self, table: int, name: str, vec: DimVec) -> None:
        d = (self.funcs, self.attrs, self.consts)[table]
        blocked = self._blocked[table]
        if name in blocked:
            return
        if name in d and d[name] != vec:
            del d[name]
            blocked.add(name)
            return
        d[name] = vec

    def add_func(self, name: str, vec: DimVec) -> None:
        self._put(0, name, vec)

    def add_attr(self, name: str, vec: DimVec) -> None:
        self._put(1, name, vec)

    def add_const(self, name: str, vec: DimVec) -> None:
        self._put(2, name, vec)

    def harvest_module(self, tree: ast.Module) -> None:
        self._walk(tree.body, at_module=True, in_class=False)

    def _walk(self, body: Sequence[ast.stmt], at_module: bool, in_class: bool) -> None:
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                vec = _ann_vec(stmt.returns)
                if vec is not None:
                    if _is_property(stmt):
                        self.add_attr(stmt.name, vec)
                    else:
                        self.add_func(stmt.name, vec)
                self._walk(stmt.body, at_module=False, in_class=False)
            elif isinstance(stmt, ast.ClassDef):
                self._walk(stmt.body, at_module=False, in_class=True)
            elif isinstance(stmt, ast.AnnAssign):
                vec = _ann_vec(stmt.annotation)
                if vec is None:
                    continue
                target = stmt.target
                if isinstance(target, ast.Attribute):
                    self.add_attr(target.attr, vec)
                elif isinstance(target, ast.Name):
                    if in_class:
                        self.add_attr(target.id, vec)
                    elif at_module:
                        self.add_const(target.id, vec)
            elif isinstance(stmt, (ast.If, ast.Try, ast.With, ast.For, ast.While)):
                for sub in ast.iter_child_nodes(stmt):
                    if isinstance(sub, ast.stmt):
                        self._walk([sub], at_module, in_class)


def _is_property(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    for dec in fn.decorator_list:
        name = (
            dec.id if isinstance(dec, ast.Name)
            else dec.attr if isinstance(dec, ast.Attribute)
            else None
        )
        if name in ("property", "cached_property"):
            return True
    return False


# ---------------------------------------------------------------------------
# Pass 2: flow-sensitive checking
# ---------------------------------------------------------------------------

_MISSING = _Sentinel("MISSING")

# Functions whose result carries the dimension of their (unwrapped) input.
_PASSTHROUGH_FUNCS = frozenset({"abs", "float", "int", "round", "sorted"})


class _Checker:
    """Checks one module against a (possibly tree-wide) harvest."""

    def __init__(self, path: str, harvest: Harvest) -> None:
        self.path = path
        self.harvest = harvest
        self.findings: list[Finding] = []
        self.env: dict[str, AbsVal] = {}

    # -- plumbing ---------------------------------------------------------

    def _add(self, node: ast.AST, code: str, message: str) -> None:
        self.findings.append(
            Finding(
                self.path,
                getattr(node, "lineno", 1),
                getattr(node, "col_offset", 0),
                code,
                message,
                getattr(node, "end_lineno", None),
            )
        )

    def check_module(self, tree: ast.Module) -> None:
        self.env = {}
        for stmt in tree.body:
            self._stmt(stmt)

    # -- statements -------------------------------------------------------

    def _stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            self._check_function(stmt)
        elif isinstance(stmt, ast.ClassDef):
            outer = self.env
            self.env = dict(outer)
            for sub in stmt.body:
                self._stmt(sub)
            self.env = outer
        elif isinstance(stmt, ast.Assign):
            val = self._eval(stmt.value)
            for target in stmt.targets:
                self._bind_target(target, val, stmt.value)
        elif isinstance(stmt, ast.AnnAssign):
            declared = _ann_vec(stmt.annotation)
            val = self._eval(stmt.value) if stmt.value is not None else UNKNOWN
            if (
                declared is not None
                and stmt.value is not None
                and _is_vec(val)
                and val != declared
            ):
                name = ast.unparse(stmt.target)
                self._add(
                    stmt,
                    "RPR008",
                    f"'{name}' is annotated {_label(declared)} but is assigned "
                    f"{_label(val)}",
                )
            if isinstance(stmt.target, ast.Name):
                self.env[stmt.target.id] = declared if declared is not None else val
        elif isinstance(stmt, ast.AugAssign):
            target_val = self._eval_load_of(stmt.target)
            rhs = self._eval(stmt.value)
            result = self._combine(stmt, stmt.op, target_val, rhs)
            if isinstance(stmt.target, ast.Name):
                self.env[stmt.target.id] = result
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                val = self._eval(stmt.value)
                declared = self._return_vec
                if declared is not None and _is_vec(val) and val != declared:
                    self._add(
                        stmt,
                        "RPR008",
                        f"returns {_label(val)} but the function is annotated "
                        f"-> {_label(declared)}",
                    )
        elif isinstance(stmt, ast.For):
            it = self._eval(stmt.iter)
            self._bind_loop_target(stmt.target, it)
            for sub in stmt.body:
                self._stmt(sub)
            for sub in stmt.orelse:
                self._stmt(sub)
        elif isinstance(stmt, (ast.If, ast.While)):
            self._eval(stmt.test)
            for sub in stmt.body:
                self._stmt(sub)
            for sub in stmt.orelse:
                self._stmt(sub)
        elif isinstance(stmt, ast.With):
            for item in stmt.items:
                self._eval(item.context_expr)
                if item.optional_vars is not None:
                    self._bind_loop_target(item.optional_vars, UNKNOWN)
            for sub in stmt.body:
                self._stmt(sub)
        elif isinstance(stmt, ast.Try):
            for sub in stmt.body:
                self._stmt(sub)
            for handler in stmt.handlers:
                if handler.name:
                    self.env[handler.name] = UNKNOWN
                for sub in handler.body:
                    self._stmt(sub)
            for sub in [*stmt.orelse, *stmt.finalbody]:
                self._stmt(sub)
        elif isinstance(stmt, ast.Expr):
            self._eval(stmt.value)
        elif isinstance(stmt, ast.Assert):
            self._eval(stmt.test)
            if stmt.msg is not None:
                self._eval(stmt.msg)
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    self.env.pop(target.id, None)
        elif isinstance(
            stmt,
            (
                ast.Pass, ast.Break, ast.Continue, ast.Raise,
                ast.Import, ast.ImportFrom, ast.Global, ast.Nonlocal,
            ),
        ):
            if isinstance(stmt, ast.Raise):
                if stmt.exc is not None:
                    self._eval(stmt.exc)
        else:
            # Generic fallback (match statements, future nodes): evaluate
            # child expressions and recurse into child statements.
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.stmt):
                    self._stmt(child)
                elif isinstance(child, ast.expr):
                    self._eval(child)

    _return_vec: DimVec | None = None

    def _check_function(self, fn: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        outer_env, outer_ret = self.env, self._return_vec
        # Closures read enclosing bindings; parameters seed from annotations.
        self.env = dict(outer_env)
        a = fn.args
        for arg in [*a.posonlyargs, *a.args, *a.kwonlyargs]:
            vec = _ann_vec(arg.annotation)
            self.env[arg.arg] = vec if vec is not None else UNKNOWN
        if a.vararg is not None:
            self.env[a.vararg.arg] = UNKNOWN
        if a.kwarg is not None:
            self.env[a.kwarg.arg] = UNKNOWN
        self._return_vec = _ann_vec(fn.returns)
        for stmt in fn.body:
            self._stmt(stmt)
        self.env, self._return_vec = outer_env, outer_ret

    def _bind_target(self, target: ast.expr, val: AbsVal, value: ast.expr) -> None:
        if isinstance(target, ast.Name):
            self.env[target.id] = val
        elif isinstance(target, ast.Attribute):
            declared = self.harvest.attrs.get(target.attr)
            if declared is not None and _is_vec(val) and val != declared:
                self._add(
                    value,
                    "RPR008",
                    f"assigns {_label(val)} to '.{target.attr}', "
                    f"declared {_label(declared)}",
                )
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._bind_target(elt, UNKNOWN, value)
        elif isinstance(target, ast.Subscript):
            self._eval(target.value)
            self._eval(target.slice)
        elif isinstance(target, ast.Starred):
            self._bind_target(target.value, UNKNOWN, value)

    def _bind_loop_target(self, target: ast.expr, it: AbsVal) -> None:
        if isinstance(target, ast.Name):
            self.env[target.id] = it.elt if isinstance(it, Seq) else UNKNOWN
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._bind_loop_target(elt, UNKNOWN)
        elif isinstance(target, ast.Starred):
            self._bind_loop_target(target.value, UNKNOWN)

    # -- expression evaluation --------------------------------------------

    def _eval_load_of(self, target: ast.expr) -> AbsVal:
        """Current value of an AugAssign target, without re-binding."""
        if isinstance(target, ast.Name):
            return self._name_val(target.id)
        if isinstance(target, ast.Attribute):
            return self._attr_val(target)
        if isinstance(target, ast.Subscript):
            base = self._eval(target.value)
            self._eval(target.slice)
            return base.elt if isinstance(base, Seq) else UNKNOWN
        return UNKNOWN

    def _name_val(self, name: str) -> AbsVal:
        bound = self.env.get(name, _MISSING)
        if bound is not _MISSING and bound is not UNKNOWN:
            return bound
        vec = self.harvest.consts.get(name)
        if vec is not None:
            return vec
        conv = _convention_vec(name)
        return conv if conv is not None else UNKNOWN

    def _attr_val(self, node: ast.Attribute) -> AbsVal:
        base = node.value
        if isinstance(base, ast.Name) and base.id in ("math", "np", "numpy"):
            if node.attr in ("inf", "nan", "pi", "e", "tau", "euler_gamma"):
                return POLY
        else:
            self._eval(base)
        vec = self.harvest.attrs.get(node.attr)
        if vec is not None:
            return vec
        conv = _convention_vec(node.attr)
        return conv if conv is not None else UNKNOWN

    def _eval(self, node: ast.expr) -> AbsVal:
        if isinstance(node, ast.Constant):
            if isinstance(node.value, bool):
                return UNKNOWN
            if isinstance(node.value, (int, float)):
                return POLY
            return UNKNOWN
        if isinstance(node, ast.Name):
            return self._name_val(node.id)
        if isinstance(node, ast.Attribute):
            return self._attr_val(node)
        if isinstance(node, ast.BinOp):
            left = self._eval(node.left)
            right = self._eval(node.right)
            return self._combine(node, node.op, left, right)
        if isinstance(node, ast.UnaryOp):
            val = self._eval(node.operand)
            if isinstance(node.op, (ast.USub, ast.UAdd)):
                return val
            return UNKNOWN
        if isinstance(node, ast.BoolOp):
            vals = [self._eval(v) for v in node.values]
            out: AbsVal = vals[0]
            for v in vals[1:]:
                out = _unify(out, v)
            return out
        if isinstance(node, ast.Compare):
            self._check_compare(node)
            return UNKNOWN
        if isinstance(node, ast.Call):
            return self._eval_call(node)
        if isinstance(node, ast.IfExp):
            self._eval(node.test)
            return _unify(self._eval(node.body), self._eval(node.orelse))
        if isinstance(node, (ast.List, ast.Set)):
            elt: AbsVal = UNKNOWN if not node.elts else self._eval(node.elts[0])
            for e in node.elts[1:]:
                elt = _unify(elt, self._eval(e))
            return Seq(elt)
        if isinstance(node, ast.Tuple):
            for e in node.elts:
                self._eval(e)
            return UNKNOWN
        if isinstance(node, ast.Dict):
            for k in node.keys:
                if k is not None:
                    self._eval(k)
            for v in node.values:
                self._eval(v)
            return UNKNOWN
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
            saved = dict(self.env)
            self._bind_generators(node.generators)
            elt = self._eval(node.elt)
            self.env = saved
            return Seq(elt)
        if isinstance(node, ast.DictComp):
            saved = dict(self.env)
            self._bind_generators(node.generators)
            self._eval(node.key)
            self._eval(node.value)
            self.env = saved
            return UNKNOWN
        if isinstance(node, ast.Subscript):
            base = self._eval(node.value)
            self._eval(node.slice)
            if isinstance(base, Seq):
                return base if isinstance(node.slice, ast.Slice) else base.elt
            return UNKNOWN
        if isinstance(node, ast.Slice):
            for part in (node.lower, node.upper, node.step):
                if part is not None:
                    self._eval(part)
            return UNKNOWN
        if isinstance(node, ast.Lambda):
            outer = self.env
            self.env = dict(outer)
            a = node.args
            for arg in [*a.posonlyargs, *a.args, *a.kwonlyargs]:
                self.env[arg.arg] = UNKNOWN
            self._eval(node.body)
            self.env = outer
            return UNKNOWN
        if isinstance(node, ast.NamedExpr):
            val = self._eval(node.value)
            if isinstance(node.target, ast.Name):
                self.env[node.target.id] = val
            return val
        if isinstance(node, ast.Starred):
            self._eval(node.value)
            return UNKNOWN
        if isinstance(node, ast.JoinedStr):
            for v in node.values:
                if isinstance(v, ast.FormattedValue):
                    self._eval(v.value)
            return UNKNOWN
        # Await / Yield / YieldFrom / anything new: evaluate children.
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                self._eval(child)
        return UNKNOWN

    def _bind_generators(self, gens: Sequence[ast.comprehension]) -> None:
        for gen in gens:
            it = self._eval(gen.iter)
            self._bind_loop_target(gen.target, it)
            for cond in gen.ifs:
                self._eval(cond)

    # -- calls -------------------------------------------------------------

    def _eval_call(self, node: ast.Call) -> AbsVal:
        fn = node.func
        fn_name = (
            fn.id if isinstance(fn, ast.Name)
            else fn.attr if isinstance(fn, ast.Attribute)
            else None
        )
        if isinstance(fn, ast.Attribute):
            self._eval(fn.value)

        if isinstance(fn, ast.Name):
            if fn_name == "len" and node.args:
                self._eval(node.args[0])
                return _ZERO
            if fn_name == "sum" and node.args:
                vals = [_unwrap(self._eval(a)) for a in node.args]
                out: AbsVal = vals[0]
                for v in vals[1:]:
                    out = _unify(out, v)
                return out
            if fn_name in ("min", "max") and node.args:
                return self._eval_minmax(node, fn_name)
            if fn_name in _PASSTHROUGH_FUNCS and node.args:
                val = self._eval(node.args[0])
                for extra in node.args[1:]:
                    self._eval(extra)
                for kw in node.keywords:
                    self._eval(kw.value)
                if fn_name == "float" and val is UNKNOWN:
                    # float("inf") / float("nan") are polymorphic literals.
                    first = node.args[0]
                    if isinstance(first, ast.Constant) and isinstance(
                        first.value, str
                    ):
                        return POLY
                return val

        for arg in node.args:
            self._eval(arg)
        for kw in node.keywords:
            self._eval(kw.value)
        if fn_name is not None:
            vec = self.harvest.funcs.get(fn_name)
            if vec is not None:
                return vec
            conv = _convention_vec(fn_name)
            if conv is not None:
                return conv
        return UNKNOWN

    def _eval_minmax(self, node: ast.Call, fn_name: str) -> AbsVal:
        vals: list[AbsVal] = []
        if len(node.args) == 1:
            vals.append(_unwrap(self._eval(node.args[0])))
        else:
            vals.extend(self._eval(a) for a in node.args)
        for kw in node.keywords:
            v = self._eval(kw.value)
            if kw.arg == "default":
                vals.append(v)
        distinct: set[DimVec] = set()
        for v in vals:
            if _is_vec(v):
                distinct.add(v)
        if len(distinct) > 1:
            labels = ", ".join(sorted(_label(v) for v in distinct))
            self._add(
                node,
                "RPR007",
                f"{fn_name}() over mixed dimensions ({labels})",
            )
            return UNKNOWN
        out: AbsVal = vals[0] if vals else UNKNOWN
        for v in vals[1:]:
            out = _unify(out, v)
        return out

    # -- arithmetic & comparisons ------------------------------------------

    def _combine(
        self, node: ast.AST, op: ast.operator, left: AbsVal, right: AbsVal
    ) -> AbsVal:
        if isinstance(left, Seq) or isinstance(right, Seq):
            return UNKNOWN  # list concat / repetition is not arithmetic
        if isinstance(op, (ast.Add, ast.Sub, ast.Mod)):
            if _is_vec(left) and _is_vec(right):
                if left != right:
                    sym = {ast.Add: "+", ast.Sub: "-", ast.Mod: "%"}[type(op)]
                    self._add(
                        node,
                        "RPR006",
                        f"`{sym}` mixes {_label(left)} and {_label(right)}",
                    )
                    return UNKNOWN
                return left
            if left is POLY and _is_vec(right):
                return right
            if right is POLY and _is_vec(left):
                return left
            if left is POLY and right is POLY:
                return POLY
            if _is_vec(left):
                return left  # unknown side assumed compatible
            if _is_vec(right):
                return right
            return UNKNOWN
        if isinstance(op, (ast.Mult, ast.Div, ast.FloorDiv)):
            if left is UNKNOWN or right is UNKNOWN:
                return UNKNOWN
            if left is POLY and right is POLY:
                return POLY
            lv = _ZERO if left is POLY else cast(DimVec, left)
            rv = _ZERO if right is POLY else cast(DimVec, right)
            if isinstance(op, ast.Mult):
                return (lv[0] + rv[0], lv[1] + rv[1])
            return (lv[0] - rv[0], lv[1] - rv[1])
        if isinstance(op, ast.Pow):
            if left is POLY:
                return POLY
            if _is_vec(left):
                exp = node.right if isinstance(node, ast.BinOp) else None
                if (
                    isinstance(exp, ast.Constant)
                    and isinstance(exp.value, int)
                    and not isinstance(exp.value, bool)
                ):
                    return (left[0] * exp.value, left[1] * exp.value)
                if left == _ZERO:
                    return _ZERO
            return UNKNOWN
        return UNKNOWN

    def _check_compare(self, node: ast.Compare) -> None:
        vals = [self._eval(v) for v in [node.left, *node.comparators]]
        for op, left, right in zip(node.ops, vals, vals[1:], strict=False):
            if not isinstance(
                op, (ast.Lt, ast.LtE, ast.Gt, ast.GtE, ast.Eq, ast.NotEq)
            ):
                continue
            if _is_vec(left) and _is_vec(right) and left != right:
                self._add(
                    node,
                    "RPR007",
                    f"comparison between {_label(left)} and {_label(right)}",
                )


def _unwrap(val: AbsVal) -> AbsVal:
    return val.elt if isinstance(val, Seq) else val


def _unify(a: AbsVal, b: AbsVal) -> AbsVal:
    """Join for branches: equal values keep, POLY yields, else UNKNOWN-ish."""
    if a == b:
        return a
    if a is POLY:
        return b
    if b is POLY:
        return a
    if a is UNKNOWN:
        return b
    if b is UNKNOWN:
        return a
    return UNKNOWN


# ---------------------------------------------------------------------------
# Public API
# ---------------------------------------------------------------------------


def _parse(source: str, path: str) -> tuple[ast.Module | None, Finding | None]:
    try:
        return ast.parse(source, filename=path), None
    except SyntaxError as exc:
        return None, Finding(
            path, exc.lineno or 1, exc.offset or 0, "RPR000",
            f"syntax error: {exc.msg}",
        )


def check_source(
    source: str,
    path: str | Path = "<string>",
    select: Sequence[str] | None = None,
    harvest: Harvest | None = None,
) -> list[Finding]:
    """Check one module's source text; returns surviving findings.

    With no explicit ``harvest``, the lattice is seeded from this module's
    own annotations only (plus naming conventions).
    """
    p = str(path)
    tree, err = _parse(source, p)
    if tree is None:
        return [err] if err is not None else []
    if harvest is None:
        harvest = Harvest()
        harvest.harvest_module(tree)
    checker = _Checker(p, harvest)
    checker.check_module(tree)
    return filter_findings(checker.findings, source.splitlines(), select)


def check_paths(
    paths: Sequence[str | Path], select: Sequence[str] | None = None
) -> list[Finding]:
    """Check every ``.py`` file under ``paths`` with a shared harvest.

    Two-phase: first harvest dimension annotations across *all* files (so
    e.g. ``runtime.py`` sees ``platform.py``'s declared return dimensions),
    then check each file against the combined lattice.
    """
    sources: list[tuple[str, str, ast.Module]] = []
    findings: list[Finding] = []
    harvest = Harvest()
    for file in iter_py_files(paths):
        text = file.read_text()
        tree, err = _parse(text, str(file))
        if tree is None:
            if err is not None:
                findings.append(err)
            continue
        harvest.harvest_module(tree)
        sources.append((str(file), text, tree))
    for path, text, tree in sources:
        checker = _Checker(path, harvest)
        checker.check_module(tree)
        findings.extend(
            filter_findings(checker.findings, text.splitlines(), select)
        )
    return findings


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the exit status."""
    parser = argparse.ArgumentParser(
        prog="repro units",
        description="flow-sensitive dimensional analysis (RPR006-RPR008)",
    )
    parser.add_argument(
        "paths", nargs="*", default=["src/repro"],
        help="files or directories to check (default: src/repro)",
    )
    parser.add_argument(
        "--select", nargs="+", metavar="RPRnnn", default=None,
        help="only report the given rule codes",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rules and exit"
    )
    parser.add_argument(
        "--format", choices=FORMATS, default="text",
        help="output format (github emits ::error workflow annotations)",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in iter_rules():
            print(f"{rule.code}  {rule.summary}")
        return 0

    findings = check_paths(args.paths, args.select)
    print(render_findings(findings, args.format))
    return 1 if findings else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
