"""Parallel-worker purity lint (``python -m repro.analysis.purity``).

The PR-1 result cache replays experiment cells by config hash: a worker
function submitted to the :class:`~concurrent.futures.ProcessPoolExecutor`
must be a pure function of its payload, or cached Records silently diverge
from fresh runs.  This checker is the static counterpart of that contract:

========  =============================================================
RPR009    impurity in a process-pool worker or anything it transitively
          calls within ``repro``: mutation of module-level state
          (``global`` writes, stores through module-level objects,
          mutating method calls on shared objects), reseeding the
          process-global RNG (``random.seed`` / ``numpy.random.seed``),
          capturing a module-level mutable that a reachable function
          mutates, or reading an environment variable that is not part
          of the result-cache key.
========  =============================================================

Workers are discovered automatically: any function passed to ``.map()`` /
``.submit()`` on a ``ProcessPoolExecutor`` found in the checked tree, plus
anything named via ``--entry module.path:function``.  The walk follows
plain-function calls resolved through imports; method dispatch and class
instantiation are not traversed (the runtime's own state is per-cell by
construction).

Two escapes are deliberate:

* ``telemetry`` (``repro.obs.core``) may be reset/enabled inside a worker —
  the telemetry flag is excluded from the cache key by design, so its
  process-local state is not cache-semantic.
* ``REPRO_TELEMETRY`` may be read for the same reason; extend with
  ``--allow-env NAME`` if another variable joins the cache key's exclusion
  list, or suppress single findings with ``# repro: noqa[RPR009]``.
"""

from __future__ import annotations

import argparse
import ast
import sys
from collections import deque
from collections.abc import Callable, Iterable, Sequence
from dataclasses import dataclass, field
from pathlib import Path

from .common import (
    FORMATS,
    Finding,
    Rule,
    filter_findings,
    iter_py_files,
    render_findings,
)

__all__ = [
    "Finding",
    "Rule",
    "iter_rules",
    "check_source",
    "check_paths",
    "main",
]

_RULES: tuple[Rule, ...] = (
    Rule("RPR009", "process-pool worker mutates shared state / reads env"),
)


def iter_rules() -> tuple[Rule, ...]:
    """The purity rules, in code order."""
    return _RULES


#: Env vars a worker may read: excluded from the result-cache key by design.
DEFAULT_ALLOWED_ENV = frozenset({"REPRO_TELEMETRY"})

#: Imported objects whose mutating methods are cache-key-neutral by design.
SANCTIONED_OBJECTS = frozenset({("repro.obs.core", "telemetry")})

#: Method names that mutate their receiver.
_MUTATOR_METHODS = frozenset(
    {
        "append", "extend", "insert", "remove", "discard", "pop", "popitem",
        "clear", "add", "update", "setdefault", "sort", "reverse",
        "reset", "enable", "disable", "seed", "configure", "set",
    }
)

#: Fully-dotted calls that reseed the process-global RNG.
_GLOBAL_RESEEDS = frozenset({"random.seed", "numpy.random.seed"})

_FuncDef = ast.FunctionDef | ast.AsyncFunctionDef
_Resolver = Callable[[str], "tuple[str, str] | None"]


@dataclass
class _Module:
    name: str
    path: str
    tree: ast.Module
    source_lines: list[str]
    functions: dict[str, _FuncDef] = field(default_factory=dict)
    imports: dict[str, tuple[str, str | None]] = field(default_factory=dict)
    module_names: set[str] = field(default_factory=set)
    mutable_globals: set[str] = field(default_factory=set)


def _module_name(path: Path) -> str:
    parts = list(path.with_suffix("").parts)
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    for anchor in ("repro",):
        if anchor in parts:
            parts = parts[parts.index(anchor):]
            break
    else:
        parts = parts[-1:]
    return ".".join(parts)


def _resolve_from(module: str, node: ast.ImportFrom) -> str:
    """Absolute module targeted by a (possibly relative) from-import."""
    if node.level == 0:
        return node.module or ""
    base = module.split(".")
    # Level 1 = current package; each extra level strips one more.
    strip = node.level
    if base:
        base = base[: max(len(base) - strip, 0)]
    if node.module:
        base.append(node.module)
    return ".".join(base)


def _collect_imports(
    module_name: str, nodes: Iterable[ast.stmt]
) -> dict[str, tuple[str, str | None]]:
    out: dict[str, tuple[str, str | None]] = {}
    for node in nodes:
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    out[alias.asname] = (alias.name, None)
                else:
                    root = alias.name.partition(".")[0]
                    out[root] = (root, None)
        elif isinstance(node, ast.ImportFrom):
            target = _resolve_from(module_name, node)
            for alias in node.names:
                bound = alias.asname or alias.name
                out[bound] = (target, alias.name)
    return out


def _is_mutable_literal(node: ast.expr) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp,
                         ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("list", "dict", "set", "bytearray", "defaultdict",
                                "deque", "Counter", "OrderedDict")
    return False


def _index_module(path: Path, source: str, tree: ast.Module) -> _Module:
    mod = _Module(
        name=_module_name(path),
        path=str(path),
        tree=tree,
        source_lines=source.splitlines(),
    )
    mod.imports = _collect_imports(
        mod.name, (n for n in ast.walk(tree) if isinstance(n, (ast.Import,
                                                               ast.ImportFrom)))
    )
    for stmt in tree.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            mod.functions[stmt.name] = stmt
            mod.module_names.add(stmt.name)
        elif isinstance(stmt, ast.ClassDef):
            mod.module_names.add(stmt.name)
        elif isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    mod.module_names.add(target.id)
                    if _is_mutable_literal(stmt.value):
                        mod.mutable_globals.add(target.id)
        elif isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            mod.module_names.add(stmt.target.id)
            if stmt.value is not None and _is_mutable_literal(stmt.value):
                mod.mutable_globals.add(stmt.target.id)
        elif isinstance(stmt, (ast.Import, ast.ImportFrom)):
            pass  # already in mod.imports; aliases are module names too
    mod.module_names.update(mod.imports)
    return mod


# ---------------------------------------------------------------------------
# Worker-entry discovery
# ---------------------------------------------------------------------------


def _attr_chain(node: ast.expr) -> tuple[str, ...] | None:
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        parts.reverse()
        return tuple(parts)
    return None


def _is_executor_ctor(mod: _Module, node: ast.expr) -> bool:
    if not isinstance(node, ast.Call):
        return False
    chain = _attr_chain(node.func)
    if chain is None:
        return False
    resolved = _resolve_prefix(mod, mod.imports, chain)
    return resolved in (
        "concurrent.futures.ProcessPoolExecutor",
        "concurrent.futures.process.ProcessPoolExecutor",
    )


def _discover_entries(mod: _Module) -> list[str]:
    """Names of functions this module submits to a ProcessPoolExecutor."""
    executor_names: set[str] = set()
    for node in ast.walk(mod.tree):
        if isinstance(node, ast.With):
            for item in node.items:
                if _is_executor_ctor(mod, item.context_expr) and isinstance(
                    item.optional_vars, ast.Name
                ):
                    executor_names.add(item.optional_vars.id)
        elif isinstance(node, ast.Assign):
            if _is_executor_ctor(mod, node.value):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        executor_names.add(target.id)
    entries: list[str] = []
    if not executor_names:
        return entries
    for node in ast.walk(mod.tree):
        if not isinstance(node, ast.Call):
            continue
        fn = node.func
        if (
            isinstance(fn, ast.Attribute)
            and fn.attr in ("map", "submit")
            and isinstance(fn.value, ast.Name)
            and fn.value.id in executor_names
            and node.args
            and isinstance(node.args[0], ast.Name)
        ):
            entries.append(node.args[0].id)
    return entries


# ---------------------------------------------------------------------------
# Reachable-function audit
# ---------------------------------------------------------------------------


def _resolve_prefix(
    mod: _Module, imports: dict[str, tuple[str, str | None]], chain: tuple[str, ...]
) -> str:
    """Dotted path of an attribute chain, with its root import resolved."""
    root = chain[0]
    if root in imports:
        target, attr = imports[root]
        prefix = target if attr is None else f"{target}.{attr}"
        return ".".join((prefix, *chain[1:]))
    return ".".join(chain)


def _local_bindings(fn: _FuncDef) -> tuple[set[str], set[str]]:
    """(local names, names declared ``global``) across the function body."""
    declared_global: set[str] = set()
    local: set[str] = set()
    for node in ast.walk(fn):
        if isinstance(node, ast.Global):
            declared_global.update(node.names)
    for node in ast.walk(fn):
        if isinstance(node, ast.arg):
            local.add(node.arg)
        elif isinstance(node, ast.Name) and isinstance(node.ctx, (ast.Store, ast.Del)):
            local.add(node.id)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            if node is not fn:
                local.add(node.name)
        elif isinstance(node, ast.ExceptHandler) and node.name:
            local.add(node.name)
        elif isinstance(node, (ast.Import, ast.ImportFrom)):
            for alias in node.names:
                local.add(alias.asname or alias.name.partition(".")[0])
    return local - declared_global, declared_global


class _Auditor:
    """Walks workers and their transitive repro-local callees."""

    def __init__(
        self,
        modules: dict[str, _Module],
        allow_env: frozenset[str],
        sanctioned: frozenset[tuple[str, str]],
    ) -> None:
        self.modules = modules
        self.allow_env = allow_env
        self.sanctioned = sanctioned
        self.findings: dict[tuple[str, int, int, str], Finding] = {}
        #: (module, name) -> mutable-global reads, pending the mutation check.
        self.reads: list[tuple[tuple[str, str], _Module, ast.AST, str]] = []
        #: (module, name) pairs some reachable function mutates.
        self.mutated: set[tuple[str, str]] = set()
        self.visited: set[tuple[str, str]] = set()
        self.queue: deque[tuple[_Module, _FuncDef, str]] = deque()

    # -- plumbing ---------------------------------------------------------

    def _add(self, mod: _Module, node: ast.AST, message: str, entry: str) -> None:
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        key = (mod.path, line, col, message)
        if key not in self.findings:
            self.findings[key] = Finding(
                mod.path, line, col, "RPR009",
                f"{message} (reachable from worker '{entry}')",
                getattr(node, "end_lineno", None),
            )

    def enqueue(self, mod: _Module, name: str, entry: str) -> None:
        fn = mod.functions.get(name)
        if fn is None or (mod.name, name) in self.visited:
            return
        self.visited.add((mod.name, name))
        self.queue.append((mod, fn, entry))

    def run(self) -> list[Finding]:
        while self.queue:
            mod, fn, entry = self.queue.popleft()
            self._audit(mod, fn, entry)
        for key, mod, node, entry in self.reads:
            if key in self.mutated:
                self._add(
                    mod, node,
                    f"captures module-level mutable '{key[1]}' that a "
                    "reachable function mutates",
                    entry,
                )
        return sorted(
            self.findings.values(), key=lambda f: (f.path, f.line, f.col)
        )

    # -- one function -----------------------------------------------------

    def _audit(self, mod: _Module, fn: _FuncDef, entry: str) -> None:
        local, declared_global = _local_bindings(fn)
        imports = dict(mod.imports)
        imports.update(
            _collect_imports(
                mod.name,
                (n for n in ast.walk(fn)
                 if isinstance(n, (ast.Import, ast.ImportFrom))),
            )
        )

        def resolve_object(name: str) -> tuple[str, str] | None:
            """(defining module, name) for a non-local object, if known."""
            if name in local:
                return None
            if name in imports:
                target, attr = imports[name]
                if attr is None:
                    return None  # a module, not an object
                return (target, attr)
            if name in mod.module_names:
                return (mod.name, name)
            return None

        # Rule: `global x` + store.
        if declared_global:
            for node in ast.walk(fn):
                if (
                    isinstance(node, ast.Name)
                    and isinstance(node.ctx, (ast.Store, ast.Del))
                    and node.id in declared_global
                ):
                    self._add(
                        mod, node,
                        f"mutates module-level name '{node.id}' via `global`",
                        entry,
                    )
                    self.mutated.add((mod.name, node.id))

        for node in ast.walk(fn):
            if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                targets: list[ast.expr]
                if isinstance(node, ast.Assign):
                    targets = list(node.targets)
                else:
                    targets = [node.target]
                for target in targets:
                    self._check_store(mod, target, resolve_object, entry)
            elif isinstance(node, ast.Call):
                self._check_call(mod, node, imports, local, resolve_object, entry)
            elif isinstance(node, ast.Subscript) and isinstance(node.ctx, ast.Load):
                chain = _attr_chain(node.value)
                if chain is not None and chain[0] not in local:
                    dotted = _resolve_prefix(mod, imports, chain)
                    if dotted == "os.environ":
                        self._check_env_key(mod, node, node.slice, entry)
            elif isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
                if node.id not in local and node.id in mod.mutable_globals:
                    self.reads.append(((mod.name, node.id), mod, node, entry))

    def _check_store(
        self,
        mod: _Module,
        target: ast.expr,
        resolve_object: _Resolver,
        entry: str,
    ) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._check_store(mod, elt, resolve_object, entry)
            return
        if isinstance(target, ast.Starred):
            self._check_store(mod, target.value, resolve_object, entry)
            return
        if not isinstance(target, (ast.Subscript, ast.Attribute)):
            return
        chain = _attr_chain(
            target.value if isinstance(target, ast.Subscript) else target
        )
        if chain is None:
            return
        resolved = resolve_object(chain[0])
        if resolved is None or resolved in self.sanctioned:
            return
        self._add(
            mod, target,
            f"mutates module-level state '{chain[0]}' "
            f"(defined in {resolved[0]})",
            entry,
        )
        self.mutated.add(resolved)

    def _check_call(
        self,
        mod: _Module,
        node: ast.Call,
        imports: dict[str, tuple[str, str | None]],
        local: set[str],
        resolve_object: _Resolver,
        entry: str,
    ) -> None:
        chain = _attr_chain(node.func)
        if chain is None:
            return
        root = chain[0]

        # Transitive walk: plain calls resolved through imports.
        if root not in local:
            if len(chain) == 1:
                if root in mod.functions:
                    self.enqueue(mod, root, entry)
                elif root in imports:
                    target, attr = imports[root]
                    callee_mod = self.modules.get(target)
                    if callee_mod is not None and attr is not None:
                        self.enqueue(callee_mod, attr, entry)
            elif len(chain) == 2 and root in imports:
                target, attr = imports[root]
                if attr is None:  # module alias: mod_alias.func(...)
                    callee_mod = self.modules.get(target)
                    if callee_mod is not None:
                        self.enqueue(callee_mod, chain[1], entry)

        dotted = _resolve_prefix(mod, imports, chain) if root not in local else ""
        if dotted in _GLOBAL_RESEEDS:
            self._add(
                mod, node,
                f"`{dotted}` reseeds the process-global RNG inside a worker",
                entry,
            )
            return
        if dotted in ("os.getenv", "os.environ.get"):
            if node.args:
                self._check_env_key(mod, node, node.args[0], entry)
            return

        # Mutating method on a shared (module-level or imported) object.
        if len(chain) >= 2 and chain[-1] in _MUTATOR_METHODS and root not in local:
            resolved = resolve_object(root)
            if resolved is not None and resolved not in self.sanctioned:
                self._add(
                    mod, node,
                    f"calls mutating method '.{chain[-1]}()' on shared "
                    f"object '{root}' (defined in {resolved[0]})",
                    entry,
                )
                self.mutated.add(resolved)

    def _check_env_key(
        self, mod: _Module, node: ast.AST, key: ast.expr, entry: str
    ) -> None:
        if isinstance(key, ast.Constant) and isinstance(key.value, str):
            if key.value in self.allow_env:
                return
            self._add(
                mod, node,
                f"reads env var '{key.value}', which is not part of the "
                "result-cache key",
                entry,
            )
        else:
            self._add(
                mod, node,
                "reads an env var with a non-literal key inside a worker",
                entry,
            )


# ---------------------------------------------------------------------------
# Public API
# ---------------------------------------------------------------------------


def _load_modules(
    paths: Sequence[str | Path],
) -> tuple[dict[str, _Module], list[Finding]]:
    modules: dict[str, _Module] = {}
    findings: list[Finding] = []
    for file in iter_py_files(paths):
        text = file.read_text()
        try:
            tree = ast.parse(text, filename=str(file))
        except SyntaxError as exc:
            findings.append(
                Finding(
                    str(file), exc.lineno or 1, exc.offset or 0, "RPR000",
                    f"syntax error: {exc.msg}",
                )
            )
            continue
        mod = _index_module(file, text, tree)
        modules[mod.name] = mod
    return modules, findings


def _run_check(
    modules: dict[str, _Module],
    extra_findings: list[Finding],
    select: Sequence[str] | None,
    entries: Sequence[str] | None,
    allow_env: Iterable[str] | None,
) -> list[Finding]:
    allowed = DEFAULT_ALLOWED_ENV | frozenset(allow_env or ())
    auditor = _Auditor(modules, allowed, SANCTIONED_OBJECTS)
    for mod in modules.values():
        for name in _discover_entries(mod):
            auditor.enqueue(mod, name, f"{mod.name}:{name}")
    for spec in entries or ():
        mod_name, _, fn_name = spec.partition(":")
        mod = modules.get(mod_name)
        if mod is not None and fn_name:
            auditor.enqueue(mod, fn_name, spec)
    raw = extra_findings + auditor.run()

    by_path: dict[str, list[Finding]] = {}
    for f in raw:
        by_path.setdefault(f.path, []).append(f)
    lines_by_path = {m.path: m.source_lines for m in modules.values()}
    out: list[Finding] = []
    for path in sorted(by_path):
        out.extend(
            filter_findings(by_path[path], lines_by_path.get(path, []), select)
        )
    return out


def check_paths(
    paths: Sequence[str | Path],
    select: Sequence[str] | None = None,
    entries: Sequence[str] | None = None,
    allow_env: Iterable[str] | None = None,
) -> list[Finding]:
    """Check every worker discovered under ``paths`` (plus ``entries``)."""
    modules, errors = _load_modules(paths)
    return _run_check(modules, errors, select, entries, allow_env)


def check_source(
    source: str,
    path: str | Path = "<string>",
    select: Sequence[str] | None = None,
    entries: Sequence[str] | None = None,
    allow_env: Iterable[str] | None = None,
) -> list[Finding]:
    """Check one module's source text in isolation."""
    p = Path(path)
    try:
        tree = ast.parse(source, filename=str(p))
    except SyntaxError as exc:
        return [
            Finding(
                str(p), exc.lineno or 1, exc.offset or 0, "RPR000",
                f"syntax error: {exc.msg}",
            )
        ]
    mod = _index_module(p, source, tree)
    return _run_check({mod.name: mod}, [], select, entries, allow_env)


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the exit status."""
    parser = argparse.ArgumentParser(
        prog="repro purity",
        description="process-pool worker purity lint (RPR009)",
    )
    parser.add_argument(
        "paths", nargs="*", default=["src/repro"],
        help="files or directories to check (default: src/repro)",
    )
    parser.add_argument(
        "--select", nargs="+", metavar="RPRnnn", default=None,
        help="only report the given rule codes",
    )
    parser.add_argument(
        "--entry", action="append", metavar="MODULE:FUNC", default=None,
        help="treat MODULE:FUNC as an additional worker entry point",
    )
    parser.add_argument(
        "--allow-env", action="append", metavar="NAME", default=None,
        help="extra env var a worker may read (default allows REPRO_TELEMETRY)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rules and exit"
    )
    parser.add_argument(
        "--format", choices=FORMATS, default="text",
        help="output format (github emits ::error workflow annotations)",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in iter_rules():
            print(f"{rule.code}  {rule.summary}")
        return 0

    findings = check_paths(
        args.paths, args.select, entries=args.entry, allow_env=args.allow_env
    )
    print(render_findings(findings, args.format))
    return 1 if findings else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
