"""Post-hoc verification of executed Gantt traces (``repro audit``).

:func:`repro.core.validate.validate_plan` oracles *plans*; this module
oracles *executions*.  Schedulers and the Section 6 runtime are trusted at
run time, so a bug in overlay commits, cache mirroring or transfer source
selection would silently produce traces that break the paper's cost model.
The auditor re-derives the execution-time invariants from the recorded
timelines and the :class:`~repro.cluster.events.AuditTrail` and reports
every breach:

E1. no two busy intervals overlap on any resource timeline — the
    single-port model (Section 2; every transfer serialises on both of its
    endpoints, Eq. 12);
E2. every input file of a task is staged (transfer completed) or already
    resident before the task's execution starts;
E3. per-node disk occupancy never exceeds ``disk_space_mb``, replayed in
    commit order over transfers and evictions (Eq. 16/21);
E4. staging never overlaps execution on the same node (the paper's
    non-overlap assumption; skipped when the runtime deliberately relaxes
    it with ``overlap_io_compute=True``);
E5. reported :class:`~repro.cluster.stats.TaskRecord` timings are
    consistent with the trace (matching reserved exec interval,
    ``transfers_done <= exec_start <= completion``);
E6. no activity on a compute node after its injected crash time — no
    busy interval on its timeline, no transfer from or to it, and no
    execution (fault injection, ``docs/faults.md``);
E7. every injected transfer failure is recovered: a later successful
    transfer delivers the same file to the same node, or the node itself
    crashed (its unfinished tasks were rescheduled elsewhere);
E8. cross-batch cache-hit attribution is exact: a hit counted as
    cross-batch consumed a copy resident since the prior batch's commit
    (held at batch start, neither evicted, crashed away nor re-staged in
    between), and every hit on such a copy *is* counted cross-batch
    (online multi-batch sessions, ``docs/online.md``; skipped when the
    trail carries no cache-hit events).

Use :func:`repro.core.driver.run_batch` with ``audit=True`` to execute a
batch with the trail enabled and fail fast on any violation; the test
suite uses the same path as an oracle over randomized workloads.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from ..cluster.events import (
    AuditTrail,
    CacheHitEvent,
    CrashEvent,
    EvictionEvent,
    ExecEvent,
    TransferEvent,
)
from ..cluster.gantt import Interval, Timeline

if TYPE_CHECKING:  # pragma: no cover
    from ..cluster.runtime import Runtime
    from ..cluster.stats import ExecutionResult

__all__ = ["AuditError", "AuditViolation", "AuditReport", "audit_runtime"]

#: Audit tolerance on simulated times — coarser than the Gantt chart's
#: internal epsilon so float accumulation over long traces cannot produce
#: spurious violations.
AUDIT_EPS = 1e-6


class AuditError(RuntimeError):
    """Raised when an executed trace violates an execution invariant."""


@dataclass(frozen=True)
class AuditViolation:
    """One broken execution invariant."""

    code: str
    message: str

    def __str__(self) -> str:
        return f"[{self.code}] {self.message}"


@dataclass
class AuditReport:
    """All violations found in an executed trace (empty = clean)."""

    violations: list[AuditViolation] = field(default_factory=list)
    checked_events: int = 0

    @property
    def ok(self) -> bool:
        return not self.violations

    def add(self, code: str, message: str) -> None:
        self.violations.append(AuditViolation(code, message))

    def raise_if_violations(self) -> None:
        if not self.ok:
            summary = "; ".join(str(v) for v in self.violations[:5])
            raise AuditError(
                f"executed trace violates {len(self.violations)} "
                f"invariant(s): {summary}"
            )

    def __str__(self) -> str:
        return "\n".join(str(v) for v in self.violations) or "OK"


def _audit_timelines(timelines: Iterable[Timeline], report: AuditReport) -> None:
    """E1 — busy intervals on every resource are pairwise disjoint."""
    for tl in timelines:
        ivs = sorted(tl.intervals, key=lambda iv: (iv.start, iv.end))
        for prev, cur in zip(ivs, ivs[1:], strict=False):
            if prev.end > cur.start + AUDIT_EPS:
                report.add(
                    "E1",
                    f"resource {tl.name!r}: interval {prev.tag!r} "
                    f"[{prev.start:.3f}, {prev.end:.3f}) overlaps "
                    f"{cur.tag!r} [{cur.start:.3f}, {cur.end:.3f}) — "
                    "single-port model broken",
                )


def _audit_staging_before_exec(trail: AuditTrail, report: AuditReport) -> None:
    """E2 — every consumed file arrives before its task starts executing."""
    first_arrival: dict[tuple[int, str], float] = {}
    for tr in trail.transfers:
        key = (tr.dest, tr.file_id)
        if key not in first_arrival or tr.end < first_arrival[key]:
            first_arrival[key] = tr.end
    for ev in trail.execs:
        initial = trail.initial_holdings.get(ev.node, {})
        for f in ev.files:
            if f in initial:
                continue
            arrived = first_arrival.get((ev.node, f))
            if arrived is None:
                report.add(
                    "E2",
                    f"task {ev.task_id} on node {ev.node} consumed {f} "
                    "but no transfer ever delivered it",
                )
            elif arrived > ev.start + AUDIT_EPS:
                report.add(
                    "E2",
                    f"task {ev.task_id} on node {ev.node} started at "
                    f"{ev.start:.3f} but input {f} only arrived at "
                    f"{arrived:.3f}",
                )


def _audit_disk_occupancy(
    runtime: Runtime, trail: AuditTrail, report: AuditReport
) -> None:
    """E3 — replay transfers/evictions; occupancy never exceeds capacity."""
    resident: dict[int, dict[str, float]] = {
        node: dict(files) for node, files in trail.initial_holdings.items()
    }
    flagged: set[int] = set()
    for event in trail.in_commit_order():
        if isinstance(event, TransferEvent):
            node_files = resident.setdefault(event.dest, {})
            node_files[event.file_id] = event.size_mb
            cap = runtime.platform.compute_nodes[event.dest].disk_space_mb
            used = sum(node_files.values())
            if used > cap + AUDIT_EPS and event.dest not in flagged:
                flagged.add(event.dest)
                report.add(
                    "E3",
                    f"node {event.dest} holds {used:.1f} MB after staging "
                    f"{event.file_id} but its disk is {cap:.1f} MB",
                )
        elif isinstance(event, EvictionEvent):
            node_files = resident.setdefault(event.node, {})
            if node_files.pop(event.file_id, None) is None:
                report.add(
                    "E3",
                    f"eviction of {event.file_id} from node {event.node} "
                    "but the trail never staged it there",
                )
        elif isinstance(event, CrashEvent):
            # The node's disk is gone; everything it held vanishes from the
            # replayed occupancy (without eviction bookkeeping).
            resident.pop(event.node, None)


def _exec_timeline(runtime: Runtime, node: int) -> Timeline:
    if runtime.cpu_tl is not None:
        return runtime.cpu_tl[node]
    return runtime.node_tl[node]


def _audit_no_staging_during_exec(
    runtime: Runtime, report: AuditReport
) -> None:
    """E4 — no transfer onto a node while a task executes there."""
    if runtime.overlap_io_compute:
        return  # the ablation mode deliberately relaxes this invariant
    for node in range(runtime.platform.num_compute):
        port_ivs = runtime.node_tl[node].intervals
        execs = [iv for iv in _exec_timeline(runtime, node).intervals
                 if iv.tag.startswith("exec:")]
        staging = [iv for iv in port_ivs
                   if iv.tag.startswith(("xfer:", "push:", "xfail:"))]
        for ex in execs:
            for st in staging:
                if st.start < ex.end - AUDIT_EPS and st.end > ex.start + AUDIT_EPS:
                    report.add(
                        "E4",
                        f"node {node}: staging {st.tag!r} "
                        f"[{st.start:.3f}, {st.end:.3f}) overlaps execution "
                        f"{ex.tag!r} [{ex.start:.3f}, {ex.end:.3f})",
                    )


def _exec_intervals_by_task(
    runtime: Runtime, trail: AuditTrail
) -> dict[str, list[Interval]]:
    by_task: dict[str, list[Interval]] = {}
    nodes = {ev.node for ev in trail.execs}
    for node in nodes:
        for iv in _exec_timeline(runtime, node).intervals:
            if iv.tag.startswith("exec:"):
                by_task.setdefault(iv.tag[len("exec:"):], []).append(iv)
    return by_task


def _audit_records(
    runtime: Runtime,
    trail: AuditTrail,
    results: Iterable[ExecutionResult],
    report: AuditReport,
) -> None:
    """E5 — reported task records agree with the trace."""
    by_task = _exec_intervals_by_task(runtime, trail)
    events = {ev.task_id: ev for ev in trail.execs}
    for result in results:
        for rec in result.records:
            ev = events.get(rec.task_id)
            if ev is None:
                report.add(
                    "E5",
                    f"record for task {rec.task_id} has no matching "
                    "execution event in the trail",
                )
                continue
            reserved = any(
                abs(iv.start - rec.exec_start) <= AUDIT_EPS
                and abs(iv.end - rec.completion) <= AUDIT_EPS
                for iv in by_task.get(rec.task_id, [])
            )
            if not reserved:
                report.add(
                    "E5",
                    f"task {rec.task_id}: no reserved exec interval matches "
                    f"its record [{rec.exec_start:.3f}, {rec.completion:.3f})",
                )
            if rec.transfers_done > rec.exec_start + AUDIT_EPS:
                report.add(
                    "E5",
                    f"task {rec.task_id}: transfers_done "
                    f"{rec.transfers_done:.3f} after exec_start "
                    f"{rec.exec_start:.3f}",
                )
            if rec.completion < rec.exec_start - AUDIT_EPS:
                report.add(
                    "E5",
                    f"task {rec.task_id}: completion {rec.completion:.3f} "
                    f"before exec_start {rec.exec_start:.3f}",
                )


def _audit_node_crashes(runtime: Runtime, trail: AuditTrail, report: AuditReport) -> None:
    """E6 — nothing touches a compute node after its injected crash time."""
    if runtime.faults is None:
        return
    crash_times = {
        node: runtime.faults.crash_time(node)
        for node in range(runtime.platform.num_compute)
    }
    for node, crash_at in crash_times.items():
        if crash_at == float("inf"):
            continue
        timelines = [runtime.node_tl[node]]
        if runtime.cpu_tl is not None:
            timelines.append(runtime.cpu_tl[node])
        for tl in timelines:
            for iv in tl.intervals:
                if iv.end > crash_at + AUDIT_EPS:
                    report.add(
                        "E6",
                        f"node {node} crashed at {crash_at:.3f} but "
                        f"{iv.tag!r} occupies [{iv.start:.3f}, {iv.end:.3f}) "
                        "on its timeline",
                    )
    for tr in trail.transfers:
        for endpoint in (tr.dest, tr.source_node):
            if endpoint is None:
                continue
            crash_at = crash_times.get(endpoint, float("inf"))
            if tr.end > crash_at + AUDIT_EPS:
                report.add(
                    "E6",
                    f"transfer of {tr.file_id} touching node {endpoint} ends "
                    f"at {tr.end:.3f}, after its crash at {crash_at:.3f}",
                )
    for ev in trail.execs:
        crash_at = crash_times.get(ev.node, float("inf"))
        if ev.end > crash_at + AUDIT_EPS:
            report.add(
                "E6",
                f"task {ev.task_id} on node {ev.node} ends at {ev.end:.3f}, "
                f"after the node's crash at {crash_at:.3f}",
            )


def _audit_failed_transfers(trail: AuditTrail, report: AuditReport) -> None:
    """E7 — every injected transfer failure is retried to success."""
    if not trail.failed_transfers:
        return
    crashed = {c.node for c in trail.crashes}
    recovered: dict[tuple[str, int], int] = {}
    for tr in trail.transfers:
        key = (tr.file_id, tr.dest)
        if key not in recovered or tr.seq > recovered[key]:
            recovered[key] = tr.seq
    for fail in trail.failed_transfers:
        if fail.dest in crashed:
            continue  # the destination died; its tasks were rescheduled
        success_seq = recovered.get((fail.file_id, fail.dest))
        if success_seq is None or success_seq < fail.seq:
            report.add(
                "E7",
                f"transfer of {fail.file_id} to node {fail.dest} failed "
                f"(attempt {fail.attempt}) and was never retried to success",
            )


def _audit_cross_batch(trail: AuditTrail, report: AuditReport) -> None:
    """E8 — cross-batch hit attribution matches the replayed residency.

    Replays the commit-ordered trail maintaining the set of copies resident
    *continuously* since the batch started (the prior batch's committed
    contents, per ``initial_holdings``): an eviction, a crash or a re-stage
    of the pair removes it. Every cache-hit event must agree with the set —
    counted cross-batch iff the consumed copy is still in it.
    """
    if not trail.cache_hits:
        return  # not an online session: nothing was attributed
    resident: set[tuple[int, str]] = {
        (node, f)
        for node, files in trail.initial_holdings.items()
        for f in files
    }
    for event in trail.in_commit_order():
        if isinstance(event, CacheHitEvent):
            key = (event.node, event.file_id)
            if event.cross_batch and key not in resident:
                report.add(
                    "E8",
                    f"hit on {event.file_id} at node {event.node} counted "
                    "as cross-batch but the copy was not resident since "
                    "the prior batch's commit",
                )
            elif not event.cross_batch and key in resident:
                report.add(
                    "E8",
                    f"hit on {event.file_id} at node {event.node} consumed "
                    "a copy carried from the prior batch but was not "
                    "counted as cross-batch",
                )
        elif isinstance(event, EvictionEvent):
            resident.discard((event.node, event.file_id))
        elif isinstance(event, TransferEvent):
            # A re-staged copy is fresh, not carried (only possible after
            # the carried copy left; kept for defence in depth).
            resident.discard((event.dest, event.file_id))
        elif isinstance(event, CrashEvent):
            resident = {(n, f) for n, f in resident if n != event.node}


def _all_timelines(runtime: Runtime) -> list[Timeline]:
    out = list(runtime.node_tl)
    if runtime.cpu_tl is not None:
        out.extend(runtime.cpu_tl)
    out.extend(runtime.storage_tl)
    if runtime.link_tl is not None:
        out.append(runtime.link_tl)
    return out


def audit_runtime(
    runtime: Runtime,
    results: Sequence[ExecutionResult] | None = None,
) -> AuditReport:
    """Verify an executed runtime's trace; returns the full report.

    The runtime must have been constructed with ``audit=True`` so the
    commit-ordered :class:`~repro.cluster.events.AuditTrail` exists; pass
    the per-sub-batch :class:`~repro.cluster.stats.ExecutionResult` values
    to additionally cross-check the reported records (E5).
    """
    trail = runtime.trail
    if trail is None:
        raise ValueError(
            "runtime has no audit trail; construct it with audit=True"
        )
    report = AuditReport()
    _audit_timelines(_all_timelines(runtime), report)
    _audit_staging_before_exec(trail, report)
    _audit_disk_occupancy(runtime, trail, report)
    _audit_no_staging_during_exec(runtime, report)
    _audit_node_crashes(runtime, trail, report)
    _audit_failed_transfers(trail, report)
    _audit_cross_batch(trail, report)
    if results is not None:
        _audit_records(runtime, trail, results, report)
    report.checked_events = (
        len(trail.transfers)
        + len(trail.execs)
        + len(trail.evictions)
        + len(trail.failed_transfers)
        + len(trail.crashes)
        + len(trail.cache_hits)
    )
    return report
