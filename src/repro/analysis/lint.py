"""Repo-specific AST lint rules (``python -m repro.analysis.lint``).

The reproduction's correctness rests on properties no general-purpose linter
checks: every simulation must be bit-for-bit deterministic (the PR-1 result
cache replays cells by config hash, so hidden randomness or wall-clock reads
silently poison it), and simulated times are floats compared against the
Gantt charts' ``_EPS`` tolerance, never with ``==``.  These rules encode
those contracts:

========  =============================================================
RPR001    unseeded randomness: ``random.Random()`` / ``default_rng()``
          without a seed, or any call through a process-global RNG
          (``random.random``, ``numpy.random.rand``, ...).
RPR002    ``==`` / ``!=`` on simulated-time floats (``start``, ``ect``,
          ``makespan``, ...) where an ``_EPS`` tolerance is required.
RPR003    wall-clock nondeterminism (``time.time``, ``datetime.now``)
          inside scheduler/simulator modules (``core``/``cluster``;
          ``perf_counter`` stays legal — it measures scheduling
          overhead, which the paper reports separately from simulated
          makespan).
RPR004    mutable default arguments.
RPR005    bare ``except:``.
========  =============================================================

Suppress a finding with a trailing ``# repro: noqa[RPR001]`` comment
(several codes comma-separated; ``# repro: noqa`` alone silences the line).
Exit status is 1 when findings remain, 0 on a clean tree.
"""

from __future__ import annotations

import argparse
import ast
import sys
from collections.abc import Sequence
from pathlib import Path

from .common import (
    FORMATS,
    Finding,
    Rule,
    filter_findings,
    iter_py_files,
    noqa_codes,
    render_findings,
)

__all__ = ["Finding", "Rule", "iter_rules", "lint_source", "lint_paths", "main"]

# Back-compat aliases; the canonical home is repro.analysis.common.
_noqa_codes = noqa_codes
_iter_py_files = iter_py_files

_RULES: tuple[Rule, ...] = (
    Rule("RPR001", "unseeded or process-global random number generation"),
    Rule("RPR002", "== / != on simulated-time floats (use an _EPS tolerance)"),
    Rule("RPR003", "wall-clock read inside a scheduler/simulator module"),
    Rule("RPR004", "mutable default argument"),
    Rule("RPR005", "bare except clause"),
)


def iter_rules() -> tuple[Rule, ...]:
    """All lint rules, in code order."""
    return _RULES


# ``random`` module functions that route through the hidden global RNG.
_GLOBAL_RNG_FUNCS = frozenset(
    {
        "random", "randint", "randrange", "getrandbits", "randbytes",
        "choice", "choices", "shuffle", "sample", "uniform", "triangular",
        "betavariate", "expovariate", "gammavariate", "gauss",
        "lognormvariate", "normalvariate", "vonmisesvariate",
        "paretovariate", "weibullvariate", "binomialvariate",
    }
)

# Legacy ``numpy.random`` module-level functions (global RandomState).
_NUMPY_GLOBAL_FUNCS = frozenset(
    {
        "rand", "randn", "randint", "random", "random_sample", "ranf",
        "sample", "choice", "shuffle", "permutation", "uniform", "normal",
        "standard_normal", "beta", "binomial", "poisson", "exponential",
        "gamma", "geometric", "laplace", "lognormal", "pareto", "weibull",
    }
)

# Identifiers that denote simulated-time quantities in this codebase; a
# direct equality on any of them is almost certainly a float-tolerance bug.
_TIME_NAMES = frozenset(
    {
        "start", "end", "ect", "tct", "clock", "makespan", "exec_start",
        "completion", "transfers_done", "start_time", "horizon", "ready",
        "finish_time", "avail_time", "arrival_time",
    }
)
_TIME_SUFFIXES = ("_ect", "_tct", "_makespan", "_deadline")

_WALLCLOCK_TIME_FUNCS = frozenset({"time", "time_ns"})
_WALLCLOCK_DT_METHODS = frozenset({"now", "utcnow", "today"})

# Modules the wall-clock rule (RPR003) applies to: anything under the
# scheduler (``core``) or simulator (``cluster``) packages.
_SIM_PACKAGE_DIRS = ("core", "cluster")


class _Imports:
    """Names bound to the modules/classes the rules care about."""

    def __init__(self) -> None:
        self.random_mod: set[str] = set()  # import random [as r]
        self.numpy_mod: set[str] = set()  # import numpy [as np]
        self.numpy_random_mod: set[str] = set()  # from numpy import random
        self.time_mod: set[str] = set()  # import time [as t]
        self.datetime_mod: set[str] = set()  # import datetime [as dt]
        self.datetime_cls: set[str] = set()  # from datetime import datetime
        self.random_cls: set[str] = set()  # from random import Random
        self.numpy_rng_ctor: set[str] = set()  # from numpy.random import default_rng


class _Visitor(ast.NodeVisitor):
    def __init__(self, path: str, in_sim_module: bool) -> None:
        self.path = path
        self.in_sim_module = in_sim_module
        self.imports = _Imports()
        self.findings: list[Finding] = []

    # -- helpers ---------------------------------------------------------------
    def _add(self, node: ast.AST, code: str, message: str) -> None:
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        end_line = getattr(node, "end_lineno", None)
        self.findings.append(Finding(self.path, line, col, code, message, end_line))

    # -- imports ---------------------------------------------------------------
    def visit_Import(self, node: ast.Import) -> None:
        imp = self.imports
        for alias in node.names:
            bound = alias.asname or alias.name.partition(".")[0]
            if alias.name == "random":
                imp.random_mod.add(bound)
            elif alias.name == "numpy":
                imp.numpy_mod.add(bound)
            elif alias.name == "numpy.random":
                # ``import numpy.random`` binds ``numpy`` (or the alias).
                if alias.asname:
                    imp.numpy_random_mod.add(alias.asname)
                else:
                    imp.numpy_mod.add(bound)
            elif alias.name == "time":
                imp.time_mod.add(bound)
            elif alias.name == "datetime":
                imp.datetime_mod.add(bound)
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        imp = self.imports
        for alias in node.names:
            bound = alias.asname or alias.name
            if node.module == "random":
                if alias.name == "Random":
                    imp.random_cls.add(bound)
                elif alias.name in _GLOBAL_RNG_FUNCS or alias.name == "seed":
                    self._add(
                        node,
                        "RPR001",
                        f"`from random import {alias.name}` binds the "
                        "process-global RNG; use a seeded random.Random "
                        "instance instead",
                    )
            elif node.module == "numpy" and alias.name == "random":
                imp.numpy_random_mod.add(bound)
            elif node.module == "numpy.random":
                if alias.name in ("default_rng", "RandomState"):
                    imp.numpy_rng_ctor.add(bound)
                elif alias.name in _NUMPY_GLOBAL_FUNCS or alias.name == "seed":
                    self._add(
                        node,
                        "RPR001",
                        f"`from numpy.random import {alias.name}` binds the "
                        "legacy global RandomState; use a seeded Generator "
                        "instead",
                    )
            elif node.module == "datetime" and alias.name in ("datetime", "date"):
                imp.datetime_cls.add(bound)
            elif node.module == "time" and alias.name in _WALLCLOCK_TIME_FUNCS:
                if self.in_sim_module:
                    self._add(
                        node,
                        "RPR003",
                        f"`from time import {alias.name}` in a simulator "
                        "module; simulated time must come from the Gantt "
                        "clock, not the wall clock",
                    )
        self.generic_visit(node)

    # -- RPR001 / RPR003: calls -----------------------------------------------
    def _attr_root(self, node: ast.expr) -> tuple[str, ...] | None:
        """``a.b.c`` -> ("a", "b", "c"); None for non-name chains."""
        parts: list[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if isinstance(node, ast.Name):
            parts.append(node.id)
            parts.reverse()
            return tuple(parts)
        return None

    def visit_Call(self, node: ast.Call) -> None:
        chain = self._attr_root(node.func)
        if chain is not None:
            self._check_random_call(node, chain)
            if self.in_sim_module:
                self._check_wallclock_call(node, chain)
        self.generic_visit(node)

    def _check_random_call(self, node: ast.Call, chain: tuple[str, ...]) -> None:
        imp = self.imports
        seeded = bool(node.args or node.keywords)
        # random.<fn>(...) through the stdlib module.
        if len(chain) == 2 and chain[0] in imp.random_mod:
            fn = chain[1]
            if fn == "Random" and not seeded:
                self._add(node, "RPR001", "random.Random() created without a seed")
            elif fn == "SystemRandom":
                self._add(node, "RPR001", "random.SystemRandom is never reproducible")
            elif fn == "seed" and not seeded:
                self._add(node, "RPR001", "random.seed() called without a seed value")
            elif fn in _GLOBAL_RNG_FUNCS:
                self._add(
                    node,
                    "RPR001",
                    f"random.{fn}() uses the process-global RNG; draw from a "
                    "seeded random.Random / numpy Generator instead",
                )
            return
        # Random() imported directly from the random module.
        if len(chain) == 1 and chain[0] in imp.random_cls and not seeded:
            self._add(node, "RPR001", f"{chain[0]}() created without a seed")
            return
        # default_rng / RandomState imported straight from numpy.random.
        if len(chain) == 1 and chain[0] in imp.numpy_rng_ctor and not seeded:
            self._add(node, "RPR001", f"{chain[0]}() created without a seed")
            return
        # numpy.random.<fn>(...) — either via the numpy module or an alias
        # of the numpy.random submodule.
        fn = ""
        if (
            len(chain) == 3
            and chain[0] in imp.numpy_mod
            and chain[1] == "random"
        ):
            fn = chain[2]
        elif len(chain) == 2 and chain[0] in imp.numpy_random_mod:
            fn = chain[1]
        if not fn:
            return
        if fn in ("default_rng", "RandomState") and not seeded:
            self._add(node, "RPR001", f"numpy.random.{fn}() created without a seed")
        elif fn == "seed" and not seeded:
            self._add(node, "RPR001", "numpy.random.seed() called without a seed value")
        elif fn in _NUMPY_GLOBAL_FUNCS:
            self._add(
                node,
                "RPR001",
                f"numpy.random.{fn}() uses the legacy global RandomState; "
                "use a seeded numpy.random.Generator instead",
            )

    def _check_wallclock_call(self, node: ast.Call, chain: tuple[str, ...]) -> None:
        imp = self.imports
        if (
            len(chain) == 2
            and chain[0] in imp.time_mod
            and chain[1] in _WALLCLOCK_TIME_FUNCS
        ):
            self._add(
                node,
                "RPR003",
                f"time.{chain[1]}() read inside a simulator module; simulated "
                "time must come from the Gantt clock",
            )
            return
        if (
            len(chain) == 2
            and chain[0] in imp.datetime_cls
            and chain[1] in _WALLCLOCK_DT_METHODS
        ) or (
            len(chain) == 3
            and chain[0] in imp.datetime_mod
            and chain[1] in ("datetime", "date")
            and chain[2] in _WALLCLOCK_DT_METHODS
        ):
            self._add(
                node,
                "RPR003",
                f"datetime .{chain[-1]}() read inside a simulator module "
                "breaks run-to-run determinism",
            )

    # -- RPR002: float-time equality -------------------------------------------
    def _terminal_name(self, node: ast.expr) -> str | None:
        if isinstance(node, ast.Attribute):
            return node.attr
        if isinstance(node, ast.Name):
            return node.id
        return None

    def _is_time_expr(self, node: ast.expr) -> bool:
        name = self._terminal_name(node)
        if name is None:
            return False
        return name in _TIME_NAMES or name.endswith(_TIME_SUFFIXES)

    def _exempt_operand(self, node: ast.expr) -> bool:
        """Operands that make an equality non-float (None / str / bool)."""
        return isinstance(node, ast.Constant) and (
            node.value is None or isinstance(node.value, (str, bool))
        )

    def visit_Compare(self, node: ast.Compare) -> None:
        operands = [node.left, *node.comparators]
        for op, lhs, rhs in zip(node.ops, operands, operands[1:], strict=False):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            if self._exempt_operand(lhs) or self._exempt_operand(rhs):
                continue
            hit = next((x for x in (lhs, rhs) if self._is_time_expr(x)), None)
            if hit is not None:
                sym = "==" if isinstance(op, ast.Eq) else "!="
                self._add(
                    node,
                    "RPR002",
                    f"direct {sym} on simulated-time value "
                    f"{self._terminal_name(hit)!r}; compare with an _EPS "
                    "tolerance (see repro.cluster.gantt)",
                )
        self.generic_visit(node)

    # -- RPR004: mutable defaults ----------------------------------------------
    def _check_defaults(
        self, node: ast.FunctionDef | ast.AsyncFunctionDef | ast.Lambda
    ) -> None:
        defaults = [*node.args.defaults, *node.args.kw_defaults]
        for default in defaults:
            if default is None:
                continue
            mutable = isinstance(default, (ast.List, ast.Dict, ast.Set))
            if (
                isinstance(default, ast.Call)
                and isinstance(default.func, ast.Name)
                and default.func.id in ("list", "dict", "set", "bytearray")
            ):
                mutable = True
            if mutable:
                self._add(
                    default,
                    "RPR004",
                    "mutable default argument is shared across calls; "
                    "default to None and create it in the body",
                )

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_defaults(node)
        self.generic_visit(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check_defaults(node)
        self.generic_visit(node)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._check_defaults(node)
        self.generic_visit(node)

    # -- RPR005: bare except -----------------------------------------------------
    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if node.type is None:
            self._add(
                node,
                "RPR005",
                "bare `except:` swallows SystemExit/KeyboardInterrupt; "
                "catch a specific exception",
            )
        self.generic_visit(node)


def _is_sim_module(path: Path) -> bool:
    return any(part in _SIM_PACKAGE_DIRS for part in path.parts[:-1])


def lint_source(
    source: str, path: str | Path = "<string>", select: Sequence[str] | None = None
) -> list[Finding]:
    """Lint one module's source text; returns surviving findings."""
    p = Path(path)
    try:
        tree = ast.parse(source, filename=str(p))
    except SyntaxError as exc:
        return [
            Finding(
                str(p), exc.lineno or 1, exc.offset or 0, "RPR000",
                f"syntax error: {exc.msg}",
            )
        ]
    visitor = _Visitor(str(p), _is_sim_module(p))
    visitor.visit(tree)
    return filter_findings(visitor.findings, source.splitlines(), select)


def lint_paths(
    paths: Sequence[str | Path], select: Sequence[str] | None = None
) -> list[Finding]:
    """Lint every ``.py`` file under ``paths`` (files or directories)."""
    findings: list[Finding] = []
    for file in _iter_py_files(paths):
        findings.extend(lint_source(file.read_text(), file, select))
    return findings


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the exit status."""
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="repo-specific determinism/correctness lint (RPR rules)",
    )
    parser.add_argument(
        "paths", nargs="*", default=["src/repro"],
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--select", nargs="+", metavar="RPRnnn", default=None,
        help="only run the given rule codes",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rules and exit"
    )
    parser.add_argument(
        "--format", choices=FORMATS, default="text",
        help="output format (github emits ::error workflow annotations)",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in iter_rules():
            print(f"{rule.code}  {rule.summary}")
        return 0

    findings = lint_paths(args.paths, args.select)
    print(render_findings(findings, args.format))
    return 1 if findings else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
