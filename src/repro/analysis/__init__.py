"""Static analysis and post-hoc verification tooling for the reproduction.

Four coordinated correctness layers on top of the simulator:

* :mod:`repro.analysis.lint` — repo-specific AST lint rules (RPR001–RPR005)
  guarding the determinism and numerical hygiene the result cache and the
  paper's cost model depend on.  Run as ``python -m repro.analysis.lint
  src/repro`` or ``repro lint``.
* :mod:`repro.analysis.units` — a flow-sensitive dimensional-analysis
  checker (RPR006–RPR008) that propagates the physical units declared in
  :mod:`repro.analysis.dims` (MB, MB/s, seconds) through the simulator's
  arithmetic and flags mixed-dimension operations before any run.  Run as
  ``repro units``.
* :mod:`repro.analysis.purity` — a parallel-purity lint (RPR009) that walks
  every function submitted to the process pool (:mod:`repro.parallel.pool`)
  plus its transitive callees, flagging hidden state that would make results
  depend on worker assignment.  Run as ``repro purity``.
* :mod:`repro.analysis.audit` — a schedule auditor that re-verifies executed
  Gantt traces against the paper's execution-time invariants (single-port
  model, staged-before-execute, disk capacity), mirroring how
  :func:`repro.core.validate.validate_plan` oracles *plans*.  Run via
  ``run_batch(..., audit=True)`` or ``repro audit``.

``docs/invariants.md`` catalogues the invariants the lint and audit layers
enforce; ``docs/analysis.md`` catalogues the full RPR001–RPR009 rule set and
the dimension conventions.
"""

from typing import Any

__all__ = [
    "AuditError",
    "AuditReport",
    "AuditViolation",
    "audit_runtime",
    "Finding",
    "Rule",
    "check_purity_paths",
    "check_units_paths",
    "iter_rules",
    "lint_paths",
    "lint_source",
]

_LINT_NAMES = frozenset(
    {"Finding", "Rule", "iter_rules", "lint_paths", "lint_source"}
)
_AUDIT_NAMES = frozenset(
    {"AuditError", "AuditReport", "AuditViolation", "audit_runtime"}
)


def __getattr__(name: str) -> Any:
    # Lazy re-exports: keeps `python -m repro.analysis.lint` from importing
    # the submodule twice (runpy warns) and the audit layer import-free for
    # lint-only invocations.
    if name in _LINT_NAMES:
        from . import lint

        return getattr(lint, name)
    if name in _AUDIT_NAMES:
        from . import audit

        return getattr(audit, name)
    if name == "check_units_paths":
        from . import units

        return units.check_paths
    if name == "check_purity_paths":
        from . import purity

        return purity.check_paths
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
