"""Shared machinery for the repro static checkers (lint, units, purity).

Every checker produces :class:`Finding` objects, honours the same
``# repro: noqa[RPRnnn]`` escape, and renders through the same three output
formats (``text``, ``json``, ``github``), so that lives here once.
"""

from __future__ import annotations

import json
import re
from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass
from pathlib import Path

__all__ = [
    "FORMATS",
    "Finding",
    "Rule",
    "filter_findings",
    "iter_py_files",
    "noqa_codes",
    "render_findings",
]

FORMATS = ("text", "json", "github")


@dataclass(frozen=True)
class Rule:
    """One lint rule: its code and a one-line description."""

    code: str
    summary: str


@dataclass(frozen=True)
class Finding:
    """One finding, pointing at ``path:line:col``.

    ``end_line`` is the last source line of the offending node (when known):
    a ``# repro: noqa`` on either the first or the last line suppresses the
    finding, so multi-line expressions can carry the escape on their
    continuation line.
    """

    path: str
    line: int
    col: int
    code: str
    message: str
    end_line: int | None = None

    def __str__(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"


_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa(?:\[(?P<codes>[A-Z0-9,\s]+)\])?", re.IGNORECASE
)


def noqa_codes(source_line: str) -> frozenset[str] | None:
    """Codes suppressed on this line (empty set = all), or ``None``."""
    m = _NOQA_RE.search(source_line)
    if m is None:
        return None
    codes = m.group("codes")
    if codes is None:
        return frozenset()
    return frozenset(c.strip().upper() for c in codes.split(",") if c.strip())


def _suppressed_on(line_text: str, code: str) -> bool:
    suppressed = noqa_codes(line_text)
    return suppressed is not None and (not suppressed or code in suppressed)


def filter_findings(
    findings: Iterable[Finding],
    source_lines: Sequence[str],
    select: Sequence[str] | None = None,
) -> list[Finding]:
    """Sort findings, apply ``--select``, and drop ``noqa``-suppressed ones."""
    wanted = frozenset(select) if select else None
    out: list[Finding] = []
    for f in sorted(findings, key=lambda f: (f.line, f.col, f.code)):
        if wanted is not None and f.code not in wanted:
            continue
        lines_to_check = {f.line}
        if f.end_line is not None:
            lines_to_check.add(f.end_line)
        hit = False
        for ln in lines_to_check:
            text = source_lines[ln - 1] if 0 < ln <= len(source_lines) else ""
            if _suppressed_on(text, f.code):
                hit = True
                break
        if not hit:
            out.append(f)
    return out


def iter_py_files(paths: Sequence[str | Path]) -> Iterator[Path]:
    """Every ``.py`` file under ``paths`` (files or directories), sorted."""
    for raw in paths:
        p = Path(raw)
        if p.is_dir():
            yield from sorted(p.rglob("*.py"))
        else:
            yield p


def render_findings(findings: Sequence[Finding], fmt: str = "text") -> str:
    """Render findings in one of :data:`FORMATS`.

    ``github`` emits ``::error`` workflow commands so findings annotate the
    offending lines inline on pull requests; ``json`` emits a list of
    finding dicts for tooling.
    """
    n = len(findings)
    if fmt == "json":
        return json.dumps(
            [
                {
                    "path": f.path,
                    "line": f.line,
                    "col": f.col,
                    "end_line": f.end_line,
                    "code": f.code,
                    "message": f.message,
                }
                for f in findings
            ],
            indent=2,
        )
    lines: list[str] = []
    if fmt == "github":
        for f in findings:
            # Workflow-command syntax: properties before ::, free text after.
            msg = f.message.replace("%", "%25").replace("\n", "%0A")
            lines.append(
                f"::error file={f.path},line={f.line},col={f.col + 1},"
                f"title={f.code}::{msg}"
            )
    else:
        lines.extend(str(f) for f in findings)
    lines.append(f"{n} finding{'s' if n != 1 else ''}" if n else "clean: no findings")
    return "\n".join(lines)
