"""Streaming multi-batch cluster session with warm-cache carryover.

The paper's driver executes one batch against a cold cluster. A
:class:`ClusterSession` models the cluster as a *serial batch server* fed
by a :class:`~repro.online.arrivals.JobStream`: jobs arrive over simulated
time, queue while a batch executes, and whenever the cluster goes idle an
admission policy (:mod:`repro.online.queue`) forms the next dispatch
window, which runs through the unmodified :func:`repro.core.run_batch`
pipeline (scheduling, sub-batching, eviction, Section 6 Gantt runtime).

Two modes differ only in what survives between batches:

* ``warm`` — one :class:`~repro.cluster.state.ClusterState` (and, with
  fault injection, one :class:`~repro.faults.FaultModel`) threads through
  every call: disk-cache contents, dead nodes and fault history carry
  over, so a batch can hit files staged by its predecessors. Cross-batch
  reuse is measured exactly (``cross_batch_hit_volume_mb``) and certified
  by audit invariant E8.
* ``cold`` — every dispatch window runs as an independent paper-style
  batch from a fresh state; bit-identical to running each window alone.

Per job the session records response time (completion − arrival),
queueing delay (dispatch − arrival) and slowdown (response over the job's
isolated service time on an idle cluster). Batch-local clocks restart at
zero each dispatch; the session maps completions to stream time as
``dispatch + completion``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, fields, replace
from typing import Any

from ..batch import Batch
from ..cluster.platform import Platform
from ..cluster.state import ClusterState, TransferStats
from ..core.driver import run_batch
from ..faults import FaultModel, FaultSpec, FaultStats, resolve_spec
from ..obs.timeseries import ProbeConfig, stitch_timeseries
from .arrivals import JobStream
from .queue import AdmissionPolicy, FIFOWindow, QueuedJob

__all__ = [
    "BatchRecord",
    "ClusterSession",
    "JobRecord",
    "StreamResult",
]

ONLINE_VERSION = 1


@dataclass(frozen=True)
class JobRecord:
    """Queueing metrics of one streamed job (all times in stream seconds)."""

    task_id: str
    arrival: float
    dispatch: float
    completion: float
    batch_index: int
    # Best-case service time on an idle cluster (transfer + read + compute
    # on the most favourable node) — the slowdown denominator.
    isolated_s: float

    @property
    def response_s(self) -> float:
        return self.completion - self.arrival

    @property
    def queueing_delay_s(self) -> float:
        return self.dispatch - self.arrival

    @property
    def service_s(self) -> float:
        return self.completion - self.dispatch

    @property
    def slowdown(self) -> float:
        """Response over isolated service time.

        Warm batches can dip *below* 1.0: a cached input skips the remote
        transfer that the isolated (cold, idle) bound pays for.
        """
        return self.response_s / self.isolated_s if self.isolated_s > 0 else 1.0


@dataclass(frozen=True)
class BatchRecord:
    """One dispatch window: what ran, when, and what it cost."""

    index: int
    dispatch: float
    task_ids: tuple[str, ...]
    makespan_s: float
    sub_batches: int
    scheduling_seconds: float
    queue_depth: int  # queued jobs at dispatch (selected + left behind)
    stats: TransferStats  # this window's delta, not the cumulative total

    @property
    def num_jobs(self) -> int:
        return len(self.task_ids)


def _stats_delta(before: TransferStats, after: TransferStats) -> TransferStats:
    values = {
        f.name: getattr(after, f.name) - getattr(before, f.name)
        for f in fields(TransferStats)
    }
    return TransferStats(**values)


@dataclass
class StreamResult:
    """Outcome of a streamed session: per-job, per-batch and aggregate."""

    mode: str  # "warm" | "cold"
    policy: str
    scheme: str
    jobs: list[JobRecord] = field(default_factory=list)
    batches: list[BatchRecord] = field(default_factory=list)
    stats: TransferStats = field(default_factory=TransferStats)
    fault_stats: FaultStats | None = None
    # Stitched simulated-time series across all batches (when probes on).
    timeseries: dict[str, Any] | None = None
    # The arrival block of the stream spec, carried for the manifest.
    arrival: dict[str, Any] | None = None

    # -- aggregates --------------------------------------------------------
    @property
    def num_jobs(self) -> int:
        return len(self.jobs)

    @property
    def total_span_s(self) -> float:
        """End of the last batch (stream makespan)."""
        return max(
            (b.dispatch + b.makespan_s for b in self.batches), default=0.0
        )

    @property
    def mean_response_s(self) -> float:
        return (
            sum(j.response_s for j in self.jobs) / len(self.jobs)
            if self.jobs
            else 0.0
        )

    @property
    def mean_queueing_delay_s(self) -> float:
        return (
            sum(j.queueing_delay_s for j in self.jobs) / len(self.jobs)
            if self.jobs
            else 0.0
        )

    @property
    def max_response_s(self) -> float:
        return max((j.response_s for j in self.jobs), default=0.0)

    @property
    def mean_slowdown(self) -> float:
        return (
            sum(j.slowdown for j in self.jobs) / len(self.jobs)
            if self.jobs
            else 0.0
        )

    @property
    def throughput_jobs_per_s(self) -> float:
        span = self.total_span_s
        return len(self.jobs) / span if span > 0 else 0.0

    @property
    def cross_batch_hits(self) -> int:
        return self.stats.cross_batch_hits

    @property
    def cross_batch_hit_volume_mb(self) -> float:
        return self.stats.cross_batch_hit_volume_mb

    def to_dict(self) -> dict[str, Any]:
        """The manifest ``online`` block (``run-manifest.schema.json``)."""
        return {
            "version": ONLINE_VERSION,
            "mode": self.mode,
            "policy": self.policy,
            "scheme": self.scheme,
            "arrival": self.arrival,
            "queueing": {
                "num_jobs": self.num_jobs,
                "num_batches": len(self.batches),
                "total_span_s": self.total_span_s,
                "mean_response_s": self.mean_response_s,
                "mean_queueing_delay_s": self.mean_queueing_delay_s,
                "max_response_s": self.max_response_s,
                "mean_slowdown": self.mean_slowdown,
                "throughput_jobs_per_s": self.throughput_jobs_per_s,
                "cross_batch_hits": self.cross_batch_hits,
                "cross_batch_hit_volume_mb": self.cross_batch_hit_volume_mb,
            },
            "batches": [
                {
                    "index": b.index,
                    "dispatch_s": b.dispatch,
                    "num_jobs": b.num_jobs,
                    "makespan_s": b.makespan_s,
                    "sub_batches": b.sub_batches,
                    "queue_depth": b.queue_depth,
                    "remote_volume_mb": b.stats.remote_volume_mb,
                    "replication_volume_mb": b.stats.replication_volume_mb,
                    "cache_hit_volume_mb": b.stats.cache_hit_volume_mb,
                    "cross_batch_hits": b.stats.cross_batch_hits,
                    "cross_batch_hit_volume_mb": b.stats.cross_batch_hit_volume_mb,
                    "evictions": b.stats.evictions,
                }
                for b in self.batches
            ],
            "jobs": [
                {
                    "task_id": j.task_id,
                    "arrival_s": j.arrival,
                    "dispatch_s": j.dispatch,
                    "completion_s": j.completion,
                    "response_s": j.response_s,
                    "queueing_delay_s": j.queueing_delay_s,
                    "slowdown": j.slowdown,
                    "batch": j.batch_index,
                }
                for j in self.jobs
            ],
        }

    def summary(self) -> str:
        return (
            f"{self.scheme}/{self.policy}/{self.mode}: {self.num_jobs} jobs "
            f"in {len(self.batches)} batch(es) over {self.total_span_s:.1f}s; "
            f"mean response {self.mean_response_s:.1f}s "
            f"(queueing {self.mean_queueing_delay_s:.1f}s, "
            f"slowdown {self.mean_slowdown:.2f}); "
            f"cross-batch hits {self.cross_batch_hits} "
            f"({self.cross_batch_hit_volume_mb:.0f} MB)"
        )


def isolated_service_time(platform: Platform, batch: Batch, task_id: str) -> float:
    """Best-case service time of one job alone on an idle, cold cluster.

    Remote transfer of every input from its home storage node, local read,
    then compute — on whichever node minimises the total. Ignores port
    contention (the job is alone), so it lower-bounds any cold schedule and
    is the natural slowdown denominator.
    """
    task = batch.task(task_id)
    transfer = sum(
        platform.remote_transfer_time(
            batch.file(f).storage_node, batch.file_size(f)
        )
        for f in task.files
    )
    size = batch.task_input_mb(task)
    best = math.inf
    for node in platform.compute_nodes:
        total = (
            transfer
            + platform.local_read_time(node.node_id, size)
            + platform.task_compute_time(node.node_id, task.compute_time)
        )
        best = min(best, total)
    return best


class ClusterSession:
    """Run a job stream through successive batches on one cluster.

    Parameters
    ----------
    platform, stream:
        The cluster and the arriving jobs (shared file catalog).
    scheme:
        Scheduler name passed to :func:`repro.core.run_batch`
        (``"bipartition"``, ``"minmin"``, ...).
    policy:
        Admission policy forming dispatch windows (default: FIFO drain).
    warm:
        Carry cache/state across batches (see module docstring).
    audit:
        Audit every batch (invariants E1–E8; E8 certifies the cross-batch
        hit accounting whenever carryover is active).
    faults:
        Fault spec applied to the *stream*: in warm mode one fault model
        spans all batches (crash/loss events fire once); in cold mode each
        window draws independently, matching its standalone run.
    timeseries:
        Per-batch simulated-time probes, stitched onto the stream clock
        with ``batch`` boundary markers (:func:`stitch_timeseries`).
    """

    def __init__(
        self,
        platform: Platform,
        stream: JobStream,
        scheme: str,
        *,
        policy: AdmissionPolicy | None = None,
        warm: bool = True,
        allow_replication: bool = True,
        candidate_limit: int | None = None,
        scheduler_kwargs: dict | None = None,
        audit: bool = False,
        faults: FaultSpec | dict | None = None,
        timeseries: bool | ProbeConfig | dict | None = None,
        max_batches: int | None = None,
    ) -> None:
        self.platform = platform
        self.stream = stream
        self.scheme = scheme
        self.policy: AdmissionPolicy = policy if policy is not None else FIFOWindow()
        self.warm = warm
        self.allow_replication = allow_replication
        self.candidate_limit = candidate_limit
        self.scheduler_kwargs = scheduler_kwargs
        self.audit = audit
        self.fault_spec = resolve_spec(faults)
        self.timeseries = timeseries
        self.max_batches = max_batches

    def run(self) -> StreamResult:
        """Drain the stream; returns the per-job/per-batch/aggregate result."""
        stream = self.stream
        result = StreamResult(
            mode="warm" if self.warm else "cold",
            policy=self.policy.name,
            scheme=self.scheme,
        )
        if not stream.arrivals:
            return result

        state: ClusterState | None = None
        fault_model: FaultModel | None = None
        if self.warm:
            state = ClusterState.initial(self.platform, stream.batch)
            if self.fault_spec is not None:
                fault_model = FaultModel(self.fault_spec)

        ts_blocks: list[tuple[float, dict[str, Any]]] = []
        queue: list[QueuedJob] = []
        idx = 0
        now = 0.0
        while idx < len(stream.arrivals) or queue:
            if not queue:
                # Idle cluster, empty queue: jump to the next arrival.
                now = max(now, stream.arrivals[idx].arrival)
            while idx < len(stream.arrivals) and stream.arrivals[idx].arrival <= now:
                a = stream.arrivals[idx]
                queue.append(QueuedJob(a.task_id, a.arrival))
                idx += 1

            batch_index = len(result.batches)
            if self.max_batches is not None and batch_index >= self.max_batches:
                raise RuntimeError(
                    f"exceeded max_batches={self.max_batches} with "
                    f"{len(queue) + len(stream.arrivals) - idx} job(s) left"
                )
            selected = self.policy.select(queue, stream.batch, now)
            if not selected:
                raise RuntimeError(
                    f"policy {self.policy.name} selected an empty window"
                )
            if queue[0].task_id not in selected:
                raise RuntimeError(
                    f"policy {self.policy.name} starved the oldest queued "
                    f"job {queue[0].task_id}"
                )
            arrivals_of = {q.task_id: q.arrival for q in queue}
            dispatch = now
            window = stream.batch.subset(selected)

            if self.warm:
                assert state is not None
                state.begin_carryover()
                before = replace(state.stats)
                batch_result = run_batch(
                    window,
                    self.platform,
                    self.scheme,
                    allow_replication=self.allow_replication,
                    candidate_limit=self.candidate_limit,
                    scheduler_kwargs=self.scheduler_kwargs,
                    audit=self.audit,
                    timeseries=self.timeseries,
                    state=state,
                    fault_model=fault_model,
                )
                delta = _stats_delta(before, batch_result.stats)
            else:
                batch_result = run_batch(
                    window,
                    self.platform,
                    self.scheme,
                    allow_replication=self.allow_replication,
                    candidate_limit=self.candidate_limit,
                    scheduler_kwargs=self.scheduler_kwargs,
                    audit=self.audit,
                    timeseries=self.timeseries,
                    faults=self.fault_spec,
                )
                delta = batch_result.stats
                result.stats = result.stats.merge(delta)
                if batch_result.fault_stats is not None:
                    if result.fault_stats is None:
                        result.fault_stats = FaultStats()
                    merged = result.fault_stats
                    for f in fields(FaultStats):
                        setattr(
                            merged,
                            f.name,
                            getattr(merged, f.name)
                            + getattr(batch_result.fault_stats, f.name),
                        )

            result.batches.append(
                BatchRecord(
                    index=batch_index,
                    dispatch=dispatch,
                    task_ids=tuple(selected),
                    makespan_s=batch_result.makespan,
                    sub_batches=batch_result.num_sub_batches,
                    scheduling_seconds=batch_result.scheduling_seconds,
                    queue_depth=len(queue),
                    stats=delta,
                )
            )
            if batch_result.timeseries is not None:
                ts_blocks.append((dispatch, batch_result.timeseries))

            # Map batch-local completions (clock restarts at 0 per window)
            # onto the stream clock.
            for sb in batch_result.sub_batches:
                for rec in sb.execution.records:
                    result.jobs.append(
                        JobRecord(
                            task_id=rec.task_id,
                            arrival=arrivals_of[rec.task_id],
                            dispatch=dispatch,
                            completion=dispatch + rec.completion,
                            batch_index=batch_index,
                            isolated_s=isolated_service_time(
                                self.platform, stream.batch, rec.task_id
                            ),
                        )
                    )

            done = set(selected)
            queue = [q for q in queue if q.task_id not in done]
            now = dispatch + batch_result.makespan

        if self.warm:
            assert state is not None
            result.stats = state.stats
            if fault_model is not None:
                result.fault_stats = fault_model.stats
        result.jobs.sort(key=lambda j: (j.arrival, j.task_id))
        if ts_blocks:
            result.timeseries = stitch_timeseries(ts_blocks)
        return result
