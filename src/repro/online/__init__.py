"""Online extension: streaming multi-batch scheduling (``repro.online``).

Feeds the paper's batch scheduler from a stream of arriving jobs
(:mod:`~repro.online.arrivals`), forms dispatch windows with admission
policies (:mod:`~repro.online.queue`), and runs them through one
:class:`~repro.online.session.ClusterSession` with warm-cache carryover
or a cold-start baseline. See ``docs/online.md``.
"""

from .arrivals import (
    JobArrival,
    JobStream,
    arrivals_from_spec,
    bursty_arrivals,
    poisson_arrivals,
    stream_from_batch,
    trace_arrivals,
)
from .queue import (
    AdmissionPolicy,
    FIFOWindow,
    LocalityWindow,
    QueuedJob,
    SizeCappedWindow,
    make_policy,
)
from .session import (
    BatchRecord,
    ClusterSession,
    JobRecord,
    StreamResult,
    isolated_service_time,
)

__all__ = [
    "AdmissionPolicy",
    "BatchRecord",
    "ClusterSession",
    "FIFOWindow",
    "JobArrival",
    "JobRecord",
    "JobStream",
    "LocalityWindow",
    "QueuedJob",
    "SizeCappedWindow",
    "StreamResult",
    "arrivals_from_spec",
    "bursty_arrivals",
    "isolated_service_time",
    "make_policy",
    "poisson_arrivals",
    "stream_from_batch",
    "trace_arrivals",
]
