"""Admission/batching policies: which queued jobs form the next batch.

The online session (:mod:`repro.online.session`) runs the cluster as a
serial batch server: while one batch executes, arriving jobs queue up, and
when the cluster goes idle a policy selects the next dispatch window. Three
policies are provided:

* :class:`FIFOWindow` — drain the whole queue in arrival order (the
  natural baseline: maximal batches, maximal intra-batch sharing, but a
  late arrival can wait behind an unrelated giant window);
* :class:`SizeCappedWindow` — the oldest ``max_jobs`` jobs (bounds batch
  makespan, hence queueing delay of later arrivals);
* :class:`LocalityWindow` — a size-capped window grown greedily around the
  oldest job by *file overlap*, scored with the existing hypergraph
  machinery: queued jobs are vertices, files are nets weighted by size
  (exactly the BiPartition model of Section 5.1), and each step admits the
  job whose addition minimises the cut weight between the window and the
  rest of the queue — i.e. maximises the shared bytes pulled inside the
  window.

Every policy must select the oldest queued job (no starvation) and is a
pure function of the queue contents — no RNG, no wall clock — so streams
replay deterministically.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass
from typing import Protocol

from ..batch import Batch
from ..hypergraph import Hypergraph
from ..hypergraph.metrics import cut_weight

__all__ = [
    "AdmissionPolicy",
    "FIFOWindow",
    "LocalityWindow",
    "QueuedJob",
    "SizeCappedWindow",
    "make_policy",
]


@dataclass(frozen=True)
class QueuedJob:
    """One job waiting for dispatch."""

    task_id: str
    arrival: float


class AdmissionPolicy(Protocol):
    """Selects the next dispatch window from the queue (arrival order)."""

    name: str

    def select(
        self, queued: Sequence[QueuedJob], batch: Batch, now: float
    ) -> list[str]:
        """Task ids of the next batch; non-empty, must include ``queued[0]``."""
        ...


class FIFOWindow:
    """Drain the whole queue in arrival order."""

    name = "fifo"

    def select(
        self, queued: Sequence[QueuedJob], batch: Batch, now: float
    ) -> list[str]:
        if not queued:
            raise ValueError("cannot select from an empty queue")
        return [q.task_id for q in queued]


class SizeCappedWindow:
    """The oldest ``max_jobs`` queued jobs, in arrival order."""

    name = "size"

    def __init__(self, max_jobs: int = 8) -> None:
        if max_jobs < 1:
            raise ValueError("max_jobs must be at least 1")
        self.max_jobs = max_jobs

    def select(
        self, queued: Sequence[QueuedJob], batch: Batch, now: float
    ) -> list[str]:
        if not queued:
            raise ValueError("cannot select from an empty queue")
        return [q.task_id for q in queued[: self.max_jobs]]


class LocalityWindow:
    """Grow a size-capped window around the oldest job by file overlap.

    Builds the queue's task/file hypergraph (vertices = queued jobs, nets =
    files weighted by size) and greedily moves one job at a time into the
    window, always the job minimising the resulting window-vs-rest
    :func:`~repro.hypergraph.metrics.cut_weight`; arrival order breaks
    ties, so disjoint jobs are admitted oldest-first. The oldest queued job
    seeds the window — fairness is a hard constraint, locality only shapes
    what rides along with it.
    """

    name = "locality"

    def __init__(self, max_jobs: int = 8) -> None:
        if max_jobs < 1:
            raise ValueError("max_jobs must be at least 1")
        self.max_jobs = max_jobs

    def select(
        self, queued: Sequence[QueuedJob], batch: Batch, now: float
    ) -> list[str]:
        if not queued:
            raise ValueError("cannot select from an empty queue")
        if len(queued) <= self.max_jobs:
            return [q.task_id for q in queued]

        index = {q.task_id: i for i, q in enumerate(queued)}
        nets: dict[str, list[int]] = {}
        for q in queued:
            for f in batch.task(q.task_id).files:
                nets.setdefault(f, []).append(index[q.task_id])
        net_ids = sorted(nets)
        h = Hypergraph(
            len(queued),
            [nets[f] for f in net_ids],
            net_weights=[batch.file_size(f) for f in net_ids],
        )

        parts = [1] * len(queued)  # 0 = window, 1 = rest of the queue
        parts[0] = 0  # the oldest job seeds the window
        chosen = [0]
        while len(chosen) < self.max_jobs:
            best_v = -1
            best_cut = float("inf")
            for v in range(len(queued)):
                if parts[v] == 0:
                    continue
                parts[v] = 0
                cut = cut_weight(h, parts)
                parts[v] = 1
                # Strict < keeps the earliest-arrival candidate on ties.
                if cut < best_cut:
                    best_v, best_cut = v, cut
            parts[best_v] = 0
            chosen.append(best_v)
        chosen.sort()  # dispatch in arrival order within the window
        return [queued[v].task_id for v in chosen]


def make_policy(name: str, max_jobs: int | None = None) -> AdmissionPolicy:
    """Build a policy by registry name (``fifo`` | ``size`` | ``locality``)."""
    if name == "fifo":
        return FIFOWindow()
    if name == "size":
        return SizeCappedWindow(max_jobs if max_jobs is not None else 8)
    if name == "locality":
        return LocalityWindow(max_jobs if max_jobs is not None else 8)
    raise ValueError(f"unknown admission policy {name!r}; use fifo|size|locality")
