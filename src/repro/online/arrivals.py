"""Deterministic seeded arrival processes for online job streams.

The paper schedules one batch at a time; the online extension
(``docs/online.md``) feeds the batch scheduler from a *stream* of arriving
jobs. This module generates the arrival times: a Poisson process (the
classic open-system workload model), a bursty on-off process (STAR-style
job trains separated by quiet periods), and trace-driven arrivals replayed
from a JSON job trace.

Every process is a pure function of its parameters and an explicit seed —
no wall clock, no global RNG — so a stream spec replays to byte-identical
arrival times on any machine. Times are simulated seconds from stream
start, non-decreasing, one per job.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass

import numpy as np

from ..batch import Batch

__all__ = [
    "JobArrival",
    "JobStream",
    "arrivals_from_spec",
    "bursty_arrivals",
    "poisson_arrivals",
    "stream_from_batch",
    "trace_arrivals",
]


@dataclass(frozen=True)
class JobArrival:
    """One job's submission: the task id and its arrival time (sim s)."""

    task_id: str
    arrival: float


@dataclass(frozen=True)
class JobStream:
    """A source batch plus the arrival time of each of its tasks.

    ``batch`` holds the jobs (tasks) and the shared file catalog;
    ``arrivals`` lists one :class:`JobArrival` per task, sorted by arrival
    time with submission order breaking ties. Dispatch windows are built by
    :meth:`Batch.subset`, so every streamed batch shares the catalog — the
    precondition for cross-batch cache reuse.
    """

    batch: Batch
    arrivals: tuple[JobArrival, ...]

    def __post_init__(self) -> None:
        known = {t.task_id for t in self.batch.tasks}
        seen = [a.task_id for a in self.arrivals]
        if len(set(seen)) != len(seen):
            raise ValueError("duplicate task ids in arrival sequence")
        unknown = [t for t in seen if t not in known]
        if unknown:
            raise ValueError(f"arrivals reference unknown tasks {unknown[:3]}")
        for prev, cur in zip(self.arrivals, self.arrivals[1:]):
            if cur.arrival < prev.arrival:
                raise ValueError("arrival times must be non-decreasing")

    @property
    def num_jobs(self) -> int:
        return len(self.arrivals)

    @property
    def span_s(self) -> float:
        """Time of the last arrival (0 for an empty stream)."""
        return self.arrivals[-1].arrival if self.arrivals else 0.0


def poisson_arrivals(num_jobs: int, rate: float, seed: int = 0) -> list[float]:
    """Poisson process: ``num_jobs`` arrivals at ``rate`` jobs per sim s."""
    if num_jobs < 0:
        raise ValueError("num_jobs must be non-negative")
    if rate <= 0.0:
        raise ValueError("rate must be positive")
    rng = np.random.default_rng(seed)
    gaps = rng.exponential(1.0 / rate, size=num_jobs)
    return [float(t) for t in np.cumsum(gaps)]


def bursty_arrivals(
    num_jobs: int,
    rate: float,
    on_s: float,
    off_s: float,
    seed: int = 0,
) -> list[float]:
    """On-off (bursty) process: Poisson at ``rate`` during on-windows only.

    The stream alternates ``on_s`` seconds of activity with ``off_s``
    seconds of silence. Arrivals are drawn as a Poisson process over
    accumulated *on* time and mapped onto the wall of the on-off schedule,
    so no arrival ever lands inside an off-window.
    """
    if on_s <= 0.0 or off_s < 0.0:
        raise ValueError("on_s must be positive and off_s non-negative")
    on_times = poisson_arrivals(num_jobs, rate, seed)
    period = on_s + off_s
    out = []
    for t_on in on_times:
        cycles = int(t_on // on_s)
        out.append(cycles * period + (t_on - cycles * on_s))
    return out


def trace_arrivals(times: Sequence[float]) -> list[float]:
    """Trace-driven arrivals: validated replay of explicit times."""
    out = [float(t) for t in times]
    for prev, cur in zip(out, out[1:]):
        if cur < prev:
            raise ValueError("trace arrival times must be non-decreasing")
    if out and out[0] < 0.0:
        raise ValueError("trace arrival times must be non-negative")
    return out


def arrivals_from_spec(spec: Mapping[str, object], num_jobs: int) -> list[float]:
    """Build arrival times from a stream-spec ``arrival`` block.

    ``{"kind": "poisson", "rate": R, "seed": S}`` |
    ``{"kind": "bursty", "rate": R, "on_s": A, "off_s": B, "seed": S}`` |
    ``{"kind": "trace", "times": [...]}`` (see ``docs/online.md``). Trace
    times are cycled/truncated to exactly ``num_jobs`` arrivals: a reduced
    trace can drive a larger stream deterministically.
    """
    kind = spec.get("kind", "poisson")
    if kind == "poisson":
        return poisson_arrivals(
            num_jobs, float(spec["rate"]), int(spec.get("seed", 0))  # type: ignore[arg-type]
        )
    if kind == "bursty":
        return bursty_arrivals(
            num_jobs,
            float(spec["rate"]),  # type: ignore[arg-type]
            float(spec.get("on_s", 60.0)),  # type: ignore[arg-type]
            float(spec.get("off_s", 60.0)),  # type: ignore[arg-type]
            int(spec.get("seed", 0)),  # type: ignore[arg-type]
        )
    if kind == "trace":
        times = trace_arrivals(spec["times"])  # type: ignore[arg-type]
        if not times and num_jobs:
            raise ValueError("trace has no arrival times")
        if len(times) < num_jobs:
            # Cycle the trace forward, shifted by its span per repetition.
            span = times[-1] if times[-1] > 0.0 else 1.0
            base = list(times)
            rep = 1
            while len(times) < num_jobs:
                times.extend(t + rep * span for t in base)
                rep += 1
        return times[:num_jobs]
    raise ValueError(f"unknown arrival kind {kind!r}; use poisson|bursty|trace")


def stream_from_batch(batch: Batch, times: Sequence[float]) -> JobStream:
    """Pair a generated batch with arrival times, task ``i`` at ``times[i]``.

    Tasks keep their generator (submission) order; times must already be
    non-decreasing, as every process in this module guarantees.
    """
    if len(times) != len(batch.tasks):
        raise ValueError(
            f"{len(times)} arrival times for {len(batch.tasks)} tasks"
        )
    arrivals = tuple(
        JobArrival(t.task_id, float(at))
        for t, at in zip(batch.tasks, times)
    )
    return JobStream(batch=batch, arrivals=arrivals)
