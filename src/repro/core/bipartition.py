"""BiPartition: bi-level hypergraph partitioning scheduler (Section 5).

Tasks are vertices, files are nets (net weight = file size). Two levels:

1. **Sub-batch selection** — BINW partitioning with bound ``D`` = aggregate
   compute-cluster disk space: every resulting sub-batch's file footprint
   fits on the cluster, and minimising connectivity-1 minimises the volume
   of files re-staged because they are shared across sub-batches.
2. **Task mapping** — K-way partitioning of each sub-batch over the compute
   nodes, with vertex weights set to the probabilistic execution-time
   estimate of Eqs. 25/26 (transfer + local read + compute), minimising
   connectivity-1 (files needed on several nodes) under load balance.

A post-pass (Section 5.3) repairs per-node disk violations: files staged to
an over-full node are removed in increasing sharing order and the tasks that
needed them are deferred to later sub-batches.

Scheduling and replication are *decoupled*: the mapping is static, but every
staging decision (remote vs replica, and from which node) is made
dynamically by the Section 6 runtime.
"""

from __future__ import annotations

import math

import numpy as np

from ..batch import Batch, Task
from ..cluster.platform import Platform
from ..cluster.state import ClusterState
from ..hypergraph import Hypergraph, binw_partition, kway_partition
from .base import Scheduler, register_scheduler
from .plan import SubBatchPlan

__all__ = ["BiPartitionScheduler", "estimated_exec_times"]


def estimated_exec_times(
    batch: Batch, tasks: list[Task], platform: Platform
) -> np.ndarray:
    """Probabilistic task execution-time estimates (Eqs. 25 and 26).

    ``Tr_j`` blends the expected remote-transfer and replica-access cost of
    one byte of file ``f_j`` using two probabilities under a uniform model:
    ``Prob_FNE = 1/s_j`` that this task is the first in its group to need
    the file (and so pays the remote transfer), and ``Prob_FE = s_j/(T K)``
    that the file is already on the task's node (no cost at all).
    """
    bw_s = platform.min_remote_bandwidth
    bw_c = platform.replication_bandwidth
    bw_mix = min(bw_s, bw_c)
    k = platform.num_compute
    t_count = max(1, len(tasks))

    sharers: dict[str, int] = {}
    for t in tasks:
        for f in t.files:
            sharers[f] = sharers.get(f, 0) + 1

    mean_speed = float(
        np.mean([n.speed for n in platform.compute_nodes])
    )
    mean_local = float(
        np.mean([n.local_disk_bw for n in platform.compute_nodes])
    )
    out = np.zeros(len(tasks))
    for idx, t in enumerate(tasks):
        total = 0.0
        for f in t.files:
            size = batch.file_size(f)
            s_j = sharers[f]
            p_fne = 1.0 / s_j
            p_fe = (s_j / t_count) * (1.0 / k)
            tr = p_fne / bw_s + (1.0 - p_fne) * (1.0 - p_fe) / bw_mix
            local = 1.0 / mean_local
            comp = platform.compute_cost_per_mb / mean_speed
            total += size * (tr + local + comp)
        out[idx] = total
    return out


@register_scheduler("bipartition")
class BiPartitionScheduler(Scheduler):
    """Bi-level hypergraph partitioning scheduler.

    Parameters
    ----------
    epsilon:
        Load-balance tolerance of the second-level K-way partitioning.
    binw_epsilon:
        Bisection balance tolerance used during BINW sub-batch selection.
    vertex_weight_mode:
        ``"estimated"`` uses the probabilistic Eq. 25/26 execution-time
        estimates as vertex weights (the paper's method); ``"compute"``
        uses the pure CPU time only (ablation of the I/O-aware weighting).
    subbatch_order:
        ``"chain"`` (default) orders sub-batches greedily so consecutive
        ones share the most file volume — files cached by one sub-batch
        are then most likely still cached (not yet evicted) when the next
        one needs them. ``"index"`` keeps the partitioner's arbitrary
        order (the paper does not specify one).
    """

    def __init__(
        self,
        seed: int = 0,
        epsilon: float = 0.10,
        binw_epsilon: float = 0.20,
        vertex_weight_mode: str = "estimated",
        subbatch_order: str = "chain",
    ) -> None:
        super().__init__(seed)
        if vertex_weight_mode not in ("estimated", "compute"):
            raise ValueError(
                "vertex_weight_mode must be 'estimated' or 'compute'"
            )
        if subbatch_order not in ("chain", "index"):
            raise ValueError("subbatch_order must be 'chain' or 'index'")
        self.epsilon = epsilon
        self.binw_epsilon = binw_epsilon
        self.vertex_weight_mode = vertex_weight_mode
        self.subbatch_order = subbatch_order
        self._queue: list[list[str]] | None = None
        self._queue_dead = 0

    def reset(self) -> None:
        super().reset()
        self._queue = None
        self._queue_dead = 0

    # -- level one: BINW sub-batch selection ---------------------------------------
    def _build_hypergraph(
        self, batch: Batch, tasks: list[Task], platform: Platform
    ) -> Hypergraph:
        fidx: dict[str, int] = {}
        nets: list[list[int]] = []
        weights: list[float] = []
        for v, t in enumerate(tasks):
            for f in t.files:
                j = fidx.get(f)
                if j is None:
                    j = fidx[f] = len(nets)
                    nets.append([])
                    weights.append(batch.file_size(f))
                nets[j].append(v)
        if self.vertex_weight_mode == "estimated":
            vweights = estimated_exec_times(batch, tasks, platform)
        else:
            vweights = np.array([max(t.compute_time, 1e-9) for t in tasks])
        return Hypergraph(
            len(tasks), nets, vertex_weights=vweights, net_weights=weights
        )

    def _select_subbatches(
        self,
        batch: Batch,
        pending: list[str],
        platform: Platform,
        state: ClusterState,
    ) -> list[list[str]]:
        tasks = [batch.task(t) for t in pending]
        if state.dead_nodes:
            # Fault injection: the BINW bound shrinks to the surviving
            # cluster's aggregate disk (crashed disks are gone).
            bound = float(
                sum(
                    platform.compute_nodes[n].disk_space_mb
                    for n in state.alive_nodes()
                )
            )
        else:
            bound = platform.aggregate_disk_space
        if math.isinf(bound) or batch.subset(pending).distinct_file_mb <= bound:
            return [list(pending)]
        h = self._build_hypergraph(batch, tasks, platform)
        res = binw_partition(h, bound, self.rng, epsilon=self.binw_epsilon)
        parts: dict[int, list[str]] = {}
        for v, p in enumerate(res.parts):
            parts.setdefault(int(p), []).append(tasks[v].task_id)
        ordered = [parts[p] for p in sorted(parts)]
        if self.subbatch_order == "chain":
            ordered = self._chain_order(batch, ordered)
        return ordered

    @staticmethod
    def _chain_order(batch: Batch, subbatches: list[list[str]]) -> list[list[str]]:
        """Greedy chain: each next sub-batch shares the most file volume
        with the previous one, so cached copies get reused before eviction."""
        if len(subbatches) <= 2:
            return subbatches
        file_sets = [
            {f for t in sb for f in batch.task(t).files} for sb in subbatches
        ]

        def shared_mb(a: set[str], b: set[str]) -> float:
            return sum(batch.file_size(f) for f in a & b)

        remaining = list(range(len(subbatches)))
        # Start from the largest-footprint sub-batch.
        current = max(
            remaining,
            key=lambda i: sum(batch.file_size(f) for f in file_sets[i]),
        )
        order = [current]
        remaining.remove(current)
        while remaining:
            nxt = max(
                remaining, key=lambda i: shared_mb(file_sets[current], file_sets[i])
            )
            order.append(nxt)
            remaining.remove(nxt)
            current = nxt
        return [subbatches[i] for i in order]

    # -- level two: K-way task mapping ------------------------------------------------
    def _map_subbatch(
        self,
        batch: Batch,
        task_ids: list[str],
        platform: Platform,
        state: ClusterState,
    ) -> tuple[dict[str, int], list[str]]:
        """Map a sub-batch onto the nodes; returns (mapping, deferred tasks)."""
        tasks = [batch.task(t) for t in task_ids]
        # K-way over surviving nodes only; identical to num_compute parts
        # when no node has crashed.
        nodes = state.alive_nodes()
        if not nodes:
            raise RuntimeError("no surviving compute nodes to schedule on")
        k = len(nodes)
        h = self._build_hypergraph(batch, tasks, platform)
        parts = kway_partition(h, k, self.rng, epsilon=self.epsilon)
        mapping = {t.task_id: nodes[int(parts[v])] for v, t in enumerate(tasks)}
        deferred = self._repair_disk(batch, tasks, mapping, platform)
        for t in deferred:
            del mapping[t]
        return mapping, deferred

    def _repair_disk(
        self,
        batch: Batch,
        tasks: list[Task],
        mapping: dict[str, int],
        platform: Platform,
    ) -> list[str]:
        """Section 5.3 heuristic: fix per-node disk-space violations.

        For an over-full node, files are removed from its staging list in
        increasing order of the number of sub-batch tasks sharing them
        (``s_j``), until the remaining files fit; tasks that lose a file are
        deferred to a later sub-batch.
        """
        sharers: dict[str, int] = {}
        for t in tasks:
            for f in t.files:
                sharers[f] = sharers.get(f, 0) + 1

        deferred: list[str] = []
        by_node: dict[int, list[Task]] = {}
        for t in tasks:
            by_node.setdefault(mapping[t.task_id], []).append(t)
        for node, node_tasks in by_node.items():
            cap = platform.compute_nodes[node].disk_space_mb
            if math.isinf(cap):
                continue
            needed = {f for t in node_tasks for f in t.files}
            total = sum(batch.file_size(f) for f in needed)
            if total <= cap:
                continue
            removed: set[str] = set()
            for f in sorted(needed, key=lambda f: (sharers[f], -batch.file_size(f))):
                if total <= cap:
                    break
                removed.add(f)
                total -= batch.file_size(f)
            for t in node_tasks:
                if any(f in removed for f in t.files):
                    deferred.append(t.task_id)
        return deferred

    # -- scheduler interface ------------------------------------------------------------
    def next_subbatch(
        self,
        batch: Batch,
        pending: list[str],
        platform: Platform,
        state: ClusterState,
    ) -> SubBatchPlan:
        pending_set = set(pending)
        if self._queue and len(state.dead_nodes) != self._queue_dead:
            # A node crashed since the queue was planned: the BINW bound it
            # was partitioned against no longer holds — re-partition.
            self._queue = None
        self._queue_dead = len(state.dead_nodes)
        if not self._queue:
            # First call, or the planned queue drained (tasks deferred by
            # disk repair remain pending): (re-)partition what is pending.
            self._queue = self._select_subbatches(batch, pending, platform, state)
        ids: list[str] = []
        while self._queue and not ids:
            ids = [t for t in self._queue.pop(0) if t in pending_set]
        if not ids:
            self._queue = self._select_subbatches(batch, pending, platform, state)
            ids = self._queue.pop(0)
        mapping, deferred = self._map_subbatch(batch, ids, platform, state)
        kept = [t for t in ids if t not in set(deferred)]
        if not kept:
            # Repair deferred every task (pathological): force one through —
            # the paper assumes any single task's files fit on a node.
            forced = ids[0]
            target = max(
                state.alive_nodes(),
                key=lambda i: platform.compute_nodes[i].disk_space_mb,
            )
            kept = [forced]
            mapping = {forced: target}
        return SubBatchPlan(task_ids=kept, mapping=mapping, staging=None)
