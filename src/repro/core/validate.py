"""Structural validation of sub-batch plans against the paper's constraints.

Schedulers are heuristics and solvers run with time limits, so the driver
cannot blindly trust their output. :func:`validate_plan` checks a
:class:`~repro.core.plan.SubBatchPlan` against the model of Sections 2 and
4 — every violation is reported with an explanation — and the test suite
uses it as an oracle over randomly generated scheduling problems.

Checked invariants:

V1. every selected task is mapped to a valid compute node;
V2. no task outside the sub-batch is mapped;
V3. per-node disk capacity covers the files the node must hold (Eq. 16/21),
    and every mapped task's files exist in the batch catalog (an unknown
    file cannot be counted, so it is a violation, not a silent skip);
V4. staging sources reference valid nodes and files;
V5. a replica source either already holds the file or receives it through
    a *realisable* chain of planned transfers (Eq. 1, transitively) — a
    chain is realisable only when it terminates in a current holder, a
    remote transfer or a push, so circular replication (A sources B while
    B sources A) is flagged;
V6. no (file, destination) pair has both a remote transfer and a
    replication (Eq. 5 — one planned source per destination);
V7. planned pushes target valid nodes and known files.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..batch import Batch
from ..cluster.platform import Platform
from ..cluster.runtime import PlannedSource
from ..cluster.state import ClusterState
from .plan import SubBatchPlan

__all__ = ["Violation", "ValidationReport", "validate_plan"]


@dataclass(frozen=True)
class Violation:
    """One broken invariant."""

    code: str
    message: str

    def __str__(self) -> str:
        return f"[{self.code}] {self.message}"


@dataclass
class ValidationReport:
    """All violations found in a plan (empty = valid)."""

    violations: list[Violation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def add(self, code: str, message: str) -> None:
        self.violations.append(Violation(code, message))

    def raise_if_invalid(self) -> None:
        if not self.ok:
            summary = "; ".join(str(v) for v in self.violations[:5])
            raise ValueError(
                f"invalid sub-batch plan ({len(self.violations)} violations): "
                f"{summary}"
            )

    def __str__(self) -> str:
        return "\n".join(str(v) for v in self.violations) or "OK"


def validate_plan(
    plan: SubBatchPlan,
    batch: Batch,
    platform: Platform,
    state: ClusterState | None = None,
) -> ValidationReport:
    """Check ``plan`` against the scheduling model; returns a report.

    ``state`` enables the placement-aware checks (V5 considers files
    already cached on compute nodes); without it those checks assume an
    empty compute cluster.
    """
    report = ValidationReport()
    c = platform.num_compute
    selected = set(plan.task_ids)

    # V1 / V2 — mapping domain and range.
    for t in plan.task_ids:
        node = plan.mapping.get(t)
        if node is None:
            report.add("V1", f"task {t} has no node assignment")
        elif not 0 <= node < c:
            report.add("V1", f"task {t} mapped to invalid node {node}")
        try:
            batch.task(t)
        except KeyError:
            report.add("V1", f"task {t} is not in the batch")
    for t in plan.mapping:
        if t not in selected:
            report.add("V2", f"mapping contains unselected task {t}")

    # V3 — per-node disk capacity.
    needed: dict[int, set[str]] = {}
    for t in plan.task_ids:
        node = plan.mapping.get(t)
        if node is None or not 0 <= node < c:
            continue
        try:
            files = batch.task(t).files
        except KeyError:
            continue
        for f in files:
            if f not in batch.files:
                report.add(
                    "V3",
                    f"task {t} references file {f} absent from the batch "
                    f"catalog, so node {node}'s disk demand is unknowable",
                )
        needed.setdefault(node, set()).update(files)
    if plan.staging is not None:
        for f, node in plan.staging.pushes:
            if 0 <= node < c:
                needed.setdefault(node, set()).add(f)
    for node, files in needed.items():
        cap = platform.compute_nodes[node].disk_space_mb
        if math.isinf(cap):
            continue
        total = sum(batch.file_size(f) for f in files if f in batch.files)
        if total > cap + 1e-6:
            report.add(
                "V3",
                f"node {node} must hold {total:.0f} MB but has "
                f"{cap:.0f} MB of disk",
            )

    if plan.staging is None:
        return report

    # V4 / V6 — staging source sanity.
    for (f, dest), src in plan.staging.sources.items():
        if f not in batch.files:
            report.add("V4", f"staging references unknown file {f}")
            continue
        if not 0 <= dest < c:
            report.add("V4", f"staging of {f} targets invalid node {dest}")
            continue
        if src.kind == "replica":
            if src.source_node is None or not 0 <= src.source_node < c:
                report.add(
                    "V4", f"replica of {f} to {dest} has invalid source"
                )
            elif src.source_node == dest:
                report.add(
                    "V4", f"replica of {f} to {dest} sources from itself"
                )

    # V5 — replica sources are satisfiable. A destination is *satisfied*
    # when it already holds the file, receives it from the storage cluster
    # (remote) or a push, or replicates from an already-satisfied node; the
    # fixpoint rejects circular chains (A sources B, B sources A) that a
    # one-step "is it some planned destination?" check would accept.
    sources_of: dict[str, dict[int, PlannedSource]] = {}
    for (f, dest), src in plan.staging.sources.items():
        if f in batch.files and 0 <= dest < c:
            sources_of.setdefault(f, {})[dest] = src
    push_targets: dict[str, set[int]] = {}
    for f, node in plan.staging.pushes:
        if 0 <= node < c:
            push_targets.setdefault(f, set()).add(node)
    for f, dests in sources_of.items():
        satisfied = {d for d, s in dests.items() if s.kind == "remote"}
        satisfied |= push_targets.get(f, set())
        if state is not None:
            satisfied |= {n for n in range(c) if state.has_file(n, f)}
        changed = True
        while changed:
            changed = False
            for d, s in dests.items():
                if (
                    d not in satisfied
                    and s.kind == "replica"
                    and s.source_node in satisfied
                ):
                    satisfied.add(d)
                    changed = True
        for d, s in dests.items():
            if (
                s.kind == "replica"
                and s.source_node is not None
                and 0 <= s.source_node < c
                and s.source_node != d
                and d not in satisfied
            ):
                report.add(
                    "V5",
                    f"replica of {f} to node {d} sources node "
                    f"{s.source_node}, which neither holds the file nor "
                    "receives it through a realisable chain (circular or "
                    "unsatisfiable replication)",
                )

    # V7 — pushes.
    for f, node in plan.staging.pushes:
        if f not in batch.files:
            report.add("V7", f"push references unknown file {f}")
        if not 0 <= node < c:
            report.add("V7", f"push of {f} targets invalid node {node}")

    return report
