"""The paper's primary contribution: batch schedulers coupling task
scheduling and file replication, plus the execution driver.

Schedulers (all registered by name for :func:`run_batch`):

* ``"ip"`` — 0-1 Integer Programming, coupled scheduling + replication
  (Section 4; best quality, heavy scheduling overhead).
* ``"bipartition"`` — bi-level hypergraph partitioning (Section 5; within
  5–10 % of IP at a tiny fraction of the cost).
* ``"minmin"`` — MinMin with implicit replication (baseline).
* ``"jdp"`` — batch-mode Job Data Present with Data Least Loaded
  replication and LRU eviction (baseline, Ranganathan & Foster).
"""

from ..batch import Batch, FileInfo, Task, overlap_fraction, pairwise_overlap
from .base import (
    Scheduler,
    available_schedulers,
    make_scheduler,
    register_scheduler,
)
from .bipartition import BiPartitionScheduler, estimated_exec_times
from .driver import run_batch
from .eviction import EvictionPolicy, LRUPolicy, PopularityPolicy, SizePolicy
from .ip_scheduler import IPScheduler
from .jdp import JobDataPresentScheduler
from .mct_family import MaxMinScheduler, SufferageScheduler
from .minmin import MinMinScheduler
from .plan import BatchResult, SubBatchPlan, SubBatchResult
from .validate import ValidationReport, Violation, validate_plan

__all__ = [
    "Batch",
    "Task",
    "FileInfo",
    "overlap_fraction",
    "pairwise_overlap",
    "Scheduler",
    "register_scheduler",
    "make_scheduler",
    "available_schedulers",
    "IPScheduler",
    "BiPartitionScheduler",
    "MinMinScheduler",
    "MaxMinScheduler",
    "SufferageScheduler",
    "JobDataPresentScheduler",
    "estimated_exec_times",
    "run_batch",
    "SubBatchPlan",
    "SubBatchResult",
    "BatchResult",
    "EvictionPolicy",
    "PopularityPolicy",
    "LRUPolicy",
    "SizePolicy",
    "validate_plan",
    "ValidationReport",
    "Violation",
]
