"""Three-stage batch execution driver.

Orchestrates the full pipeline for any scheduler: (1) the scheduler selects
and maps the next sub-batch against the current cluster state, (2) files are
evicted between sub-batches per the scheduler's policy so the incoming
sub-batch fits (Section 4.3), (3) the Section 6 runtime executes the
sub-batch on the Gantt charts. The loop repeats on the remaining pending
tasks until the batch drains; the clock carries across sub-batches so the
reported makespan is the end-to-end batch execution time.

Scheduling overhead (Fig. 6b's metric) is measured as the wall-clock time
spent inside scheduler calls, excluded from the simulated makespan exactly
as the paper reports the two quantities separately.
"""

from __future__ import annotations

import math
import time
from collections.abc import Iterable

from ..batch import Batch
from ..cluster.events import AuditTrail
from ..cluster.platform import Platform
from ..cluster.runtime import Runtime
from ..cluster.state import ClusterState
from ..faults import FaultModel, FaultSpec, resolve_spec
from ..obs.core import telemetry as tele
from ..obs.timeseries import ProbeConfig, TimeSeriesProbe, resolve_timeseries
from .base import Scheduler, make_scheduler
from .eviction import EvictionPolicy
from .plan import BatchResult, SubBatchPlan, SubBatchResult

__all__ = ["run_batch"]


def _pending_counts(batch: Batch, pending: Iterable[str]) -> dict[str, int]:
    counts: dict[str, int] = {}
    for t in pending:
        for f in batch.task(t).files:
            counts[f] = counts.get(f, 0) + 1
    return counts


def _pre_evict(
    plan: SubBatchPlan,
    batch: Batch,
    state: ClusterState,
    policy: EvictionPolicy,
    trail: AuditTrail | None = None,
    probe: TimeSeriesProbe | None = None,
) -> None:
    """Between-sub-batch eviction (Section 4.3).

    Frees enough space on every node for the files its incoming tasks need,
    never evicting a file the sub-batch itself will use on that node (or a
    planned push target). Victims are chosen by the scheduler's policy —
    increasing popularity for the proposed schemes, LRU for JDP.
    """
    protect: dict[int, set[str]] = {}
    for t in plan.task_ids:
        node = plan.mapping[t]
        protect.setdefault(node, set()).update(batch.task(t).files)
    if plan.staging is not None:
        for f, node in plan.staging.pushes:
            protect.setdefault(node, set()).add(f)
        for (f, node), _src in plan.staging.sources.items():
            protect.setdefault(node, set()).add(f)

    for node, needed in protect.items():
        cache = state.caches[node]
        if math.isinf(cache.capacity_mb):
            continue
        incoming = sum(
            state.size_of(f) for f in needed if not state.has_file(node, f)
        )
        present = sum(
            state.size_of(f) for f in needed if state.has_file(node, f)
        )
        if present + incoming > cache.capacity_mb + 1e-6:
            raise RuntimeError(
                f"sub-batch needs {present + incoming:.0f} MB on node {node} "
                f"but its disk holds only {cache.capacity_mb:.0f} MB — the "
                "scheduler produced an over-capacity sub-batch"
            )
        if incoming <= cache.free_mb:
            continue
        keep = needed

        def order(
            cands: Iterable[str], _node: int = node, _keep: set[str] = keep
        ) -> list[str]:
            victims = [f for f in cands if f not in _keep]
            return policy.order(state, _node, victims)

        def on_evict(fid: str, _node: int = node) -> None:
            if trail is not None:
                trail.record_eviction(_node, fid, state.size_of(fid))
            state.note_evicted(_node, fid)
            if probe is not None:
                probe.on_evict(_node, state.size_of(fid))

        cache.ensure_space(incoming, victim_order=order, on_evict=on_evict)


def run_batch(
    batch: Batch,
    platform: Platform,
    scheduler: Scheduler | str,
    *,
    allow_replication: bool = True,
    candidate_limit: int | None = None,
    scheduler_kwargs: dict | None = None,
    max_subbatches: int | None = None,
    eviction_policy: EvictionPolicy | None = None,
    ordering: str = "ect",
    overlap_io_compute: bool = False,
    audit: bool = False,
    telemetry: bool = False,
    timeseries: bool | ProbeConfig | dict | None = None,
    faults: FaultSpec | dict | None = None,
    reference: bool = False,
    state: ClusterState | None = None,
    fault_model: FaultModel | None = None,
) -> BatchResult:
    """Run a whole batch under one scheduler; returns the end-to-end result.

    Parameters
    ----------
    scheduler:
        A :class:`~repro.core.base.Scheduler` instance or a registered name
        (``"ip"``, ``"bipartition"``, ``"minmin"``, ``"jdp"``).
    allow_replication:
        When False, compute-to-compute transfers are disabled everywhere
        (the *No Replication* configuration of Fig. 5a).
    candidate_limit:
        Cap on per-commit ECT evaluations in the runtime (exact when None).
    max_subbatches:
        Safety valve for tests; raises if exceeded.
    eviction_policy:
        Override the scheduler's default eviction policy (ablations).
    ordering:
        Runtime task ordering: ``"ect"`` (Section 6's earliest-completion-
        time policy, default) or ``"fifo"`` (ablation baseline).
    overlap_io_compute:
        Relax the paper's no-staging-during-execution assumption by giving
        each node a dedicated CPU timeline (future-work ablation).
    audit:
        Record a commit-ordered audit trail during execution and verify
        the finished trace with :func:`repro.analysis.audit.audit_runtime`
        (invariants E1–E8 of ``docs/invariants.md``).  The report is
        attached as ``result.audit_report``; any violation raises
        :class:`~repro.analysis.audit.AuditError`.
    telemetry:
        Collect run telemetry (:mod:`repro.obs`): enables the process-wide
        registry for the duration of the run, replays the scheduler's
        decision log (when the scheme emits one) against the executed task
        records, and attaches ``result.metrics`` (derived resource metrics,
        Eqs. 9–13), ``result.decision_log``, ``result.telemetry`` (the
        counters/gauges/spans snapshot) and ``result.runtime`` (for trace
        export). Scalar metrics are also published as ``metrics/*`` gauges
        so parallel workers' per-cell snapshots carry them.
    timeseries:
        Attach simulated-time series probes (:mod:`repro.obs.timeseries`):
        samples per-node disk occupancy, eviction pressure, port busy
        seconds, ready-queue and in-flight-transfer depth, and cumulative
        remote/replicated/cache-hit bytes at every commit point, with fault
        events overlaid as markers. Accepts ``True`` (default budget), a
        :class:`~repro.obs.timeseries.ProbeConfig`, or its dict form; every
        null form (``None``/``False``/``{}``) keeps the allocation-free
        fast path, exactly like a null fault spec. The block is attached as
        ``result.timeseries`` and exported under the manifest's
        ``timeseries`` key. Independent of ``telemetry``.
    faults:
        Fault-injection spec (:class:`~repro.faults.FaultSpec`, its JSON
        dict form, or ``None``). Crashed nodes hand their unfinished tasks
        back to the pending pool and the scheduler is re-invoked on the
        surviving platform; transient transfer failures are retried with
        exponential backoff and source failover inside the runtime. A null
        spec is equivalent to ``None``: the simulation is bit-identical to
        a fault-free run. See ``docs/faults.md``.
    reference:
        Run the original from-scratch scheduling kernels and runtime scans
        instead of the incremental/cached ones. Decisions, makespans and
        logs are identical either way (differentially tested); the flag
        exists as the oracle for equivalence tests and ``repro bench``.
        See ``docs/performance.md``.
    state:
        A pre-existing :class:`~repro.cluster.state.ClusterState` to run
        against instead of the paper's cold start (all files on the storage
        cluster only). Online sessions (:mod:`repro.online`) pass the same
        state into successive calls so disk-cache contents, dead nodes and
        transfer statistics carry across batches; the batch's file catalog
        is registered into it. Must have been built for ``platform``.
    fault_model:
        A live :class:`~repro.faults.FaultModel` shared across successive
        batches (online sessions): recovery counters accumulate and each
        injected disk loss applies once per stream. Mutually exclusive
        with ``faults``.
    """
    if isinstance(scheduler, str):
        scheduler = make_scheduler(scheduler, **(scheduler_kwargs or {}))
    scheduler.reference = reference
    scheduler.reset()

    if fault_model is not None and faults is not None:
        raise ValueError("pass either faults or fault_model, not both")
    if state is not None and state.platform is not platform:
        raise ValueError(
            "the provided cluster state was built for a different platform"
        )

    was_enabled = tele.enabled
    if telemetry:
        tele.reset()
        tele.enable()
    try:
        return _run_batch_inner(
            batch,
            platform,
            scheduler,
            allow_replication=allow_replication,
            candidate_limit=candidate_limit,
            max_subbatches=max_subbatches,
            eviction_policy=eviction_policy,
            ordering=ordering,
            overlap_io_compute=overlap_io_compute,
            audit=audit,
            telemetry=telemetry,
            probe_config=resolve_timeseries(timeseries),
            fault_spec=resolve_spec(faults),
            reference=reference,
            state=state,
            fault_model=fault_model,
        )
    finally:
        if telemetry and not was_enabled:
            tele.disable()


def _run_batch_inner(
    batch: Batch,
    platform: Platform,
    scheduler: Scheduler,
    *,
    allow_replication: bool,
    candidate_limit: int | None,
    max_subbatches: int | None,
    eviction_policy: EvictionPolicy | None,
    ordering: str,
    overlap_io_compute: bool,
    audit: bool,
    telemetry: bool,
    probe_config: ProbeConfig | None,
    fault_spec: FaultSpec | None,
    reference: bool = False,
    state: ClusterState | None = None,
    fault_model: FaultModel | None = None,
) -> BatchResult:

    # The paper assumes every single task's files fit on a compute node
    # (Section 4.2); fail fast with a clear message when violated.
    if batch.tasks:
        footprint = batch.max_task_footprint_mb()
        largest_disk = max(n.disk_space_mb for n in platform.compute_nodes)
        if footprint > largest_disk:
            raise ValueError(
                f"largest task footprint {footprint:.0f} MB exceeds the "
                f"largest compute-node disk ({largest_disk:.0f} MB); the "
                "paper's model requires any single task's files to fit"
            )

    if state is None:
        state = ClusterState.initial(platform, batch)
    else:
        # Warm start (online sessions): keep resident copies, dead nodes
        # and cumulative statistics; only the catalog grows.
        state.register_files(batch.files)
    if fault_model is None and fault_spec is not None:
        fault_model = FaultModel(fault_spec)
    if fault_model is not None and fault_spec is None:
        fault_spec = fault_model.spec
    runtime = Runtime(
        platform,
        state,
        allow_replication=allow_replication,
        candidate_limit=candidate_limit,
        ordering=ordering,
        overlap_io_compute=overlap_io_compute,
        audit=audit,
        faults=fault_model,
        reference=reference,
    )
    probe: TimeSeriesProbe | None = None
    if probe_config is not None:
        probe = TimeSeriesProbe(
            probe_config,
            num_compute=platform.num_compute,
            state=state,
            fault_spec=fault_spec,
        )
        runtime.probe = probe
    policy = eviction_policy if eviction_policy is not None else scheduler.eviction_policy(batch)
    pending: list[str] = [t.task_id for t in batch.tasks]
    result = BatchResult(scheduler=scheduler.name, makespan=0.0, scheduling_seconds=0.0)

    with tele.span("driver"):
        while pending:
            if max_subbatches is not None and len(result.sub_batches) >= max_subbatches:
                raise RuntimeError(
                    f"exceeded max_subbatches={max_subbatches} with "
                    f"{len(pending)} tasks still pending"
                )
            policy.update_pending(_pending_counts(batch, pending))

            t0 = time.perf_counter()
            with tele.span("schedule"):
                plan = scheduler.next_subbatch(batch, pending, platform, state)
            sched_seconds = time.perf_counter() - t0
            if not plan.task_ids:
                raise RuntimeError(f"scheduler {scheduler.name} made no progress")

            # Between-sub-batch eviction only applies to sub-batching schemes;
            # whole-batch baselines rely on on-demand eviction at runtime.
            if scheduler.uses_subbatches:
                with tele.span("pre-evict"):
                    _pre_evict(
                        plan, batch, state, policy,
                        trail=runtime.trail, probe=probe,
                    )

            tasks = [batch.task(t) for t in plan.task_ids]
            dead_before = len(state.dead_nodes)
            if probe is not None:
                probe.on_subbatch(len(result.sub_batches), runtime.clock)
            with tele.span("execute"):
                execution = runtime.execute(
                    tasks,
                    plan.mapping,
                    plan.staging,
                    victim_order=lambda node, cands: policy.order(state, node, cands),
                )
            result.sub_batches.append(
                SubBatchResult(
                    plan=plan, execution=execution, scheduling_seconds=sched_seconds
                )
            )
            result.scheduling_seconds += sched_seconds
            tele.count("driver/sub_batches")
            tele.count("driver/tasks", len(plan.task_ids))
            failed = set(execution.failed_tasks)
            done = set(plan.task_ids) - failed
            if failed:
                # Dynamic rescheduling: tasks from a crashed node rejoin
                # the pending pool (keeping submission order) and the next
                # loop iteration re-invokes the scheduler against the
                # surviving platform.
                assert fault_model is not None
                fault_model.stats.tasks_rescheduled += len(failed)
                tele.count("faults/tasks_rescheduled", len(failed))
                if not done and len(state.dead_nodes) == dead_before:
                    raise RuntimeError(
                        f"scheduler {scheduler.name} made no progress: every "
                        f"task of the sub-batch failed without a new crash"
                    )
                if not state.alive_nodes():
                    raise RuntimeError(
                        f"all compute nodes have crashed with "
                        f"{len(pending)} task(s) pending"
                    )
            pending = [t for t in pending if t not in done]

    result.makespan = runtime.clock
    result.stats = state.stats
    if probe is not None:
        result.timeseries = probe.to_dict()
    if fault_model is not None:
        result.fault_stats = fault_model.stats
        if telemetry:
            for key, value in fault_model.stats.to_dict().items():
                tele.gauge(f"faults/{key}", float(value))
    if telemetry:
        from ..obs.metrics import compute_metrics

        records = [r for sb in result.sub_batches for r in sb.execution.records]
        decisions = scheduler.decision_log
        metrics = compute_metrics(runtime, records, decisions)
        for key, value in metrics.to_dict().items():
            if isinstance(value, (int, float)):
                tele.gauge(f"metrics/{key}", float(value))
        result.metrics = metrics
        result.decision_log = decisions
        result.telemetry = tele.snapshot()
        result.runtime = runtime
    if audit:
        # Imported lazily: repro.analysis is tooling layered on top of the
        # core scheduling/runtime packages, not a dependency of them.
        from ..analysis.audit import audit_runtime

        report = audit_runtime(
            runtime, [sb.execution for sb in result.sub_batches]
        )
        result.audit_report = report
        report.raise_if_violations()
    return result
