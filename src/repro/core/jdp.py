"""Job Data Present + Data Least Loaded baseline (Ranganathan & Foster).

The decoupled computation/data scheduling approach of [13], adapted to the
batch setting as described in Section 3 of the paper:

* **Job Data Present** (task placement): a task goes to the node where its
  expected data transfer time is smallest — i.e. the node already holding
  the largest (volume-weighted) share of its inputs; ties go to the least
  loaded node. Because all tasks arrive at once, a FIFO queue is
  meaningless; tasks are ordered by their *least expected completion time*
  over all nodes, as the paper's batch-mode variant prescribes.
* **Data Least Loaded** (decoupled replication): file popularity is tracked
  independently of placement; any file whose pending access count reaches a
  threshold is proactively replicated onto the least loaded node. These
  pushes are emitted in the staging plan and realised by the runtime before
  the tasks run.
* Eviction is LRU, as in the original work.
"""

from __future__ import annotations

import numpy as np

from ..batch import Batch, Task
from ..cluster.platform import Platform
from ..cluster.runtime import StagingPlan
from ..cluster.state import ClusterState
from .base import Scheduler, register_scheduler
from .eviction import EvictionPolicy, LRUPolicy
from .plan import SubBatchPlan

__all__ = ["JobDataPresentScheduler"]


@register_scheduler("jdp")
class JobDataPresentScheduler(Scheduler):
    """Batch-mode Job Data Present with Data Least Loaded replication.

    Parameters
    ----------
    popularity_threshold:
        Minimum number of pending accesses for a file to be replicated by
        Data Least Loaded. ``None`` derives ``max(2, T / (4 C))`` from the
        batch, which replicates only genuinely hot files.
    """

    uses_subbatches = False

    def __init__(self, seed: int = 0, popularity_threshold: int | None = None) -> None:
        super().__init__(seed)
        self.popularity_threshold = popularity_threshold

    def eviction_policy(self, batch: Batch) -> EvictionPolicy:
        return LRUPolicy()

    def next_subbatch(
        self,
        batch: Batch,
        pending: list[str],
        platform: Platform,
        state: ClusterState,
    ) -> SubBatchPlan:
        tasks = [batch.task(t) for t in pending]
        # Only surviving nodes are placement targets (fault injection);
        # without faults this is every compute node, unchanged.
        nodes = state.alive_nodes()
        if not nodes:
            raise RuntimeError("no surviving compute nodes to schedule on")
        c = len(nodes)

        # --- Data Least Loaded: pick replication pushes up front -------------
        counts: dict[str, int] = {}
        for t in tasks:
            for f in t.files:
                counts[f] = counts.get(f, 0) + 1
        threshold = self.popularity_threshold
        if threshold is None:
            threshold = max(2, round(len(tasks) / (4 * c)))
        load = np.zeros(c)  # projected seconds of work per node
        plan = StagingPlan()
        hot = sorted(
            (f for f, n in counts.items() if n >= threshold),
            key=lambda f: -counts[f],
        )
        for f in hot:
            holders = state.holders(f)
            pos = int(np.argmin(load))
            target = nodes[pos]
            if target in holders:
                continue
            plan.pushes.append((f, target))
            load[pos] += batch.file_size(f) / platform.min_remote_bandwidth

        # Projected placement including the pushes.
        placed: dict[str, set[int]] = {f: set(state.holders(f)) for f in counts}
        for f, node in plan.pushes:
            placed[f].add(node)

        # --- Job Data Present: assign tasks in least-ECT order ----------------
        def transfer_estimate(task: Task, node: int) -> float:
            est = 0.0
            for f in task.files:
                if node in placed[f]:
                    continue
                size = batch.file_size(f)
                if placed[f]:
                    est += size / platform.replication_bandwidth
                else:
                    est += size / platform.remote_bandwidth(
                        batch.file(f).storage_node
                    )
            return est

        def exec_estimate(task: Task, node: int) -> float:
            read = sum(
                platform.local_read_time(node, batch.file_size(f))
                for f in task.files
            )
            return (
                transfer_estimate(task, node)
                + read
                + platform.task_compute_time(node, task.compute_time)
            )

        # Order tasks by their best-case completion time across nodes.
        order = sorted(
            tasks,
            key=lambda t: min(exec_estimate(t, i) for i in nodes),
        )
        mapping: dict[str, int] = {}
        for t in order:
            # Eligible = nodes minimising expected data transfer time; pick
            # the least loaded among them.
            costs = [transfer_estimate(t, i) for i in nodes]
            best = min(costs)
            eligible = [p for p in range(c) if costs[p] <= best + 1e-9]
            pos = min(eligible, key=lambda p: load[p])
            node = nodes[pos]
            mapping[t.task_id] = node
            load[pos] += exec_estimate(t, node)
            for f in t.files:
                placed[f].add(node)

        return SubBatchPlan(task_ids=list(pending), mapping=mapping, staging=plan)
