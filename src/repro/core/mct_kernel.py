"""Shared MCT-family scheduling kernels: reference and incremental.

The MinMin / MaxMin / Sufferage heuristics (Sections 3 and related work
[Casanova et al.]) all iterate the same inner loop: build the minimum-
completion-time matrix ``mct[t, i] = stage[t, i] + ready[i] + fixed[t, i]``
over the pending tasks and surviving nodes, commit one (task, node) pair
per round, apply implicit replication, and refresh the staging estimates of
tasks sharing files with the committed one. The paper's Fig. 6(b) charges
this loop as O(T² · C) scheduling overhead.

This module holds two decision-identical implementations of that loop:

``reference_mct_map``
    The original per-round full-matrix scan, kept verbatim as the ground
    truth for the differential-equivalence harness
    (``tests/core/test_differential_kernels.py``) and the benchmark
    baseline (``repro bench``). Selected with
    ``run_batch(..., reference=True)`` / ``scheduler.reference = True``.

``incremental_mct_map``
    Never rebuilds the matrix after round one. A persistent value buffer
    ``vals`` is kept equal — element for element — to what the reference
    would have built this round, by rewriting only the entries a commit
    can change: the committed node's column (its ``ready`` term moved),
    the rows sharing a file with the committed task (their ``stage`` row
    moved; refreshed in one batched NumPy operation), and the committed
    row itself (masked to ``inf``). Selection then applies the scheme's
    own vectorised ``_pick`` to the buffer, so MinMin, MaxMin and
    Sufferage flow through one kernel unchanged.

    Why value maintenance instead of a lazy per-row best heap: on the
    paper's homogeneous platforms huge groups of rows tie on the same
    best column (identical node speeds and disk bandwidths), so the
    committed column invalidates O(T) cached row-minima *every round* and
    per-row laziness degenerates to the full rescan plus heap overhead —
    measured 10x slower than the reference. Rewriting one column is O(T),
    allocation-free, and exact.

Bit-identity is engineered, not hoped for: every buffer write uses the
reference's exact expression shape ``(stage + ready) + fixed`` so IEEE-754
rounding matches; the dirty-row ``stage`` refresh is batched as one
reduction per distinct per-task file count so NumPy's pairwise-summation
tree matches the reference's per-row ``sum(axis=1)``; and selection runs
the same ``_pick`` on an identical matrix. Mappings, DecisionLogs
(including ``evaluated`` and ``ties`` counts) and therefore downstream
makespans are identical on both paths — see ``docs/performance.md`` for
the argument and the differential tests for the proof-by-execution.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

import numpy as np

from ..analysis.dims import Count, Seconds
from ..batch import Batch, Task
from ..cluster.platform import Platform
from ..cluster.state import ClusterState
from ..obs.core import telemetry

if TYPE_CHECKING:  # pragma: no cover
    from ..obs.decisions import DecisionLog

__all__ = [
    "MCTSetup",
    "KernelStats",
    "build_mct_setup",
    "stage_row",
    "refresh_stage_rows",
    "reference_mct_map",
    "incremental_mct_map",
]

#: Candidates within this absolute MCT distance of the winner count as ties.
_TIE_TOL: Seconds = 1e-9

#: Dirty-row sets at or below this size are refreshed row by row with the
#: reference's own single-row expressions; larger sets go through the
#: batched per-file-count group refresh. Both produce bit-identical floats
#: (identical length-L summation lanes) — the threshold is purely a
#: constant-factor trade. A sweep on the Fig. 6b headline cell (n=1000,
#: c=32) measured 1 fastest (26.6 ms vs 29.2 ms at 8): the group path's
#: sorting/bucketing setup only amortises once at least two rows share it,
#: so batch everything beyond the singleton case.
_ROWWISE_MAX = 1

#: Shared empty dirty-row set (read-only; only ever measured/iterated).
_NO_ROWS = np.zeros(0, dtype=np.intp)


@dataclass
class MCTSetup:
    """Precomputed inputs of one MCT mapping call (both kernels share it).

    All arrays follow the conventions of :mod:`repro.core.minmin`: sizes in
    MB, bandwidth-derived times in simulated seconds. ``on_node`` and
    ``any_copy`` are mutated by the kernels as implicit replication
    proceeds; a setup therefore serves exactly one mapping call.
    """

    tasks: list[Task]
    nodes: list[int]
    n: int
    c: int
    task_files: list[np.ndarray]
    #: Same content as ``task_files`` but as plain Python int lists
    #: (shared per distinct tuple) — cheaper for the kernel's per-round
    #: set membership tests than ndarray round-trips.
    task_file_lists: list[list[int]]
    rep_t: np.ndarray
    remote_t: np.ndarray
    on_node: np.ndarray
    any_copy: np.ndarray
    fixed: np.ndarray
    #: file index -> task rows reading it.
    readers: list[list[int]]
    #: Per-task file count, and rows pre-grouped by it so the batched
    #: staging refresh gathers a rectangular (m, L) file-index block
    #: without Python list building.
    file_count: np.ndarray
    pos_in_len: np.ndarray
    files_by_len: dict[int, np.ndarray]
    #: Per-task index of its distinct file tuple (tasks of one patient
    #: share a tuple), and the number of distinct tuples — lets the
    #: incremental kernel memoise per-tuple state by integer index
    #: instead of hashing the tuple every round.
    tuple_id: list[int]
    n_tuples: int


@dataclass
class KernelStats:
    """Real work performed by one incremental mapping call.

    ``logical_evaluations`` is what the reference full-rescan loop charges
    (the ``scheduler/evaluations`` telemetry counter and the Decision
    ``evaluated`` field keep reporting this logical count on both paths so
    DecisionLogs and the golden run manifest stay byte-identical);
    ``pair_evaluations`` is the number of (task, node) values the
    incremental kernel actually computed. The gap is the saved work,
    surfaced per cell by ``repro bench``.
    """

    tasks: Count = 0
    nodes: Count = 0
    rounds: Count = 0
    stage_rows_refreshed: Count = 0
    value_rows_refreshed: Count = 0
    col_refreshes: Count = 0
    pair_evaluations: Count = 0
    logical_evaluations: Count = 0
    # Co-reader rows touched but *not* fully rewritten (column-only
    # updates): the row-skip half of the incremental win.
    value_rows_skipped: Count = 0
    # Live-row compactions of the value/staging buffers (the
    # remaining*2 <= cap shrink).
    compactions: Count = 0
    # Commits whose tuple-flip scan was skipped because the tuple's first
    # commit had already placed every one of its files.
    flip_shortcut_hits: Count = 0

    @property
    def evaluations_saved(self) -> Count:
        return max(self.logical_evaluations - self.pair_evaluations, 0)

    def to_dict(self) -> dict[str, Any]:
        return {
            "tasks": self.tasks,
            "nodes": self.nodes,
            "rounds": self.rounds,
            "stage_rows_refreshed": self.stage_rows_refreshed,
            "value_rows_refreshed": self.value_rows_refreshed,
            "col_refreshes": self.col_refreshes,
            "pair_evaluations": self.pair_evaluations,
            "logical_evaluations": self.logical_evaluations,
            "evaluations_saved": self.evaluations_saved,
            "value_rows_skipped": self.value_rows_skipped,
            "compactions": self.compactions,
            "flip_shortcut_hits": self.flip_shortcut_hits,
        }


def build_mct_setup(
    batch: Batch,
    pending: list[str],
    platform: Platform,
    state: ClusterState,
) -> MCTSetup:
    """Build the shared MCT inputs for one mapping call.

    ``remote_t`` is vectorised through a per-storage-node bandwidth array
    (one ``remote_bandwidth`` call per storage node instead of one per
    file); each element is the same two-float division the per-file loop
    performed, so the values are bit-identical.
    """
    tasks = [batch.task(t) for t in pending]
    # Matrix columns cover only surviving nodes (fault injection may have
    # crashed some); without faults this is every compute node and the
    # arithmetic below is unchanged.
    nodes = state.alive_nodes()
    if not nodes:
        raise RuntimeError("no surviving compute nodes to schedule on")
    n, c = len(tasks), len(nodes)
    # Tasks sharing a patient share the exact same file tuple (the common
    # case under overlap); walking distinct tuples once replaces most of
    # the per-task set/dict traffic.
    files_map = batch.files
    distinct_tuples = {t.files for t in tasks}
    fs_union: set[str] = set()
    for tup in distinct_tuples:
        fs_union.update(tup)
    file_ids = sorted(fs_union)
    fidx = {f: i for i, f in enumerate(file_ids)}
    finfo = [files_map[f] for f in file_ids]
    sizes = np.array([fi.size_mb for fi in finfo])
    storage_bw = np.array(
        [platform.remote_bandwidth(s) for s in range(platform.num_storage)]
    )
    storage_of = np.array([fi.storage_node for fi in finfo], dtype=np.intp)
    remote_t = (
        sizes / storage_bw[storage_of] if file_ids else np.zeros(0)
    )
    rep_t = sizes / platform.replication_bandwidth

    # on_node[f, i]: file (planned to be) on the i-th surviving node.
    on_node = np.zeros((len(file_ids), c), dtype=bool)
    for i, node in enumerate(nodes):
        for f in state.files_on(node):
            if f in fidx:
                on_node[fidx[f], i] = True
    any_copy = on_node.any(axis=1)

    # Per-tuple memoisation: index array, index list and input volume are
    # computed once per distinct tuple; cache hits reuse the identical
    # Python float / index array, so values are unchanged.  The inverted
    # readers index (file -> task rows) rides along on the same pass.
    cache: dict[tuple[str, ...], tuple[np.ndarray, list[int], float, int]] = {}
    task_files: list[np.ndarray] = []
    task_file_lists: list[list[int]] = []
    total_mb_list: list[float] = []
    tuple_id: list[int] = []
    readers: list[list[int]] = [[] for _ in range(len(file_ids))]
    for k, t in enumerate(tasks):
        entry = cache.get(t.files)
        if entry is None:
            fs_list = [fidx[f] for f in t.files]
            # Same left-to-right sum as ``Batch.task_input_mb``.
            entry = (
                np.array(fs_list, dtype=np.intp),
                fs_list,
                sum(files_map[f].size_mb for f in t.files),
                len(cache),
            )
            cache[t.files] = entry
        fs_arr, fs_list, mb, tid = entry
        task_files.append(fs_arr)
        task_file_lists.append(fs_list)
        total_mb_list.append(mb)
        tuple_id.append(tid)
        for f in fs_list:
            readers[f].append(k)
    # Execution part per (task, node): local read at the node's disk
    # bandwidth plus CPU time at the node's speed.
    total_mb = np.array(total_mb_list)
    compute = np.array([t.compute_time for t in tasks])
    local_bw = np.array(
        [platform.compute_nodes[node].local_disk_bw for node in nodes]
    )
    speeds = np.array([platform.compute_nodes[node].speed for node in nodes])
    fixed = total_mb[:, None] / local_bw[None, :] + compute[:, None] / speeds[None, :]

    # Group task rows by file count for the rectangular batched refresh.
    # Blocks are stacked once per *distinct* tuple and expanded to rows by
    # a C-level gather instead of stacking one small array per task.
    tid_np = np.array(tuple_id, dtype=np.intp)
    tuple_arrs: list[np.ndarray] = [np.zeros(0, dtype=np.intp)] * len(cache)
    tuple_len = np.zeros(len(cache), dtype=np.intp)
    for fs_arr_u, _fl, _mb, tid_u in cache.values():
        tuple_arrs[tid_u] = fs_arr_u
        tuple_len[tid_u] = len(fs_arr_u)
    file_count = tuple_len[tid_np]
    pos_in_len = np.zeros(n, dtype=np.intp)
    tpos = np.zeros(len(cache), dtype=np.intp)
    files_by_len: dict[int, np.ndarray] = {}
    for length in np.unique(file_count).tolist():
        tids_l = np.flatnonzero(tuple_len == length)
        tpos[tids_l] = np.arange(len(tids_l))
        block = np.array([tuple_arrs[t] for t in tids_l.tolist()], dtype=np.intp)
        rows_l = np.flatnonzero(file_count == length)
        pos_in_len[rows_l] = np.arange(len(rows_l))
        files_by_len[length] = block[tpos[tid_np[rows_l]]]

    return MCTSetup(
        tasks=tasks,
        nodes=nodes,
        n=n,
        c=c,
        task_files=task_files,
        task_file_lists=task_file_lists,
        rep_t=rep_t,
        remote_t=remote_t,
        on_node=on_node,
        any_copy=any_copy,
        fixed=fixed,
        readers=readers,
        file_count=file_count,
        pos_in_len=pos_in_len,
        files_by_len=files_by_len,
        tuple_id=tuple_id,
        n_tuples=len(cache),
    )


def stage_row(setup: MCTSetup, k: int) -> np.ndarray:
    """Estimated staging time of task ``k`` on every node (reference form)."""
    fs = setup.task_files[k]
    # Per-file cost on node i: 0 if present; else replica time if any copy
    # exists; else remote time.
    best_absent = np.where(setup.any_copy[fs], setup.rep_t[fs], setup.remote_t[fs])
    per_file = np.where(setup.on_node[fs, :].T, 0.0, best_absent)  # (c, |fs|)
    return per_file.sum(axis=1)


def refresh_stage_rows(
    stage: np.ndarray, setup: MCTSetup, rows: Iterable[int] | np.ndarray
) -> None:
    """Recompute ``stage[r]`` for every row in ``rows``, batched.

    Rows are grouped by per-task file count (via the precomputed
    ``files_by_len`` blocks) so each group reduces an ``(m, c, L)`` block
    over its last axis — the same contiguous length-L lanes NumPy's
    pairwise summation reduces in the per-row reference
    (``per_file.sum(axis=1)`` on a ``(c, L)`` block), keeping every
    resulting float bit-identical to :func:`stage_row`.
    """
    rows_arr = np.asarray(
        rows if isinstance(rows, np.ndarray) else list(rows), dtype=np.intp
    )
    lens = setup.file_count[rows_arr]
    for length in np.unique(lens).tolist():
        rs = rows_arr[lens == length]
        fs = setup.files_by_len[length][setup.pos_in_len[rs]]  # (m, L)
        best_absent = np.where(
            setup.any_copy[fs], setup.rep_t[fs], setup.remote_t[fs]
        )  # (m, L)
        present = setup.on_node[fs].transpose(0, 2, 1)  # (m, c, L)
        per_file = np.where(present, 0.0, best_absent[:, None, :])
        stage[rs] = per_file.sum(axis=2)


def reference_mct_map(
    setup: MCTSetup,
    pick: Callable[[np.ndarray], tuple[int, int]],
    pick_rule: str,
    log: DecisionLog | None,
) -> dict[str, int]:
    """The original O(T²·C) full-rescan loop (ground truth, unchanged)."""
    n, c = setup.n, setup.c
    tasks, nodes = setup.tasks, setup.nodes
    task_files, readers = setup.task_files, setup.readers
    on_node, any_copy, fixed = setup.on_node, setup.any_copy, setup.fixed

    stage = (
        np.vstack([stage_row(setup, k) for k in range(n)])
        if n
        else np.zeros((0, c))
    )
    ready = np.zeros(c)
    unscheduled = np.ones(n, dtype=bool)
    mapping: dict[str, int] = {}

    for _ in range(n):
        mct = stage + ready + fixed  # (n, c)
        mct[~unscheduled, :] = np.inf
        k, i = pick(mct)
        k, i = int(k), int(i)
        mapping[tasks[k].task_id] = nodes[i]
        if log is not None:
            finite = np.isfinite(mct)
            evaluated = int(finite.sum())
            ties = int((np.abs(mct[finite] - mct[k, i]) <= _TIE_TOL).sum()) - 1
            log.record(
                tasks[k].task_id,
                nodes[i],
                reason=pick_rule,
                estimated_completion=float(mct[k, i]),
                evaluated=evaluated,
                ties=max(ties, 0),
            )
            telemetry.count("scheduler/evaluations", evaluated)
            telemetry.count("scheduler/decisions")
        ready[i] = mct[k, i]
        unscheduled[k] = False

        # Implicit replication: task k's files are now (planned) on i.
        fs = task_files[k]
        on_node[fs, i] = True
        any_copy[fs] = True
        # Refresh the staging estimate of every pending task that shares
        # a file with the newly placed set.
        dirty: set[int] = set()
        for f in fs.tolist():
            dirty.update(readers[f])
        for t in dirty:
            if unscheduled[t]:
                stage[t] = stage_row(setup, t)
    return mapping


def incremental_mct_map(
    setup: MCTSetup,
    pick: Callable[[np.ndarray], tuple[int, int]],
    pick_rule: str,
    log: DecisionLog | None,
) -> tuple[dict[str, int], KernelStats]:
    """Incrementally-maintained MCT loop: rewrite only what a commit moved.

    ``vals`` is kept equal, element for element, to the matrix the
    reference loop would rebuild this round. A commit of task ``k`` to
    node ``i`` can change exactly three things:

    * column ``i`` — its ``ready`` term moved; rewritten with the
      reference's expression shape ``(stage[:, i] + ready[i]) + fixed[:, i]``
      in place (two allocation-free column ops);
    * rows sharing a file with ``k`` — their ``stage`` row moved under
      implicit replication; staging is refreshed batched
      (:func:`refresh_stage_rows`) and those value rows rewritten as
      ``(stage[rows] + ready) + fixed[rows]``;
    * row ``k`` itself — poisoned: both its value row and its transposed
      staging column are set to ``inf``, so every later column rewrite
      reproduces the mask for free (``(inf + ready) + fixed == inf``
      exactly under IEEE-754) with no separate re-masking pass.

    Every other entry is untouched: its last write used the same formula
    on inputs that have not changed since, so the buffer is bit-identical
    to a fresh rebuild by induction. Selection simply applies the scheme's
    own ``_pick`` to the buffer — MinMin's flat ``argmin``, MaxMin's
    max-of-row-mins, Sufferage's partition — so all three schemes flow
    through this kernel unchanged and tie-breaking is literally the
    reference's.

    Two further constant-factor devices, both decision-neutral:

    * *live-row compaction* — once committed (``inf``) rows outnumber live
      ones the matrices are compacted to the live rows, preserving their
      relative order. All three ``_pick`` rules are order-preserving
      filters over finite rows, so first-occurrence tie-breaking — and the
      DecisionLog's ``evaluated``/``ties`` counts, which never included
      committed rows — are unchanged; selection scans then shrink with the
      frontier instead of staying O(T).
    * *flip-path shortcuts* — a tuple's first commit places every one of
      its files, so later commits of the same tuple can never flip a file
      to replica-copy mode; a per-tuple flag skips the scan. When a commit
      flips *all* of its files, the flip-reader set is exactly the
      co-reader set and the partition is skipped.

    Per round this costs O(T + D·C) maintenance plus the scheme's O(T·C)
    selection scan, versus the reference's full O(T·C) matrix rebuild
    (three temporaries) plus masking plus the same selection — the rebuild
    constant dominates in practice. A lazy per-row best heap was tried
    first and rejected: on the paper's homogeneous platforms O(T) rows tie
    on the committed column every round, so per-row invalidation
    degenerates to a full rescan with heap overhead on top (measured 10x
    slower than the reference).
    """
    n, c = setup.n, setup.c
    tasks, nodes = setup.tasks, setup.nodes
    task_files, readers = setup.task_files, setup.readers
    on_node, any_copy, fixed = setup.on_node, setup.any_copy, setup.fixed

    stats = KernelStats(tasks=n, nodes=c)
    stats.logical_evaluations = c * n * (n + 1) // 2
    mapping: dict[str, int] = {}
    if n == 0:
        return mapping, stats

    stage = np.empty((n, c))
    refresh_stage_rows(stage, setup, np.arange(n))
    stats.stage_rows_refreshed += n

    ready = np.zeros(c)
    # (stage + ready) + fixed in place: matches the reference's round-1
    # matrix (same rounding order) without the two throwaway temporaries.
    vals = np.empty((n, c))
    np.add(stage, ready, out=vals)
    np.add(vals, fixed, out=vals)
    unscheduled = np.ones(n, dtype=bool)
    # The loop reads staging by *column* (the committed node's) and the
    # ``fixed`` term likewise, so both live transposed and C-contiguous;
    # the per-round column rewrite then runs on contiguous memory into a
    # reused buffer instead of strided views.
    stage_t = np.ascontiguousarray(stage.T)  # (c, n)
    fixed_t = np.ascontiguousarray(fixed.T)  # (c, n)
    colbuf = np.empty(n)
    # Committed rows stay in the matrix as inf until the live count drops
    # to half the matrix height, then the live rows are compacted — a
    # *relative-order-preserving* gather, so every scheme's first-
    # occurrence tie-breaking over the finite rows is untouched (the
    # reference's committed rows are inf / filtered out and can never
    # win). ``orig_of`` maps matrix rows back to batch rows; ``newpos``
    # maps batch rows of still-live tasks into the matrix. The n-scaled
    # per-round costs (selection scan, column rewrite) then track the live
    # count geometrically instead of paying full height every round.
    cap = n
    orig_of = np.arange(n, dtype=np.intp)
    newpos = np.arange(n, dtype=np.intp)

    # Hot-loop working state. ``ba_cur[f]`` is the staging cost of file f
    # on a node that lacks it (replica time once any copy exists, remote
    # time before) — the same value ``stage_row`` selects per file, kept
    # current so the dirty-row refresh is a single gather. ``co_cache``
    # memoises the union of reader rows per file *tuple* (tasks of one
    # patient share the tuple, so the union is computed once per patient).
    ba_cur = np.where(any_copy, setup.rep_t, setup.remote_t)
    # Files still lacking any copy, as a Python set: first-copy detection
    # is then pure small-list membership instead of ndarray round-trips.
    nocopy: set[int] = set(np.flatnonzero(~any_copy).tolist())
    rep_t = setup.rep_t
    task_file_lists = setup.task_file_lists
    lens_keys = sorted(setup.files_by_len)
    single_len = len(lens_keys) == 1
    files_by_len = setup.files_by_len
    pos_in_len = setup.pos_in_len
    file_count = setup.file_count
    tuple_id = setup.tuple_id
    co_arrs: list[np.ndarray | None] = [None] * setup.n_tuples
    # Tuples whose first commit already happened (no further flips).
    tuple_flipped = bytearray(setup.n_tuples)
    rows_refreshed = 0
    value_rows = 0
    rows_skipped = 0
    compactions = 0
    flip_hits = 0
    pair_evals = n * c
    inf = np.inf
    np_add, np_where = np.add, np.where

    remaining = n
    for _ in range(n):
        kc, i = pick(vals)
        kc, i = int(kc), int(i)
        k = int(orig_of[kc])
        won = vals[kc, i]
        t_k = tasks[k]
        mapping[t_k.task_id] = nodes[i]
        if log is not None:
            finite = np.isfinite(vals)
            evaluated = int(finite.sum())
            ties = int((np.abs(vals[finite] - won) <= _TIE_TOL).sum()) - 1
            log.record(
                t_k.task_id,
                nodes[i],
                reason=pick_rule,
                estimated_completion=float(won),
                evaluated=evaluated,
                ties=max(ties, 0),
            )
            telemetry.count("scheduler/evaluations", evaluated)
            telemetry.count("scheduler/decisions")
        ready[i] = won
        unscheduled[k] = False
        vals[kc] = inf
        # Poison the committed row's staging so the end-of-round column
        # rewrite yields inf for it with no separate masking pass:
        # (inf + ready) + fixed == inf exactly. Refresh paths only ever
        # write live rows, so the poison sticks.
        stage_t[:, kc] = inf
        remaining -= 1
        if remaining == 0:
            break
        if remaining * 2 <= cap and cap >= 64:
            compactions += 1
            # Compact to the live rows, preserving their relative order.
            live_rows = np.flatnonzero(unscheduled[orig_of])
            orig_of = orig_of[live_rows]
            newpos[orig_of] = np.arange(remaining, dtype=np.intp)
            vals = vals[live_rows]
            stage_t = np.ascontiguousarray(stage_t[:, live_rows])
            fixed_t = np.ascontiguousarray(fixed_t[:, live_rows])
            colbuf = np.empty(remaining)
            cap = remaining

        # Implicit replication: task k's files are now (planned) on i.
        fs = task_files[k]
        tid = tuple_id[k]
        did_flip = False
        all_flipped = False
        # A tuple's first commit places every one of its files, so later
        # commits of the same tuple can never flip — skip the scan.
        if nocopy and tuple_flipped[tid]:
            flip_hits += 1
        elif nocopy:
            tuple_flipped[tid] = 1
            fl_k = task_file_lists[k]
            flip = [f for f in fl_k if f in nocopy]
            if flip:
                # A first copy moves the absent-file cost of every reader
                # on every node, not just column i.
                any_copy[flip] = True
                ba_cur[flip] = rep_t[flip]
                nocopy.difference_update(flip)
                did_flip = True
                all_flipped = len(flip) == len(fl_k)
        on_node[fs, i] = True
        # Rows sharing a file with the commit, batched per file-count
        # group with the reference's length-L summation lanes. On rounds
        # with a first-copy flip their whole stage row moved; otherwise
        # only ``on_node[:, i]`` flipped, so only ``stage[rs, i]`` needs
        # recomputing and the end-of-round column rewrite propagates it
        # into ``vals``.
        arr = co_arrs[tid]
        if arr is None:
            merged: set[int] = set()
            for f in task_file_lists[k]:
                merged.update(readers[f])
            arr = np.fromiter(merged, np.intp, len(merged))
        live = arr[unscheduled[arr]]
        # Scheduled rows never come back, so keep the shrunken array:
        # later commits of the same file tuple gather ever-smaller sets.
        co_arrs[tid] = live
        m = len(live)
        if m:
            if did_flip:
                # Only readers of the files that just gained their first
                # copy saw ``ba_cur`` move — their whole stage row is
                # recomputed.  Every other co-reader only saw
                # ``on_node[:, i]`` flip and needs just ``stage[., i]``.
                if all_flipped:
                    # Every file of k flipped, so the flip readers are
                    # exactly the co-reader set: skip the partition.
                    flipr = live
                    nf = m
                    col_rows = _NO_ROWS
                else:
                    fset: set[int] = set()
                    for f in flip:
                        fset.update(readers[f])
                    flipr = np.fromiter(fset, np.intp, len(fset))
                    flipr = flipr[unscheduled[flipr]]
                    nf = len(flipr)
                    col_rows = (
                        np.array(
                            [r for r in live.tolist() if r not in fset],
                            dtype=np.intp,
                        )
                        if nf
                        else live
                    )
                rows_skipped += m - nf
                if nf:
                    if nf <= _ROWWISE_MAX:
                        # Few dirty rows (the steady state under high
                        # overlap): the reference ``stage_row`` expression
                        # verbatim per row, skipping group machinery.
                        for r in flipr.tolist():
                            fs_r = task_files[r]
                            row = np_where(
                                on_node[fs_r].T, 0.0, ba_cur[fs_r]
                            ).sum(axis=1)
                            rc = newpos[r]
                            stage_t[:, rc] = row
                            # In-place ``(row + ready) + fixed`` — same
                            # rounding order, one temporary fewer; the
                            # staging write above must precede it.
                            np_add(row, ready, out=row)
                            np_add(row, fixed[r], out=row)
                            vals[rc] = row
                    else:
                        if single_len:
                            fgroups = [(int(file_count[flipr[0]]), flipr)]
                        else:
                            lv = file_count[flipr]
                            fgroups = [(ln, flipr[lv == ln]) for ln in lens_keys]
                        for length, rs in fgroups:
                            if not len(rs):
                                continue
                            fs2 = files_by_len[length][pos_in_len[rs]]  # (mg, L)
                            ba = ba_cur[fs2]
                            present = on_node[fs2].transpose(0, 2, 1)  # (mg, c, L)
                            srows = np_where(present, 0.0, ba[:, None, :]).sum(axis=2)
                            rcs = newpos[rs]
                            stage_t[:, rcs] = srows.T
                            vals[rcs] = (srows + ready) + fixed[rs]
                    pair_evals += nf * c
                    value_rows += nf
            else:
                col_rows = live
                rows_skipped += m
            mc = len(col_rows)
            if mc and mc <= _ROWWISE_MAX:
                # Few dirty rows: column-i lane of ``stage_row``, per row.
                for r in col_rows.tolist():
                    fs_r = task_files[r]
                    stage_t[i, newpos[r]] = np_where(
                        on_node[fs_r, i], 0.0, ba_cur[fs_r]
                    ).sum()
                pair_evals += mc
            elif mc:
                if single_len:
                    groups = [(int(file_count[col_rows[0]]), col_rows)]
                else:
                    lv = file_count[col_rows]
                    groups = [(ln, col_rows[lv == ln]) for ln in lens_keys]
                for length, rs in groups:
                    if not len(rs):
                        continue
                    fs2 = files_by_len[length][pos_in_len[rs]]  # (mg, L)
                    present_i = on_node[fs2, i]  # (mg, L)
                    stage_t[i, newpos[rs]] = np_where(
                        present_i, 0.0, ba_cur[fs2]
                    ).sum(axis=1)
                    pair_evals += len(rs)
            rows_refreshed += m
        # Column i: its ready term moved (and dirty stage entries above).
        # Rewrite with the reference's rounding order into the contiguous
        # buffer, copy back (committed rows come out inf via the poison).
        np_add(stage_t[i], ready[i], out=colbuf)
        np_add(colbuf, fixed_t[i], out=colbuf)
        vals[:, i] = colbuf
        pair_evals += cap

    stats.rounds = n
    stats.col_refreshes = max(n - 1, 0)
    stats.stage_rows_refreshed += rows_refreshed
    stats.value_rows_refreshed = value_rows
    stats.pair_evaluations = pair_evals
    stats.value_rows_skipped = rows_skipped
    stats.compactions = compactions
    stats.flip_shortcut_hits = flip_hits
    return mapping, stats
