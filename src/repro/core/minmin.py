"""MinMin scheduling with implicit file replication (baseline, Section 3).

Classic MinMin [Maheswaran et al.] adapted to data-intensive batches: the
expected minimum completion time (MCT) of a task on a node accounts for the
files already available on that node, and for copies available on *other*
compute nodes, which act as cheaper alternate sources than the storage
cluster. When a task is committed to a node, all its files are considered
staged there — the *implicit replication* policy: popular files accumulate
copies across the cluster as scheduling proceeds.

At every step the task/node pair with the globally minimal MCT is committed
(the min-min rule). The resulting mapping is executed by the Section 6
runtime; the estimates here intentionally mirror the runtime's cost model
without simulating port contention (that is what makes MinMin cheap relative
to the IP scheme but still O(T^2 * C), visibly slower than JDP in Fig. 6b).

The inner loop is vectorised: ``stage[t, i]`` (estimated staging seconds for
task ``t`` on node ``i``) is maintained in a NumPy array and only rows
affected by new file copies are recomputed.
"""

from __future__ import annotations

import numpy as np

from ..analysis.dims import Seconds
from ..batch import Batch
from ..cluster.platform import Platform
from ..cluster.state import ClusterState
from ..obs.core import telemetry
from ..obs.decisions import DecisionLog
from .base import Scheduler, register_scheduler
from .plan import SubBatchPlan

__all__ = ["MinMinScheduler"]

#: Candidates within this absolute MCT distance of the winner count as ties.
_TIE_TOL: Seconds = 1e-9


@register_scheduler("minmin")
class MinMinScheduler(Scheduler):
    """MinMin with implicit replication; whole batch at once, no sub-batching.

    The selection rule is pluggable through :meth:`_pick` so the MaxMin and
    Sufferage variants (:mod:`repro.core.mct_family`) can reuse the whole
    data-aware MCT machinery and differ only in which task they commit.
    """

    uses_subbatches = False
    #: Selection-rule label recorded on each Decision while telemetry is on.
    pick_rule = "global-min-mct"

    def _pick(self, mct: np.ndarray) -> tuple[int, int]:
        """Choose (task row, node column) from the MCT matrix.

        MinMin commits the globally smallest completion time. Rows of
        already-scheduled tasks hold ``inf``.
        """
        flat = int(np.argmin(mct))
        return divmod(flat, mct.shape[1])

    def next_subbatch(
        self,
        batch: Batch,
        pending: list[str],
        platform: Platform,
        state: ClusterState,
    ) -> SubBatchPlan:
        with telemetry.span("map"):
            mapping = self._map(batch, pending, platform, state)
        return SubBatchPlan(task_ids=list(pending), mapping=mapping, staging=None)

    # -- mapping ------------------------------------------------------------------
    def _map(
        self,
        batch: Batch,
        pending: list[str],
        platform: Platform,
        state: ClusterState,
    ) -> dict[str, int]:
        tasks = [batch.task(t) for t in pending]
        # Matrix columns cover only surviving nodes (fault injection may
        # have crashed some); without faults this is every compute node and
        # the arithmetic below is unchanged.
        nodes = state.alive_nodes()
        if not nodes:
            raise RuntimeError("no surviving compute nodes to schedule on")
        n, c = len(tasks), len(nodes)
        file_ids = sorted({f for t in tasks for f in t.files})
        fidx = {f: i for i, f in enumerate(file_ids)}
        sizes = np.array([batch.file_size(f) for f in file_ids])
        remote_t = np.array(
            [
                sizes[i] / platform.remote_bandwidth(batch.file(f).storage_node)
                for i, f in enumerate(file_ids)
            ]
        )
        rep_t = sizes / platform.replication_bandwidth

        # on_node[f, i]: file (planned to be) on the i-th surviving node.
        on_node = np.zeros((len(file_ids), c), dtype=bool)
        for i, node in enumerate(nodes):
            for f in state.files_on(node):
                if f in fidx:
                    on_node[fidx[f], i] = True
        any_copy = on_node.any(axis=1)

        task_files = [np.array([fidx[f] for f in t.files]) for t in tasks]
        # Execution part per (task, node): local read at the node's disk
        # bandwidth plus CPU time at the node's speed.
        total_mb = np.array([batch.task_input_mb(t) for t in tasks])
        compute = np.array([t.compute_time for t in tasks])
        local_bw = np.array(
            [platform.compute_nodes[node].local_disk_bw for node in nodes]
        )
        speeds = np.array([platform.compute_nodes[node].speed for node in nodes])
        fixed = total_mb[:, None] / local_bw[None, :] + compute[:, None] / speeds[None, :]

        def stage_row(k: int) -> np.ndarray:
            """Estimated staging time of task k on every node."""
            fs = task_files[k]
            # Per-file cost on node i: 0 if present; else replica time if any
            # copy exists; else remote time.
            best_absent = np.where(any_copy[fs], rep_t[fs], remote_t[fs])
            per_file = np.where(on_node[fs, :].T, 0.0, best_absent)  # (c, |fs|)
            return per_file.sum(axis=1)

        stage = np.vstack([stage_row(k) for k in range(n)]) if n else np.zeros((0, c))
        ready = np.zeros(c)
        unscheduled = np.ones(n, dtype=bool)
        mapping: dict[str, int] = {}

        # Inverted index: file -> tasks reading it (for targeted refreshes).
        readers: dict[int, list[int]] = {}
        for k, fs in enumerate(task_files):
            for f in fs.tolist():
                readers.setdefault(f, []).append(k)

        log: DecisionLog | None = None
        if telemetry.enabled:
            if self.decision_log is None:
                self.decision_log = DecisionLog(scheme=self.name)
            log = self.decision_log

        for _ in range(n):
            mct = stage + ready + fixed  # (n, c)
            mct[~unscheduled, :] = np.inf
            k, i = self._pick(mct)
            k, i = int(k), int(i)
            mapping[tasks[k].task_id] = nodes[i]
            if log is not None:
                finite = np.isfinite(mct)
                evaluated = int(finite.sum())
                ties = int((np.abs(mct[finite] - mct[k, i]) <= _TIE_TOL).sum()) - 1
                log.record(
                    tasks[k].task_id,
                    nodes[i],
                    reason=self.pick_rule,
                    estimated_completion=float(mct[k, i]),
                    evaluated=evaluated,
                    ties=max(ties, 0),
                )
                telemetry.count("scheduler/evaluations", evaluated)
                telemetry.count("scheduler/decisions")
            ready[i] = mct[k, i]
            unscheduled[k] = False

            # Implicit replication: task k's files are now (planned) on i.
            fs = task_files[k]
            on_node[fs, i] = True
            any_copy[fs] = True
            # Refresh the staging estimate of every pending task that shares
            # a file with the newly placed set.
            dirty: set[int] = set()
            for f in fs.tolist():
                dirty.update(readers[f])
            for t in dirty:
                if unscheduled[t]:
                    stage[t] = stage_row(t)
        return mapping
