"""MinMin scheduling with implicit file replication (baseline, Section 3).

Classic MinMin [Maheswaran et al.] adapted to data-intensive batches: the
expected minimum completion time (MCT) of a task on a node accounts for the
files already available on that node, and for copies available on *other*
compute nodes, which act as cheaper alternate sources than the storage
cluster. When a task is committed to a node, all its files are considered
staged there — the *implicit replication* policy: popular files accumulate
copies across the cluster as scheduling proceeds.

At every step the task/node pair with the globally minimal MCT is committed
(the min-min rule). The resulting mapping is executed by the Section 6
runtime; the estimates here intentionally mirror the runtime's cost model
without simulating port contention (that is what makes MinMin cheap relative
to the IP scheme but still O(T^2 * C), visibly slower than JDP in Fig. 6b).

The mapping loop lives in :mod:`repro.core.mct_kernel` in two
decision-identical flavours: the original per-round full-matrix rescan
(``scheduler.reference = True``) and the default incremental kernel that
maintains the MCT value buffer in place, rewriting only the entries each
commit moved. MaxMin and Sufferage (:mod:`repro.core.mct_family`) reuse
both through the :meth:`_pick` selection hook.
"""

from __future__ import annotations

import numpy as np

from ..batch import Batch
from ..cluster.platform import Platform
from ..cluster.state import ClusterState
from ..obs.core import telemetry
from ..obs.decisions import DecisionLog
from .base import Scheduler, register_scheduler
from .mct_kernel import (
    _TIE_TOL,
    KernelStats,
    build_mct_setup,
    incremental_mct_map,
    reference_mct_map,
)
from .plan import SubBatchPlan

__all__ = ["MinMinScheduler", "_TIE_TOL"]


@register_scheduler("minmin")
class MinMinScheduler(Scheduler):
    """MinMin with implicit replication; whole batch at once, no sub-batching.

    The selection rule is pluggable so the MaxMin and Sufferage variants
    (:mod:`repro.core.mct_family`) can reuse the whole data-aware MCT
    machinery and differ only in which task they commit: :meth:`_pick`
    drives both the reference full-matrix path and the incremental kernel
    (which hands it a bit-identical value buffer).
    """

    uses_subbatches = False
    #: Selection-rule label recorded on each Decision while telemetry is on.
    pick_rule = "global-min-mct"
    #: Work accounting of the last incremental mapping call (None on the
    #: reference path); reported by ``repro bench``.
    kernel_stats: KernelStats | None = None

    def _pick(self, mct: np.ndarray) -> tuple[int, int]:
        """Choose (task row, node column) from the MCT matrix.

        MinMin commits the globally smallest completion time. Rows of
        already-scheduled tasks hold ``inf``.
        """
        return divmod(int(mct.argmin()), mct.shape[1])

    def next_subbatch(
        self,
        batch: Batch,
        pending: list[str],
        platform: Platform,
        state: ClusterState,
    ) -> SubBatchPlan:
        with telemetry.span("map"):
            mapping = self._map(batch, pending, platform, state)
        return SubBatchPlan(task_ids=list(pending), mapping=mapping, staging=None)

    # -- mapping ------------------------------------------------------------------
    def _map(
        self,
        batch: Batch,
        pending: list[str],
        platform: Platform,
        state: ClusterState,
    ) -> dict[str, int]:
        setup = build_mct_setup(batch, pending, platform, state)
        log: DecisionLog | None = None
        if telemetry.enabled:
            if self.decision_log is None:
                self.decision_log = DecisionLog(scheme=self.name)
            log = self.decision_log
        if self.reference:
            self.kernel_stats = None
            return reference_mct_map(setup, self._pick, self.pick_rule, log)
        mapping, stats = incremental_mct_map(setup, self._pick, self.pick_rule, log)
        self.kernel_stats = stats
        if telemetry.enabled:
            # Surface the kernel's real-work counters per run (manifest
            # `telemetry.counters` + `repro profile`), not just per bench
            # cell; counters sum across sub-batch mapping calls.
            for key, value in stats.to_dict().items():
                telemetry.count(f"kernel/{key}", value)
        return mapping
