"""MCT-family heuristics: MaxMin and Sufferage (extension baselines).

The paper's related work (Casanova et al. [4]) adapts three classic
task-farming heuristics — MinMin, MaxMin, Sufferage — to data-aware
scheduling. The paper evaluates only MinMin; these two complete the family
and share its machinery entirely (file-placement-aware minimum completion
times with implicit replication, vectorised in
:class:`~repro.core.minmin.MinMinScheduler`), overriding only the rule that
picks which task to commit from the MCT matrix:

* **MaxMin** — among the per-task best completion times, commit the task
  whose best is *largest* first (big tasks early, small ones fill gaps).
* **Sufferage** — commit the task that would *suffer* most if denied its
  best node, i.e. with the largest gap between its best and second-best
  completion times.

Both produce whole-batch mappings executed by the Section 6 runtime and are
registered as ``"maxmin"`` and ``"sufferage"``. The shared MCT matrix is in
simulated seconds throughout (see :mod:`repro.analysis.dims`); the picking
rules only ever compare entries, never mix them with sizes or bandwidths.
"""

from __future__ import annotations

import numpy as np

from .base import register_scheduler
from .minmin import MinMinScheduler

__all__ = ["MaxMinScheduler", "SufferageScheduler"]


@register_scheduler("maxmin")
class MaxMinScheduler(MinMinScheduler):
    """MaxMin: commit the task with the *largest* best completion time."""

    pick_rule = "max-of-min-mct"

    def _pick(self, mct: np.ndarray) -> tuple[int, int]:
        best_per_task = mct.min(axis=1)
        rows = np.flatnonzero(np.isfinite(best_per_task))
        k = int(rows[np.argmax(best_per_task[rows])])
        return k, int(np.argmin(mct[k]))


@register_scheduler("sufferage")
class SufferageScheduler(MinMinScheduler):
    """Sufferage: commit the task with the largest best/second-best gap."""

    pick_rule = "max-sufferage"

    def _pick(self, mct: np.ndarray) -> tuple[int, int]:
        rows = np.flatnonzero(np.isfinite(mct.min(axis=1)))
        if mct.shape[1] == 1:
            # Single node: sufferage degenerates to MinMin.
            k = int(rows[np.argmin(mct[rows, 0])])
            return k, 0
        part = np.partition(mct[rows], 1, axis=1)
        sufferage = part[:, 1] - part[:, 0]
        k = int(rows[np.argmax(sufferage)])
        return k, int(np.argmin(mct[k]))
