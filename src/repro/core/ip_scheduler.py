"""0-1 Integer Programming scheduler (Section 4 of the paper).

Couples task scheduling and file replication in one exact model. Two modes:

* **Unlimited disk cache** (Section 4.1): one 0-1 IP over the whole pending
  set decides task placement ``T``, file placement ``X``, remote transfers
  ``R`` and compute-to-compute replications ``Y``, minimising the makespan
  (Eqs. 1–13). Used when every compute node's disk is unbounded.
* **Limited disk cache** (Section 4.2): a two-stage solution. Stage one
  selects a maximal, load-balanceable sub-batch whose files fit the disks
  (Eqs. 14–20); stage two re-runs the 4.1 model on the sub-batch with the
  per-node disk-space constraint (Eq. 21) and with credit for the file
  copies already created by earlier sub-batches.

The extracted plan fixes, for every (file, destination) pair, whether the
file arrives by remote transfer or by replication from a specific node; file
placements not demanded by any local task (relay copies) become proactive
pushes. The Section 6 runtime realises the plan on the Gantt charts.

Solvers are pluggable (:mod:`repro.mip`); HiGHS with a time limit is the
default, matching the paper's use of ``lp_solve`` with the caveat that the
IP scheme "has significant scheduling overhead" and is only practical for
small workloads. When the solver fails to produce any incumbent in time, a
greedy fallback keeps the driver making progress.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any

from ..batch import Batch, Task
from ..cluster.platform import Platform
from ..cluster.runtime import PlannedSource, StagingPlan
from ..cluster.state import ClusterState
from ..mip import LinExpr, Model, Sense, Solution, get_solver
from .base import Scheduler, register_scheduler
from .plan import SubBatchPlan

__all__ = ["IPScheduler"]


@dataclass
class _IpInstance:
    """Bookkeeping for one solved allocation model."""

    model: Model
    tvars: dict[tuple[str, int], object]
    xvars: dict[tuple[str, int], object]
    rvars: dict[tuple[str, int], object]
    yvars: dict[tuple[int, int, str], object]


@register_scheduler("ip")
class IPScheduler(Scheduler):
    """The coupled scheduling + replication IP of Section 4.

    Parameters
    ----------
    solver / solver_options:
        Backend name for :func:`repro.mip.get_solver` and its options.
    time_limit:
        Wall-clock budget per solve (seconds). The allocation IP stops at
        the incumbent when exceeded.
    mip_rel_gap:
        Relative optimality gap accepted by the allocation solve; the paper
        needs exact answers only for tiny instances, and a small gap keeps
        the (already large) scheduling overhead bounded.
    balance_threshold:
        ``Thresh`` of Eq. 18 — allowed relative deviation of any node's
        compute load from the mean in sub-batch selection.
    """

    def __init__(
        self,
        seed: int = 0,
        solver: str = "highs",
        time_limit: float | None = 60.0,
        mip_rel_gap: float = 0.02,
        balance_threshold: float = 0.5,
        solver_options: dict | None = None,
    ) -> None:
        super().__init__(seed)
        self.solver_name = solver
        self.time_limit = time_limit
        self.mip_rel_gap = mip_rel_gap
        self.balance_threshold = balance_threshold
        self.solver_options = dict(solver_options or {})
        self.last_solution: Solution | None = None

    # -- helpers ---------------------------------------------------------------
    def _solver(self, time_limit: float | None) -> Any:
        opts = dict(self.solver_options)
        if self.solver_name == "highs":
            opts.setdefault("mip_rel_gap", self.mip_rel_gap)
            opts.setdefault("time_limit", time_limit)
        elif time_limit is not None:
            opts.setdefault("time_limit", time_limit)
        return get_solver(self.solver_name, **opts)

    @staticmethod
    def _unlimited(platform: Platform) -> bool:
        return all(math.isinf(n.disk_space_mb) for n in platform.compute_nodes)

    # -- public entry ----------------------------------------------------------------
    def next_subbatch(
        self,
        batch: Batch,
        pending: list[str],
        platform: Platform,
        state: ClusterState,
    ) -> SubBatchPlan:
        tasks = [batch.task(t) for t in pending]
        if self._unlimited(platform):
            selected = tasks
        else:
            selected = self._select_subbatch(batch, tasks, platform, state)
        return self._allocate(batch, selected, platform, state)

    # -- stage one: sub-batch selection (Eqs. 14-20) ------------------------------------
    def _select_subbatch(
        self,
        batch: Batch,
        tasks: list[Task],
        platform: Platform,
        state: ClusterState,
    ) -> list[Task]:
        c = platform.num_compute
        files = sorted({f for t in tasks for f in t.files})
        m = Model("subbatch-selection", Sense.MAXIMIZE)

        tvar = {
            (t.task_id, i): m.binary_var(f"T[{t.task_id},{i}]")
            for t in tasks
            for i in range(c)
        }
        xvar = {
            (f, i): m.binary_var(f"X[{f},{i}]")
            for f in files
            for i in range(c)
        }

        # Fault injection: crashed nodes take no tasks and hold no files.
        # Without faults ``dead_nodes`` is empty and the model is untouched.
        if state.dead_nodes:
            for (_, i), var in (*tvar.items(), *xvar.items()):
                if i in state.dead_nodes:
                    m.add_constr(var <= 0)

        # Eq. 15: allocating a task stages all its files on the node.
        for t in tasks:
            for i in range(c):
                for f in t.files:
                    m.add_constr(tvar[(t.task_id, i)] <= xvar[(f, i)])
        # Eq. 16: per-node disk capacity.
        for i in range(c):
            cap = platform.compute_nodes[i].disk_space_mb
            usage = LinExpr.from_terms(
                (xvar[(f, i)], batch.file_size(f)) for f in files
            )
            m.add_constr(usage <= cap, name=f"disk[{i}]")
        # Eq. 17: a task is allocated to at most one node.
        for t in tasks:
            m.add_constr(
                LinExpr.from_terms(
                    (tvar[(t.task_id, i)], 1.0) for i in range(c)
                )
                <= 1,
                name=f"once[{t.task_id}]",
            )
        # Eqs. 18-20: compute load within (1 + Thresh) of the average.
        comp = [
            LinExpr.from_terms(
                (tvar[(t.task_id, i)], t.compute_time) for t in tasks
            )
            for i in range(c)
        ]
        total = LinExpr.from_terms(
            ((tvar[(t.task_id, i)], t.compute_time) for t in tasks for i in range(c))
        )
        for i in range(c):
            m.add_constr(
                comp[i] * c <= total * (1.0 + self.balance_threshold),
                name=f"balance[{i}]",
            )
        # Eq. 14: maximise the number of allocated tasks.
        m.set_objective(
            LinExpr.from_terms(
                (tvar[(t.task_id, i)], 1.0) for t in tasks for i in range(c)
            )
        )

        sol = self._solver(self.time_limit).solve(m)
        self.last_solution = sol
        if not sol.status.has_solution:
            return self._greedy_subbatch(batch, tasks, platform, state)
        chosen = [
            t
            for t in tasks
            if any(sol.value(tvar[(t.task_id, i)]) > 0.5 for i in range(c))
        ]
        if not chosen:
            # Balance constraints can zero out tiny instances; fall back so
            # the driver always makes progress.
            return self._greedy_subbatch(batch, tasks, platform, state)
        return chosen

    def _greedy_subbatch(
        self,
        batch: Batch,
        tasks: list[Task],
        platform: Platform,
        state: ClusterState,
    ) -> list[Task]:
        """Capacity-only fallback: pack tasks by increasing footprint."""
        if state.dead_nodes:
            budget = float(
                sum(
                    platform.compute_nodes[n].disk_space_mb
                    for n in state.alive_nodes()
                )
            )
        else:
            budget = platform.aggregate_disk_space
        chosen: list[Task] = []
        used: set[str] = set()
        used_mb = 0.0
        for t in sorted(tasks, key=lambda t: batch.task_input_mb(t)):
            extra = sum(
                batch.file_size(f) for f in t.files if f not in used
            )
            if chosen and used_mb + extra > budget:
                continue
            chosen.append(t)
            used.update(t.files)
            used_mb += extra
        return chosen

    # -- stage two: allocation (Eqs. 1-13 + 21) -------------------------------------------
    def _allocate(
        self,
        batch: Batch,
        tasks: list[Task],
        platform: Platform,
        state: ClusterState,
    ) -> SubBatchPlan:
        c = platform.num_compute
        files = sorted({f for t in tasks for f in t.files})
        require: dict[str, list[str]] = {f: [] for f in files}
        for t in tasks:
            for f in t.files:
                require[f].append(t.task_id)
        present = {
            (f, i): state.has_file(i, f) for f in files for i in range(c)
        }

        m = Model("allocation", Sense.MINIMIZE)
        tvar = {
            (t.task_id, i): m.binary_var(f"T[{t.task_id},{i}]")
            for t in tasks
            for i in range(c)
        }
        xvar = {(f, i): m.binary_var(f"X[{f},{i}]") for f in files for i in range(c)}
        rvar = {(f, i): m.binary_var(f"R[{f},{i}]") for f in files for i in range(c)}
        yvar = {
            (i, j, f): m.binary_var(f"Y[{i},{j},{f}]")
            for f in files
            for i in range(c)
            for j in range(c)
            if i != j
        }

        # Fault injection: pin every decision touching a crashed node to
        # zero. No constraints are added when nothing has crashed.
        if state.dead_nodes:
            for (_, i), var in (*tvar.items(), *xvar.items(), *rvar.items()):
                if i in state.dead_nodes:
                    m.add_constr(var <= 0)
            for (i, j, _), var in yvar.items():
                if i in state.dead_nodes or j in state.dead_nodes:
                    m.add_constr(var <= 0)

        # Pre-built demand expressions for Eq. 2: does any task needing f
        # land on node j?
        demand = {
            (f, j): LinExpr.from_terms((tvar[(k, j)], 1.0) for k in require[f])
            for f in files
            for j in range(c)
        }
        for f in files:
            for i in range(c):
                for j in range(c):
                    if i == j:
                        continue
                    # Eq. 1: replicate only what you have.
                    m.add_constr(yvar[(i, j, f)] <= xvar[(f, i)])
                    # Eq. 2: replicate only to nodes that need it.
                    m.add_constr(yvar[(i, j, f)] <= demand[(f, j)])
                inbound = LinExpr.from_terms(
                    (yvar[(j, i, f)], 1.0) for j in range(c) if j != i
                )
                # Eq. 3: at most one replication into (i, f).
                m.add_constr(inbound <= 1)
                # Eq. 4 with presence credit: a placement is backed by a
                # pre-existing copy, a remote transfer or a replication.
                # (Inequality rather than the paper's equality so a stale
                # pre-existing copy may be dropped to free disk space.)
                pre = 1.0 if present[(f, i)] else 0.0
                m.add_constr(xvar[(f, i)] <= pre + rvar[(f, i)] + inbound)
                # Eq. 5: not both remote transfer and replication (and
                # nothing at all when the file is already present).
                m.add_constr(rvar[(f, i)] + inbound <= 1 - pre)

        # Eq. 6: every task on exactly one node.
        for t in tasks:
            m.add_constr(
                sum(tvar[(t.task_id, i)] for i in range(c)) == 1,
                name=f"assign[{t.task_id}]",
            )
        # Eq. 7: a task's node holds all its files.
        for t in tasks:
            for i in range(c):
                for f in t.files:
                    m.add_constr(tvar[(t.task_id, i)] <= xvar[(f, i)])
        # Eq. 8: every referenced file is fetched remotely at least once,
        # unless the compute cluster already holds a copy.
        for f in files:
            if not any(present[(f, i)] for i in range(c)):
                m.add_constr(
                    sum(rvar[(f, i)] for i in range(c)) >= 1,
                    name=f"fetch[{f}]",
                )
        # Eq. 21: per-node disk capacity (limited case only).
        for i in range(c):
            cap = platform.compute_nodes[i].disk_space_mb
            if math.isinf(cap):
                continue
            usage = sum(xvar[(f, i)] * batch.file_size(f) for f in files)
            m.add_constr(usage <= cap, name=f"disk[{i}]")

        # Eqs. 9-13: makespan objective.
        t_rep = 1.0 / platform.replication_bandwidth
        makespan = m.continuous_var("makespan", lb=0.0)
        for i in range(c):
            terms: list[tuple[object, float]] = []
            for f in files:
                size = batch.file_size(f)
                t_rem = 1.0 / platform.remote_bandwidth(
                    batch.file(f).storage_node
                )
                terms.append((rvar[(f, i)], t_rem * size))
                for j in range(c):
                    if j == i:
                        continue
                    cost = t_rep * size
                    terms.append((yvar[(j, i, f)], cost))  # inbound
                    terms.append((yvar[(i, j, f)], cost))  # outbound
            for t in tasks:
                # Computation (at the node's speed) plus the local read the
                # runtime charges.
                read = sum(
                    platform.local_read_time(i, batch.file_size(f))
                    for f in t.files
                )
                cost = platform.task_compute_time(i, t.compute_time) + read
                terms.append((tvar[(t.task_id, i)], cost))
            exec_i = LinExpr.from_terms(terms)
            m.add_constr(exec_i <= makespan, name=f"makespan[{i}]")
        m.set_objective(makespan)

        sol = self._solver(self.time_limit).solve(m)
        self.last_solution = sol
        if not sol.status.has_solution:
            return self._greedy_allocation(batch, tasks, platform, state)
        return self._extract_plan(
            sol, tasks, files, c,
            _IpInstance(m, tvar, xvar, rvar, yvar),
            require,
        )

    def _extract_plan(
        self,
        sol: Solution,
        tasks: list[Task],
        files: list[str],
        c: int,
        inst: _IpInstance,
        require: dict[str, list[str]],
    ) -> SubBatchPlan:
        mapping: dict[str, int] = {}
        for t in tasks:
            for i in range(c):
                if sol.value(inst.tvars[(t.task_id, i)]) > 0.5:
                    mapping[t.task_id] = i
                    break
        plan = StagingPlan()
        needed_on: dict[int, set[str]] = {i: set() for i in range(c)}
        for t in tasks:
            needed_on[mapping[t.task_id]].update(t.files)
        for f in files:
            for i in range(c):
                src: PlannedSource | None = None
                if sol.value(inst.rvars[(f, i)]) > 0.5:
                    src = PlannedSource("remote")
                else:
                    for j in range(c):
                        if j != i and sol.value(inst.yvars[(j, i, f)]) > 0.5:
                            src = PlannedSource("replica", source_node=j)
                            break
                if src is None:
                    continue
                plan.sources[(f, i)] = src
                if f not in needed_on[i]:
                    # Relay copy: no local task pulls it in; push it.
                    plan.pushes.append((f, i))
        return SubBatchPlan(
            task_ids=[t.task_id for t in tasks], mapping=mapping, staging=plan
        )

    def _greedy_allocation(
        self,
        batch: Batch,
        tasks: list[Task],
        platform: Platform,
        state: ClusterState,
    ) -> SubBatchPlan:
        """Load-balancing fallback when the solver yields no incumbent."""
        nodes = state.alive_nodes()
        if not nodes:
            raise RuntimeError("no surviving compute nodes to schedule on")
        load = {i: 0.0 for i in nodes}
        mapping: dict[str, int] = {}
        for t in sorted(tasks, key=lambda t: -t.compute_time):
            i = min(nodes, key=lambda i: load[i])
            mapping[t.task_id] = i
            load[i] += t.compute_time + batch.task_input_mb(t) / 100.0
        return SubBatchPlan(
            task_ids=[t.task_id for t in tasks], mapping=mapping, staging=None
        )
