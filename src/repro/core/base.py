"""Scheduler interface and registry.

A scheduler sees the pending tasks and the *current* cluster state (files
already on compute nodes from earlier sub-batches) and produces the next
:class:`~repro.core.plan.SubBatchPlan`. The driver (:mod:`repro.core.driver`)
alternates scheduler calls with runtime execution and eviction until the
batch drains, timing the scheduler calls to measure scheduling overhead.

Unit conventions (checked by :mod:`repro.analysis.units`): file sizes and
disk capacities are MB, bandwidths are MB/s, and every completion-time
estimate a scheduler produces is in simulated seconds.
"""

from __future__ import annotations

import abc
from collections.abc import Callable
from typing import TYPE_CHECKING

import numpy as np

from ..batch import Batch
from ..cluster.platform import Platform
from ..cluster.state import ClusterState
from .eviction import EvictionPolicy, PopularityPolicy
from .plan import SubBatchPlan

if TYPE_CHECKING:  # pragma: no cover
    from ..obs.decisions import DecisionLog

__all__ = ["Scheduler", "register_scheduler", "make_scheduler", "available_schedulers"]


class Scheduler(abc.ABC):
    """Base class for batch schedulers.

    Subclasses implement :meth:`next_subbatch`; schedulers that precompute a
    whole sub-batch sequence (BiPartition's first level) may cache it across
    calls. ``uses_subbatches`` is False for the base heuristics that run the
    whole batch at once and rely on on-demand eviction.
    """

    name: str = "abstract"
    uses_subbatches: bool = True
    #: When True, schedulers (and the runtime, via ``run_batch``) use their
    #: original pre-incremental code paths. The optimized kernels are
    #: decision-identical — this flag exists for the differential-
    #: equivalence harness and the ``repro bench`` baseline measurements.
    reference: bool = False

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self.rng = np.random.default_rng(seed)
        # Populated by schedulers that emit per-placement decision records
        # (the MCT family) while repro.obs telemetry is enabled.
        self.decision_log: DecisionLog | None = None

    @abc.abstractmethod
    def next_subbatch(
        self,
        batch: Batch,
        pending: list[str],
        platform: Platform,
        state: ClusterState,
    ) -> SubBatchPlan:
        """Select and map the next sub-batch from ``pending`` task ids."""

    def eviction_policy(self, batch: Batch) -> EvictionPolicy:
        """Policy used for this scheduler's on-demand/between-batch eviction.

        Default is the paper's popularity policy (Eq. 22); JDP overrides
        with LRU as in Ranganathan & Foster.
        """
        return PopularityPolicy.for_batch(batch)

    def reset(self) -> None:
        """Clear per-batch caches (called by the driver before a run)."""
        self.rng = np.random.default_rng(self.seed)
        self.decision_log = None


_REGISTRY: dict[str, Callable[..., Scheduler]] = {}


def register_scheduler(name: str) -> Callable[[type[Scheduler]], type[Scheduler]]:
    """Class decorator registering a scheduler under ``name``."""

    def wrap(cls: type[Scheduler]) -> type[Scheduler]:
        cls.name = name
        _REGISTRY[name] = cls
        return cls

    return wrap


def make_scheduler(name: str, **kwargs: object) -> Scheduler:
    """Instantiate a registered scheduler by name."""
    try:
        cls = _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown scheduler {name!r}; available: {sorted(_REGISTRY)}"
        ) from None
    return cls(**kwargs)


def available_schedulers() -> list[str]:
    return sorted(_REGISTRY)
