"""Disk file eviction policies (Section 4.3).

A policy ranks a node's cached files *most evictable first*. Two contexts use
it: on-demand eviction during execution (base schemes under disk pressure)
and the between-sub-batch eviction phase of the proposed schemes.

* :class:`PopularityPolicy` implements Eq. 22: ``popularity = pending
  accesses × file size / number of copies``; files are evicted in increasing
  popularity, so rarely-needed, small, well-replicated files go first.
* :class:`LRUPolicy` evicts least-recently-used first (used with the Job
  Data Present / Data Least Loaded baseline, as in Ranganathan & Foster).
* :class:`SizePolicy` (smallest first) is an ablation baseline.
"""

from __future__ import annotations

from collections.abc import Iterable
from typing import Protocol

from ..analysis.dims import MB
from ..batch import Batch
from ..cluster.state import ClusterState

__all__ = ["EvictionPolicy", "PopularityPolicy", "LRUPolicy", "SizePolicy"]


class EvictionPolicy(Protocol):
    """Ranks eviction candidates on a node, most evictable first."""

    name: str

    def order(
        self, state: ClusterState, node: int, candidates: Iterable[str]
    ) -> list[str]: ...

    def update_pending(self, pending_counts: dict[str, int]) -> None: ...


class PopularityPolicy:
    """Eq. 22: evict in increasing ``freq × size / copies`` order.

    ``pending_counts`` maps file id to the number of *pending* task accesses
    (tasks not yet executed); the driver refreshes it as tasks complete.
    """

    name = "popularity"

    def __init__(self, pending_counts: dict[str, int] | None = None) -> None:
        self._pending: dict[str, int] = dict(pending_counts or {})

    @classmethod
    def for_batch(cls, batch: Batch) -> PopularityPolicy:
        counts: dict[str, int] = {}
        for t in batch.tasks:
            for f in t.files:
                counts[f] = counts.get(f, 0) + 1
        return cls(counts)

    def update_pending(self, pending_counts: dict[str, int]) -> None:
        self._pending = dict(pending_counts)

    def popularity(self, state: ClusterState, file_id: str) -> MB:
        """Eq. 22 score: pending-access volume per existing copy (MB)."""
        freq = self._pending.get(file_id, 0)
        copies = max(1, state.num_copies(file_id))
        return freq * state.size_of(file_id) / copies

    def order(
        self, state: ClusterState, node: int, candidates: Iterable[str]
    ) -> list[str]:
        return sorted(candidates, key=lambda f: self.popularity(state, f))


class LRUPolicy:
    """Evict the least recently used file first."""

    name = "lru"

    def update_pending(self, pending_counts: dict[str, int]) -> None:
        pass  # LRU ignores future knowledge

    def order(
        self, state: ClusterState, node: int, candidates: Iterable[str]
    ) -> list[str]:
        cache = state.caches[node]
        return sorted(candidates, key=lambda f: cache.last_use(f))


class SizePolicy:
    """Evict smallest files first (cheapest to re-stage; ablation baseline)."""

    name = "size"

    def update_pending(self, pending_counts: dict[str, int]) -> None:
        pass

    def order(
        self, state: ClusterState, node: int, candidates: Iterable[str]
    ) -> list[str]:
        return sorted(candidates, key=lambda f: state.size_of(f))
