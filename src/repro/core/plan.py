"""Scheduling plan and result types shared by all schedulers."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from ..analysis.dims import Count, Milliseconds, Seconds

from ..cluster.runtime import StagingPlan
from ..cluster.state import TransferStats
from ..cluster.stats import ExecutionResult

if TYPE_CHECKING:  # pragma: no cover
    from typing import Any

    from ..analysis.audit import AuditReport
    from ..cluster.runtime import Runtime
    from ..faults import FaultStats
    from ..obs.decisions import DecisionLog
    from ..obs.metrics import RunMetrics

__all__ = ["SubBatchPlan", "SubBatchResult", "BatchResult"]


@dataclass
class SubBatchPlan:
    """One sub-batch ready for execution.

    ``mapping`` sends each task id to a compute node. ``staging`` optionally
    fixes transfer sources (IP) or requests proactive pushes (JDP+DLL);
    ``None`` leaves all staging decisions to the dynamic Section 6 runtime.
    """

    task_ids: list[str]
    mapping: dict[str, int]
    staging: StagingPlan | None = None

    def __post_init__(self) -> None:
        missing = [t for t in self.task_ids if t not in self.mapping]
        if missing:
            raise ValueError(f"tasks without node assignment: {missing[:5]}")


@dataclass
class SubBatchResult:
    """Execution outcome of one sub-batch plus its scheduling cost."""

    plan: SubBatchPlan
    execution: ExecutionResult
    scheduling_seconds: Seconds


@dataclass
class BatchResult:
    """End-to-end result of running a batch under one scheduler."""

    scheduler: str
    makespan: Seconds
    scheduling_seconds: Seconds
    sub_batches: list[SubBatchResult] = field(default_factory=list)
    stats: TransferStats = field(default_factory=TransferStats)
    # Filled by run_batch(audit=True): the execution-invariant audit.
    audit_report: AuditReport | None = None
    # Filled by run_batch(telemetry=True): the derived resource metrics
    # (repro.obs.metrics), the scheduler decision log when the scheme emits
    # one, the telemetry registry snapshot, and the executed runtime (for
    # trace export / further post-hoc analysis).
    metrics: RunMetrics | None = None
    decision_log: DecisionLog | None = None
    telemetry: dict[str, Any] | None = None
    runtime: Runtime | None = None
    # Filled by run_batch(faults=...): injected/recovered fault accounting.
    fault_stats: FaultStats | None = None
    # Filled by run_batch(timeseries=...): the simulated-time series block
    # (repro.obs.timeseries), already in its manifest/JSON dict form.
    timeseries: dict[str, Any] | None = None

    @property
    def num_sub_batches(self) -> Count:
        return len(self.sub_batches)

    @property
    def num_tasks(self) -> Count:
        return sum(len(sb.plan.task_ids) for sb in self.sub_batches)

    @property
    def scheduling_ms_per_task(self) -> Milliseconds:
        """Per-task scheduling overhead in milliseconds (Fig. 6b's metric)."""
        n = self.num_tasks
        return 1000.0 * self.scheduling_seconds / n if n else 0.0

    def summary(self) -> str:
        return (
            f"{self.scheduler}: makespan {self.makespan:.1f}s over "
            f"{self.num_tasks} tasks in {self.num_sub_batches} sub-batch(es); "
            f"remote {self.stats.remote_transfers} "
            f"({self.stats.remote_volume_mb:.0f} MB), "
            f"replications {self.stats.replications} "
            f"({self.stats.replication_volume_mb:.0f} MB), "
            f"evictions {self.stats.evictions}; "
            f"scheduling {self.scheduling_ms_per_task:.2f} ms/task"
        )
