"""A small mixed-integer linear programming modeling layer.

The paper's schedulers (Section 4) are expressed as 0-1 integer programs.
The original work used ``lp_solve``; since no MILP modeling package is
available offline, this module provides a minimal, dependency-free modeling
DSL in the spirit of PuLP:

>>> m = Model("demo", sense=Sense.MINIMIZE)
>>> x = m.binary_var("x")
>>> y = m.binary_var("y")
>>> _ = m.add_constr(x + y >= 1, name="cover")
>>> m.set_objective(2 * x + 3 * y)

Models are solved through a backend (:mod:`repro.mip.highs` or
:mod:`repro.mip.branch_bound`); :meth:`Model.to_standard_form` lowers the
model to the matrix form ``min c'x  s.t.  lb_c <= A x <= ub_c`` that both
backends consume.

Unit conventions (see :mod:`repro.analysis.dims`): the scheduling IPs of
Section 4 carry coefficients in simulated seconds (transfer and compute
times, Eq. 9-13) and their makespan variable is seconds as well; the model
layer itself is dimension-agnostic and only the coefficients carry units.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from collections.abc import Iterable, Mapping, Sequence

import numpy as np

from ..obs.core import telemetry
from .errors import ModelError

__all__ = [
    "Sense",
    "VarType",
    "Var",
    "LinExpr",
    "Constraint",
    "StandardForm",
    "Model",
]


class Sense(enum.Enum):
    """Optimization direction of a model objective."""

    MINIMIZE = "min"
    MAXIMIZE = "max"


class VarType(enum.Enum):
    """Domain of a decision variable."""

    CONTINUOUS = "continuous"
    INTEGER = "integer"
    BINARY = "binary"


class Var:
    """A single decision variable.

    Variables are created through :class:`Model` factory methods so that each
    one receives a unique column index. Arithmetic on variables produces
    :class:`LinExpr` objects; comparisons produce :class:`Constraint` objects.
    """

    __slots__ = ("name", "index", "vtype", "lb", "ub")

    def __init__(self, name: str, index: int, vtype: VarType, lb: float, ub: float):
        if lb > ub:
            raise ModelError(f"variable {name!r}: lower bound {lb} > upper bound {ub}")
        self.name = name
        self.index = index
        self.vtype = vtype
        self.lb = float(lb)
        self.ub = float(ub)

    # -- expression building -------------------------------------------------
    def _expr(self) -> LinExpr:
        return LinExpr({self.index: 1.0}, 0.0)

    def __add__(self, other):
        return self._expr() + other

    def __radd__(self, other):
        return self._expr() + other

    def __sub__(self, other):
        return self._expr() - other

    def __rsub__(self, other):
        return (-1.0) * self._expr() + other

    def __mul__(self, coef):
        return self._expr() * coef

    def __rmul__(self, coef):
        return self._expr() * coef

    def __neg__(self):
        return self._expr() * -1.0

    # -- constraint building -------------------------------------------------
    def __le__(self, other):
        return self._expr() <= other

    def __ge__(self, other):
        return self._expr() >= other

    def __eq__(self, other):  # type: ignore[override]
        return self._expr() == other

    def __hash__(self):
        return hash((id(type(self)), self.index))

    def __repr__(self):
        return f"Var({self.name!r})"


class LinExpr:
    """An affine expression ``sum(coeff_i * var_i) + constant``.

    Internally a mapping from variable column index to coefficient. All
    arithmetic returns new expressions; in-place mutation is only used by
    the fast accumulation helper :meth:`add_term`.
    """

    __slots__ = ("coeffs", "constant")

    def __init__(self, coeffs: Mapping[int, float] | None = None, constant: float = 0.0):
        self.coeffs: dict[int, float] = dict(coeffs) if coeffs else {}
        self.constant = float(constant)

    # -- construction helpers -----------------------------------------------
    @staticmethod
    def from_terms(terms: Iterable[tuple[Var, float]], constant: float = 0.0) -> LinExpr:
        """Build an expression from ``(var, coefficient)`` pairs.

        Much faster than repeated ``+`` for long sums — used by the IP
        scheduler when assembling constraints over thousands of variables.
        """
        coeffs: dict[int, float] = {}
        for var, coef in terms:
            idx = var.index
            coeffs[idx] = coeffs.get(idx, 0.0) + float(coef)
        return LinExpr(coeffs, constant)

    def add_term(self, var: Var, coef: float) -> LinExpr:
        """In-place accumulate ``coef * var``; returns self for chaining."""
        self.coeffs[var.index] = self.coeffs.get(var.index, 0.0) + float(coef)
        return self

    def copy(self) -> LinExpr:
        return LinExpr(self.coeffs, self.constant)

    # -- arithmetic -----------------------------------------------------------
    @staticmethod
    def _coerce(other) -> LinExpr:
        if isinstance(other, LinExpr):
            return other
        if isinstance(other, Var):
            return other._expr()
        if isinstance(other, (int, float, np.integer, np.floating)):
            return LinExpr({}, float(other))
        raise TypeError(f"cannot combine LinExpr with {type(other).__name__}")

    def __add__(self, other):
        o = self._coerce(other)
        out = self.copy()
        for idx, coef in o.coeffs.items():
            out.coeffs[idx] = out.coeffs.get(idx, 0.0) + coef
        out.constant += o.constant
        return out

    def __radd__(self, other):
        return self.__add__(other)

    def __sub__(self, other):
        return self.__add__(self._coerce(other) * -1.0)

    def __rsub__(self, other):
        return (self * -1.0).__add__(other)

    def __mul__(self, coef):
        if not isinstance(coef, (int, float, np.integer, np.floating)):
            raise TypeError("LinExpr can only be multiplied by a scalar")
        c = float(coef)
        return LinExpr({i: v * c for i, v in self.coeffs.items()}, self.constant * c)

    def __rmul__(self, coef):
        return self.__mul__(coef)

    def __neg__(self):
        return self.__mul__(-1.0)

    # -- comparisons -> constraints -------------------------------------------
    def __le__(self, other):
        diff = self - self._coerce(other)
        return Constraint(diff, -math.inf, 0.0)

    def __ge__(self, other):
        diff = self - self._coerce(other)
        return Constraint(diff, 0.0, math.inf)

    def __eq__(self, other):  # type: ignore[override]
        diff = self - self._coerce(other)
        return Constraint(diff, 0.0, 0.0)

    def __hash__(self):
        return id(self)

    def value(self, assignment: Sequence[float]) -> float:
        """Evaluate the expression under a column-indexed assignment."""
        return self.constant + sum(assignment[i] * c for i, c in self.coeffs.items())

    def __repr__(self):
        terms = " + ".join(f"{c:g}*x{i}" for i, c in sorted(self.coeffs.items()))
        return f"LinExpr({terms or '0'} + {self.constant:g})"


@dataclass
class Constraint:
    """A two-sided linear constraint ``lb <= expr <= ub``.

    The expression's constant term is folded into the bounds at build time so
    that ``expr.constant`` is always zero for stored constraints.
    """

    expr: LinExpr
    lb: float
    ub: float
    name: str = ""

    def __post_init__(self):
        if self.expr.constant != 0.0:
            self.lb -= self.expr.constant
            self.ub -= self.expr.constant
            self.expr = LinExpr(self.expr.coeffs, 0.0)
        if self.lb > self.ub + 1e-12:
            raise ModelError(
                f"constraint {self.name or '<anon>'}: lower bound {self.lb} > upper bound {self.ub}"
            )

    def violation(self, assignment: Sequence[float]) -> float:
        """Amount by which the constraint is violated (0 when satisfied)."""
        v = self.expr.value(assignment)
        if v < self.lb:
            return self.lb - v
        if v > self.ub:
            return v - self.ub
        return 0.0


@dataclass
class StandardForm:
    """Matrix lowering of a model: ``min c @ x`` with row and column bounds.

    ``sense_mult`` is +1 for minimization models and -1 for maximization
    (the objective vector ``c`` is already multiplied through, so backends
    always minimize; reported objective values must be multiplied back).
    """

    c: np.ndarray
    a_rows: list[dict[int, float]]
    row_lb: np.ndarray
    row_ub: np.ndarray
    col_lb: np.ndarray
    col_ub: np.ndarray
    integrality: np.ndarray  # 1 where integer/binary, 0 where continuous
    sense_mult: float
    objective_constant: float = 0.0

    @property
    def num_vars(self) -> int:
        return len(self.c)

    @property
    def num_constrs(self) -> int:
        return len(self.a_rows)

    def dense_matrix(self) -> np.ndarray:
        """Materialise A as a dense array (small models / tests only)."""
        a = np.zeros((self.num_constrs, self.num_vars))
        for r, row in enumerate(self.a_rows):
            for cidx, coef in row.items():
                a[r, cidx] = coef
        return a


class Model:
    """A named MILP model: variables, linear constraints, linear objective."""

    def __init__(self, name: str = "model", sense: Sense = Sense.MINIMIZE):
        self.name = name
        self.sense = sense
        self.variables: list[Var] = []
        self.constraints: list[Constraint] = []
        self.objective: LinExpr = LinExpr()
        self._names: set[str] = set()

    # -- variable factories ----------------------------------------------------
    def _register(self, name: str, vtype: VarType, lb: float, ub: float) -> Var:
        if not name:
            name = f"x{len(self.variables)}"
        if name in self._names:
            raise ModelError(f"duplicate variable name {name!r}")
        self._names.add(name)
        var = Var(name, len(self.variables), vtype, lb, ub)
        self.variables.append(var)
        return var

    def binary_var(self, name: str = "") -> Var:
        """Create a 0/1 variable."""
        return self._register(name, VarType.BINARY, 0.0, 1.0)

    def integer_var(self, name: str = "", lb: float = 0.0, ub: float = math.inf) -> Var:
        """Create a general integer variable with the given bounds."""
        return self._register(name, VarType.INTEGER, lb, ub)

    def continuous_var(
        self, name: str = "", lb: float = 0.0, ub: float = math.inf
    ) -> Var:
        """Create a continuous variable with the given bounds."""
        return self._register(name, VarType.CONTINUOUS, lb, ub)

    def binary_var_dict(self, keys: Iterable, prefix: str) -> dict:
        """Create one binary variable per key, named ``prefix[key]``."""
        return {k: self.binary_var(f"{prefix}[{k}]") for k in keys}

    # -- constraints / objective -------------------------------------------------
    def add_constr(self, constr: Constraint, name: str = "") -> Constraint:
        """Attach a constraint built via expression comparison operators."""
        if not isinstance(constr, Constraint):
            raise ModelError(
                "add_constr expects a Constraint (use <=, >= or == on expressions); "
                f"got {type(constr).__name__}"
            )
        if name:
            constr.name = name
        elif not constr.name:
            constr.name = f"c{len(self.constraints)}"
        self.constraints.append(constr)
        return constr

    def set_objective(self, expr: LinExpr | Var | float, sense: Sense | None = None):
        """Set the objective expression (and optionally flip the sense)."""
        self.objective = LinExpr._coerce(expr)
        if sense is not None:
            self.sense = sense

    # -- lowering ------------------------------------------------------------------
    @telemetry.timed("mip-lower")
    def to_standard_form(self) -> StandardForm:
        """Lower to minimization matrix form consumed by the backends."""
        n = len(self.variables)
        mult = 1.0 if self.sense is Sense.MINIMIZE else -1.0
        c = np.zeros(n)
        for idx, coef in self.objective.coeffs.items():
            c[idx] = mult * coef
        a_rows: list[dict[int, float]] = []
        row_lb = np.empty(len(self.constraints))
        row_ub = np.empty(len(self.constraints))
        for r, constr in enumerate(self.constraints):
            a_rows.append(dict(constr.expr.coeffs))
            row_lb[r] = constr.lb
            row_ub[r] = constr.ub
        col_lb = np.array([v.lb for v in self.variables])
        col_ub = np.array([v.ub for v in self.variables])
        integrality = np.array(
            [0 if v.vtype is VarType.CONTINUOUS else 1 for v in self.variables]
        )
        return StandardForm(
            c=c,
            a_rows=a_rows,
            row_lb=row_lb,
            row_ub=row_ub,
            col_lb=col_lb,
            col_ub=col_ub,
            integrality=integrality,
            sense_mult=mult,
            objective_constant=self.objective.constant,
        )

    # -- introspection ----------------------------------------------------------
    @property
    def num_vars(self) -> int:
        return len(self.variables)

    @property
    def num_constrs(self) -> int:
        return len(self.constraints)

    def is_feasible(self, assignment: Sequence[float], tol: float = 1e-6) -> bool:
        """Check an assignment against all constraints, bounds and domains."""
        for var in self.variables:
            v = assignment[var.index]
            if v < var.lb - tol or v > var.ub + tol:
                return False
            if var.vtype is not VarType.CONTINUOUS and abs(v - round(v)) > tol:
                return False
        return all(c.violation(assignment) <= tol for c in self.constraints)

    def __repr__(self):
        return (
            f"Model({self.name!r}, {self.sense.value}, "
            f"{self.num_vars} vars, {self.num_constrs} constrs)"
        )
