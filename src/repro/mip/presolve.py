"""Presolve: cheap model reductions applied before branch and bound.

Classic bound-strengthening techniques for mixed 0-1 models, applied to a
:class:`~repro.mip.model.Model` without changing its optimal value:

* **Activity-based feasibility** — a constraint whose minimum possible
  activity exceeds its upper bound (or maximum activity is below its lower
  bound) proves infeasibility immediately.
* **Redundant-row removal** — a constraint satisfied by *every* assignment
  within the variable bounds carries no information and is dropped.
* **Bound propagation / variable fixing** — for a variable ``x`` with
  coefficient ``a`` in row ``lb <= ax + rest <= ub``, the residual activity
  bounds of ``rest`` imply tighter bounds on ``x``; integer bounds are
  rounded, and variables whose bounds meet are fixed.

Iterates to a fixpoint. The scheduling IPs benefit substantially: e.g.
Eq. 5 (`R + sum Y <= 1 - pre`) with ``pre = 1`` instantly fixes the row's
variables to zero, which cascades through Eqs. 1 and 4.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from .model import Constraint, LinExpr, Model, VarType

__all__ = ["PresolveResult", "presolve"]

_EPS = 1e-9


@dataclass
class PresolveResult:
    """Outcome of presolving a model.

    ``model`` is the reduced model (same variable set, tightened bounds,
    fewer rows); ``fixed`` maps variable names to their forced values;
    ``infeasible`` is True when presolve proved there is no solution.
    """

    model: Model
    fixed: dict[str, float] = field(default_factory=dict)
    removed_rows: int = 0
    tightened_bounds: int = 0
    rounds: int = 0
    infeasible: bool = False


def _row_activity_bounds(
    expr: LinExpr, lo: list[float], hi: list[float]
) -> tuple[float, float]:
    """Min and max possible value of ``expr`` under variable bounds."""
    amin = amax = 0.0
    for idx, coef in expr.coeffs.items():
        if coef >= 0:
            amin += coef * lo[idx]
            amax += coef * hi[idx]
        else:
            amin += coef * hi[idx]
            amax += coef * lo[idx]
    return amin, amax


def presolve(model: Model, max_rounds: int = 20) -> PresolveResult:
    """Reduce ``model``; returns a new model plus a reduction report.

    The input model is not mutated. Variable indices are preserved, so
    solutions of the reduced model are solutions of the original.
    """
    lo = [v.lb for v in model.variables]
    hi = [v.ub for v in model.variables]
    is_int = [v.vtype is not VarType.CONTINUOUS for v in model.variables]
    rows: list[Constraint] = list(model.constraints)
    result_fixed: dict[str, float] = {}
    removed = 0
    tightened = 0
    rounds = 0

    for _ in range(max_rounds):
        rounds += 1
        changed = False
        keep: list[Constraint] = []
        for constr in rows:
            amin, amax = _row_activity_bounds(constr.expr, lo, hi)
            # Infeasible row?
            if amin > constr.ub + 1e-6 or amax < constr.lb - 1e-6:
                return PresolveResult(
                    model=model,
                    fixed=result_fixed,
                    removed_rows=removed,
                    tightened_bounds=tightened,
                    rounds=rounds,
                    infeasible=True,
                )
            # Redundant row?
            if amin >= constr.lb - _EPS and amax <= constr.ub + _EPS:
                removed += 1
                changed = True
                continue
            keep.append(constr)

            # Bound propagation on each variable of the row.
            for idx, coef in constr.expr.coeffs.items():
                if abs(coef) < _EPS:
                    continue
                # Residual activity without this variable's contribution.
                # Subtracting an infinite contribution from an infinite
                # activity is undefined (inf - inf); recompute the residual
                # exactly in that case.
                contrib_min = coef * lo[idx] if coef >= 0 else coef * hi[idx]
                contrib_max = coef * hi[idx] if coef >= 0 else coef * lo[idx]
                if math.isinf(contrib_min) or math.isinf(contrib_max):
                    # Subtracting an infinite contribution is undefined.
                    # Recompute the residual exactly for short rows; for
                    # long rows (the O(n^2) blow-up is not worth it) skip
                    # propagation of this variable — always sound.
                    if len(constr.expr.coeffs) > 50:
                        continue
                    rest = LinExpr(
                        {i: c for i, c in constr.expr.coeffs.items() if i != idx}
                    )
                    rest_min, rest_max = _row_activity_bounds(rest, lo, hi)
                else:
                    rest_min = amin - contrib_min
                    rest_max = amax - contrib_max
                # lb <= coef*x + rest <= ub
                if constr.ub != math.inf and rest_min != -math.inf:
                    limit = (constr.ub - rest_min) / coef
                    if coef > 0 and limit < hi[idx] - 1e-9:
                        hi[idx] = math.floor(limit + 1e-9) if is_int[idx] else limit
                        tightened += 1
                        changed = True
                    elif coef < 0 and limit > lo[idx] + 1e-9:
                        lo[idx] = math.ceil(limit - 1e-9) if is_int[idx] else limit
                        tightened += 1
                        changed = True
                if constr.lb != -math.inf and rest_max != math.inf:
                    limit = (constr.lb - rest_max) / coef
                    if coef > 0 and limit > lo[idx] + 1e-9:
                        lo[idx] = math.ceil(limit - 1e-9) if is_int[idx] else limit
                        tightened += 1
                        changed = True
                    elif coef < 0 and limit < hi[idx] - 1e-9:
                        hi[idx] = math.floor(limit + 1e-9) if is_int[idx] else limit
                        tightened += 1
                        changed = True
                if lo[idx] > hi[idx] + 1e-9:
                    return PresolveResult(
                        model=model,
                        fixed=result_fixed,
                        removed_rows=removed,
                        tightened_bounds=tightened,
                        rounds=rounds,
                        infeasible=True,
                    )
        rows = keep
        if not changed:
            break

    # Build the reduced model: same variables with tightened bounds.
    reduced = Model(f"{model.name}:presolved", model.sense)
    for v in model.variables:
        new = reduced._register(v.name, v.vtype, lo[v.index], hi[v.index])
        assert new.index == v.index
        if lo[v.index] == hi[v.index]:
            result_fixed[v.name] = lo[v.index]
    for constr in rows:
        reduced.constraints.append(
            Constraint(LinExpr(constr.expr.coeffs), constr.lb, constr.ub, constr.name)
        )
    reduced.objective = LinExpr(model.objective.coeffs, model.objective.constant)
    return PresolveResult(
        model=reduced,
        fixed=result_fixed,
        removed_rows=removed,
        tightened_bounds=tightened,
        rounds=rounds,
    )
