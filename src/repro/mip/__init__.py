"""0-1 / mixed integer linear programming substrate.

The paper's IP scheduler (Section 4) needs a MILP engine; the original work
used ``lp_solve``. This package provides:

* :mod:`repro.mip.model` — a tiny PuLP-style modeling DSL,
* :mod:`repro.mip.highs` — an exact backend on ``scipy.optimize.milp`` (HiGHS),
* :mod:`repro.mip.branch_bound` — a from-scratch LP-relaxation branch and
  bound solver, used both as a fallback and as an independent cross-check.

>>> from repro.mip import Model, Sense, solve
>>> m = Model("knapsack", Sense.MAXIMIZE)
>>> x = [m.binary_var(f"x{i}") for i in range(3)]
>>> _ = m.add_constr(2 * x[0] + 3 * x[1] + 4 * x[2] <= 5)
>>> m.set_objective(3 * x[0] + 4 * x[1] + 5 * x[2])
>>> sol = solve(m)
>>> round(sol.objective)
7
"""

from .branch_bound import BranchBoundSolver, solve_with_branch_bound
from .errors import (
    InfeasibleError,
    MipError,
    ModelError,
    SolverError,
    UnboundedError,
)
from .highs import HighsSolver, solve_with_highs
from .model import Constraint, LinExpr, Model, Sense, StandardForm, Var, VarType
from .presolve import PresolveResult, presolve
from .solution import Solution, Status

__all__ = [
    "Model",
    "Sense",
    "Var",
    "VarType",
    "LinExpr",
    "Constraint",
    "StandardForm",
    "Solution",
    "Status",
    "HighsSolver",
    "BranchBoundSolver",
    "solve",
    "solve_with_highs",
    "solve_with_branch_bound",
    "get_solver",
    "presolve",
    "PresolveResult",
    "MipError",
    "ModelError",
    "SolverError",
    "InfeasibleError",
    "UnboundedError",
]

_SOLVERS = {
    "highs": HighsSolver,
    "branch-bound": BranchBoundSolver,
}


def get_solver(name: str = "highs", **kwargs):
    """Instantiate a solver backend by name (``highs`` or ``branch-bound``)."""
    try:
        cls = _SOLVERS[name]
    except KeyError:
        raise SolverError(
            f"unknown solver {name!r}; available: {sorted(_SOLVERS)}"
        ) from None
    return cls(**kwargs)


def solve(model: Model, solver: str = "highs", **kwargs) -> Solution:
    """Solve ``model`` with the named backend and return its :class:`Solution`."""
    return get_solver(solver, **kwargs).solve(model)
