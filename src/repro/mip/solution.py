"""Solver-independent solution objects returned by MILP backends."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from ..analysis.dims import Dimensionless, Seconds
from .errors import InfeasibleError, SolverError, UnboundedError
from .model import Model, Var

__all__ = ["Status", "Solution"]


class Status(enum.Enum):
    """Outcome of a solve call."""

    OPTIMAL = "optimal"
    FEASIBLE = "feasible"  # stopped early (node/time limit) with an incumbent
    INFEASIBLE = "infeasible"
    UNBOUNDED = "unbounded"
    ERROR = "error"

    @property
    def has_solution(self) -> bool:
        return self in (Status.OPTIMAL, Status.FEASIBLE)


@dataclass
class Solution:
    """Result of solving a :class:`repro.mip.model.Model`.

    ``values`` is indexed by variable column index; use :meth:`value` /
    :meth:`__getitem__` to read a variable. ``objective`` is reported in the
    model's original sense (maximization objectives are not negated).
    """

    status: Status
    objective: float | None = None
    values: list[float] = field(default_factory=list)
    # Diagnostics
    solve_time: Seconds = 0.0
    nodes_explored: int = 0
    gap: Dimensionless | None = None
    message: str = ""

    def value(self, var: Var, *, integral: bool = True) -> float:
        """Value of ``var``; binary/integer values are rounded by default."""
        if not self.status.has_solution:
            raise SolverError(f"no solution available (status={self.status.value})")
        v = self.values[var.index]
        return float(round(v)) if integral else float(v)

    def __getitem__(self, var: Var) -> float:
        return self.value(var)

    def require_solution(self) -> Solution:
        """Raise a typed error unless an incumbent solution exists."""
        if self.status is Status.INFEASIBLE:
            raise InfeasibleError(self.message or "model is infeasible")
        if self.status is Status.UNBOUNDED:
            raise UnboundedError(self.message or "model is unbounded")
        if not self.status.has_solution:
            raise SolverError(self.message or f"solver failed: {self.status.value}")
        return self

    def check(self, model: Model, tol: float = 1e-5) -> bool:
        """Verify the incumbent against the model (defense in depth)."""
        return self.status.has_solution and model.is_feasible(self.values, tol)
