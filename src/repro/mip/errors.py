"""Exception types for the :mod:`repro.mip` modeling layer and solvers."""

from __future__ import annotations


class MipError(Exception):
    """Base class for all MILP modeling and solving errors."""


class ModelError(MipError):
    """Raised for malformed models (duplicate names, bad bounds, ...)."""


class SolverError(MipError):
    """Raised when a backend fails in a way that is not a status code."""


class InfeasibleError(SolverError):
    """Raised by :meth:`repro.mip.solution.Solution.require_optimal` when the
    model was proven infeasible."""


class UnboundedError(SolverError):
    """Raised when the model was proven unbounded."""
