"""A from-scratch 0-1/integer branch-and-bound MILP solver.

This backend removes even the HiGHS dependency: LP relaxations are solved
with ``scipy.optimize.linprog`` and integrality is enforced by best-bound
branch and bound with most-fractional branching. It is intended for the
small IP instances the paper can realistically solve (Section 7 shows the IP
scheme is only practical at small scale anyway) and as an independent check
on the HiGHS backend — both must agree on optimal objectives.

Algorithm
---------
* Node relaxation: the model's LP relaxation with tightened variable bounds
  accumulated along the branching path.
* Bounding: a node is pruned when its relaxation objective cannot beat the
  incumbent (within ``abs_tol``).
* Branching: the integer variable whose relaxation value is closest to 0.5
  fractional part ("most fractional").
* Search order: best-bound first via a heap, which keeps the proven gap
  monotone and lets early termination report a meaningful gap.
"""

from __future__ import annotations

import heapq
import itertools
import math
import time

import numpy as np
from scipy import optimize, sparse

from ..analysis.dims import Seconds
from ..obs.core import telemetry
from .highs import record_solve
from .model import Model, StandardForm
from .solution import Solution, Status

__all__ = ["BranchBoundSolver", "solve_with_branch_bound"]

_INT_TOL = 1e-6


class _Node:
    """A branch-and-bound node: per-variable bound overrides plus its LP bound."""

    __slots__ = ("bound", "col_lb", "col_ub", "depth")

    def __init__(self, bound: float, col_lb: np.ndarray, col_ub: np.ndarray, depth: int):
        self.bound = bound
        self.col_lb = col_lb
        self.col_ub = col_ub
        self.depth = depth


class BranchBoundSolver:
    """Exact MILP solver via LP-relaxation branch and bound.

    Parameters
    ----------
    node_limit:
        Maximum number of explored nodes before stopping with the incumbent
        (``Status.FEASIBLE``) or ``Status.ERROR`` when none exists.
    time_limit:
        Wall clock budget in seconds.
    abs_tol:
        Absolute objective tolerance used for pruning and optimality claims.
    """

    name = "branch-bound"

    def __init__(
        self,
        node_limit: int = 200_000,
        time_limit: Seconds | None = None,
        abs_tol: float = 1e-6,
        presolve: bool = True,
    ):
        self.node_limit = node_limit
        self.time_limit = time_limit
        self.abs_tol = abs_tol
        self.presolve = presolve

    # -- LP relaxation ---------------------------------------------------------
    @staticmethod
    def _build_matrix(sf: StandardForm):
        """Split two-sided rows into A_ub x <= b_ub and A_eq x = b_eq triplets."""
        ub_rows, ub_b = [], []
        eq_rows, eq_b = [], []
        for row, lo, hi in zip(sf.a_rows, sf.row_lb, sf.row_ub, strict=True):
            if lo == hi:
                eq_rows.append(row)
                eq_b.append(lo)
                continue
            if hi != math.inf:
                ub_rows.append(row)
                ub_b.append(hi)
            if lo != -math.inf:
                ub_rows.append({i: -c for i, c in row.items()})
                ub_b.append(-lo)

        def to_csr(rows):
            if not rows:
                return None
            r_idx, c_idx, vals = [], [], []
            for r, row in enumerate(rows):
                for cidx, coef in row.items():
                    r_idx.append(r)
                    c_idx.append(cidx)
                    vals.append(coef)
            return sparse.csr_matrix(
                (vals, (r_idx, c_idx)), shape=(len(rows), sf.num_vars)
            )

        return to_csr(ub_rows), np.array(ub_b), to_csr(eq_rows), np.array(eq_b)

    @staticmethod
    def _round_candidate(model, sf, x, int_cols):
        """Round the relaxation solution; return (objective, x) if feasible.

        The continuous variables are kept as-is; only integer columns are
        snapped. Feasibility is verified against the *original* model, so
        a rounded point can never be accepted wrongly.
        """
        candidate = x.copy()
        candidate[int_cols] = np.round(candidate[int_cols])
        candidate = np.clip(candidate, sf.col_lb, sf.col_ub)
        if model.is_feasible(candidate.tolist()):
            return float(sf.c @ candidate), candidate
        return None

    def _solve_relaxation(self, sf, a_ub, b_ub, a_eq, b_eq, col_lb, col_ub):
        res = optimize.linprog(
            c=sf.c,
            A_ub=a_ub,
            b_ub=b_ub if a_ub is not None else None,
            A_eq=a_eq,
            b_eq=b_eq if a_eq is not None else None,
            bounds=np.column_stack([col_lb, col_ub]),
            method="highs",
        )
        return res

    # -- main loop ---------------------------------------------------------------
    def solve(self, model: Model) -> Solution:
        with telemetry.span("mip-solve"):
            solution = self._solve(model)
        record_solve(self.name, solution)
        return solution

    def _solve(self, model: Model) -> Solution:
        start = time.perf_counter()
        if self.presolve:
            from .presolve import presolve as run_presolve

            pre = run_presolve(model)
            if pre.infeasible:
                return Solution(
                    status=Status.INFEASIBLE,
                    solve_time=time.perf_counter() - start,
                    message="presolve proved infeasibility",
                )
            model = pre.model
        sf = model.to_standard_form()
        if sf.num_vars == 0:
            return Solution(
                status=Status.OPTIMAL, objective=sf.objective_constant, values=[]
            )
        a_ub, b_ub, a_eq, b_eq = self._build_matrix(sf)
        int_cols = np.flatnonzero(sf.integrality)

        root = self._solve_relaxation(
            sf, a_ub, b_ub, a_eq, b_eq, sf.col_lb, sf.col_ub
        )
        if root.status == 2:
            return Solution(status=Status.INFEASIBLE, message="root LP infeasible")
        if root.status == 3:
            return Solution(status=Status.UNBOUNDED, message="root LP unbounded")
        if root.status != 0:
            return Solution(status=Status.ERROR, message=str(root.message))

        # Primal rounding heuristic: snap the root relaxation to integers
        # and keep it as the starting incumbent when feasible. Costs one
        # feasibility check and often prunes most of the tree.
        rounded = self._round_candidate(model, sf, root.x, int_cols)

        counter = itertools.count()
        heap: list[tuple[float, int, _Node, np.ndarray]] = []
        heapq.heappush(
            heap,
            (
                root.fun,
                next(counter),
                _Node(root.fun, sf.col_lb.copy(), sf.col_ub.copy(), 0),
                root.x,
            ),
        )

        best_obj = math.inf
        best_x: np.ndarray | None = None
        if rounded is not None:
            best_obj, best_x = rounded
        nodes = 0
        stopped_early = False

        while heap:
            bound, _, node, x = heapq.heappop(heap)
            if bound >= best_obj - self.abs_tol:
                continue  # cannot improve the incumbent
            nodes += 1
            if nodes > self.node_limit:
                stopped_early = True
                break
            if (
                self.time_limit is not None
                and time.perf_counter() - start > self.time_limit
            ):
                stopped_early = True
                break

            frac = x[int_cols] - np.round(x[int_cols])
            frac_mask = np.abs(frac) > _INT_TOL
            if not frac_mask.any():
                # Integral relaxation solution: new incumbent.
                if bound < best_obj - self.abs_tol:
                    best_obj = bound
                    best_x = x
                continue

            # Most-fractional branching.
            cand = int_cols[frac_mask]
            pick = cand[np.argmin(np.abs(np.abs(frac[frac_mask]) - 0.5))]
            pivot = x[pick]

            for is_down in (True, False):
                lb = node.col_lb.copy()
                ub = node.col_ub.copy()
                if is_down:
                    ub[pick] = math.floor(pivot)
                else:
                    lb[pick] = math.ceil(pivot)
                if lb[pick] > ub[pick]:
                    continue
                res = self._solve_relaxation(sf, a_ub, b_ub, a_eq, b_eq, lb, ub)
                if res.status != 0:
                    continue  # infeasible child (or numerical failure): prune
                if res.fun >= best_obj - self.abs_tol:
                    continue
                heapq.heappush(
                    heap,
                    (
                        res.fun,
                        next(counter),
                        _Node(res.fun, lb, ub, node.depth + 1),
                        res.x,
                    ),
                )

        elapsed = time.perf_counter() - start
        if best_x is None:
            if stopped_early:
                return Solution(
                    status=Status.ERROR,
                    nodes_explored=nodes,
                    solve_time=elapsed,
                    message="limit reached before any incumbent was found",
                )
            return Solution(
                status=Status.INFEASIBLE,
                nodes_explored=nodes,
                solve_time=elapsed,
                message="search exhausted with no integral solution",
            )

        # Snap near-integral values so downstream rounding is clean.
        values = best_x.copy()
        values[int_cols] = np.round(values[int_cols])
        remaining_bound = min((entry[0] for entry in heap), default=best_obj)
        gap = max(0.0, best_obj - min(best_obj, remaining_bound))
        objective = sf.sense_mult * best_obj + sf.objective_constant
        return Solution(
            status=Status.FEASIBLE if stopped_early else Status.OPTIMAL,
            objective=objective,
            values=[float(v) for v in values],
            nodes_explored=nodes,
            solve_time=elapsed,
            gap=gap if stopped_early else 0.0,
        )


def solve_with_branch_bound(model: Model, **kwargs) -> Solution:
    """Convenience wrapper: ``BranchBoundSolver(**kwargs).solve(model)``."""
    return BranchBoundSolver(**kwargs).solve(model)
