"""HiGHS backend: solve a :class:`repro.mip.model.Model` via SciPy.

``scipy.optimize.milp`` wraps the HiGHS branch-and-cut solver, which plays the
role of ``lp_solve`` in the original paper: an exact off-the-shelf MILP
engine. This is the default backend for the IP scheduler.
"""

from __future__ import annotations

import time

from scipy import optimize, sparse

from ..analysis.dims import Seconds
from ..obs.core import telemetry
from .model import Model
from .solution import Solution, Status

__all__ = ["HighsSolver", "solve_with_highs"]


def record_solve(backend: str, solution: Solution) -> None:
    """Report one MILP solve to the telemetry registry (no-op when off)."""
    telemetry.count("mip/solves")
    telemetry.count(f"mip/{backend}/solves")
    telemetry.count("mip/nodes", float(solution.nodes_explored))
    if solution.gap is not None:
        telemetry.gauge("mip/gap", float(solution.gap))


class HighsSolver:
    """Thin adapter from the modeling layer to ``scipy.optimize.milp``.

    Parameters
    ----------
    time_limit:
        Wall-clock budget in seconds, or ``None`` for no limit. When the
        limit is hit with an incumbent, the result has ``Status.FEASIBLE``.
    mip_rel_gap:
        Relative optimality gap at which HiGHS may stop (0 = prove optimal).
    """

    name = "highs"

    def __init__(self, time_limit: Seconds | None = None, mip_rel_gap: float = 0.0):
        self.time_limit = time_limit
        self.mip_rel_gap = mip_rel_gap

    def solve(self, model: Model) -> Solution:
        with telemetry.span("mip-solve"):
            solution = self._solve(model)
        record_solve(self.name, solution)
        return solution

    def _solve(self, model: Model) -> Solution:
        sf = model.to_standard_form()
        start = time.perf_counter()
        if sf.num_vars == 0:
            return Solution(
                status=Status.OPTIMAL, objective=sf.objective_constant, values=[]
            )

        if sf.num_constrs:
            rows, cols, vals = [], [], []
            for r, row in enumerate(sf.a_rows):
                for cidx, coef in row.items():
                    rows.append(r)
                    cols.append(cidx)
                    vals.append(coef)
            a = sparse.csr_matrix(
                (vals, (rows, cols)), shape=(sf.num_constrs, sf.num_vars)
            )
            constraints = optimize.LinearConstraint(a, sf.row_lb, sf.row_ub)
        else:
            constraints = ()

        options: dict = {"mip_rel_gap": self.mip_rel_gap}
        if self.time_limit is not None:
            options["time_limit"] = float(self.time_limit)

        res = optimize.milp(
            c=sf.c,
            constraints=constraints,
            integrality=sf.integrality,
            bounds=optimize.Bounds(sf.col_lb, sf.col_ub),
            options=options,
        )
        elapsed = time.perf_counter() - start

        # scipy.optimize.milp status codes: 0 optimal, 1 iteration/time limit,
        # 2 infeasible, 3 unbounded, 4 other.
        if res.status == 0:
            status = Status.OPTIMAL
        elif res.status == 1 and res.x is not None:
            status = Status.FEASIBLE
        elif res.status == 2:
            status = Status.INFEASIBLE
        elif res.status == 3:
            status = Status.UNBOUNDED
        else:
            status = Status.ERROR

        objective = None
        values: list[float] = []
        if status.has_solution and res.x is not None:
            values = [float(v) for v in res.x]
            # milp reports the minimized value; undo the sense multiplier so
            # maximization models read naturally.
            objective = sf.sense_mult * float(res.fun) + sf.objective_constant
        gap = getattr(res, "mip_gap", None)
        return Solution(
            status=status,
            objective=objective,
            values=values,
            solve_time=elapsed,
            gap=float(gap) if gap is not None else None,
            nodes_explored=int(getattr(res, "mip_node_count", 0) or 0),
            message=str(res.message),
        )


def solve_with_highs(model: Model, **kwargs) -> Solution:
    """Convenience wrapper: ``HighsSolver(**kwargs).solve(model)``."""
    return HighsSolver(**kwargs).solve(model)
