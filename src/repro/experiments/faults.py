"""Fault-injection experiments: degradation curves and chaos sweeps.

Not a paper figure — the paper's evaluation assumes a reliable platform —
but the natural stress test of its central claim: the schedulers' advantage
comes from *data-aware placement*, so it should survive (degrade gracefully
under) transient transfer failures, link slowdowns and node crashes rather
than evaporate. Two entry points:

* :func:`degradation_curve` — makespan vs transfer-failure rate per scheme,
  the artifact uploaded by the nightly chaos CI job. Rate ``0.0`` is a
  genuinely null spec (:func:`repro.faults.resolve_spec` maps it to ``None``)
  and therefore bit-identical to the fault-free baseline.
* :func:`chaos_sweep` — fault rate x scheme grid with ``audit=True``: every
  cell re-verifies invariants E1-E7 on the executed trace and raises
  :class:`~repro.analysis.audit.AuditError` on any violation. This is the
  CI gate, not a plot.

Both route cells through :func:`repro.parallel.map_configs`, so they share
the process fan-out and the on-disk result cache with the figure sweeps
(fault specs are part of the cache key — see ``repro.parallel.cache``).
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import TYPE_CHECKING

from .figures import _sweep
from .report import Table
from .runner import ExperimentConfig, default_scheduler_kwargs

if TYPE_CHECKING:  # pragma: no cover
    from ..parallel import ResultCache

__all__ = ["CHAOS_SCHEMES", "degradation_curve", "chaos_sweep"]

#: Schemes exercised by the nightly chaos sweep: both proposed schemes'
#: cheap halves plus both baselines (IP is excluded for runtime, as in the
#: paper's own large sweeps).
CHAOS_SCHEMES = ("bipartition", "minmin", "jdp")


def _fault_cell(
    experiment: str,
    scheme: str,
    rate: float,
    *,
    workload: str,
    overlap: str,
    num_tasks: int,
    storage: str,
    seed: int,
    fault_seed: int,
    crash_node: int | None,
    crash_time: float | None,
    audit: bool,
    ip_time_limit: float,
) -> ExperimentConfig:
    faults: dict | None = {
        "transfer_failure_rate": rate,
        "seed": fault_seed,
    }
    if crash_node is not None:
        assert faults is not None
        faults["node_crashes"] = [
            {"node": crash_node, "time": 0.0 if crash_time is None else crash_time}
        ]
    if rate == 0.0 and crash_node is None:
        # A fully null dict still resolves to None, but passing None keeps
        # the cache key identical to historical fault-free runs.
        faults = None
    return ExperimentConfig(
        experiment=experiment,
        workload=workload,
        overlap=overlap,
        num_tasks=num_tasks,
        storage=storage,
        scheme=scheme,
        seed=seed,
        scheduler_kwargs=default_scheduler_kwargs(scheme, ip_time_limit),
        audit=audit,
        faults=faults,
    )


def degradation_curve(
    rates: Sequence[float] = (0.0, 0.1, 0.2, 0.4),
    schemes: Sequence[str] = CHAOS_SCHEMES,
    workload: str = "image",
    overlap: str = "high",
    num_tasks: int = 50,
    storage: str = "xio",
    seed: int = 0,
    fault_seed: int = 0,
    crash_node: int | None = None,
    crash_time: float | None = None,
    audit: bool = False,
    ip_time_limit: float = 20.0,
    workers: int | None = None,
    cache: ResultCache | None | bool = None,
) -> Table:
    """Makespan vs transient transfer-failure rate, per scheme.

    The x column is the injected failure rate; optionally a single node
    crash (``crash_node`` at ``crash_time``) is layered onto every non-zero
    cell to also exercise dynamic rescheduling. Expected shape: makespan
    grows smoothly with the rate (retries + backoff + failover cost), and
    the scheme ranking of Figs. 3/4 is preserved — a cliff or a rank flip
    is a regression in the recovery path, which is exactly what the nightly
    chaos job looks for in the uploaded artifact.
    """
    crash_note = (
        f", crash node {crash_node}@{crash_time or 0.0:g}s"
        if crash_node is not None
        else ""
    )
    table = Table(
        f"faults: {workload.upper()} {overlap} overlap (n={num_tasks}, "
        f"{storage.upper()}), makespan vs transfer-failure rate{crash_note}"
    )
    cells = [
        (
            _fault_cell(
                "faults-degradation",
                scheme,
                rate,
                workload=workload,
                overlap=overlap,
                num_tasks=num_tasks,
                storage=storage,
                seed=seed,
                fault_seed=fault_seed,
                crash_node=crash_node if rate > 0.0 else None,
                crash_time=crash_time,
                audit=audit,
                ip_time_limit=ip_time_limit,
            ),
            rate,
        )
        for rate in rates
        for scheme in schemes
    ]
    return _sweep(table, cells, workers, cache)


def chaos_sweep(
    rates: Sequence[float] = (0.1, 0.3),
    schemes: Sequence[str] = CHAOS_SCHEMES,
    workload: str = "image",
    overlap: str = "high",
    num_tasks: int = 30,
    storage: str = "xio",
    seed: int = 0,
    fault_seed: int = 0,
    crash_node: int | None = 1,
    crash_time: float | None = 5.0,
    ip_time_limit: float = 20.0,
    workers: int | None = None,
    cache: ResultCache | None | bool = None,
) -> Table:
    """Audit-gated fault grid: every cell runs with ``audit=True``.

    Raises :class:`~repro.analysis.audit.AuditError` if any executed trace
    violates E1-E7 (including the fault invariants E6 "no activity after a
    crash" and E7 "every failed transfer retried or re-sourced"). Returning
    at all means the whole grid passed.
    """
    table = Table(
        f"chaos: audited fault grid, {workload.upper()} {overlap} overlap "
        f"(n={num_tasks}, {storage.upper()})"
    )
    cells = [
        (
            _fault_cell(
                "faults-chaos",
                scheme,
                rate,
                workload=workload,
                overlap=overlap,
                num_tasks=num_tasks,
                storage=storage,
                seed=seed,
                fault_seed=fault_seed,
                crash_node=crash_node,
                crash_time=crash_time,
                audit=True,
                ip_time_limit=ip_time_limit,
            ),
            rate,
        )
        for rate in rates
        for scheme in schemes
    ]
    return _sweep(table, cells, workers, cache)
