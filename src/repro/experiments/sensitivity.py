"""Sensitivity analysis: when does coupling scheduling and replication pay?

An added experiment beyond the paper's figures: sweep the platform's
*replication advantage* — the ratio between compute-interconnect bandwidth
and storage bandwidth — and measure the gap between the affinity-aware
BiPartition scheduler and the greedy MinMin baseline.

The paper's two testbeds are two points of this curve (XIO: replication
~4.8x faster than remote; OSUMED: ~80x). Measured shape: with *no*
replication advantage greedy MinMin is competitive — its completion-time
estimates are essentially exact when a copy costs the same as a re-read —
but as replication gets cheap, MinMin's implicit copies spread sharers
across nodes whose ports then congest, and the affinity-aware BiPartition
mapping pulls ahead. That crossover is the regime the paper's proposed
schemes are designed for.
"""

from __future__ import annotations

from collections.abc import Sequence

from ..cluster.platform import ComputeNode, Platform, StorageNode
from ..core.driver import run_batch
from ..workloads import generate_image_batch
from .report import Record, Table

__all__ = ["replication_advantage_sweep"]


def _platform(storage_bw: float, compute_bw: float, num_compute: int = 4,
              num_storage: int = 4) -> Platform:
    return Platform(
        compute_nodes=tuple(ComputeNode(i) for i in range(num_compute)),
        storage_nodes=tuple(
            StorageNode(s, disk_bw=storage_bw) for s in range(num_storage)
        ),
        storage_network_bw=max(storage_bw, compute_bw),
        compute_network_bw=compute_bw,
        name=f"sweep-{compute_bw / storage_bw:g}x",
    )


def replication_advantage_sweep(
    ratios: Sequence[float] = (1.0, 2.0, 5.0, 10.0, 20.0),
    storage_bw: float = 100.0,
    num_tasks: int = 60,
    schemes: Sequence[str] = ("bipartition", "minmin", "jdp"),
    seed: int = 0,
) -> Table:
    """Sweep compute-interconnect bandwidth as a multiple of storage bw.

    Returns one record per (ratio, scheme); ``x`` is the ratio.
    """
    table = Table(
        f"sensitivity: replication advantage sweep "
        f"(IMAGE high overlap, n={num_tasks}, storage {storage_bw:.0f} MB/s)"
    )
    for ratio in ratios:
        platform = _platform(storage_bw, storage_bw * ratio)
        batch = generate_image_batch(
            num_tasks, "high", platform.num_storage, seed=seed
        )
        for scheme in schemes:
            res = run_batch(batch, platform, scheme)
            table.add(
                Record(
                    experiment="sensitivity-replication",
                    workload="image",
                    scheme=scheme,
                    x=ratio,
                    makespan_s=res.makespan,
                    remote_transfers=res.stats.remote_transfers,
                    remote_volume_mb=res.stats.remote_volume_mb,
                    replications=res.stats.replications,
                    replication_volume_mb=res.stats.replication_volume_mb,
                )
            )
    return table
