"""Streaming experiments: arrival rate x admission policy x scheme sweeps.

Wraps :mod:`repro.online` in the same config-to-record shape as the batch
experiment runner: a :class:`StreamConfig` names the workload, platform,
arrival process and admission policy; :func:`run_stream_config` executes
it in warm or cold mode; :func:`stream_sweep` crosses arrival rates,
policies and schemes and reports the queueing metrics side by side (warm
vs cold per cell). Stream specs are plain JSON (``examples/streams/``) so
``repro stream`` can run one end to end; see ``docs/online.md``.
"""

from __future__ import annotations

import math
from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field, replace
from typing import Any

from ..cluster.platform import Platform, osc_osumed, osc_xio
from ..online import (
    ClusterSession,
    JobStream,
    StreamResult,
    arrivals_from_spec,
    make_policy,
    stream_from_batch,
)
from ..workloads import make_batch
from .runner import GB, default_scheduler_kwargs

__all__ = [
    "StreamConfig",
    "StreamRecord",
    "build_stream",
    "render_stream_table",
    "run_stream_config",
    "stream_config_from_dict",
    "stream_sweep",
]


@dataclass
class StreamConfig:
    """One streaming cell: workload x platform x arrival x policy x scheme."""

    experiment: str
    workload: str  # any repro.workloads.WORKLOADS name
    overlap: str
    num_jobs: int
    storage: str  # "xio" | "osumed"
    num_compute: int = 4
    num_storage: int = 4
    disk_space_mb: float = math.inf
    scheme: str = "bipartition"
    seed: int = 0
    # Arrival block: {"kind": "poisson"|"bursty"|"trace", ...} — see
    # repro.online.arrivals.arrivals_from_spec.
    arrival: dict = field(
        default_factory=lambda: {"kind": "poisson", "rate": 0.02, "seed": 0}
    )
    policy: str = "fifo"  # "fifo" | "size" | "locality"
    max_window: int | None = None  # window cap for size/locality policies
    allow_replication: bool = True
    candidate_limit: int | None = None
    scheduler_kwargs: dict = field(default_factory=dict)
    audit: bool = False
    timeseries: bool = False
    faults: dict | None = None

    def platform(self) -> Platform:
        maker = osc_xio if self.storage == "xio" else osc_osumed
        return maker(
            num_compute=self.num_compute,
            num_storage=self.num_storage,
            disk_space_mb=self.disk_space_mb,
        )

    def stream(self) -> JobStream:
        batch = make_batch(
            self.workload,
            self.num_jobs,
            self.overlap,
            self.num_storage,
            seed=self.seed,
        )
        times = arrivals_from_spec(self.arrival, len(batch.tasks))
        return stream_from_batch(batch, times)


def stream_config_from_dict(spec: Mapping[str, Any]) -> StreamConfig:
    """Build a :class:`StreamConfig` from a stream-spec JSON dict.

    ``disk_gb`` (decimal GB, like the CLI flag) is accepted as sugar for
    ``disk_space_mb``; unknown keys are rejected so typos fail loudly.
    """
    data = dict(spec)
    if "disk_gb" in data:
        disk_gb = data.pop("disk_gb")
        if disk_gb is not None:
            data["disk_space_mb"] = float(disk_gb) * GB
    known = set(StreamConfig.__dataclass_fields__)
    unknown = sorted(set(data) - known)
    if unknown:
        raise ValueError(f"unknown stream spec keys: {unknown}")
    return StreamConfig(**data)


def build_stream(cfg: StreamConfig) -> JobStream:
    """The configured job stream (workload batch + arrival times)."""
    return cfg.stream()


def run_stream_config(cfg: StreamConfig, *, warm: bool = True) -> StreamResult:
    """Execute one streaming cell in warm or cold mode."""
    kwargs = dict(default_scheduler_kwargs(cfg.scheme))
    kwargs.update(cfg.scheduler_kwargs)
    session = ClusterSession(
        cfg.platform(),
        cfg.stream(),
        cfg.scheme,
        policy=make_policy(cfg.policy, cfg.max_window),
        warm=warm,
        allow_replication=cfg.allow_replication,
        candidate_limit=cfg.candidate_limit,
        scheduler_kwargs=kwargs,
        audit=cfg.audit,
        faults=cfg.faults,
        timeseries=cfg.timeseries,
    )
    result = session.run()
    result.arrival = dict(cfg.arrival)
    return result


@dataclass(frozen=True)
class StreamRecord:
    """One sweep row: a cell's queueing metrics in one mode."""

    experiment: str
    scheme: str
    policy: str
    mode: str
    rate: float | str
    mean_response_s: float
    mean_queueing_delay_s: float
    mean_slowdown: float
    throughput_jobs_per_s: float
    cross_batch_hit_volume_mb: float
    batches: int


def _record(cfg: StreamConfig, rate: float | str, res: StreamResult) -> StreamRecord:
    return StreamRecord(
        experiment=cfg.experiment,
        scheme=cfg.scheme,
        policy=cfg.policy,
        mode=res.mode,
        rate=rate,
        mean_response_s=res.mean_response_s,
        mean_queueing_delay_s=res.mean_queueing_delay_s,
        mean_slowdown=res.mean_slowdown,
        throughput_jobs_per_s=res.throughput_jobs_per_s,
        cross_batch_hit_volume_mb=res.cross_batch_hit_volume_mb,
        batches=len(res.batches),
    )


def stream_sweep(
    base: StreamConfig,
    *,
    rates: Sequence[float],
    policies: Sequence[str] = ("fifo", "size", "locality"),
    schemes: Sequence[str] = ("bipartition", "minmin"),
    modes: Sequence[str] = ("warm", "cold"),
) -> list[StreamRecord]:
    """Cross arrival rate x policy x scheme (x mode) from a base config.

    Rates only apply to Poisson/bursty arrival blocks (the ``rate`` key is
    replaced per cell); each cell reruns the full session per mode so warm
    and cold rows are directly comparable.
    """
    records = []
    for rate in rates:
        for policy in policies:
            for scheme in schemes:
                cfg = replace(
                    base,
                    scheme=scheme,
                    policy=policy,
                    arrival={**base.arrival, "rate": rate},
                )
                for mode in modes:
                    res = run_stream_config(cfg, warm=(mode == "warm"))
                    records.append(_record(cfg, rate, res))
    return records


def render_stream_table(records: Sequence[StreamRecord], title: str = "") -> str:
    """Fixed-width text table of sweep rows (same spirit as Table.render)."""
    header = (
        f"{'scheme':<12} {'policy':<9} {'mode':<5} {'rate':>8} "
        f"{'resp_s':>9} {'queue_s':>9} {'slowdn':>7} {'thru/s':>8} "
        f"{'xb_MB':>9} {'batches':>7}"
    )
    lines = [title, header, "-" * len(header)] if title else [header, "-" * len(header)]
    for r in records:
        rate = f"{r.rate:.4g}" if isinstance(r.rate, float) else str(r.rate)
        lines.append(
            f"{r.scheme:<12} {r.policy:<9} {r.mode:<5} {rate:>8} "
            f"{r.mean_response_s:>9.1f} {r.mean_queueing_delay_s:>9.1f} "
            f"{r.mean_slowdown:>7.2f} {r.throughput_jobs_per_s:>8.4f} "
            f"{r.cross_batch_hit_volume_mb:>9.0f} {r.batches:>7}"
        )
    return "\n".join(lines)
