"""Generate EXPERIMENTS.md: paper-expected vs measured for every figure."""

from __future__ import annotations

import io
import time
from collections.abc import Callable

from .figures import (
    fig3_image_overlap,
    fig4_sat_overlap,
    fig5a_replication_benefit,
    fig5b_batch_size,
    fig6a_compute_scaling,
    fig6b_scheduling_overhead,
)
from .report import Table

__all__ = ["generate_experiments_markdown"]


def _overlap_observation(table: Table) -> str:
    """One-line summary of an overlap-sweep table (Figs. 3 and 4)."""
    by: dict[str, dict[str, float]] = {}
    for r in table.records:
        by.setdefault(str(r.x), {})[r.scheme] = r.makespan_s
    parts = []
    for overlap, schemes in by.items():
        best = min(schemes, key=schemes.get)
        mm = schemes.get("minmin")
        bp = schemes.get("bipartition")
        ip = schemes.get("ip")
        note = f"{overlap}: best={best}"
        if bp and mm:
            note += f", bipartition is {mm / bp:.2f}x faster than minmin"
        if bp and ip:
            note += f", bipartition/ip = {bp / ip:.2f}"
        parts.append(note)
    return "; ".join(parts) + "."

_PAPER_NOTES = {
    "fig3": (
        "IMAGE, 100 tasks, 4 compute + 4 storage nodes, OSUMED (a) and XIO "
        "(b). Paper: IP and BiPartition beat JDP+DLL and MinMin at every "
        "overlap level; the gap is largest at high overlap and vanishes at "
        "0 % overlap; JDP beats MinMin; BiPartition within 5-10 % of IP."
    ),
    "fig4": (
        "SAT, 100 tasks, same setup, overlap 85/40/10 %. Paper: same "
        "ordering as Fig. 3; OSUMED times are an order of magnitude above "
        "XIO because all remote I/O crosses a shared 100 Mbps link."
    ),
    "fig5a": (
        "100-task high-overlap batches, 8 compute + 4 OSUMED storage "
        "nodes. Paper: enabling compute-to-compute replication gives a "
        "significant improvement because replicas offload the contended "
        "storage cluster."
    ),
    "fig5b": (
        "IMAGE high overlap, 500-4000 tasks, 4 compute + 4 XIO storage, "
        "40 GB disk/node (working set grows ~40 -> ~330 GB). Paper: base "
        "schemes degrade faster with batch size as evictions mount; "
        "BiPartition stays cheapest; IP omitted (prohibitive overhead)."
    ),
    "fig6a": (
        "1000 high-overlap IMAGE tasks, 8 XIO storage nodes, compute nodes "
        "2 -> 32. Paper: BiPartition best throughout; diminishing returns, "
        "and the curve turns back up at 32 nodes as storage contention and "
        "file spreading grow."
    ),
    "fig6b": (
        "Per-task scheduling time for the same sweep. Paper: IP is orders "
        "of magnitude costlier and grows with configuration size; MinMin > "
        "JDP (it rescans every task-host pair per step); BiPartition and "
        "JDP are negligible."
    ),
}


def generate_experiments_markdown(
    *,
    num_tasks: int = 40,
    ip_time_limit: float = 15.0,
    fig5b_sizes=(100, 200, 400),
    fig5b_disk_mb: float = 4_000.0,
    fig6_tasks: int = 200,
    fig6_nodes=(2, 8, 32),
    progress: Callable[[str], None] | None = None,
) -> str:
    """Run every figure sweep and render the full EXPERIMENTS.md text.

    Defaults use the reduced benchmark scale; pass the paper-scale numbers
    (100 tasks, 500-4000 sizes, 2-32 nodes, 1000 tasks) for a full run.
    """
    say = progress or (lambda s: None)
    out = io.StringIO()
    out.write(
        "# EXPERIMENTS — paper vs. measured\n\n"
        "Every figure of the paper's evaluation (Section 7), regenerated "
        "by this repository's benchmark harness. Absolute seconds differ "
        "from the paper (our substrate is a simulator with the published "
        "bandwidth constants, not the 2006 clusters); the *shapes* are the "
        "reproduction target and each one is asserted by "
        "`benchmarks/test_fig*.py`.\n\n"
        f"Scale of this report: {num_tasks}-task batches for Figs. 3/4/5a, "
        f"{list(fig5b_sizes)} tasks for Fig. 5b, {fig6_tasks} tasks on "
        f"{list(fig6_nodes)} nodes for Fig. 6 "
        "(set `REPRO_PAPER_SCALE=1` in the benchmarks for the full-scale "
        "run).\n\n"
        f"Generated with `repro.experiments.markdown` on "
        f"{time.strftime('%Y-%m-%d')}.\n"
    )

    def section(fig_id: str, title: str, table: Table, observed: str):
        out.write(f"\n## {title}\n\n")
        out.write(f"**Paper setup & expected shape.** {_PAPER_NOTES[fig_id]}\n\n")
        out.write("```\n" + table.render() + "\n```\n\n")
        out.write(f"**Measured.** {observed}\n")

    # --- Figure 3 -------------------------------------------------------------
    for storage in ("osumed", "xio"):
        say(f"fig3 {storage}")
        t = fig3_image_overlap(
            storage=storage, num_tasks=num_tasks, ip_time_limit=ip_time_limit
        )
        obs = _overlap_observation(t)
        section(
            "fig3",
            f"Figure 3{'(a)' if storage == 'osumed' else '(b)'} — IMAGE vs "
            f"overlap, {storage.upper()} storage",
            t,
            obs,
        )

    # --- Figure 4 -------------------------------------------------------------
    for storage in ("osumed", "xio"):
        say(f"fig4 {storage}")
        t = fig4_sat_overlap(
            storage=storage, num_tasks=num_tasks, ip_time_limit=ip_time_limit
        )
        section(
            "fig4",
            f"Figure 4{'(a)' if storage == 'osumed' else '(b)'} — SAT vs "
            f"overlap, {storage.upper()} storage",
            t,
            _overlap_observation(t),
        )

    # --- Figure 5a -------------------------------------------------------------
    say("fig5a")
    t = fig5a_replication_benefit(num_tasks=max(num_tasks, 60))
    rep = {r.x: r.makespan_s for r in t.records if r.scheme == "bipartition"}
    norep = {
        r.x: r.makespan_s for r in t.records if r.scheme == "bipartition-norep"
    }
    obs = "; ".join(
        f"{w}: no-replication is {norep[w] / rep[w]:.2f}x slower"
        for w in rep
    )
    section("fig5a", "Figure 5(a) — replication benefit", t, obs + ".")

    # --- Figure 5b -------------------------------------------------------------
    say("fig5b")
    t = fig5b_batch_size(batch_sizes=fig5b_sizes, disk_space_mb=fig5b_disk_mb)
    top = max(fig5b_sizes)
    lo = min(fig5b_sizes)
    growths = {}
    for scheme in ("bipartition", "minmin", "jdp"):
        s = {r.x: r.makespan_s for r in t.records if r.scheme == scheme}
        growths[scheme] = s[top] / s[lo]
    obs = (
        "growth from the smallest to the largest batch: "
        + ", ".join(f"{k} {v:.1f}x" for k, v in growths.items())
        + "; eviction counts rise fastest for MinMin."
    )
    section("fig5b", "Figure 5(b) — batch-size scaling under disk pressure", t, obs)

    # --- Figure 6a -------------------------------------------------------------
    say("fig6a")
    t = fig6a_compute_scaling(node_counts=fig6_nodes, num_tasks=fig6_tasks)
    bp = {r.x: r.makespan_s for r in t.records if r.scheme == "bipartition"}
    xs = sorted(bp)
    obs = (
        "BiPartition best or tied-best at every width; speedup "
        f"{bp[xs[0]] / bp[xs[-1]]:.1f}x from {xs[0]} to {xs[-1]} nodes with "
        "clearly diminishing returns at the wide end."
    )
    section("fig6a", "Figure 6(a) — compute-node scaling", t, obs)

    # --- Figure 6b -------------------------------------------------------------
    say("fig6b")
    t = fig6b_scheduling_overhead(
        node_counts=fig6_nodes,
        num_tasks=fig6_tasks,
        ip_task_cap=16,
        ip_time_limit=10.0,
    )
    ip = {
        r.x: r.scheduling_ms_per_task for r in t.records if r.scheme == "ip"
    }
    others = [
        r.scheduling_ms_per_task for r in t.records if r.scheme != "ip"
    ]
    obs = (
        f"IP costs {min(ip.values()):.0f}-{max(ip.values()):.0f} ms/task and "
        f"grows with node count; every other scheme stays under "
        f"{max(others):.2f} ms/task."
    )
    section("fig6b", "Figure 6(b) — scheduling overhead", t, obs)

    # --- Added sensitivity experiment (beyond the paper) -----------------------
    say("sensitivity")
    from .sensitivity import replication_advantage_sweep

    t = replication_advantage_sweep(
        ratios=(1.0, 5.0, 20.0), num_tasks=min(num_tasks * 1, 60)
    )
    out.write("\n## Added experiment — replication-advantage sensitivity\n\n")
    out.write(
        "**Setup.** Not in the paper: sweep the compute-interconnect /"
        " storage bandwidth ratio (the paper's testbeds sit at ~4.8x for"
        " XIO and ~80x for OSUMED) on a high-overlap IMAGE batch.\n\n"
    )
    out.write("```\n" + t.render() + "\n```\n\n")
    gaps = {}
    for ratio in (1.0, 5.0, 20.0):
        by = {r.scheme: r.makespan_s for r in t.records if r.x == ratio}
        gaps[ratio] = by["minmin"] / by["bipartition"]
    out.write(
        "**Measured.** MinMin/BiPartition makespan ratio: "
        + ", ".join(f"{k:g}x -> {v:.2f}" for k, v in gaps.items())
        + ". With no replication advantage greedy MinMin is competitive; "
        "as replication gets cheap its implicit copies spread sharers and "
        "the affinity-aware mapping pulls ahead — the regime the paper's "
        "schemes target.\n"
    )

    out.write(
        "\n## Known deviations\n\n"
        "* **Absolute times** — the simulator charges the paper's published "
        "bandwidths and the 0.001 s/MB compute cost; queueing effects of "
        "the real clusters (OS caches, TCP dynamics) are not modelled.\n"
        "* **IP at scale** — like the paper, the IP scheme is only run on "
        "small instances / truncated batches; with a time limit it returns "
        "the HiGHS incumbent, so it can occasionally trail BiPartition "
        "slightly instead of leading it.\n"
        "* **Overlap labels** — the paper's 85/40/10 % levels are "
        "reproduced as mean pairwise file overlap *within an affinity "
        "group* (hot-spot set for SAT, patient+modality for IMAGE); see "
        "DESIGN.md for why a global sharing fraction cannot express the "
        "low-overlap SAT case with the published dataset size.\n"
        "* **MinMin vs JDP overhead (Fig. 6b)** — our MinMin inner loop is "
        "vectorised, so at reduced scale its per-task cost can sit below "
        "JDP's; the paper's ordering re-emerges as batch size grows "
        "(asserted by `test_fig6b_minmin_overhead_grows_with_batch`).\n"
    )
    return out.getvalue()
