"""ASCII-table / CSV reporting for experiment results."""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Sequence

__all__ = ["Record", "Table"]


@dataclass(frozen=True)
class Record:
    """One experiment data point (a bar or curve point in a paper figure)."""

    experiment: str
    workload: str
    scheme: str
    x: float | str  # overlap level, batch size, node count, ...
    makespan_s: float
    scheduling_ms_per_task: float = 0.0
    remote_transfers: int = 0
    remote_volume_mb: float = 0.0
    replications: int = 0
    replication_volume_mb: float = 0.0
    evictions: int = 0
    sub_batches: int = 1


@dataclass
class Table:
    """A printable result table, one row per record."""

    title: str
    records: list[Record] = field(default_factory=list)

    def add(self, record: Record):
        self.records.append(record)

    def rows(self, columns: Sequence[str]) -> list[list[str]]:
        out = []
        for r in self.records:
            row = []
            for col in columns:
                v = getattr(r, col)
                row.append(f"{v:.2f}" if isinstance(v, float) else str(v))
            out.append(row)
        return out

    def render(
        self,
        columns: Sequence[str] = (
            "workload",
            "scheme",
            "x",
            "makespan_s",
            "scheduling_ms_per_task",
            "remote_transfers",
            "replications",
            "evictions",
        ),
    ) -> str:
        header = list(columns)
        rows = self.rows(columns)
        widths = [
            max(len(header[i]), *(len(r[i]) for r in rows)) if rows else len(header[i])
            for i in range(len(header))
        ]
        sep = "-+-".join("-" * w for w in widths)
        lines = [
            self.title,
            " | ".join(h.ljust(w) for h, w in zip(header, widths, strict=True)),
            sep,
        ]
        for r in rows:
            lines.append(" | ".join(c.ljust(w) for c, w in zip(r, widths, strict=True)))
        return "\n".join(lines)

    def to_csv(self, columns: Sequence[str]) -> str:
        lines = [",".join(columns)]
        for row in self.rows(columns):
            lines.append(",".join(row))
        return "\n".join(lines)
