"""Experiment runner: configuration -> batch -> scheduler runs -> records."""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..batch import Batch
from ..cluster.platform import Platform, osc_osumed, osc_xio
from ..core.driver import run_batch
from ..core.plan import BatchResult
from ..workloads import WORKLOADS, available_workloads, make_batch
from .report import Record

__all__ = [
    "ExperimentConfig",
    "default_scheduler_kwargs",
    "run_config",
    "run_config_cell",
    "run_config_result",
]

GB = 1000.0  # MB per GB (decimal, as storage vendors and the paper use)


@dataclass
class ExperimentConfig:
    """One experiment cell: workload x platform x scheme."""

    experiment: str
    workload: str  # any repro.workloads.WORKLOADS name: "sat" | "image" | ...
    overlap: str
    num_tasks: int
    storage: str  # "xio" | "osumed"
    num_compute: int = 4
    num_storage: int = 4
    disk_space_mb: float = math.inf
    scheme: str = "bipartition"
    seed: int = 0
    allow_replication: bool = True
    candidate_limit: int | None = None
    scheduler_kwargs: dict = field(default_factory=dict)
    audit: bool = False
    # Collect run telemetry/metrics (repro.obs). Non-semantic: does not
    # change the simulated result, and is excluded from the result-cache key.
    telemetry: bool = False
    # Attach simulated-time series probes (repro.obs.timeseries). Also
    # non-semantic: probes only observe, so decisions and the Record are
    # unchanged and the flag is excluded from the result-cache key.
    timeseries: bool = False
    # Fault-injection spec (:class:`repro.faults.FaultSpec` as a dict), or
    # ``None`` for a fault-free run. Semantic: part of the result-cache key.
    faults: dict | None = None

    def __post_init__(self) -> None:
        if self.workload not in WORKLOADS:
            raise ValueError(
                f"unknown workload {self.workload!r}; "
                f"use {available_workloads()}"
            )
        if self.storage not in ("xio", "osumed"):
            raise ValueError(
                f"unknown storage {self.storage!r}; use ['osumed', 'xio']"
            )

    def platform(self) -> Platform:
        maker = osc_xio if self.storage == "xio" else osc_osumed
        return maker(
            num_compute=self.num_compute,
            num_storage=self.num_storage,
            disk_space_mb=self.disk_space_mb,
        )

    def batch(self) -> Batch:
        return make_batch(
            self.workload,
            self.num_tasks,
            self.overlap,
            self.num_storage,
            seed=self.seed,
        )


def default_scheduler_kwargs(scheme: str, time_limit: float = 30.0) -> dict:
    """Sensible per-scheme options for experiment runs."""
    if scheme == "ip":
        return {"time_limit": time_limit, "mip_rel_gap": 0.05}
    return {}


def run_config_result(cfg: ExperimentConfig) -> BatchResult:
    """Execute one experiment cell, returning the full :class:`BatchResult`.

    Used by consumers that need more than the :class:`Record` summary —
    notably the ``repro metrics``/``repro profile`` commands, which read the
    telemetry attachments ``run_batch(telemetry=True)`` leaves on the result.
    """
    platform = cfg.platform()
    batch = cfg.batch()
    kwargs = dict(default_scheduler_kwargs(cfg.scheme))
    kwargs.update(cfg.scheduler_kwargs)
    return run_batch(
        batch,
        platform,
        cfg.scheme,
        allow_replication=cfg.allow_replication,
        candidate_limit=cfg.candidate_limit,
        scheduler_kwargs=kwargs,
        audit=cfg.audit,
        telemetry=cfg.telemetry,
        timeseries=cfg.timeseries,
        faults=cfg.faults,
    )


def run_config_cell(
    cfg: ExperimentConfig, x: float | str | None = None
) -> tuple[Record, dict | None]:
    """Execute one cell; returns the :class:`Record` summary plus the
    run's ``timeseries`` block (``None`` unless ``cfg.timeseries``)."""
    result: BatchResult = run_config_result(cfg)
    record = Record(
        experiment=cfg.experiment,
        workload=cfg.workload,
        scheme=cfg.scheme if cfg.allow_replication else f"{cfg.scheme}-norep",
        x=x if x is not None else cfg.overlap,
        makespan_s=result.makespan,
        scheduling_ms_per_task=result.scheduling_ms_per_task,
        remote_transfers=result.stats.remote_transfers,
        remote_volume_mb=result.stats.remote_volume_mb,
        replications=result.stats.replications,
        replication_volume_mb=result.stats.replication_volume_mb,
        evictions=result.stats.evictions,
        sub_batches=result.num_sub_batches,
    )
    return record, result.timeseries


def run_config(cfg: ExperimentConfig, x: float | str | None = None) -> Record:
    """Execute one experiment cell and summarise it as a :class:`Record`."""
    return run_config_cell(cfg, x)[0]
