"""Experiment harness reproducing every figure of the paper's evaluation."""

from .bench import (
    BenchCellResult,
    bench_end_to_end_cell,
    bench_mapping_cell,
    default_bench_cells,
    run_bench_cells,
    write_bench,
)
from .faults import CHAOS_SCHEMES, chaos_sweep, degradation_curve
from .figures import (
    fig3_image_overlap,
    fig4_sat_overlap,
    fig5a_replication_benefit,
    fig5b_batch_size,
    fig6a_compute_scaling,
    fig6b_scheduling_overhead,
)
from .markdown import generate_experiments_markdown
from .report import Record, Table
from .runner import (
    ExperimentConfig,
    default_scheduler_kwargs,
    run_config,
    run_config_result,
)
from .sensitivity import replication_advantage_sweep
from .stream import (
    StreamConfig,
    StreamRecord,
    render_stream_table,
    run_stream_config,
    stream_config_from_dict,
    stream_sweep,
)

__all__ = [
    "ExperimentConfig",
    "run_config",
    "run_config_result",
    "default_scheduler_kwargs",
    "Record",
    "Table",
    "fig3_image_overlap",
    "fig4_sat_overlap",
    "fig5a_replication_benefit",
    "fig5b_batch_size",
    "fig6a_compute_scaling",
    "fig6b_scheduling_overhead",
    "replication_advantage_sweep",
    "generate_experiments_markdown",
    "CHAOS_SCHEMES",
    "chaos_sweep",
    "degradation_curve",
    "BenchCellResult",
    "bench_mapping_cell",
    "bench_end_to_end_cell",
    "default_bench_cells",
    "run_bench_cells",
    "write_bench",
    "StreamConfig",
    "StreamRecord",
    "run_stream_config",
    "stream_config_from_dict",
    "stream_sweep",
    "render_stream_table",
]
