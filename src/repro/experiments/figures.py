"""One builder per figure of the paper's evaluation (Section 7).

Each function runs the corresponding sweep and returns a
:class:`~repro.experiments.report.Table`. Defaults reproduce the paper's
configurations; the benchmark harness passes scaled-down sizes so a full
regeneration stays laptop-sized (see ``benchmarks/``), since the substrate
here is a simulator rather than the authors' clusters. The *shape* of every
figure — which scheme wins, by what factor, where trends bend — is preserved
at either scale and asserted by the benchmarks.

Every sweep routes its independent cells through
:func:`repro.parallel.map_configs`, so figures regenerate across multiple
processes (``workers``) and replay unchanged cells from the on-disk cache
(``cache``); passing ``workers=None``/``cache=None`` defers to the
process-wide defaults set by :func:`repro.parallel.configure` or the
``REPRO_WORKERS``/``REPRO_CACHE_DIR`` environment variables.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import TYPE_CHECKING

from .report import Table
from .runner import ExperimentConfig, default_scheduler_kwargs

if TYPE_CHECKING:  # pragma: no cover
    from ..parallel import ResultCache

__all__ = [
    "fig3_image_overlap",
    "fig4_sat_overlap",
    "fig5a_replication_benefit",
    "fig5b_batch_size",
    "fig6a_compute_scaling",
    "fig6b_scheduling_overhead",
]

PROPOSED = ("ip", "bipartition")
BASELINES = ("minmin", "jdp")
ALL_SCHEMES = PROPOSED + BASELINES


def _sweep(
    table: Table,
    cells: Sequence[tuple[ExperimentConfig, float | str | None]],
    workers: int | None,
    cache: ResultCache | None | bool,
) -> Table:
    """Fan the sweep's cells out through ``repro.parallel`` and collect."""
    # Imported here, not at module top: repro.parallel itself imports the
    # experiment runner, and this package's __init__ imports figures.
    from ..parallel import map_configs

    configs = [cfg for cfg, _ in cells]
    xs = [x for _, x in cells]
    for record in map_configs(configs, xs, workers=workers, cache=cache):
        table.add(record)
    return table


def _overlap_sweep(
    experiment: str,
    workload: str,
    overlaps: Sequence[str],
    storage: str,
    num_tasks: int,
    schemes: Sequence[str],
    seed: int,
    ip_time_limit: float,
    workers: int | None = None,
    cache: ResultCache | None | bool = None,
) -> Table:
    table = Table(
        f"{experiment}: {workload.upper()} batch execution time on "
        f"{storage.upper()} (n={num_tasks}, 4 compute + 4 storage)"
    )
    cells = [
        (
            ExperimentConfig(
                experiment=experiment,
                workload=workload,
                overlap=overlap,
                num_tasks=num_tasks,
                storage=storage,
                scheme=scheme,
                seed=seed,
                scheduler_kwargs=default_scheduler_kwargs(scheme, ip_time_limit),
            ),
            overlap,
        )
        for overlap in overlaps
        for scheme in schemes
    ]
    return _sweep(table, cells, workers, cache)


def fig3_image_overlap(
    storage: str = "osumed",
    num_tasks: int = 100,
    schemes: Sequence[str] = ALL_SCHEMES,
    seed: int = 0,
    ip_time_limit: float = 60.0,
    workers: int | None = None,
    cache: ResultCache | None | bool = None,
) -> Table:
    """Figure 3: IMAGE batch execution time vs overlap level.

    Paper: IP and BiPartition beat MinMin and JDP+DLL at every overlap
    level, with the advantage largest for high overlap; 3(a) is the OSUMED
    storage cluster, 3(b) XIO.
    """
    return _overlap_sweep(
        f"fig3-{storage}",
        "image",
        ("high", "medium", "zero"),
        storage,
        num_tasks,
        schemes,
        seed,
        ip_time_limit,
        workers,
        cache,
    )


def fig4_sat_overlap(
    storage: str = "osumed",
    num_tasks: int = 100,
    schemes: Sequence[str] = ALL_SCHEMES,
    seed: int = 0,
    ip_time_limit: float = 60.0,
    workers: int | None = None,
    cache: ResultCache | None | bool = None,
) -> Table:
    """Figure 4: SAT batch execution time vs overlap level (as Fig. 3)."""
    return _overlap_sweep(
        f"fig4-{storage}",
        "sat",
        ("high", "medium", "low"),
        storage,
        num_tasks,
        schemes,
        seed,
        ip_time_limit,
        workers,
        cache,
    )


def fig5a_replication_benefit(
    num_tasks: int = 100,
    schemes: Sequence[str] = ("bipartition",),
    seed: int = 0,
    ip_time_limit: float = 60.0,
    workers: int | None = None,
    cache: ResultCache | None | bool = None,
) -> Table:
    """Figure 5(a): benefit of compute-to-compute replication.

    8 OSC compute nodes + 4 OSUMED storage nodes, 100-task high-overlap
    batches of both applications, each scheme run with replication enabled
    and disabled. Paper: replication wins clearly because it offloads the
    contended storage cluster.
    """
    table = Table(
        f"fig5a: replication vs no replication "
        f"(n={num_tasks}, 8 compute + 4 OSUMED storage, high overlap)"
    )
    cells = [
        (
            ExperimentConfig(
                experiment="fig5a",
                workload=workload,
                overlap="high",
                num_tasks=num_tasks,
                storage="osumed",
                num_compute=8,
                num_storage=4,
                scheme=scheme,
                seed=seed,
                allow_replication=allow,
                scheduler_kwargs=default_scheduler_kwargs(scheme, ip_time_limit),
            ),
            workload,
        )
        for workload in ("image", "sat")
        for scheme in schemes
        for allow in (True, False)
    ]
    return _sweep(table, cells, workers, cache)


def fig5b_batch_size(
    batch_sizes: Sequence[int] = (500, 1000, 2000, 4000),
    disk_space_mb: float = 40_000.0,
    schemes: Sequence[str] = ("bipartition",) + BASELINES,
    seed: int = 0,
    candidate_limit: int | None = 25,
    workers: int | None = None,
    cache: ResultCache | None | bool = None,
) -> Table:
    """Figure 5(b): batch execution time vs batch size under disk pressure.

    High-overlap IMAGE batches of 500-4000 tasks on 4 compute + 4 XIO
    storage nodes, 40 GB disk per compute node. Paper: the base schemes
    degrade faster as evictions mount; BiPartition's sub-batches and
    placements keep evictions low. (IP is omitted, as in the paper, because
    its scheduling overhead is prohibitive at this scale.)
    """
    table = Table(
        f"fig5b: IMAGE high overlap, batch-size sweep "
        f"(disk {disk_space_mb / 1000:.0f} GB/node, 4 compute + 4 XIO)"
    )
    cells = [
        (
            ExperimentConfig(
                experiment="fig5b",
                workload="image",
                overlap="high",
                num_tasks=n,
                storage="xio",
                disk_space_mb=disk_space_mb,
                scheme=scheme,
                seed=seed,
                candidate_limit=candidate_limit,
            ),
            n,
        )
        for n in batch_sizes
        for scheme in schemes
    ]
    return _sweep(table, cells, workers, cache)


def fig6a_compute_scaling(
    node_counts: Sequence[int] = (2, 4, 8, 16, 32),
    num_tasks: int = 1000,
    schemes: Sequence[str] = ("bipartition",) + BASELINES,
    seed: int = 0,
    candidate_limit: int | None = 25,
    workers: int | None = None,
    cache: ResultCache | None | bool = None,
) -> Table:
    """Figure 6(a): batch execution time vs number of compute nodes.

    1000 high-overlap IMAGE tasks, 8 XIO storage nodes, 2-32 compute nodes.
    Paper: BiPartition is best throughout; execution time stops improving
    (and rises at 32 nodes) as storage contention and file spreading grow.
    """
    table = Table(
        f"fig6a: IMAGE high overlap (n={num_tasks}), compute-node sweep "
        f"(8 XIO storage)"
    )
    cells = [
        (
            ExperimentConfig(
                experiment="fig6a",
                workload="image",
                overlap="high",
                num_tasks=num_tasks,
                storage="xio",
                num_compute=c,
                num_storage=8,
                scheme=scheme,
                seed=seed,
                candidate_limit=candidate_limit,
            ),
            c,
        )
        for c in node_counts
        for scheme in schemes
    ]
    return _sweep(table, cells, workers, cache)


def fig6b_scheduling_overhead(
    node_counts: Sequence[int] = (2, 4, 8, 16, 32),
    num_tasks: int = 1000,
    schemes: Sequence[str] = ALL_SCHEMES,
    ip_task_cap: int = 32,
    ip_time_limit: float = 20.0,
    seed: int = 0,
    candidate_limit: int | None = 25,
    workers: int | None = None,
    cache: ResultCache | None | bool = None,
) -> Table:
    """Figure 6(b): per-task scheduling time (ms) vs number of compute nodes.

    Paper: IP's overhead is orders of magnitude above the rest and grows
    steeply with the configuration; BiPartition and JDP stay tiny; MinMin
    sits in between because it iterates over all task-node pairs each step.
    IP runs on a truncated batch (``ip_task_cap``), as even the paper could
    not run it at full scale; its per-task overhead is what is reported.
    """
    table = Table(
        f"fig6b: per-task scheduling overhead (ms), IMAGE high overlap, "
        f"8 XIO storage"
    )
    cells = [
        (
            ExperimentConfig(
                experiment="fig6b",
                workload="image",
                overlap="high",
                num_tasks=min(num_tasks, ip_task_cap) if scheme == "ip" else num_tasks,
                storage="xio",
                num_compute=c,
                num_storage=8,
                scheme=scheme,
                seed=seed,
                candidate_limit=candidate_limit,
                scheduler_kwargs=default_scheduler_kwargs(scheme, ip_time_limit),
            ),
            c,
        )
        for c in node_counts
        for scheme in schemes
    ]
    return _sweep(table, cells, workers, cache)
