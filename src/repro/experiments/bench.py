"""Wall-clock benchmarks: incremental kernels vs their reference oracles.

The incremental MCT kernel (:mod:`repro.core.mct_kernel`) and the runtime
hot-path caches (:class:`repro.cluster.runtime.Runtime` with
``reference=False``) are *decision-identical* rewrites of the original
from-scratch scans — the only observable difference allowed is wall-clock
time. This module measures that difference on fixed cells and **refuses to
report a speedup that isn't decision-checked**: every cell runs both
flavours and asserts identical mappings (and, end-to-end, identical
makespans) before timing is accepted.

Two cell kinds:

* *mapping* cells time one ``next_subbatch`` call of an MCT-family scheme
  (the Fig. 6b scheduling-overhead axis, where the paper's O(T²·C) cost
  lives). The headline trajectory cell is MinMin at n=1000, c=32 — the
  largest Fig. 6b point.
* *end-to-end* cells time a whole ``run_batch`` (mapping + the Section 6
  runtime), so the runtime-side caches (source memoisation, the
  missing-bytes candidate index, cached eviction order) are exercised too.

Timing uses min-of-``repeats``: the minimum is the standard robust
estimator for "how fast can this code run" under scheduler noise (both
flavours get the same treatment). Results serialise to a
``BENCH_<sha>.json``-style document via :func:`write_bench`; the CI
``perf-smoke`` job and ``benchmarks/test_speed_schedulers.py`` gate on
them. See ``docs/performance.md``.
"""

from __future__ import annotations

import json
import os
import platform as _platform
import time
from dataclasses import asdict, dataclass
from pathlib import Path

from .. import __version__
from ..cluster.platform import osc_xio
from ..cluster.state import ClusterState
from ..core.base import make_scheduler
from ..core.driver import run_batch
from ..obs.core import telemetry
from ..workloads.image import generate_image_batch

__all__ = [
    "BenchCellResult",
    "append_trajectory",
    "bench_mapping_cell",
    "bench_end_to_end_cell",
    "default_bench_cells",
    "run_bench_cells",
    "write_bench",
]


@dataclass(frozen=True)
class BenchCellResult:
    """One decision-checked timing cell (all times in wall-clock seconds)."""

    cell: str
    kind: str  # "mapping" | "end_to_end"
    scheme: str
    num_tasks: int
    num_compute: int
    repeats: int
    reference_s: float
    optimized_s: float
    #: Work accounting of the incremental kernel's last run (mapping cells).
    kernel_stats: dict[str, float] | None = None

    @property
    def speedup(self) -> float:
        return self.reference_s / self.optimized_s if self.optimized_s else 0.0

    def to_dict(self) -> dict[str, object]:
        doc = asdict(self)
        doc["speedup"] = round(self.speedup, 3)
        doc["reference_s"] = round(self.reference_s, 6)
        doc["optimized_s"] = round(self.optimized_s, 6)
        return doc


@dataclass(frozen=True)
class _Cell:
    """A cell spec: :func:`run_bench_cells` dispatches on ``kind``."""

    cell: str
    kind: str
    scheme: str
    num_tasks: int
    num_compute: int
    candidate_limit: int | None = None


def _fig6b_inputs(num_tasks: int, num_compute: int, seed: int):
    """The Fig. 6b workload/platform pair at one grid point."""
    batch = generate_image_batch(num_tasks, "high", num_storage=8, seed=seed)
    platform = osc_xio(num_compute=num_compute, num_storage=8)
    return batch, platform


def bench_mapping_cell(
    scheme: str,
    num_tasks: int,
    num_compute: int,
    *,
    seed: int = 0,
    repeats: int = 5,
    cell: str | None = None,
) -> BenchCellResult:
    """Time one whole-batch ``next_subbatch`` call, reference vs optimized.

    Raises ``AssertionError`` if the two flavours ever disagree on the
    mapping — a speedup over a wrong answer is not a speedup.
    """
    batch, platform = _fig6b_inputs(num_tasks, num_compute, seed)
    task_ids = [t.task_id for t in batch.tasks]
    was_enabled = telemetry.enabled
    telemetry.disable()  # time the kernel, not the instrumentation
    try:
        # Flavours are interleaved (ref, opt, ref, opt, ...) so slow CPU
        # drift — thermal throttling, noisy-neighbour VMs — hits both
        # minimum-of-repeats estimates alike instead of whichever flavour
        # happened to run second.
        timings = {True: float("inf"), False: float("inf")}
        mappings: dict[bool, dict[str, int]] = {}
        stats: dict[str, float] | None = None
        for _ in range(repeats):
            for reference in (True, False):
                state = ClusterState.initial(platform, batch)
                sched = make_scheduler(scheme, seed=0)
                sched.reference = reference
                t0 = time.perf_counter()
                plan = sched.next_subbatch(batch, task_ids, platform, state)
                timings[reference] = min(
                    timings[reference], time.perf_counter() - t0
                )
                mappings[reference] = plan.mapping
                ks = getattr(sched, "kernel_stats", None)
                if not reference and ks is not None:
                    stats = ks.to_dict()
    finally:
        if was_enabled:
            telemetry.enable()
    assert mappings[True] == mappings[False], (
        f"{scheme} n={num_tasks} c={num_compute}: optimized mapping "
        "diverged from reference"
    )
    return BenchCellResult(
        cell=cell or f"mapping/{scheme}/n{num_tasks}c{num_compute}",
        kind="mapping",
        scheme=scheme,
        num_tasks=num_tasks,
        num_compute=num_compute,
        repeats=repeats,
        reference_s=timings[True],
        optimized_s=timings[False],
        kernel_stats=stats,
    )


def bench_end_to_end_cell(
    scheme: str,
    num_tasks: int,
    num_compute: int,
    *,
    seed: int = 0,
    repeats: int = 3,
    candidate_limit: int | None = None,
    cell: str | None = None,
) -> BenchCellResult:
    """Time a whole ``run_batch``, reference vs optimized.

    Asserts identical makespans and per-sub-batch mappings across the two
    flavours (the driver + runtime surface of the decision-identity claim).
    """
    batch, platform = _fig6b_inputs(num_tasks, num_compute, seed)
    timings: dict[bool, float] = {}
    shapes: dict[bool, tuple] = {}
    for reference in (True, False):
        best = float("inf")
        for _ in range(repeats):
            t0 = time.perf_counter()
            result = run_batch(
                batch,
                platform,
                scheme,
                candidate_limit=candidate_limit,
                reference=reference,
            )
            best = min(best, time.perf_counter() - t0)
        timings[reference] = best
        shapes[reference] = (
            result.makespan,
            [sb.plan.mapping for sb in result.sub_batches],
        )
    assert shapes[True] == shapes[False], (
        f"{scheme} n={num_tasks} c={num_compute}: optimized run_batch "
        "diverged from reference"
    )
    return BenchCellResult(
        cell=cell or f"e2e/{scheme}/n{num_tasks}c{num_compute}",
        kind="end_to_end",
        scheme=scheme,
        num_tasks=num_tasks,
        num_compute=num_compute,
        repeats=repeats,
        reference_s=timings[True],
        optimized_s=timings[False],
    )


def default_bench_cells(full: bool = False) -> list[_Cell]:
    """The fixed grid: quick (CI perf-smoke) or full (paper trajectory).

    Quick keeps CI under a minute and includes the Fig. 6b headline cell
    (MinMin, n=1000, c=32 — the acceptance gate for the incremental
    kernels); full adds the headline cell's MCT-family siblings and a
    smaller MinMin point.
    """
    cells = [
        # Quick mapping cells are MinMin-only on purpose: the CI gate
        # (``--min-speedup 2.0``) applies to every mapping cell in the
        # run, and only MinMin — whose selection is a single flat argmin —
        # clears 2x at these sizes. MaxMin/Sufferage spend most of their
        # round in their own per-row selection scans, which the
        # incremental kernel deliberately leaves untouched (they are the
        # tie-breaking semantics); their smaller speedups are tracked
        # ungated in the full grid and in benchmarks/.
        _Cell("mapping/minmin/n600c32", "mapping", "minmin", 600, 32),
        _Cell("mapping/minmin/n1000c32", "mapping", "minmin", 1000, 32),
        # End-to-end parity guard: run_batch at a size where mapping is a
        # sliver of the wall clock. Not speed-gated (e2e cells never are)
        # — it exists to catch the optimized flavour *regressing*.
        _Cell(
            "e2e/minmin/n120c8", "end_to_end", "minmin", 120, 8,
            candidate_limit=25,
        ),
    ]
    if full:
        cells += [
            _Cell("mapping/maxmin/n1000c32", "mapping", "maxmin", 1000, 32),
            _Cell(
                "mapping/sufferage/n1000c32", "mapping", "sufferage", 1000, 32
            ),
            _Cell("mapping/minmin/n400c16", "mapping", "minmin", 400, 16),
        ]
    return cells


def run_bench_cells(
    cells: list[_Cell], repeats: int = 5
) -> list[BenchCellResult]:
    results = []
    for c in cells:
        if c.kind == "mapping":
            results.append(
                bench_mapping_cell(
                    c.scheme, c.num_tasks, c.num_compute,
                    repeats=repeats, cell=c.cell,
                )
            )
        else:
            results.append(
                bench_end_to_end_cell(
                    c.scheme, c.num_tasks, c.num_compute,
                    repeats=max(2, repeats - 2),
                    candidate_limit=c.candidate_limit, cell=c.cell,
                )
            )
    return results


def _current_sha() -> str:
    """Short commit id for trajectory points (env > git > ``unknown``).

    CI exports ``GITHUB_SHA``; local runs fall back to ``git rev-parse``.
    Benchmarks are wall-clock territory, so a subprocess here is fine
    (this module is already outside the simulated-time core).
    """
    env = os.environ.get("GITHUB_SHA", "").strip()
    if env:
        return env[:8]
    try:
        import subprocess

        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, timeout=10,
        )
        if out.returncode == 0 and out.stdout.strip():
            return out.stdout.strip()
    except OSError:
        pass
    return "unknown"


def append_trajectory(
    results: list[BenchCellResult], path: str | Path, sha: str | None = None
) -> Path:
    """Append one speedup point per cell to the JSONL bench trajectory.

    The trajectory (``benchmarks/BENCH_trajectory.jsonl`` by convention) is
    the cross-commit history the HTML report renders as a sparkline: one
    ``repro-bench-point`` record per (commit, cell), in append order. Every
    point is decision-checked by construction — the cell functions assert
    reference/optimized identity before any timing is accepted.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    sha = _current_sha() if sha is None else sha
    with open(path, "a") as fh:
        for r in results:
            point = {
                "kind": "repro-bench-point",
                "sha": sha,
                "cell": r.cell,
                "speedup": round(r.speedup, 3),
                "decision_checked": True,
            }
            fh.write(json.dumps(point, sort_keys=True) + "\n")
    return path


def write_bench(results: list[BenchCellResult], out: str | Path) -> Path:
    """Write a ``BENCH_<sha>.json``-style document (see the CI artifact)."""
    doc = {
        "kind": "repro-kernel-bench",
        "bench_version": 1,
        "repro_version": __version__,
        "python": _platform.python_version(),
        "machine": _platform.machine(),
        "cells": {r.cell: r.to_dict() for r in results},
    }
    out = Path(out)
    with open(out, "w") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return out
