"""Runtime-facing fault model: deterministic draws over a :class:`FaultSpec`.

The model is *stateless* in the probabilistic sense: whether a given
transfer attempt fails is a pure function of
``(seed, file, dest, staging instance, attempt)``, computed by hashing the
tuple into a uniform number in ``[0, 1)``. The Gantt runtime evaluates
tasks speculatively (many tentative ECT evaluations per commit), so a
stateful RNG would make the committed schedule depend on evaluation order;
counter-based draws make every speculative evaluation agree exactly with
the eventual commit.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass, field
from typing import Any

from ..analysis.dims import MB, Dimensionless, Seconds
from .spec import FaultSpec

__all__ = ["FaultStats", "FaultModel"]


@dataclass
class FaultStats:
    """Counters describing what was injected and how the run recovered."""

    node_crashes: int = 0
    transfer_failures: int = 0
    retries: int = 0
    failovers: int = 0
    files_lost: int = 0
    lost_mb: MB = 0.0
    disk_losses: int = 0
    tasks_rescheduled: int = 0

    def to_dict(self) -> dict[str, Any]:
        return {
            "node_crashes": self.node_crashes,
            "transfer_failures": self.transfer_failures,
            "retries": self.retries,
            "failovers": self.failovers,
            "files_lost": self.files_lost,
            "lost_mb": self.lost_mb,
            "disk_losses": self.disk_losses,
            "tasks_rescheduled": self.tasks_rescheduled,
        }


def _uniform(key: str) -> float:
    """Map a string key to a uniform float in [0, 1) via BLAKE2b."""
    digest = hashlib.blake2b(key.encode(), digest_size=8).digest()
    return int.from_bytes(digest, "big") / 2**64


@dataclass
class FaultModel:
    """Deterministic oracle the runtime queries while scheduling.

    One instance lives for the whole batch (it spans sub-batches, so the
    per-``(file, dest)`` staging-instance counters keep advancing and
    repeated stagings of the same file draw fresh failures).
    """

    spec: FaultSpec
    stats: FaultStats = field(default_factory=FaultStats)

    def __post_init__(self) -> None:
        self._crash_times: dict[int, float] = {
            c.node: c.time for c in self.spec.node_crashes
        }
        # Spec indices of disk losses already applied. Kept on the model
        # (not the runtime) so online sessions sharing one model across
        # successive per-batch runtimes apply each loss exactly once.
        self.applied_disk_losses: set[int] = set()

    # -- node crashes ------------------------------------------------------

    def crash_time(self, node: int) -> Seconds:
        """When ``node`` dies (``inf`` if it never does)."""
        return self._crash_times.get(node, math.inf)

    def crashed_by(self, node: int, time: Seconds) -> bool:
        return time >= self._crash_times.get(node, math.inf)

    # -- transient transfer failures ---------------------------------------

    def transfer_fails(
        self, file_id: str, dest: int, instance: int, attempt: int
    ) -> bool:
        """Whether attempt ``attempt`` of staging instance ``instance`` of
        ``file_id`` onto ``dest`` fails.

        Pure function of its arguments and the spec seed — safe to call any
        number of times during speculative evaluation. The final allowed
        attempt (``spec.max_transfer_attempts - 1``) never fails.
        """
        rate = self.spec.transfer_failure_rate
        if rate <= 0.0:
            return False
        if attempt >= self.spec.max_transfer_attempts - 1:
            return False
        key = f"{self.spec.seed}:{file_id}:{dest}:{instance}:{attempt}"
        return _uniform(key) < rate

    def backoff(self, attempt: int) -> Seconds:
        """Simulated-seconds delay after failed attempt number ``attempt``."""
        spec = self.spec
        return min(
            spec.backoff_cap_s, spec.backoff_base_s * spec.backoff_factor**attempt
        )

    # -- link slowdowns ----------------------------------------------------

    def slowdown_factor(self, kind: str, time: Seconds) -> Dimensionless:
        """Bandwidth divisor for a ``kind`` transfer starting at ``time``.

        Overlapping windows compound multiplicatively.
        """
        factor = 1.0
        for window in self.spec.link_slowdowns:
            if window.scope not in ("all", kind):
                continue
            if window.start <= time < window.end:
                factor *= window.factor
        return factor

    # -- disk losses -------------------------------------------------------

    def disk_losses_through(self, time: Seconds) -> list[tuple[int, float]]:
        """All ``(node, lost_mb)`` losses with event time <= ``time``."""
        return [
            (d.node, d.lost_mb) for d in self.spec.disk_losses if d.time <= time
        ]
