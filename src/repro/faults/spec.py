"""Declarative fault-injection specifications (``repro run --faults``).

A :class:`FaultSpec` describes every fault the simulator should inject into
one batch run, in simulated time and fully deterministically:

* :class:`NodeCrash` — a compute node dies at an absolute simulated time;
  everything cached there is lost and no activity may touch the node
  afterwards (audit invariant E6, see ``docs/faults.md``);
* transient transfer failures — each on-demand staging attempt fails with
  probability ``transfer_failure_rate``, drawn from a counter-based hash of
  the spec seed (no RNG state, so speculative ECT evaluations and the
  actual commit always agree);
* :class:`LinkSlowdown` — bandwidth divided by ``factor`` for transfers
  that would start inside the window;
* :class:`DiskLoss` — a node's disk cache shrinks by ``lost_mb`` at a
  simulated time (applied at the next sub-batch boundary).

The JSON form mirrors the dataclasses field-for-field; see
``examples/faults/`` for ready-made specs and ``docs/faults.md`` for the
format reference. ``FaultSpec()`` (all defaults) is the *null* model: the
runtime takes the exact pre-fault code paths and produces bit-identical
traces, which the golden-manifest test enforces.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Any

from ..analysis.dims import MB, Dimensionless, Seconds

__all__ = ["NodeCrash", "LinkSlowdown", "DiskLoss", "FaultSpec"]


@dataclass(frozen=True)
class NodeCrash:
    """Compute node ``node`` fails permanently at simulated time ``time``."""

    node: int
    time: Seconds

    def __post_init__(self) -> None:
        if self.node < 0:
            raise ValueError("crash node must be >= 0")
        if self.time < 0:
            raise ValueError("crash time must be >= 0")


@dataclass(frozen=True)
class LinkSlowdown:
    """Bandwidth degradation window: transfers starting in ``[start, end)``
    run at ``bw / factor``.

    ``scope`` selects which transfers degrade: ``"all"``, ``"remote"``
    (storage-to-compute only) or ``"replica"`` (compute-to-compute only).
    """

    start: Seconds
    end: Seconds
    factor: Dimensionless
    scope: str = "all"

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise ValueError("slowdown end must be after start")
        if self.factor < 1.0:
            raise ValueError("slowdown factor must be >= 1")
        if self.scope not in ("all", "remote", "replica"):
            raise ValueError(f"bad slowdown scope {self.scope!r}")


@dataclass(frozen=True)
class DiskLoss:
    """Node ``node`` loses ``lost_mb`` of disk-cache capacity at ``time``."""

    node: int
    time: Seconds
    lost_mb: MB

    def __post_init__(self) -> None:
        if self.node < 0:
            raise ValueError("disk-loss node must be >= 0")
        if self.lost_mb <= 0:
            raise ValueError("lost_mb must be positive")


@dataclass(frozen=True)
class FaultSpec:
    """Complete, deterministic fault plan for one batch run.

    Parameters
    ----------
    node_crashes / link_slowdowns / disk_losses:
        Timed events, injected in simulated time.
    transfer_failure_rate:
        Per-attempt probability that an on-demand staging transfer fails
        mid-flight (the attempt still occupies its time slot, then the
        runtime backs off and retries from the next-cheapest source).
    max_transfer_attempts:
        Attempts per staging session; the last one always succeeds so the
        simulation cannot livelock (the paper's platform has no notion of
        a permanently unreachable file).
    backoff_base_s / backoff_factor / backoff_cap_s:
        Exponential backoff between attempts:
        ``min(cap, base * factor**attempt)`` simulated seconds.
    seed:
        Seeds the counter-based failure draws (:class:`~repro.faults.model.FaultModel`).
    """

    node_crashes: tuple[NodeCrash, ...] = ()
    transfer_failure_rate: Dimensionless = 0.0
    max_transfer_attempts: int = 4
    backoff_base_s: Seconds = 2.0
    backoff_factor: Dimensionless = 2.0
    backoff_cap_s: Seconds = 60.0
    link_slowdowns: tuple[LinkSlowdown, ...] = ()
    disk_losses: tuple[DiskLoss, ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.transfer_failure_rate <= 1.0:
            raise ValueError("transfer_failure_rate must be in [0, 1]")
        if self.max_transfer_attempts < 1:
            raise ValueError("max_transfer_attempts must be >= 1")
        if self.backoff_base_s < 0 or self.backoff_cap_s < 0:
            raise ValueError("backoff times must be >= 0")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1")
        seen: set[int] = set()
        for crash in self.node_crashes:
            if crash.node in seen:
                raise ValueError(f"duplicate crash for node {crash.node}")
            seen.add(crash.node)
        # Normalise list inputs (e.g. straight from JSON) to tuples so the
        # spec is hashable-by-value and safe to share across processes.
        object.__setattr__(self, "node_crashes", tuple(self.node_crashes))
        object.__setattr__(self, "link_slowdowns", tuple(self.link_slowdowns))
        object.__setattr__(self, "disk_losses", tuple(self.disk_losses))

    @property
    def is_null(self) -> bool:
        """True when this spec injects nothing at all (the default)."""
        return (
            not self.node_crashes
            and self.transfer_failure_rate == 0.0
            and not self.link_slowdowns
            and not self.disk_losses
        )

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready dict form (inverse of :meth:`from_dict`)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, doc: dict[str, Any]) -> FaultSpec:
        """Build a spec from its JSON dict form; unknown keys are errors."""
        known = set(cls.__dataclass_fields__)
        unknown = set(doc) - known
        if unknown:
            raise ValueError(
                f"unknown fault-spec key(s): {sorted(unknown)} "
                f"(known: {sorted(known)})"
            )
        fields = dict(doc)
        fields["node_crashes"] = tuple(
            NodeCrash(**c) for c in fields.get("node_crashes", ())
        )
        fields["link_slowdowns"] = tuple(
            LinkSlowdown(**s) for s in fields.get("link_slowdowns", ())
        )
        fields["disk_losses"] = tuple(
            DiskLoss(**d) for d in fields.get("disk_losses", ())
        )
        return cls(**fields)

    @classmethod
    def from_json_file(cls, path: str | Path) -> FaultSpec:
        """Load a spec from a JSON file (the ``--faults spec.json`` format)."""
        with open(path) as fh:
            doc = json.load(fh)
        if not isinstance(doc, dict):
            raise ValueError(f"fault spec {path} must be a JSON object")
        return cls.from_dict(doc)
