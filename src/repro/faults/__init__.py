"""Deterministic fault injection for the batch runtime (``repro.faults``).

Specs (:class:`FaultSpec`) declare node crashes, transient transfer
failures, link slowdowns and disk-capacity losses; the runtime consumes
them through a :class:`FaultModel` oracle whose draws are pure functions
of the spec seed. See ``docs/faults.md``.
"""

from .model import FaultModel, FaultStats
from .spec import DiskLoss, FaultSpec, LinkSlowdown, NodeCrash

__all__ = [
    "DiskLoss",
    "FaultModel",
    "FaultSpec",
    "FaultStats",
    "LinkSlowdown",
    "NodeCrash",
]


def resolve_spec(faults) -> FaultSpec | None:
    """Normalise driver/CLI input into a spec (``None`` stays ``None``).

    Accepts a :class:`FaultSpec`, a JSON-style dict, or ``None``. A null
    spec (injects nothing) also resolves to ``None`` so the runtime keeps
    its exact fault-free code paths.
    """
    if faults is None:
        return None
    if isinstance(faults, dict):
        faults = FaultSpec.from_dict(faults)
    if not isinstance(faults, FaultSpec):
        raise TypeError(f"faults must be FaultSpec | dict | None, got {type(faults)!r}")
    return None if faults.is_null else faults
