"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``schedulers``
    List the registered scheduling schemes.
``workload``
    Generate a workload and print its sharing statistics.
``run``
    Schedule one batch under one or more schemes and print the comparison
    (optionally dumping a Gantt chart or Chrome trace of the last run).
``figure``
    Regenerate one of the paper's figures (fig3a, fig3b, fig4a, fig4b,
    fig5a, fig5b, fig6a, fig6b) at a chosen scale and print its table.
``lint``
    Run the repo-specific static lint rules (RPR001–RPR005, see
    :mod:`repro.analysis.lint`) over source paths.
``audit``
    Execute a batch with the audit trail enabled and verify the resulting
    Gantt trace against the execution invariants E1–E5
    (:mod:`repro.analysis.audit`, ``docs/invariants.md``).

Examples
--------
::

    python -m repro run --workload image --overlap high --tasks 60 \
        --schemes bipartition minmin --gantt
    python -m repro figure fig4b --tasks 40 --csv fig4b.csv
    python -m repro figure fig5b --workers 4 --json fig5b.json
    python -m repro lint src/repro
    python -m repro audit --workload sat --tasks 30 --schemes minmin jdp
"""

from __future__ import annotations

import argparse
import math
import sys

from . import available_schedulers, osc_osumed, osc_xio, run_batch
from .batch import Batch, overlap_fraction, pairwise_overlap
from .cluster import ClusterState, Runtime, render_ascii, to_chrome_trace
from .core import make_scheduler
from .experiments import (
    ExperimentConfig,
    fig3_image_overlap,
    fig4_sat_overlap,
    fig5a_replication_benefit,
    fig5b_batch_size,
    fig6a_compute_scaling,
    fig6b_scheduling_overhead,
)
from .parallel import DEFAULT_CACHE_DIR, ResultCache, map_configs
from .workloads import (
    generate_image_batch,
    generate_sat_batch,
    generate_synthetic_batch,
)

__all__ = ["main", "build_parser"]


def _platform(args):
    maker = osc_xio if args.storage == "xio" else osc_osumed
    disk = math.inf if args.disk_gb is None else args.disk_gb * 1000.0
    return maker(
        num_compute=args.compute,
        num_storage=args.storage_nodes,
        disk_space_mb=disk,
    )


def _batch(args, num_storage: int) -> Batch:
    if args.workload == "sat":
        return generate_sat_batch(args.tasks, args.overlap, num_storage, args.seed)
    if args.workload == "image":
        return generate_image_batch(args.tasks, args.overlap, num_storage, args.seed)
    return generate_synthetic_batch(
        args.tasks,
        num_files=max(args.tasks * 2, 16),
        files_per_task=4,
        num_storage=num_storage,
        hot_probability=0.6,
        seed=args.seed,
    )


def _add_parallel_args(p: argparse.ArgumentParser, cache_default_on: bool):
    p.add_argument(
        "--workers",
        type=int,
        default=1,
        help="fan experiment cells out across N processes (1 = serial)",
    )
    p.add_argument(
        "--cache-dir",
        default=DEFAULT_CACHE_DIR,
        help=f"result-cache directory (default {DEFAULT_CACHE_DIR})",
    )
    if cache_default_on:
        p.add_argument(
            "--no-cache",
            action="store_true",
            help="always re-simulate; don't read or write the result cache",
        )
    else:
        p.add_argument(
            "--cache",
            action="store_true",
            help="replay finished cells from the on-disk result cache",
        )
    p.add_argument(
        "--clear-cache",
        action="store_true",
        help="delete every cached result before running",
    )


def _cell_cache(args, enabled: bool):
    """Build the ResultCache requested by the CLI flags (False = off)."""
    cache = ResultCache(args.cache_dir)
    if args.clear_cache:
        removed = cache.clear()
        print(f"cache cleared: {removed} entr{'y' if removed == 1 else 'ies'} removed")
    return cache if enabled else False


def _add_workload_args(p: argparse.ArgumentParser):
    p.add_argument("--workload", choices=("sat", "image", "synthetic"), default="image")
    p.add_argument("--overlap", default="high")
    p.add_argument("--tasks", type=int, default=40)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--storage", choices=("xio", "osumed"), default="xio")
    p.add_argument("--compute", type=int, default=4)
    p.add_argument("--storage-nodes", type=int, default=4)
    p.add_argument("--disk-gb", type=float, default=None, help="per-node disk (GB); unlimited if omitted")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Batch-shared I/O scheduling (HPDC 2006 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("schedulers", help="list registered schemes")

    pw = sub.add_parser("workload", help="generate and describe a workload")
    _add_workload_args(pw)
    pw.add_argument("--save", metavar="FILE", help="also write the batch as JSON")

    pr = sub.add_parser("run", help="run one batch under one or more schemes")
    _add_workload_args(pr)
    pr.add_argument(
        "--load", metavar="FILE", help="run a saved batch instead of generating one"
    )
    pr.add_argument("--schemes", nargs="+", default=["bipartition", "minmin"])
    pr.add_argument("--no-replication", action="store_true")
    pr.add_argument(
        "--overlap-io",
        action="store_true",
        help="relax the no-staging-during-execution assumption",
    )
    pr.add_argument("--ip-time-limit", type=float, default=30.0)
    pr.add_argument("--candidate-limit", type=int, default=None)
    pr.add_argument("--gantt", action="store_true", help="print an ASCII Gantt chart of the last scheme")
    pr.add_argument("--trace", metavar="FILE", help="write a Chrome trace JSON of the last scheme")
    _add_parallel_args(pr, cache_default_on=False)

    pf = sub.add_parser("figure", help="regenerate a paper figure")
    pf.add_argument(
        "name",
        choices=(
            "fig3a", "fig3b", "fig4a", "fig4b",
            "fig5a", "fig5b", "fig6a", "fig6b",
        ),
    )
    pf.add_argument("--tasks", type=int, default=40, help="tasks for fig3/4/5a")
    pf.add_argument(
        "--sizes",
        type=int,
        nargs="+",
        default=None,
        help="batch sizes for fig5b / node counts for fig6a+fig6b",
    )
    pf.add_argument("--ip-time-limit", type=float, default=15.0)
    pf.add_argument("--csv", metavar="FILE", help="also write the table as CSV")
    pf.add_argument("--json", metavar="FILE", help="also write the records as JSON")
    _add_parallel_args(pf, cache_default_on=True)

    pl = sub.add_parser(
        "lint", help="run the repo-specific static lint rules (RPR001-RPR005)"
    )
    pl.add_argument(
        "paths", nargs="*", default=["src/repro"],
        help="files or directories to lint (default: src/repro)",
    )
    pl.add_argument(
        "--select", nargs="+", metavar="RPRnnn", default=None,
        help="only run the given rule codes",
    )
    pl.add_argument(
        "--list-rules", action="store_true", help="print the rules and exit"
    )

    pa = sub.add_parser(
        "audit", help="execute a batch and verify its trace invariants (E1-E5)"
    )
    _add_workload_args(pa)
    pa.add_argument("--schemes", nargs="+", default=["bipartition", "minmin"])
    pa.add_argument("--no-replication", action="store_true")
    pa.add_argument("--candidate-limit", type=int, default=None)
    pa.add_argument("--ip-time-limit", type=float, default=30.0)
    return parser


def _cmd_schedulers(args) -> int:
    for name in available_schedulers():
        print(name)
    return 0


def _cmd_workload(args) -> int:
    platform = _platform(args)
    batch = _batch(args, platform.num_storage)
    if args.save:
        from .io import save_batch

        save_batch(batch, args.save)
        print(f"batch written to {args.save}")
    print(batch)
    print(f"distinct data:     {batch.distinct_file_mb / 1000:.1f} GB")
    print(f"total accesses:    {batch.total_access_mb / 1000:.1f} GB")
    print(f"sharing fraction:  {overlap_fraction(batch):.1%}")
    print(f"pairwise overlap:  {pairwise_overlap(batch, sample_pairs=2000):.1%}")
    print(f"total compute:     {batch.total_compute_time:.1f} s")
    print(f"max task footprint {batch.max_task_footprint_mb():.0f} MB")
    return 0


def _print_run_header():
    print(
        f"{'scheme':14s} {'makespan':>10s} {'sched ms/task':>14s} "
        f"{'remote MB':>10s} {'replica MB':>11s} {'evict':>6s} {'sub':>4s}"
    )


def _cmd_run_parallel(args) -> int:
    """Fan the requested schemes out through ``repro.parallel``."""
    platform = _platform(args)
    batch = _batch(args, platform.num_storage)
    print(f"{batch} on {platform.name} ({platform.num_compute} compute nodes)\n")
    _print_run_header()
    cache = _cell_cache(args, enabled=args.cache)
    disk = math.inf if args.disk_gb is None else args.disk_gb * 1000.0
    configs = []
    for scheme in args.schemes:
        kwargs = {}
        if scheme == "ip":
            kwargs = {"time_limit": args.ip_time_limit, "mip_rel_gap": 0.05}
        configs.append(
            ExperimentConfig(
                experiment="cli-run",
                workload=args.workload,
                overlap=args.overlap,
                num_tasks=args.tasks,
                storage=args.storage,
                num_compute=args.compute,
                num_storage=args.storage_nodes,
                disk_space_mb=disk,
                scheme=scheme,
                seed=args.seed,
                allow_replication=not args.no_replication,
                candidate_limit=args.candidate_limit,
                scheduler_kwargs=kwargs,
            )
        )
    records = map_configs(configs, workers=args.workers, cache=cache)
    for scheme, rec in zip(args.schemes, records, strict=True):
        print(
            f"{scheme:14s} {rec.makespan_s:9.1f}s {rec.scheduling_ms_per_task:14.2f} "
            f"{rec.remote_volume_mb:10.0f} "
            f"{rec.replication_volume_mb:11.0f} "
            f"{rec.evictions:6d} {rec.sub_batches:4d}"
        )
    if args.cache:
        print(f"\ncache: {cache.stats.summary()} in {cache.root}")
    return 0


def _cmd_run(args) -> int:
    # The parallel/cached path covers the common cell-shaped invocations;
    # trace, Gantt, saved batches, synthetic workloads and I/O-overlap runs
    # need the in-process runtime below.
    parallelisable = not (
        args.load
        or args.gantt
        or args.trace
        or args.overlap_io
        or args.workload == "synthetic"
    )
    if parallelisable and (args.workers > 1 or args.cache or args.clear_cache):
        return _cmd_run_parallel(args)
    if not parallelisable and (args.workers > 1 or args.cache):
        print(
            "note: --workers/--cache need generated sat/image workloads "
            "without --load/--gantt/--trace/--overlap-io; running serially\n"
        )
    platform = _platform(args)
    if args.load:
        from .io import load_batch

        batch = load_batch(args.load)
        bad = [
            f.file_id
            for f in batch.files.values()
            if f.storage_node >= platform.num_storage
        ]
        if bad:
            raise SystemExit(
                f"batch references storage node(s) beyond --storage-nodes="
                f"{platform.num_storage}: e.g. {bad[0]}"
            )
    else:
        batch = _batch(args, platform.num_storage)
    print(f"{batch} on {platform.name} ({platform.num_compute} compute nodes)\n")
    _print_run_header()
    last_runtime: Runtime | None = None
    for scheme in args.schemes:
        kwargs = {}
        if scheme == "ip":
            kwargs = {"time_limit": args.ip_time_limit, "mip_rel_gap": 0.05}
        # Re-create runtime internals manually when a trace is requested so
        # the timelines stay accessible.
        if args.gantt or args.trace:
            scheduler = make_scheduler(scheme, **kwargs)
            scheduler.reset()
            state = ClusterState.initial(platform, batch)
            runtime = Runtime(
                platform,
                state,
                allow_replication=not args.no_replication,
                candidate_limit=args.candidate_limit,
                overlap_io_compute=args.overlap_io,
            )
            policy = scheduler.eviction_policy(batch)
            pending = [t.task_id for t in batch.tasks]
            import time as _time

            sched_s = 0.0
            sub = 0
            while pending:
                t0 = _time.perf_counter()
                plan = scheduler.next_subbatch(batch, pending, platform, state)
                sched_s += _time.perf_counter() - t0
                tasks = [batch.task(t) for t in plan.task_ids]
                runtime.execute(
                    tasks,
                    plan.mapping,
                    plan.staging,
                    victim_order=lambda n, c, _p=policy, _s=state: _p.order(_s, n, c),
                )
                done = set(plan.task_ids)
                pending = [t for t in pending if t not in done]
                sub += 1
            makespan = runtime.clock
            stats = state.stats
            per_task = 1000.0 * sched_s / len(batch)
            last_runtime = runtime
        else:
            result = run_batch(
                batch,
                platform,
                scheme,
                allow_replication=not args.no_replication,
                candidate_limit=args.candidate_limit,
                scheduler_kwargs=kwargs,
                overlap_io_compute=args.overlap_io,
            )
            makespan = result.makespan
            stats = result.stats
            per_task = result.scheduling_ms_per_task
            sub = result.num_sub_batches
        print(
            f"{scheme:14s} {makespan:9.1f}s {per_task:14.2f} "
            f"{stats.remote_volume_mb:10.0f} "
            f"{stats.replication_volume_mb:11.0f} "
            f"{stats.evictions:6d} {sub:4d}"
        )

    if last_runtime is not None and args.gantt:
        print("\n" + render_ascii(last_runtime))
    if last_runtime is not None and args.trace:
        with open(args.trace, "w") as fh:
            fh.write(to_chrome_trace(last_runtime))
        print(f"\nChrome trace written to {args.trace}")
    return 0


def _cmd_figure(args) -> int:
    name = args.name
    cache = _cell_cache(args, enabled=not args.no_cache)
    fan = dict(workers=args.workers, cache=cache)
    if name in ("fig3a", "fig3b"):
        table = fig3_image_overlap(
            storage="osumed" if name == "fig3a" else "xio",
            num_tasks=args.tasks,
            ip_time_limit=args.ip_time_limit,
            **fan,
        )
    elif name in ("fig4a", "fig4b"):
        table = fig4_sat_overlap(
            storage="osumed" if name == "fig4a" else "xio",
            num_tasks=args.tasks,
            ip_time_limit=args.ip_time_limit,
            **fan,
        )
    elif name == "fig5a":
        table = fig5a_replication_benefit(num_tasks=args.tasks, **fan)
    elif name == "fig5b":
        table = fig5b_batch_size(
            batch_sizes=tuple(args.sizes or (100, 200, 400)),
            disk_space_mb=4000.0,
            **fan,
        )
    elif name == "fig6a":
        table = fig6a_compute_scaling(
            node_counts=tuple(args.sizes or (2, 8, 32)), num_tasks=200, **fan
        )
    else:
        table = fig6b_scheduling_overhead(
            node_counts=tuple(args.sizes or (2, 8, 32)), num_tasks=200,
            ip_task_cap=16, ip_time_limit=args.ip_time_limit, **fan,
        )
    print(table.render())
    if not args.no_cache:
        print(f"\ncache: {cache.stats.summary()} in {cache.root}")
    if args.csv:
        columns = (
            "experiment", "workload", "scheme", "x", "makespan_s",
            "scheduling_ms_per_task", "remote_transfers", "remote_volume_mb",
            "replications", "replication_volume_mb", "evictions", "sub_batches",
        )
        with open(args.csv, "w") as fh:
            fh.write(table.to_csv(columns) + "\n")
        print(f"\nCSV written to {args.csv}")
    if args.json:
        import json as _json
        from dataclasses import asdict

        with open(args.json, "w") as fh:
            _json.dump(
                {"title": table.title, "records": [asdict(r) for r in table.records]},
                fh,
                indent=2,
            )
        print(f"JSON written to {args.json}")
    return 0


def _cmd_lint(args) -> int:
    from .analysis.lint import iter_rules, lint_paths

    if args.list_rules:
        for rule in iter_rules():
            print(f"{rule.code}  {rule.summary}")
        return 0
    findings = lint_paths(args.paths, args.select)
    for f in findings:
        print(f)
    n = len(findings)
    print(f"{n} finding{'s' if n != 1 else ''}" if n else "clean: no findings")
    return 1 if findings else 0


def _cmd_audit(args) -> int:
    from .analysis.audit import AuditError

    platform = _platform(args)
    batch = _batch(args, platform.num_storage)
    print(f"{batch} on {platform.name} ({platform.num_compute} compute nodes)\n")
    failures = 0
    for scheme in args.schemes:
        kwargs = {}
        if scheme == "ip":
            kwargs = {"time_limit": args.ip_time_limit, "mip_rel_gap": 0.05}
        try:
            result = run_batch(
                batch,
                platform,
                scheme,
                allow_replication=not args.no_replication,
                candidate_limit=args.candidate_limit,
                scheduler_kwargs=kwargs,
                audit=True,
            )
        except AuditError as exc:
            failures += 1
            print(f"{scheme:14s} FAIL  {exc}")
            continue
        report = result.audit_report
        assert report is not None
        print(
            f"{scheme:14s} OK    {report.checked_events} events verified, "
            f"makespan {result.makespan:.1f}s"
        )
    return 1 if failures else 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "schedulers": _cmd_schedulers,
        "workload": _cmd_workload,
        "run": _cmd_run,
        "figure": _cmd_figure,
        "lint": _cmd_lint,
        "audit": _cmd_audit,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
