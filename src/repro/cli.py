"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``schedulers``
    List the registered scheduling schemes.
``workload``
    Generate a workload and print its sharing statistics.
``run``
    Schedule one batch under one or more schemes and print the comparison
    (optionally dumping a Gantt chart or Chrome trace of the last run).
``figure``
    Regenerate one of the paper's figures (fig3a, fig3b, fig4a, fig4b,
    fig5a, fig5b, fig6a, fig6b) at a chosen scale and print its table.
``metrics``
    Run one experiment cell with telemetry on and emit its *run manifest*
    (config digest, versions, derived metrics, telemetry snapshot and
    decision-log summary — see ``docs/observability.md``), validated
    against the checked-in JSON Schema.
``profile``
    Run one cell with span events retained and print where the wall-clock
    time went (top span paths); optionally write a merged Chrome trace
    (simulated Gantt chart + wall-clock telemetry spans) for Perfetto.
``lint``
    Run every repo-specific static check (RPR001–RPR009: the AST lint
    rules, the dimensional-analysis checker and the parallel-purity lint)
    over source paths.
``units``
    Run only the dimensional-analysis checker (RPR006–RPR008, see
    :mod:`repro.analysis.units`): proves MB / MB/s / seconds never mix.
``purity``
    Run only the parallel-purity lint (RPR009, see
    :mod:`repro.analysis.purity`) over the process-pool worker functions.
``audit``
    Execute a batch with the audit trail enabled and verify the resulting
    Gantt trace against the execution invariants E1–E7
    (:mod:`repro.analysis.audit`, ``docs/invariants.md``).
``bench``
    Time the incremental scheduling kernels against their retained
    reference implementations on fixed Fig. 6b-shaped cells, asserting
    decision identity before reporting any speedup
    (``docs/performance.md``). The CI perf-smoke job runs this with
    ``--min-speedup`` as a regression gate.
``diff``
    Attribute the makespan delta between two run manifests to phase
    (schedule/stage/execute), node and metric with ranked tables
    (:mod:`repro.obs.diff`); exits non-zero when the drift exceeds
    ``--fail-over`` — the attribution-aware version of the bench gate.
``report``
    Render a run manifest — optionally with a baseline diff and the bench
    speedup trajectory — as one self-contained offline HTML file (inline
    SVG sparklines and node-activity strips, no external resources).
``chaos``
    Fault-injection sweep (``docs/faults.md``): makespan-degradation curve
    over transfer-failure rates x schemes, each cell optionally audited
    against E1–E7. The nightly chaos CI job runs this at reduced scale.
``stream``
    Run a streaming multi-batch session (``docs/online.md``) from a stream
    spec JSON: jobs arrive over simulated time, an admission policy forms
    dispatch windows, and warm-cache carryover is compared against the
    cold-start baseline; emits the manifest's ``online`` block.

``run`` and ``audit`` accept ``--faults SPEC.json`` to inject faults from
a :class:`repro.faults.FaultSpec` JSON file (see ``examples/faults/``).

Examples
--------
::

    python -m repro run --workload image --overlap high --tasks 60 \
        --schemes bipartition minmin --gantt
    python -m repro run --tasks 40 --faults examples/faults/crash-and-flaky.json
    python -m repro figure fig4b --tasks 40 --csv fig4b.csv
    python -m repro figure fig5b --workers 4 --json fig5b.json
    python -m repro metrics fig5b --tasks 24 --out manifest.json
    python -m repro profile fig5b --tasks 24 --trace profile.trace.json
    python -m repro lint src/repro
    python -m repro units src/repro --format github
    python -m repro purity src/repro --entry repro.parallel.pool:_run_cell
    python -m repro audit --workload sat --tasks 30 --schemes minmin jdp
    python -m repro chaos --tasks 30 --rates 0 0.2 0.4 --json degradation.json
    python -m repro stream examples/streams/poisson-osumed.json --html stream.html
"""

from __future__ import annotations

import argparse
import math
import sys

from . import available_schedulers, osc_osumed, osc_xio, run_batch
from .batch import Batch, overlap_fraction, pairwise_overlap
from .cluster import ClusterState, Runtime, render_ascii, to_chrome_trace
from .core import make_scheduler
from .experiments import (
    ExperimentConfig,
    fig3_image_overlap,
    fig4_sat_overlap,
    fig5a_replication_benefit,
    fig5b_batch_size,
    fig6a_compute_scaling,
    fig6b_scheduling_overhead,
)
from .parallel import DEFAULT_CACHE_DIR, ResultCache, map_configs
from .workloads import available_workloads, make_batch

__all__ = ["main", "build_parser"]


def _platform(args):
    maker = osc_xio if args.storage == "xio" else osc_osumed
    disk = math.inf if args.disk_gb is None else args.disk_gb * 1000.0
    return maker(
        num_compute=args.compute,
        num_storage=args.storage_nodes,
        disk_space_mb=disk,
    )


def _batch(args, num_storage: int) -> Batch:
    return make_batch(
        args.workload, args.tasks, args.overlap, num_storage, args.seed
    )


def _add_parallel_args(p: argparse.ArgumentParser, cache_default_on: bool):
    p.add_argument(
        "--workers",
        type=int,
        default=1,
        help="fan experiment cells out across N processes (1 = serial)",
    )
    p.add_argument(
        "--cache-dir",
        default=DEFAULT_CACHE_DIR,
        help=f"result-cache directory (default {DEFAULT_CACHE_DIR})",
    )
    if cache_default_on:
        p.add_argument(
            "--no-cache",
            action="store_true",
            help="always re-simulate; don't read or write the result cache",
        )
    else:
        p.add_argument(
            "--cache",
            action="store_true",
            help="replay finished cells from the on-disk result cache",
        )
    p.add_argument(
        "--clear-cache",
        action="store_true",
        help="delete every cached result before running",
    )


def _cell_cache(args, enabled: bool):
    """Build the ResultCache requested by the CLI flags (False = off)."""
    cache = ResultCache(args.cache_dir)
    if args.clear_cache:
        removed = cache.clear()
        print(f"cache cleared: {removed} entr{'y' if removed == 1 else 'ies'} removed")
    return cache if enabled else False


def _load_faults(path: str) -> dict:
    """Load and eagerly validate a fault-spec JSON file."""
    import json as _json

    from .faults import FaultSpec

    try:
        with open(path) as fh:
            spec = _json.load(fh)
    except OSError as exc:
        raise SystemExit(f"cannot read fault spec {path!r}: {exc}") from None
    try:
        FaultSpec.from_dict(spec)  # fail before any simulation runs
    except (TypeError, ValueError) as exc:
        raise SystemExit(f"invalid fault spec {path!r}: {exc}") from None
    assert isinstance(spec, dict)
    return spec


def _add_workload_args(p: argparse.ArgumentParser):
    p.add_argument(
        "--workload", choices=tuple(available_workloads()), default="image"
    )
    p.add_argument("--overlap", default="high")
    p.add_argument("--tasks", type=int, default=40)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--storage", choices=("xio", "osumed"), default="xio")
    p.add_argument("--compute", type=int, default=4)
    p.add_argument("--storage-nodes", type=int, default=4)
    p.add_argument("--disk-gb", type=float, default=None, help="per-node disk (GB); unlimited if omitted")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Batch-shared I/O scheduling (HPDC 2006 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("schedulers", help="list registered schemes")

    pw = sub.add_parser("workload", help="generate and describe a workload")
    _add_workload_args(pw)
    pw.add_argument("--save", metavar="FILE", help="also write the batch as JSON")

    pr = sub.add_parser("run", help="run one batch under one or more schemes")
    _add_workload_args(pr)
    pr.add_argument(
        "--load", metavar="FILE", help="run a saved batch instead of generating one"
    )
    pr.add_argument("--schemes", nargs="+", default=["bipartition", "minmin"])
    pr.add_argument("--no-replication", action="store_true")
    pr.add_argument(
        "--overlap-io",
        action="store_true",
        help="relax the no-staging-during-execution assumption",
    )
    pr.add_argument("--ip-time-limit", type=float, default=30.0)
    pr.add_argument("--candidate-limit", type=int, default=None)
    pr.add_argument(
        "--faults",
        metavar="SPEC.json",
        help="inject faults from a FaultSpec JSON file (docs/faults.md)",
    )
    pr.add_argument("--gantt", action="store_true", help="print an ASCII Gantt chart of the last scheme")
    pr.add_argument("--trace", metavar="FILE", help="write a Chrome trace JSON of the last scheme")
    pr.add_argument(
        "--json",
        metavar="FILE",
        help="write records, result-cache counters and telemetry as JSON",
    )
    _add_parallel_args(pr, cache_default_on=False)

    pf = sub.add_parser("figure", help="regenerate a paper figure")
    pf.add_argument(
        "name",
        choices=(
            "fig3a", "fig3b", "fig4a", "fig4b",
            "fig5a", "fig5b", "fig6a", "fig6b",
        ),
    )
    pf.add_argument("--tasks", type=int, default=40, help="tasks for fig3/4/5a")
    pf.add_argument(
        "--sizes",
        type=int,
        nargs="+",
        default=None,
        help="batch sizes for fig5b / node counts for fig6a+fig6b",
    )
    pf.add_argument("--ip-time-limit", type=float, default=15.0)
    pf.add_argument("--csv", metavar="FILE", help="also write the table as CSV")
    pf.add_argument("--json", metavar="FILE", help="also write the records as JSON")
    _add_parallel_args(pf, cache_default_on=True)

    def _add_obs_args(p: argparse.ArgumentParser):
        p.add_argument(
            "config",
            help="preset name (fig3a..fig6b) or path to an ExperimentConfig "
            "JSON file",
        )
        p.add_argument("--tasks", type=int, default=None, help="override batch size")
        p.add_argument("--scheme", default=None, help="override the scheme")
        p.add_argument("--seed", type=int, default=None, help="override the seed")
        p.add_argument("--out", metavar="FILE", help="write the run manifest JSON")
        p.add_argument(
            "--timeseries",
            action="store_true",
            help="attach simulated-time series probes (adds the manifest's "
            "timeseries block; see docs/observability.md)",
        )
        p.add_argument(
            "--faults",
            metavar="SPEC.json",
            help="inject faults from a FaultSpec JSON file during the run",
        )

    pm = sub.add_parser(
        "metrics",
        help="run one cell with telemetry and emit its validated run manifest",
    )
    _add_obs_args(pm)
    pm.add_argument(
        "--ndjson", metavar="FILE", help="also write the manifest as NDJSON lines"
    )

    pp = sub.add_parser(
        "profile",
        help="run one cell with span events retained; print top wall-clock spans",
    )
    _add_obs_args(pp)
    pp.add_argument(
        "--trace",
        metavar="FILE",
        help="write a merged Chrome trace (simulated Gantt + telemetry spans)",
    )
    pp.add_argument("--top", type=int, default=10, help="span paths to print")

    def _add_check_args(p: argparse.ArgumentParser):
        p.add_argument(
            "paths", nargs="*", default=["src/repro"],
            help="files or directories to check (default: src/repro)",
        )
        p.add_argument(
            "--select", nargs="+", metavar="RPRnnn", default=None,
            help="only run the given rule codes",
        )
        p.add_argument(
            "--list-rules", action="store_true", help="print the rules and exit"
        )
        p.add_argument(
            "--format", choices=("text", "json", "github"), default="text",
            help="output format (github = ::error workflow commands)",
        )

    pl = sub.add_parser(
        "lint", help="run every repo-specific static check (RPR001-RPR009)"
    )
    _add_check_args(pl)

    pu = sub.add_parser(
        "units", help="dimensional-analysis checker (RPR006-RPR008)"
    )
    _add_check_args(pu)

    pp2 = sub.add_parser(
        "purity", help="parallel-purity lint over pool workers (RPR009)"
    )
    _add_check_args(pp2)
    pp2.add_argument(
        "--entry", action="append", metavar="module:function", default=None,
        help="check this worker entry point instead of auto-discovery",
    )
    pp2.add_argument(
        "--allow-env", action="append", metavar="NAME", default=None,
        help="environment variable workers may read without a finding",
    )

    pa = sub.add_parser(
        "audit", help="execute a batch and verify its trace invariants (E1-E7)"
    )
    _add_workload_args(pa)
    pa.add_argument("--schemes", nargs="+", default=["bipartition", "minmin"])
    pa.add_argument("--no-replication", action="store_true")
    pa.add_argument("--candidate-limit", type=int, default=None)
    pa.add_argument("--ip-time-limit", type=float, default=30.0)
    pa.add_argument(
        "--faults",
        metavar="SPEC.json",
        help="inject faults from a FaultSpec JSON file; the audit then also "
        "exercises the fault invariants E6/E7",
    )

    pb = sub.add_parser(
        "bench",
        help="time the incremental kernels against their reference oracles "
        "(decision-checked; see docs/performance.md)",
    )
    pb.add_argument(
        "--full",
        action="store_true",
        help="add the Fig. 6b headline cells (n=1000, c=32; several minutes)",
    )
    pb.add_argument(
        "--repeats", type=int, default=5,
        help="timing repeats per flavour; min is reported (default 5)",
    )
    pb.add_argument(
        "--out", metavar="FILE",
        help="write the results as a BENCH_<sha>.json-style document",
    )
    pb.add_argument(
        "--min-speedup", type=float, default=None,
        help="exit non-zero unless every mapping cell beats this factor "
        "(the CI perf-smoke gate)",
    )
    pb.add_argument(
        "--trajectory",
        metavar="FILE",
        default=None,
        help="append one compact record per cell (sha, cell, speedup, "
        "decision-checked) to this JSONL trajectory "
        "(default: benchmarks/BENCH_trajectory.jsonl when it is writable)",
    )
    pb.add_argument(
        "--no-trajectory",
        action="store_true",
        help="do not append to the bench trajectory",
    )

    pd = sub.add_parser(
        "diff",
        help="attribute the makespan delta between two run manifests "
        "(phase x node x metric; non-zero exit on drift over --fail-over)",
    )
    pd.add_argument(
        "a", metavar="A.json",
        help="base run manifest, or BENCH.json#cell for a bench-derived one",
    )
    pd.add_argument(
        "b", metavar="B.json",
        help="candidate run manifest (same forms as A)",
    )
    pd.add_argument(
        "--fail-over", type=float, default=0.15,
        help="exit non-zero when |makespan delta| exceeds this fraction of "
        "A's makespan (default 0.15, the bench-regression tolerance)",
    )
    pd.add_argument("--top", type=int, default=8, help="rows per ranked table")
    pd.add_argument("--json", metavar="FILE", help="also write the diff as JSON")

    pr = sub.add_parser(
        "report",
        help="render a run manifest (plus optional baseline diff) as one "
        "self-contained offline HTML file",
    )
    pr.add_argument(
        "run", metavar="RUN.json",
        help="run manifest to render, or BENCH.json#cell",
    )
    pr.add_argument(
        "baseline", metavar="BASELINE.json", nargs="?", default=None,
        help="optional baseline manifest; adds the ranked diff view",
    )
    pr.add_argument(
        "--out", metavar="FILE", default="report.html",
        help="output HTML path (default report.html)",
    )
    pr.add_argument(
        "--trajectory",
        metavar="FILE",
        default=None,
        help="bench trajectory JSONL to render as sparklines "
        "(default: benchmarks/BENCH_trajectory.jsonl when present)",
    )
    pr.add_argument("--title", default=None, help="override the page title")

    pc = sub.add_parser(
        "chaos",
        help="fault-injection sweep: makespan degradation curve, audited cells",
    )
    pc.add_argument(
        "--rates",
        type=float,
        nargs="+",
        default=[0.0, 0.1, 0.2, 0.4],
        help="transient transfer-failure rates to sweep",
    )
    pc.add_argument("--schemes", nargs="+", default=None,
                    help="schemes to sweep (default: bipartition minmin jdp)")
    pc.add_argument(
        "--workload", choices=tuple(available_workloads()), default="image"
    )
    pc.add_argument("--overlap", default="high")
    pc.add_argument("--tasks", type=int, default=30)
    pc.add_argument("--storage", choices=("xio", "osumed"), default="xio")
    pc.add_argument("--seed", type=int, default=0)
    pc.add_argument("--fault-seed", type=int, default=0)
    pc.add_argument(
        "--crash-node",
        type=int,
        default=None,
        help="also crash this compute node in every non-zero-rate cell",
    )
    pc.add_argument("--crash-time", type=float, default=5.0)
    pc.add_argument(
        "--no-audit",
        action="store_true",
        help="skip the per-cell E1-E7 invariant verification",
    )
    pc.add_argument("--csv", metavar="FILE", help="also write the table as CSV")
    pc.add_argument("--json", metavar="FILE", help="also write the records as JSON")
    _add_parallel_args(pc, cache_default_on=False)

    pstream = sub.add_parser(
        "stream",
        help="run a streaming multi-batch session from a stream spec JSON "
        "(warm-cache carryover vs cold-start; see docs/online.md)",
    )
    pstream.add_argument(
        "spec", metavar="SPEC.json",
        help="stream spec JSON (see examples/streams/ and docs/online.md)",
    )
    pstream.add_argument(
        "--mode", choices=("warm", "cold", "both"), default="both",
        help="carryover mode(s) to run (default: both, printing the delta)",
    )
    pstream.add_argument(
        "--out", metavar="FILE", default=None,
        help="write the run manifest JSON ('-MODE' is inserted before the "
        "extension when more than one mode runs)",
    )
    pstream.add_argument(
        "--ndjson", metavar="FILE", default=None,
        help="also write the manifest as NDJSON (same mode suffix rule)",
    )
    pstream.add_argument(
        "--html", metavar="FILE", default=None,
        help="also render the manifest as a self-contained HTML report",
    )
    pstream.add_argument(
        "--json", metavar="FILE", default=None,
        help="write one JSON document with the queueing summary per mode",
    )
    return parser


def _cmd_schedulers(args) -> int:
    for name in available_schedulers():
        print(name)
    return 0


def _cmd_workload(args) -> int:
    platform = _platform(args)
    batch = _batch(args, platform.num_storage)
    if args.save:
        from .io import save_batch

        save_batch(batch, args.save)
        print(f"batch written to {args.save}")
    print(batch)
    print(f"distinct data:     {batch.distinct_file_mb / 1000:.1f} GB")
    print(f"total accesses:    {batch.total_access_mb / 1000:.1f} GB")
    print(f"sharing fraction:  {overlap_fraction(batch):.1%}")
    print(f"pairwise overlap:  {pairwise_overlap(batch, sample_pairs=2000):.1%}")
    print(f"total compute:     {batch.total_compute_time:.1f} s")
    print(f"max task footprint {batch.max_task_footprint_mb():.0f} MB")
    return 0


def _print_run_header():
    print(
        f"{'scheme':14s} {'makespan':>10s} {'sched ms/task':>14s} "
        f"{'remote MB':>10s} {'replica MB':>11s} {'evict':>6s} {'sub':>4s}"
    )


def _cmd_run_parallel(args) -> int:
    """Fan the requested schemes out through ``repro.parallel``."""
    platform = _platform(args)
    batch = _batch(args, platform.num_storage)
    print(f"{batch} on {platform.name} ({platform.num_compute} compute nodes)\n")
    _print_run_header()
    cache = _cell_cache(args, enabled=args.cache)
    disk = math.inf if args.disk_gb is None else args.disk_gb * 1000.0
    faults = _load_faults(args.faults) if args.faults else None
    configs = []
    for scheme in args.schemes:
        kwargs = {}
        if scheme == "ip":
            kwargs = {"time_limit": args.ip_time_limit, "mip_rel_gap": 0.05}
        configs.append(
            ExperimentConfig(
                experiment="cli-run",
                workload=args.workload,
                overlap=args.overlap,
                num_tasks=args.tasks,
                storage=args.storage,
                num_compute=args.compute,
                num_storage=args.storage_nodes,
                disk_space_mb=disk,
                scheme=scheme,
                seed=args.seed,
                allow_replication=not args.no_replication,
                candidate_limit=args.candidate_limit,
                scheduler_kwargs=kwargs,
                faults=faults,
            )
        )
    # With --json, record result-cache hit/miss counters (and anything else
    # the parent process touches) through the telemetry registry.
    from .obs.core import telemetry as tele

    if args.json:
        tele.reset()
        tele.enable()
    try:
        records = map_configs(configs, workers=args.workers, cache=cache)
    finally:
        snapshot = tele.snapshot() if args.json else None
        if args.json:
            tele.disable()
            tele.reset()
    for scheme, rec in zip(args.schemes, records, strict=True):
        print(
            f"{scheme:14s} {rec.makespan_s:9.1f}s {rec.scheduling_ms_per_task:14.2f} "
            f"{rec.remote_volume_mb:10.0f} "
            f"{rec.replication_volume_mb:11.0f} "
            f"{rec.evictions:6d} {rec.sub_batches:4d}"
        )
    if args.cache:
        print(f"\ncache: {cache.stats.summary()} in {cache.root}")
    if args.json:
        import json as _json
        from dataclasses import asdict

        doc = {
            "records": [asdict(r) for r in records],
            "cache": (
                {
                    "hits": cache.stats.hits,
                    "misses": cache.stats.misses,
                    "stores": cache.stats.stores,
                }
                if args.cache
                else None
            ),
            "telemetry": snapshot,
        }
        with open(args.json, "w") as fh:
            _json.dump(doc, fh, indent=2)
        print(f"JSON written to {args.json}")
    return 0


def _cmd_run(args) -> int:
    # The parallel/cached path covers the common cell-shaped invocations;
    # trace, Gantt, saved batches, synthetic workloads and I/O-overlap runs
    # need the in-process runtime below.
    parallelisable = not (
        args.load
        or args.gantt
        or args.trace
        or args.overlap_io
        or args.workload == "synthetic"
    )
    if parallelisable and (
        args.workers > 1 or args.cache or args.clear_cache or args.json
    ):
        return _cmd_run_parallel(args)
    if not parallelisable and (args.workers > 1 or args.cache or args.json):
        print(
            "note: --workers/--cache/--json need generated sat/image workloads "
            "without --load/--gantt/--trace/--overlap-io; running serially\n"
        )
    platform = _platform(args)
    if args.load:
        from .io import load_batch

        batch = load_batch(args.load)
        bad = [
            f.file_id
            for f in batch.files.values()
            if f.storage_node >= platform.num_storage
        ]
        if bad:
            raise SystemExit(
                f"batch references storage node(s) beyond --storage-nodes="
                f"{platform.num_storage}: e.g. {bad[0]}"
            )
    else:
        batch = _batch(args, platform.num_storage)
    print(f"{batch} on {platform.name} ({platform.num_compute} compute nodes)\n")
    _print_run_header()
    faults = _load_faults(args.faults) if args.faults else None
    last_runtime: Runtime | None = None
    fault_lines: list[str] = []
    for scheme in args.schemes:
        kwargs = {}
        if scheme == "ip":
            kwargs = {"time_limit": args.ip_time_limit, "mip_rel_gap": 0.05}
        # Re-create runtime internals manually when a trace is requested so
        # the timelines stay accessible. Fault injection needs the driver's
        # rescheduling loop, so faulty runs go through run_batch instead
        # (whose result keeps the runtime for --gantt/--trace).
        if (args.gantt or args.trace) and faults is None:
            scheduler = make_scheduler(scheme, **kwargs)
            scheduler.reset()
            state = ClusterState.initial(platform, batch)
            runtime = Runtime(
                platform,
                state,
                allow_replication=not args.no_replication,
                candidate_limit=args.candidate_limit,
                overlap_io_compute=args.overlap_io,
            )
            policy = scheduler.eviction_policy(batch)
            pending = [t.task_id for t in batch.tasks]
            import time as _time

            sched_s = 0.0
            sub = 0
            while pending:
                t0 = _time.perf_counter()
                plan = scheduler.next_subbatch(batch, pending, platform, state)
                sched_s += _time.perf_counter() - t0
                tasks = [batch.task(t) for t in plan.task_ids]
                runtime.execute(
                    tasks,
                    plan.mapping,
                    plan.staging,
                    victim_order=lambda n, c, _p=policy, _s=state: _p.order(_s, n, c),
                )
                done = set(plan.task_ids)
                pending = [t for t in pending if t not in done]
                sub += 1
            makespan = runtime.clock
            stats = state.stats
            per_task = 1000.0 * sched_s / len(batch)
            last_runtime = runtime
        else:
            result = run_batch(
                batch,
                platform,
                scheme,
                allow_replication=not args.no_replication,
                candidate_limit=args.candidate_limit,
                scheduler_kwargs=kwargs,
                overlap_io_compute=args.overlap_io,
                faults=faults,
            )
            makespan = result.makespan
            stats = result.stats
            per_task = result.scheduling_ms_per_task
            sub = result.num_sub_batches
            if args.gantt or args.trace:
                last_runtime = result.runtime
            fs = result.fault_stats
            if fs is not None:
                fault_lines.append(
                    f"{scheme:14s} {fs.node_crashes} crash(es), "
                    f"{fs.transfer_failures} failed transfer(s) / "
                    f"{fs.retries} retried / {fs.failovers} re-sourced, "
                    f"{fs.tasks_rescheduled} task(s) rescheduled, "
                    f"{fs.files_lost} file(s) lost ({fs.lost_mb:.0f} MB)"
                )
        print(
            f"{scheme:14s} {makespan:9.1f}s {per_task:14.2f} "
            f"{stats.remote_volume_mb:10.0f} "
            f"{stats.replication_volume_mb:11.0f} "
            f"{stats.evictions:6d} {sub:4d}"
        )

    if fault_lines:
        print("\nfault injection:")
        for line in fault_lines:
            print(line)
    if last_runtime is not None and args.gantt:
        print("\n" + render_ascii(last_runtime))
    if last_runtime is not None and args.trace:
        with open(args.trace, "w") as fh:
            fh.write(to_chrome_trace(last_runtime))
        print(f"\nChrome trace written to {args.trace}")
    return 0


def _cmd_figure(args) -> int:
    name = args.name
    cache = _cell_cache(args, enabled=not args.no_cache)
    fan = dict(workers=args.workers, cache=cache)
    if name in ("fig3a", "fig3b"):
        table = fig3_image_overlap(
            storage="osumed" if name == "fig3a" else "xio",
            num_tasks=args.tasks,
            ip_time_limit=args.ip_time_limit,
            **fan,
        )
    elif name in ("fig4a", "fig4b"):
        table = fig4_sat_overlap(
            storage="osumed" if name == "fig4a" else "xio",
            num_tasks=args.tasks,
            ip_time_limit=args.ip_time_limit,
            **fan,
        )
    elif name == "fig5a":
        table = fig5a_replication_benefit(num_tasks=args.tasks, **fan)
    elif name == "fig5b":
        table = fig5b_batch_size(
            batch_sizes=tuple(args.sizes or (100, 200, 400)),
            disk_space_mb=4000.0,
            **fan,
        )
    elif name == "fig6a":
        table = fig6a_compute_scaling(
            node_counts=tuple(args.sizes or (2, 8, 32)), num_tasks=200, **fan
        )
    else:
        table = fig6b_scheduling_overhead(
            node_counts=tuple(args.sizes or (2, 8, 32)), num_tasks=200,
            ip_task_cap=16, ip_time_limit=args.ip_time_limit, **fan,
        )
    print(table.render())
    if not args.no_cache:
        print(f"\ncache: {cache.stats.summary()} in {cache.root}")
    if args.csv:
        columns = (
            "experiment", "workload", "scheme", "x", "makespan_s",
            "scheduling_ms_per_task", "remote_transfers", "remote_volume_mb",
            "replications", "replication_volume_mb", "evictions", "sub_batches",
        )
        with open(args.csv, "w") as fh:
            fh.write(table.to_csv(columns) + "\n")
        print(f"\nCSV written to {args.csv}")
    if args.json:
        import json as _json
        from dataclasses import asdict

        with open(args.json, "w") as fh:
            _json.dump(
                {"title": table.title, "records": [asdict(r) for r in table.records]},
                fh,
                indent=2,
            )
        print(f"JSON written to {args.json}")
    return 0


# One representative cell per figure, at CI-sized defaults. ``repro
# metrics``/``repro profile`` accept these names or a JSON config file.
_OBS_PRESETS: dict[str, dict] = {
    "fig3a": dict(workload="image", overlap="high", storage="osumed"),
    "fig3b": dict(workload="image", overlap="high", storage="xio"),
    "fig4a": dict(workload="sat", overlap="high", storage="osumed"),
    "fig4b": dict(workload="sat", overlap="high", storage="xio"),
    "fig5a": dict(
        workload="image", overlap="high", storage="osumed", num_compute=8
    ),
    "fig5b": dict(
        workload="image",
        overlap="high",
        storage="xio",
        disk_space_mb=4000.0,
        candidate_limit=25,
    ),
    "fig6a": dict(
        workload="image", overlap="high", storage="xio",
        num_compute=8, num_storage=8, candidate_limit=25,
    ),
    "fig6b": dict(
        workload="image", overlap="high", storage="xio",
        num_compute=8, num_storage=8, candidate_limit=25,
    ),
}


def _obs_config(args) -> ExperimentConfig:
    """Resolve the metrics/profile positional into an ExperimentConfig."""
    name = args.config
    if name in _OBS_PRESETS:
        fields = dict(_OBS_PRESETS[name])
        fields.setdefault("experiment", name)
        fields.setdefault("num_tasks", 24)
        fields.setdefault("scheme", "bipartition")
    else:
        import json as _json

        try:
            with open(name) as fh:
                fields = _json.load(fh)
        except OSError as exc:
            raise SystemExit(
                f"unknown preset {name!r} (available: "
                f"{', '.join(sorted(_OBS_PRESETS))}) and not a readable "
                f"config file: {exc}"
            ) from None
        fields.setdefault("experiment", name)
    if args.tasks is not None:
        fields["num_tasks"] = args.tasks
    if args.scheme is not None:
        fields["scheme"] = args.scheme
    if args.seed is not None:
        fields["seed"] = args.seed
    if getattr(args, "timeseries", False):
        fields["timeseries"] = True
    if getattr(args, "faults", None):
        import json as _json

        with open(args.faults) as fh:
            fields["faults"] = _json.load(fh)
    fields["telemetry"] = True
    if fields.get("disk_space_mb") in ("inf", None):
        fields["disk_space_mb"] = math.inf
    return ExperimentConfig(**fields)


def _manifest_for(cfg: ExperimentConfig, result) -> dict:
    from dataclasses import asdict

    from .obs import build_manifest
    from .parallel import config_key

    return build_manifest(
        result, config=asdict(cfg), config_digest=config_key(cfg)
    )


def _print_manifest_summary(manifest: dict):
    res = manifest["result"]
    print(
        f"{manifest['scheme']}: makespan {res['makespan_s']:.1f}s, "
        f"{res['tasks']} tasks in {res['sub_batches']} sub-batch(es)"
    )
    metrics = manifest.get("metrics") or {}
    for key in (
        "mean_exec_utilization",
        "disk_hit_ratio",
        "file_reuse_factor",
        "replicated_fraction",
        "evictions",
        "conservation_residual_mb",
    ):
        if key in metrics:
            value = metrics[key]
            print(f"  {key:26s} {value:.4f}" if isinstance(value, float)
                  else f"  {key:26s} {value}")
    decisions = manifest.get("decisions")
    if decisions:
        print(
            f"  decisions: {decisions['decisions']} "
            f"({decisions['evaluated']} evaluated, {decisions['ties']} ties)"
        )
        replay = decisions.get("replay")
        if replay:
            print(
                f"  estimation error: mean |e| {replay['mean_abs_error_s']:.3f}s, "
                f"max |e| {replay['max_abs_error_s']:.3f}s, "
                f"bias {replay['bias_s']:+.3f}s"
            )


def _cmd_metrics(args) -> int:
    from .experiments.runner import run_config_result
    from .obs import validate_manifest, write_manifest, write_ndjson

    cfg = _obs_config(args)
    result = run_config_result(cfg)
    manifest = _manifest_for(cfg, result)
    errors = validate_manifest(manifest)
    _print_manifest_summary(manifest)
    if args.out:
        write_manifest(manifest, args.out)
        print(f"manifest written to {args.out}")
    if args.ndjson:
        write_ndjson(manifest, args.ndjson)
        print(f"NDJSON written to {args.ndjson}")
    if errors:
        for err in errors:
            print(f"schema violation: {err}", file=sys.stderr)
        return 1
    print("manifest validates against run-manifest.schema.json")
    return 0


def _cmd_profile(args) -> int:
    from .experiments.runner import run_config_result
    from .obs import merged_chrome_trace, validate_manifest, write_manifest
    from .obs.core import telemetry as tele

    cfg = _obs_config(args)
    # Retain individual span events so they can be laid out on a timeline;
    # run_batch's own enable() keeps the flag (it only resets the data).
    tele.reset()
    tele.enable(keep_events=True)
    try:
        result = run_config_result(cfg)
        print(f"{cfg.scheme}: makespan {result.makespan:.1f}s "
              f"(scheduling {result.scheduling_seconds * 1000:.1f} ms wall)")
        print(f"\n{'span path':42s} {'count':>6s} {'total':>9s} {'mean':>9s}")
        for path, span in tele.top_spans(args.top):
            print(
                f"{path:42s} {span.count:6d} {span.total_s:8.3f}s "
                f"{span.mean_s * 1000:7.2f}ms"
            )
        kernel = {
            name.split("/", 1)[1]: value
            for name, value in sorted(tele.snapshot()["counters"].items())
            if name.startswith("kernel/")
        }
        if kernel:
            print("\nincremental kernel work (summed over mapping calls):")
            for key, value in kernel.items():
                print(f"  {key:26s} {int(value):,}")
        if args.trace:
            assert result.runtime is not None
            with open(args.trace, "w") as fh:
                fh.write(merged_chrome_trace(result.runtime, tele))
            print(f"\nmerged Chrome trace written to {args.trace}")
        if args.out:
            manifest = _manifest_for(cfg, result)
            errors = validate_manifest(manifest)
            write_manifest(manifest, args.out)
            print(f"manifest written to {args.out}")
            if errors:
                for err in errors:
                    print(f"schema violation: {err}", file=sys.stderr)
                return 1
    finally:
        tele.disable()
        tele.keep_events = False
        tele.reset()
    return 0


def _cmd_lint(args) -> int:
    """All nine checks in one pass: AST lint + units + purity."""
    from .analysis import lint, purity, units
    from .analysis.common import render_findings

    if args.list_rules:
        for rule in (*lint.iter_rules(), *units.iter_rules(), *purity.iter_rules()):
            print(f"{rule.code}  {rule.summary}")
        return 0
    findings = sorted(
        [
            *lint.lint_paths(args.paths, args.select),
            *units.check_paths(args.paths, args.select),
            *purity.check_paths(args.paths, args.select),
        ],
        key=lambda f: (f.path, f.line, f.col, f.code),
    )
    print(render_findings(findings, args.format))
    return 1 if findings else 0


def _cmd_units(args) -> int:
    from .analysis import units
    from .analysis.common import render_findings

    if args.list_rules:
        for rule in units.iter_rules():
            print(f"{rule.code}  {rule.summary}")
        return 0
    findings = units.check_paths(args.paths, args.select)
    print(render_findings(findings, args.format))
    return 1 if findings else 0


def _cmd_purity(args) -> int:
    from .analysis import purity
    from .analysis.common import render_findings

    if args.list_rules:
        for rule in purity.iter_rules():
            print(f"{rule.code}  {rule.summary}")
        return 0
    findings = purity.check_paths(
        args.paths, args.select, entries=args.entry, allow_env=args.allow_env
    )
    print(render_findings(findings, args.format))
    return 1 if findings else 0


def _cmd_audit(args) -> int:
    from .analysis.audit import AuditError

    platform = _platform(args)
    batch = _batch(args, platform.num_storage)
    faults = _load_faults(args.faults) if args.faults else None
    print(f"{batch} on {platform.name} ({platform.num_compute} compute nodes)\n")
    failures = 0
    for scheme in args.schemes:
        kwargs = {}
        if scheme == "ip":
            kwargs = {"time_limit": args.ip_time_limit, "mip_rel_gap": 0.05}
        try:
            result = run_batch(
                batch,
                platform,
                scheme,
                allow_replication=not args.no_replication,
                candidate_limit=args.candidate_limit,
                scheduler_kwargs=kwargs,
                audit=True,
                faults=faults,
            )
        except AuditError as exc:
            failures += 1
            print(f"{scheme:14s} FAIL  {exc}")
            continue
        report = result.audit_report
        assert report is not None
        extra = ""
        fs = result.fault_stats
        if fs is not None:
            extra = (
                f" ({fs.node_crashes} crash(es), {fs.transfer_failures} "
                f"failed transfer(s), {fs.tasks_rescheduled} rescheduled)"
            )
        print(
            f"{scheme:14s} OK    {report.checked_events} events verified, "
            f"makespan {result.makespan:.1f}s{extra}"
        )
    return 1 if failures else 0


def _cmd_bench(args) -> int:
    from .experiments import default_bench_cells, run_bench_cells, write_bench

    cells = default_bench_cells(full=args.full)
    print(
        f"{'cell':32s} {'reference':>11s} {'optimized':>11s} {'speedup':>8s}"
    )
    results = []
    for cell in cells:
        res = run_bench_cells([cell], repeats=args.repeats)[0]
        results.append(res)
        print(
            f"{res.cell:32s} {res.reference_s * 1e3:9.2f}ms "
            f"{res.optimized_s * 1e3:9.2f}ms {res.speedup:7.2f}x"
        )
        if res.kernel_stats:
            saved = res.kernel_stats.get("evaluations_saved", 0)
            logical = res.kernel_stats.get("logical_evaluations", 0)
            if logical:
                print(
                    f"{'':32s}   kernel pair evaluations saved: "
                    f"{saved / logical:.1%} ({saved:,} of {logical:,})"
                )
    print("\nevery cell decision-checked: optimized == reference")
    if args.out:
        path = write_bench(results, args.out)
        print(f"results written to {path}")
    if not args.no_trajectory:
        from pathlib import Path as _Path

        from .experiments.bench import append_trajectory

        traj = args.trajectory
        if traj is None:
            default = _Path("benchmarks") / "BENCH_trajectory.jsonl"
            traj = default if default.parent.is_dir() else None
        if traj is not None:
            tpath = append_trajectory(results, traj)
            print(f"trajectory appended to {tpath} ({len(results)} record(s))")
    if args.min_speedup is not None:
        slow = [
            r for r in results
            if r.kind == "mapping" and r.speedup < args.min_speedup
        ]
        if slow:
            for r in slow:
                print(
                    f"FAIL: {r.cell} speedup {r.speedup:.2f}x < "
                    f"{args.min_speedup:.2f}x"
                )
            return 1
        print(f"all mapping cells beat {args.min_speedup:.2f}x")
    return 0


def _cmd_diff(args) -> int:
    from .obs.diff import diff_manifests, format_diff, load_run

    a = load_run(args.a)
    b = load_run(args.b)
    diff = diff_manifests(a, b)
    print(format_diff(diff, top=args.top))
    if args.json:
        import json as _json

        with open(args.json, "w") as fh:
            _json.dump(diff.to_dict(), fh, indent=2)
            fh.write("\n")
        print(f"JSON written to {args.json}")
    if diff.exceeds(args.fail_over):
        print(
            f"FAIL: makespan drift {diff.rel_delta:+.1%} exceeds "
            f"{args.fail_over:.0%} of the base makespan",
            file=sys.stderr,
        )
        return 1
    print(f"drift {diff.rel_delta:+.1%} within the {args.fail_over:.0%} gate")
    return 0


def _cmd_report(args) -> int:
    from pathlib import Path as _Path

    from .obs.diff import load_run
    from .obs.report import load_trajectory, write_report

    manifest = load_run(args.run)
    baseline = load_run(args.baseline) if args.baseline else None
    traj_path = args.trajectory
    if traj_path is None:
        default = _Path("benchmarks") / "BENCH_trajectory.jsonl"
        traj_path = default if default.exists() else None
    trajectory = load_trajectory(traj_path) if traj_path is not None else []
    out = write_report(
        manifest,
        args.out,
        baseline,
        trajectory=trajectory,
        title=args.title,
    )
    print(f"report written to {out} ({out.stat().st_size:,} bytes, "
          "self-contained HTML)")
    return 0


def _cmd_chaos(args) -> int:
    from .analysis.audit import AuditError
    from .experiments import CHAOS_SCHEMES, degradation_curve

    schemes = tuple(args.schemes) if args.schemes else CHAOS_SCHEMES
    cache = _cell_cache(args, enabled=args.cache)
    try:
        table = degradation_curve(
            rates=tuple(args.rates),
            schemes=schemes,
            workload=args.workload,
            overlap=args.overlap,
            num_tasks=args.tasks,
            storage=args.storage,
            seed=args.seed,
            fault_seed=args.fault_seed,
            crash_node=args.crash_node,
            crash_time=args.crash_time,
            audit=not args.no_audit,
            workers=args.workers,
            cache=cache,
        )
    except AuditError as exc:
        print(f"FAIL: invariant violation under injected faults\n{exc}")
        return 1
    print(table.render())
    if not args.no_audit:
        print("\nevery cell passed the E1-E7 trace audit")
    if args.cache:
        print(f"cache: {cache.stats.summary()} in {cache.root}")
    if args.csv:
        columns = (
            "experiment", "workload", "scheme", "x", "makespan_s",
            "scheduling_ms_per_task", "remote_transfers", "remote_volume_mb",
            "replications", "replication_volume_mb", "evictions", "sub_batches",
        )
        with open(args.csv, "w") as fh:
            fh.write(table.to_csv(columns) + "\n")
        print(f"CSV written to {args.csv}")
    if args.json:
        import json as _json
        from dataclasses import asdict

        with open(args.json, "w") as fh:
            _json.dump(
                {"title": table.title, "records": [asdict(r) for r in table.records]},
                fh,
                indent=2,
            )
        print(f"JSON written to {args.json}")
    return 0


def _with_mode_suffix(path: str, suffix: str) -> str:
    if not suffix:
        return path
    from pathlib import Path as _Path

    p = _Path(path)
    return str(p.with_name(f"{p.stem}{suffix}{p.suffix or ''}"))


def _cmd_stream(args) -> int:
    import hashlib
    import json as _json

    from .experiments import run_stream_config, stream_config_from_dict
    from .obs import (
        build_stream_manifest,
        validate_manifest,
        write_manifest,
        write_ndjson,
    )
    from .obs.report import write_report

    with open(args.spec) as fh:
        spec = _json.load(fh)
    try:
        cfg = stream_config_from_dict(spec)
    except (TypeError, ValueError) as exc:
        print(f"invalid stream spec {args.spec}: {exc}", file=sys.stderr)
        return 2
    digest = hashlib.sha256(
        _json.dumps(spec, sort_keys=True).encode()
    ).hexdigest()

    modes = ("warm", "cold") if args.mode == "both" else (args.mode,)
    suffixed = len(modes) > 1
    rc = 0
    summaries: dict[str, dict] = {}
    results = {}
    for mode in modes:
        res = run_stream_config(cfg, warm=(mode == "warm"))
        results[mode] = res
        print(res.summary())
        manifest = build_stream_manifest(res, config=spec, config_digest=digest)
        errors = validate_manifest(manifest)
        summaries[mode] = manifest["online"]["queueing"]
        suffix = f"-{mode}" if suffixed else ""
        if args.out:
            out = _with_mode_suffix(args.out, suffix)
            write_manifest(manifest, out)
            print(f"manifest written to {out}")
        if args.ndjson:
            out = _with_mode_suffix(args.ndjson, suffix)
            write_ndjson(manifest, out)
            print(f"NDJSON written to {out}")
        if args.html:
            out = write_report(
                manifest,
                _with_mode_suffix(args.html, suffix),
                title=f"stream {cfg.workload}/{cfg.scheme} ({mode})",
            )
            print(f"report written to {out}")
        if errors:
            for err in errors:
                print(f"schema violation ({mode}): {err}", file=sys.stderr)
            rc = 1
        else:
            print(f"{mode} manifest validates against run-manifest.schema.json")
    if "warm" in results and "cold" in results:
        warm, cold = results["warm"], results["cold"]
        print(
            f"warm vs cold: mean response {warm.mean_response_s:.1f}s vs "
            f"{cold.mean_response_s:.1f}s, cross-batch reuse "
            f"{warm.cross_batch_hit_volume_mb:.0f} MB vs "
            f"{cold.cross_batch_hit_volume_mb:.0f} MB"
        )
    if args.json:
        with open(args.json, "w") as fh:
            _json.dump(
                {"spec": spec, "config_digest": digest, "modes": summaries},
                fh,
                indent=2,
            )
        print(f"JSON summary written to {args.json}")
    return rc


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "schedulers": _cmd_schedulers,
        "workload": _cmd_workload,
        "run": _cmd_run,
        "figure": _cmd_figure,
        "metrics": _cmd_metrics,
        "profile": _cmd_profile,
        "lint": _cmd_lint,
        "units": _cmd_units,
        "purity": _cmd_purity,
        "audit": _cmd_audit,
        "bench": _cmd_bench,
        "diff": _cmd_diff,
        "report": _cmd_report,
        "chaos": _cmd_chaos,
        "stream": _cmd_stream,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
