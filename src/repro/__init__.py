"""repro — Task Scheduling and File Replication for Data-Intensive Jobs
with Batch-shared I/O (HPDC 2006 reproduction).

A complete reimplementation of the paper's system: the coupled 0-1 Integer
Programming scheduler, the BiPartition bi-level hypergraph scheduler, the
MinMin and Job-Data-Present baselines, the Section 6 dynamic runtime over a
Gantt-chart cluster simulator, the SAT/IMAGE workload emulators, and every
substrate they need (a MILP modeling layer + solvers, a multilevel
hypergraph partitioner with BINW support).

Quick start::

    from repro import run_batch, osc_xio
    from repro.workloads import generate_image_batch

    platform = osc_xio(num_compute=4, num_storage=4)
    batch = generate_image_batch(40, "high", platform.num_storage, seed=0)
    result = run_batch(batch, platform, "bipartition")
    print(result.summary())
"""

from .batch import Batch, FileInfo, Task, overlap_fraction, pairwise_overlap
from .cluster import (
    ClusterState,
    ComputeNode,
    Platform,
    Runtime,
    StorageNode,
    osc_osumed,
    osc_xio,
)
from .core import (
    BatchResult,
    BiPartitionScheduler,
    IPScheduler,
    JobDataPresentScheduler,
    LRUPolicy,
    MinMinScheduler,
    PopularityPolicy,
    Scheduler,
    SubBatchPlan,
    SubBatchResult,
    available_schedulers,
    make_scheduler,
    run_batch,
)

__version__ = "1.0.0"

__all__ = [
    "Batch",
    "Task",
    "FileInfo",
    "overlap_fraction",
    "pairwise_overlap",
    "Platform",
    "ComputeNode",
    "StorageNode",
    "osc_xio",
    "osc_osumed",
    "ClusterState",
    "Runtime",
    "Scheduler",
    "IPScheduler",
    "BiPartitionScheduler",
    "MinMinScheduler",
    "JobDataPresentScheduler",
    "PopularityPolicy",
    "LRUPolicy",
    "run_batch",
    "make_scheduler",
    "available_schedulers",
    "BatchResult",
    "SubBatchPlan",
    "SubBatchResult",
    "__version__",
]
