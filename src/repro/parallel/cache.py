"""Content-addressed on-disk cache for experiment :class:`Record` results.

Every experiment cell is fully determined by its
:class:`~repro.experiments.runner.ExperimentConfig` (the simulator is
deterministic given the config's seed), so a finished cell can be keyed by
a stable hash of the config and replayed from disk instead of re-simulated.
Entries live under ``.repro-cache/<k[:2]>/<key>.json`` next to the working
directory by default; the key mixes in the package version and a schema
salt so stale results are invalidated whenever the simulation semantics
change.
"""

from __future__ import annotations

import hashlib
import json
import math
import os
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING

from .. import __version__
from ..experiments.report import Record
from ..obs.core import telemetry

if TYPE_CHECKING:  # pragma: no cover
    from ..experiments.runner import ExperimentConfig

__all__ = ["CACHE_SALT", "DEFAULT_CACHE_DIR", "CacheStats", "ResultCache", "config_key"]

# Bump whenever the meaning of a cached Record changes (simulator semantics,
# Record fields, workload generators, ...). Combined with ``__version__`` in
# every key, so version bumps also invalidate.
# v2: ExperimentConfig grew the semantic ``faults`` field — v1 keys were
# hashed without it, so a faulty run could have collided with its fault-free
# twin's cached Record.
CACHE_SALT = "repro-cache-v2"

DEFAULT_CACHE_DIR = ".repro-cache"


def _jsonable(value):
    """Make a config value JSON-stable (infinities have no JSON spelling)."""
    if isinstance(value, float) and math.isinf(value):
        return "inf" if value > 0 else "-inf"
    if isinstance(value, dict):
        return {k: _jsonable(v) for k, v in sorted(value.items())}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    return value


# Config fields that do not affect the simulated Record and therefore must
# not enter the cache key (flipping them would otherwise invalidate every
# cached cell for no reason).
_NON_SEMANTIC_FIELDS = frozenset({"telemetry", "timeseries"})


def config_key(cfg: ExperimentConfig, x: float | str | None = None) -> str:
    """Stable content hash for one experiment cell.

    Includes every *semantic* config field (observability toggles such as
    ``telemetry`` are excluded — they do not change the Record), the
    presentation ``x`` value (it is stored inside the resulting
    :class:`Record`), the package version, and :data:`CACHE_SALT`.
    """
    fields = {
        k: v for k, v in asdict(cfg).items() if k not in _NON_SEMANTIC_FIELDS
    }
    payload = {
        "config": _jsonable(fields),
        "x": _jsonable(x),
        "version": __version__,
        "salt": CACHE_SALT,
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


@dataclass
class CacheStats:
    """Hit/miss/store counters for one :class:`ResultCache` instance."""

    hits: int = 0
    misses: int = 0
    stores: int = 0

    def reset(self):
        self.hits = self.misses = self.stores = 0

    def summary(self) -> str:
        return f"{self.hits} hit(s), {self.misses} miss(es), {self.stores} store(d)"


@dataclass
class ResultCache:
    """Directory-backed store mapping config hashes to ``Record`` JSON."""

    root: Path = Path(DEFAULT_CACHE_DIR)
    stats: CacheStats = field(default_factory=CacheStats)

    def __post_init__(self):
        self.root = Path(self.root)

    def path_for(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def get(self, cfg: ExperimentConfig, x: float | str | None = None) -> Record | None:
        """Return the cached :class:`Record` for a cell, or ``None`` on miss."""
        path = self.path_for(config_key(cfg, x))
        try:
            with open(path) as fh:
                doc = json.load(fh)
            record = Record(**doc["record"])
        except (OSError, ValueError, KeyError, TypeError):
            self.stats.misses += 1
            telemetry.count("repro-cache/misses")
            return None
        self.stats.hits += 1
        telemetry.count("repro-cache/hits")
        return record

    def put(
        self,
        cfg: ExperimentConfig,
        x: float | str | None,
        record: Record,
        manifest: dict | None = None,
    ) -> Path:
        """Persist one finished cell; returns the entry's path.

        ``manifest`` is the cell's per-run manifest fragment (timing plus an
        optional telemetry snapshot, see :mod:`repro.parallel.pool`), stored
        alongside the record for post-hoc aggregation.
        """
        key = config_key(cfg, x)
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        doc = {
            "key": key,
            "version": __version__,
            "salt": CACHE_SALT,
            "config": _jsonable(asdict(cfg)),
            "x": _jsonable(x),
            "manifest": manifest,
            "record": asdict(record),
        }
        tmp = path.with_suffix(".tmp")
        with open(tmp, "w") as fh:
            json.dump(doc, fh, indent=None)
        os.replace(tmp, path)
        self.stats.stores += 1
        telemetry.count("repro-cache/stores")
        return path

    def clear(self) -> int:
        """Delete every cached entry; returns how many were removed."""
        removed = 0
        if not self.root.is_dir():
            return 0
        for path in self.root.rglob("*.json"):
            path.unlink(missing_ok=True)
            removed += 1
        for sub in sorted(self.root.rglob("*"), reverse=True):
            if sub.is_dir():
                try:
                    sub.rmdir()
                except OSError:
                    pass
        return removed

    def __len__(self) -> int:
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.rglob("*.json"))
