"""Parallel fan-out of independent experiment cells across processes.

Every paper figure is a sweep over independent ``(config, x)`` cells, so
the sweep is embarrassingly parallel: :func:`map_configs` dispatches cells
to a ``ProcessPoolExecutor`` in chunks, seeds each cell's global RNGs
deterministically from its config hash (so results never depend on which
worker ran a cell, or in what order), consults an optional
:class:`~repro.parallel.cache.ResultCache` before simulating anything, and
falls back to plain serial execution when ``workers <= 1``, only one cell
is pending, or the platform cannot fork.

Each freshly simulated cell carries a *manifest fragment* (its config
digest, wall-clock time and — when collection is on, via ``collect=True``
or the ``REPRO_TELEMETRY`` environment variable — the worker's telemetry
snapshot); :func:`aggregate_cells` merges the fragments of a whole sweep
into one summary the figure drivers and CI fold into the run manifest.
"""

from __future__ import annotations

import math
import os
import random
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from collections.abc import Sequence
from typing import Any

import numpy as np

from ..experiments.report import Record
from ..experiments.runner import ExperimentConfig, run_config_cell
from ..obs.core import telemetry
from ..obs.export import merge_snapshots
from ..obs.timeseries import merge_timeseries
from .cache import ResultCache, config_key

__all__ = [
    "CellResult",
    "aggregate_cells",
    "configure",
    "default_cache",
    "default_workers",
    "fork_available",
    "map_configs",
    "run_cells",
]

# Module-wide defaults, used when callers pass ``workers=None``/``cache=None``
# all the way down (the benchmark harness and figure drivers do exactly
# that). ``configure`` overrides them; the REPRO_WORKERS / REPRO_CACHE_DIR
# environment variables seed them for headless runs.
_defaults: dict = {"workers": None, "cache": None}


def configure(*, workers: int | None = None, cache: ResultCache | None = None):
    """Set process-wide defaults for :func:`map_configs`.

    ``workers=None`` keeps environment/serial resolution; ``cache=None``
    disables the default cache.
    """
    _defaults["workers"] = workers
    _defaults["cache"] = cache


def default_workers() -> int:
    """Resolve the default worker count (configure > env > serial)."""
    if _defaults["workers"] is not None:
        return max(1, int(_defaults["workers"]))
    env = os.environ.get("REPRO_WORKERS", "")
    if env.strip():
        try:
            return max(1, int(env))
        except ValueError:
            pass
    return 1


def default_cache() -> ResultCache | None:
    """Resolve the default cache (configure > REPRO_CACHE_DIR env > none)."""
    if _defaults["cache"] is not None:
        return _defaults["cache"]
    env = os.environ.get("REPRO_CACHE_DIR", "")
    if env.strip():
        return ResultCache(env)
    return None


def fork_available() -> bool:
    """Whether this platform supports fork-based worker processes."""
    import multiprocessing

    return "fork" in multiprocessing.get_all_start_methods()


@dataclass(frozen=True)
class CellResult:
    """One executed (or replayed) experiment cell.

    ``manifest`` is the cell's manifest fragment (config digest, timing and
    optional telemetry snapshot); replayed cells have ``manifest=None``.
    """

    record: Record
    cached: bool
    manifest: dict[str, Any] | None = None

    @property
    def elapsed_s(self) -> float:
        """Fresh simulation wall-clock seconds (0.0 for cache replays)."""
        if self.manifest is None:
            return 0.0
        return float(self.manifest.get("elapsed_s", 0.0))


def _collect_default() -> bool:
    """Whether workers should snapshot telemetry (``REPRO_TELEMETRY`` env)."""
    return os.environ.get("REPRO_TELEMETRY", "").strip().lower() in {
        "1",
        "true",
        "yes",
        "on",
    }


def _seed_cell(cfg: ExperimentConfig, x: float | str | None):
    """Deterministically seed global RNGs from the cell's content hash.

    The simulator itself only uses per-call ``default_rng(cfg.seed)``
    generators, but seeding the globals too guarantees any stray global-RNG
    use stays reproducible regardless of worker assignment or run order.
    """
    seed = int(config_key(cfg, x)[:8], 16)
    # The reseed is derived from the cache key itself, so it is the same for
    # every execution of the cell — pure by construction, hence the escapes.
    random.seed(seed)  # repro: noqa[RPR009]
    np.random.seed(seed)  # repro: noqa[RPR009]


def _run_cell(payload: tuple[ExperimentConfig, float | str | None, bool]):
    cfg, x, collect = payload
    _seed_cell(cfg, x)
    was_enabled = telemetry.enabled
    if collect:
        telemetry.reset()
        telemetry.enable()
    t0 = time.perf_counter()
    try:
        record, timeseries = run_config_cell(cfg, x)
        elapsed = time.perf_counter() - t0
        snapshot = telemetry.snapshot() if collect else None
    finally:
        if collect:
            # Leave the process-wide registry as we found it: the serial
            # fallback runs cells in the caller's process.
            telemetry.reset()
            if not was_enabled:
                telemetry.disable()
    manifest = {
        "config_digest": config_key(cfg, x),
        "elapsed_s": elapsed,
        "cached": False,
        "telemetry": snapshot,
        "timeseries": timeseries,
    }
    return record, manifest


def _resolve_cache(cache) -> ResultCache | None:
    # ``None`` means "use the configured default"; ``False`` forces off.
    # (An explicit identity check: an empty ResultCache is falsy via __len__.)
    if cache is None:
        return default_cache()
    if cache is False:
        return None
    return cache


def run_cells(
    configs: Sequence[ExperimentConfig],
    xs: Sequence[float | str | None] | None = None,
    *,
    workers: int | None = None,
    cache: ResultCache | None | bool = None,
    collect: bool | None = None,
) -> list[CellResult]:
    """Run every cell, returning per-cell records and manifest fragments.

    Results come back in input order. Cached cells are never dispatched;
    fresh results are written back to the cache as they arrive. ``collect``
    makes each worker snapshot its telemetry registry into the cell's
    manifest fragment (default: the ``REPRO_TELEMETRY`` environment
    variable).
    """
    configs = list(configs)
    xs = list(xs) if xs is not None else [None] * len(configs)
    if len(xs) != len(configs):
        raise ValueError(f"got {len(configs)} configs but {len(xs)} x values")
    workers = default_workers() if workers is None else max(1, int(workers))
    collect = _collect_default() if collect is None else collect
    store = _resolve_cache(cache)

    results: list[CellResult | None] = [None] * len(configs)
    pending: list[int] = []
    for i, (cfg, x) in enumerate(zip(configs, xs, strict=True)):
        hit = store.get(cfg, x) if store is not None else None
        if hit is not None:
            results[i] = CellResult(hit, cached=True)
        else:
            pending.append(i)

    if pending:
        payloads = [(configs[i], xs[i], collect) for i in pending]
        if workers > 1 and len(pending) > 1 and fork_available():
            import multiprocessing

            nworkers = min(workers, len(pending))
            chunksize = max(1, math.ceil(len(pending) / (nworkers * 4)))
            ctx = multiprocessing.get_context("fork")
            with ProcessPoolExecutor(max_workers=nworkers, mp_context=ctx) as pool:
                outputs = list(pool.map(_run_cell, payloads, chunksize=chunksize))
        else:
            outputs = [_run_cell(p) for p in payloads]
        for i, (record, manifest) in zip(pending, outputs, strict=True):
            results[i] = CellResult(record, cached=False, manifest=manifest)
            if store is not None:
                store.put(configs[i], xs[i], record, manifest)

    return [r for r in results if r is not None]


def aggregate_cells(cells: Sequence[CellResult]) -> dict[str, Any]:
    """Merge a sweep's per-cell manifest fragments into one summary.

    Counters sum across cells, gauges keep their last value, and span
    statistics merge; cells without a snapshot (cache replays, collection
    off) contribute only to the counts and timing totals.
    """
    snapshots = [
        c.manifest["telemetry"]
        for c in cells
        if c.manifest is not None and c.manifest.get("telemetry") is not None
    ]
    # Timeseries blocks are per-cell artifacts keyed by config digest; the
    # merge is a key-sorted union, so workers=1 and workers=N aggregate to
    # byte-identical results (each cell's block is computed in its own run).
    blocks = {
        c.manifest["config_digest"]: c.manifest["timeseries"]
        for c in cells
        if c.manifest is not None and c.manifest.get("timeseries") is not None
    }
    return {
        "cells": len(cells),
        "cached": sum(1 for c in cells if c.cached),
        "elapsed_s": sum(c.elapsed_s for c in cells),
        "telemetry": merge_snapshots(snapshots) if snapshots else None,
        "timeseries": merge_timeseries(blocks) if blocks else None,
    }


def map_configs(
    configs: Sequence[ExperimentConfig],
    xs: Sequence[float | str | None] | None = None,
    *,
    workers: int | None = None,
    cache: ResultCache | None | bool = None,
) -> list[Record]:
    """Fan independent experiment cells out across processes.

    Drop-in replacement for ``[run_config(c, x) for c, x in zip(...)]``:
    returns the same :class:`Record` list, in the same order, with the same
    values — just computed in parallel and/or replayed from the cache.
    """
    return [cell.record for cell in run_cells(configs, xs, workers=workers, cache=cache)]
