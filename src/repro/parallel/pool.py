"""Parallel fan-out of independent experiment cells across processes.

Every paper figure is a sweep over independent ``(config, x)`` cells, so
the sweep is embarrassingly parallel: :func:`map_configs` dispatches cells
to a ``ProcessPoolExecutor`` in chunks, seeds each cell's global RNGs
deterministically from its config hash (so results never depend on which
worker ran a cell, or in what order), consults an optional
:class:`~repro.parallel.cache.ResultCache` before simulating anything, and
falls back to plain serial execution when ``workers <= 1``, only one cell
is pending, or the platform cannot fork.
"""

from __future__ import annotations

import math
import os
import random
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from collections.abc import Sequence

import numpy as np

from ..experiments.report import Record
from ..experiments.runner import ExperimentConfig, run_config
from .cache import ResultCache, config_key

__all__ = [
    "CellResult",
    "configure",
    "default_cache",
    "default_workers",
    "fork_available",
    "map_configs",
    "run_cells",
]

# Module-wide defaults, used when callers pass ``workers=None``/``cache=None``
# all the way down (the benchmark harness and figure drivers do exactly
# that). ``configure`` overrides them; the REPRO_WORKERS / REPRO_CACHE_DIR
# environment variables seed them for headless runs.
_defaults: dict = {"workers": None, "cache": None}


def configure(*, workers: int | None = None, cache: ResultCache | None = None):
    """Set process-wide defaults for :func:`map_configs`.

    ``workers=None`` keeps environment/serial resolution; ``cache=None``
    disables the default cache.
    """
    _defaults["workers"] = workers
    _defaults["cache"] = cache


def default_workers() -> int:
    """Resolve the default worker count (configure > env > serial)."""
    if _defaults["workers"] is not None:
        return max(1, int(_defaults["workers"]))
    env = os.environ.get("REPRO_WORKERS", "")
    if env.strip():
        try:
            return max(1, int(env))
        except ValueError:
            pass
    return 1


def default_cache() -> ResultCache | None:
    """Resolve the default cache (configure > REPRO_CACHE_DIR env > none)."""
    if _defaults["cache"] is not None:
        return _defaults["cache"]
    env = os.environ.get("REPRO_CACHE_DIR", "")
    if env.strip():
        return ResultCache(env)
    return None


def fork_available() -> bool:
    """Whether this platform supports fork-based worker processes."""
    import multiprocessing

    return "fork" in multiprocessing.get_all_start_methods()


@dataclass(frozen=True)
class CellResult:
    """One executed (or replayed) experiment cell."""

    record: Record
    elapsed_s: float
    cached: bool


def _seed_cell(cfg: ExperimentConfig, x: float | str | None):
    """Deterministically seed global RNGs from the cell's content hash.

    The simulator itself only uses per-call ``default_rng(cfg.seed)``
    generators, but seeding the globals too guarantees any stray global-RNG
    use stays reproducible regardless of worker assignment or run order.
    """
    seed = int(config_key(cfg, x)[:8], 16)
    random.seed(seed)
    np.random.seed(seed)


def _run_cell(payload: tuple[ExperimentConfig, float | str | None]):
    cfg, x = payload
    _seed_cell(cfg, x)
    t0 = time.perf_counter()
    record = run_config(cfg, x)
    return record, time.perf_counter() - t0


def _resolve_cache(cache) -> ResultCache | None:
    # ``None`` means "use the configured default"; ``False`` forces off.
    # (An explicit identity check: an empty ResultCache is falsy via __len__.)
    if cache is None:
        return default_cache()
    if cache is False:
        return None
    return cache


def run_cells(
    configs: Sequence[ExperimentConfig],
    xs: Sequence[float | str | None] | None = None,
    *,
    workers: int | None = None,
    cache: ResultCache | None | bool = None,
) -> list[CellResult]:
    """Run every cell, returning per-cell records, timings and cache flags.

    Results come back in input order. Cached cells are never dispatched;
    fresh results are written back to the cache as they arrive.
    """
    configs = list(configs)
    xs = list(xs) if xs is not None else [None] * len(configs)
    if len(xs) != len(configs):
        raise ValueError(f"got {len(configs)} configs but {len(xs)} x values")
    workers = default_workers() if workers is None else max(1, int(workers))
    store = _resolve_cache(cache)

    results: list[CellResult | None] = [None] * len(configs)
    pending: list[int] = []
    for i, (cfg, x) in enumerate(zip(configs, xs, strict=True)):
        hit = store.get(cfg, x) if store is not None else None
        if hit is not None:
            results[i] = CellResult(hit, 0.0, True)
        else:
            pending.append(i)

    if pending:
        payloads = [(configs[i], xs[i]) for i in pending]
        if workers > 1 and len(pending) > 1 and fork_available():
            import multiprocessing

            nworkers = min(workers, len(pending))
            chunksize = max(1, math.ceil(len(pending) / (nworkers * 4)))
            ctx = multiprocessing.get_context("fork")
            with ProcessPoolExecutor(max_workers=nworkers, mp_context=ctx) as pool:
                outputs = list(pool.map(_run_cell, payloads, chunksize=chunksize))
        else:
            outputs = [_run_cell(p) for p in payloads]
        for i, (record, elapsed) in zip(pending, outputs, strict=True):
            results[i] = CellResult(record, elapsed, False)
            if store is not None:
                store.put(configs[i], xs[i], record, elapsed)

    return [r for r in results if r is not None]


def map_configs(
    configs: Sequence[ExperimentConfig],
    xs: Sequence[float | str | None] | None = None,
    *,
    workers: int | None = None,
    cache: ResultCache | None | bool = None,
) -> list[Record]:
    """Fan independent experiment cells out across processes.

    Drop-in replacement for ``[run_config(c, x) for c, x in zip(...)]``:
    returns the same :class:`Record` list, in the same order, with the same
    values — just computed in parallel and/or replayed from the cache.
    """
    return [cell.record for cell in run_cells(configs, xs, workers=workers, cache=cache)]
