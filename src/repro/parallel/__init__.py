"""Parallel experiment fan-out with content-addressed result caching.

The paper's figures are sweeps of independent experiment cells; this
package farms those cells out across processes (:func:`map_configs`) and
replays previously simulated cells from an on-disk JSON cache
(:class:`ResultCache`), the same bulk-job shape STAR-Scheduler and DIANA
exploit for throughput. ``repro.experiments.figures``, the CLI's
``run``/``figure`` commands and the benchmark harness all route through
this layer.
"""

from .cache import CACHE_SALT, DEFAULT_CACHE_DIR, CacheStats, ResultCache, config_key
from .pool import (
    CellResult,
    aggregate_cells,
    configure,
    default_cache,
    default_workers,
    fork_available,
    map_configs,
    run_cells,
)

__all__ = [
    "CACHE_SALT",
    "DEFAULT_CACHE_DIR",
    "CacheStats",
    "CellResult",
    "ResultCache",
    "aggregate_cells",
    "config_key",
    "configure",
    "default_cache",
    "default_workers",
    "fork_available",
    "map_configs",
    "run_cells",
]
