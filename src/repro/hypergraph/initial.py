"""Initial bipartitioning of the coarsest hypergraph.

Two strategies, both run multiple times with the best kept:

* *Greedy hypergraph growing* (GHG, PaToH's default): grow part 0 from a
  random seed by repeatedly absorbing the unassigned vertex with the highest
  move gain until part 0 reaches its target weight.
* *Random balanced*: shuffle vertices, fill part 0 to target. Used as a
  diversity fallback when GHG stalls on disconnected graphs.
"""

from __future__ import annotations

import numpy as np

from .hypergraph import Hypergraph
from .metrics import cut_weight

__all__ = ["greedy_growing_bipartition", "random_bipartition", "initial_bipartition"]


def random_bipartition(
    h: Hypergraph, rng: np.random.Generator, target0: float
) -> np.ndarray:
    """Shuffle vertices and fill part 0 up to ``target0`` total weight."""
    parts = np.ones(h.num_vertices, dtype=int)
    acc = 0.0
    for v in rng.permutation(h.num_vertices):
        if acc < target0:
            parts[v] = 0
            acc += h.vertex_weights[v]
    return parts


def greedy_growing_bipartition(
    h: Hypergraph, rng: np.random.Generator, target0: float
) -> np.ndarray:
    """Grow part 0 from a random seed by best-gain absorption.

    The gain of absorbing vertex ``v`` is the weight of its nets that would
    stop being cut minus the weight of nets that would become newly cut —
    approximated incrementally with per-net counts of already-absorbed pins.
    """
    n = h.num_vertices
    parts = np.ones(n, dtype=int)
    if n == 0:
        return parts
    in0 = np.zeros(n, dtype=bool)
    pins_in0 = np.zeros(h.num_nets, dtype=int)

    def absorb_gain(v: int) -> float:
        g = 0.0
        for j in h.nets_of(v):
            size = h.net_size(j)
            cnt = pins_in0[j]
            if cnt == size - 1:
                g += float(h.net_weights[j])  # net becomes internal to part 0
            elif cnt == 0 and size > 1:
                g -= float(h.net_weights[j])  # net becomes cut
        return g

    seed = int(rng.integers(n))
    frontier: set[int] = {seed}
    acc = 0.0
    while acc < target0:
        if not frontier:
            remaining = [v for v in range(n) if not in0[v]]
            if not remaining:
                break
            frontier.add(int(rng.choice(remaining)))
        best_v = max(frontier, key=lambda v: (absorb_gain(v), -h.vertex_weights[v]))
        frontier.discard(best_v)
        in0[best_v] = True
        parts[best_v] = 0
        acc += h.vertex_weights[best_v]
        for j in h.nets_of(best_v):
            pins_in0[j] += 1
            for u in h.pins(j):
                if not in0[u]:
                    frontier.add(u)
    return parts


def initial_bipartition(
    h: Hypergraph,
    rng: np.random.Generator,
    target0_fraction: float = 0.5,
    tries: int = 4,
) -> np.ndarray:
    """Run several initial strategies; return the lowest-cut bipartition."""
    target0 = h.total_vertex_weight * target0_fraction
    best: np.ndarray | None = None
    best_cut = np.inf
    for t in range(max(1, tries)):
        maker = greedy_growing_bipartition if t % 2 == 0 else random_bipartition
        parts = maker(h, rng, target0)
        c = cut_weight(h, parts)
        if c < best_cut:
            best, best_cut = parts, c
    assert best is not None
    return best
