"""Multilevel bisection: coarsen -> initial partition -> refine while uncoarsening."""

from __future__ import annotations

import numpy as np

from .coarsen import coarsen, project_partition
from .hypergraph import Hypergraph
from .initial import initial_bipartition
from .refine import fm_refine

__all__ = ["multilevel_bisect"]


def multilevel_bisect(
    h: Hypergraph,
    rng: np.random.Generator,
    target0_fraction: float = 0.5,
    epsilon: float = 0.05,
    coarsen_to: int = 64,
    initial_tries: int = 4,
) -> np.ndarray:
    """Bisect ``h`` into parts {0, 1} with weight targets and tolerance.

    ``target0_fraction`` is part 0's share of the total vertex weight (used
    for uneven splits in recursive bisection of non-power-of-two K); each
    side may exceed its target by at most ``epsilon`` relatively.
    """
    n = h.num_vertices
    if n == 0:
        return np.zeros(0, dtype=int)
    if n == 1:
        return np.zeros(1, dtype=int)

    total = h.total_vertex_weight
    # Allow at least the heaviest single vertex so a feasible split exists.
    heaviest = float(h.vertex_weights.max())
    max0 = max(total * target0_fraction * (1 + epsilon), heaviest)
    max1 = max(total * (1 - target0_fraction) * (1 + epsilon), heaviest)

    coarsest, levels = coarsen(h, rng, target_vertices=coarsen_to)
    parts = initial_bipartition(coarsest, rng, target0_fraction, tries=initial_tries)
    parts = fm_refine(coarsest, parts, (max0, max1), rng=rng)
    for fine, projected in project_partition(levels, parts):
        parts = fm_refine(fine, projected, (max0, max1), rng=rng)
    return parts
