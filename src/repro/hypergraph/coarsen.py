"""Multilevel coarsening via heavy-connectivity matching.

Following PaToH's HCM scheme: visit vertices in random order; an unmatched
vertex is paired with the unmatched neighbour to which it is most strongly
connected, where the connectivity contributed by a shared net ``n_j`` is
``c_j / (|n_j| - 1)`` (so small, heavy nets attract most). Matched pairs are
contracted; the process repeats until the hypergraph is small enough for
initial partitioning or stops shrinking.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .hypergraph import Hypergraph

__all__ = ["CoarseningLevel", "heavy_connectivity_matching", "coarsen"]

# Nets larger than this contribute negligible per-pin connectivity and cost
# O(size^2) pair updates; skip them during matching (PaToH does the same).
_MATCHING_NET_SIZE_LIMIT = 64


@dataclass
class CoarseningLevel:
    """One level of the multilevel hierarchy: the fine graph and its mapping."""

    fine: Hypergraph
    cluster_of: np.ndarray  # fine vertex -> coarse vertex


def heavy_connectivity_matching(
    h: Hypergraph,
    rng: np.random.Generator,
    max_cluster_weight: float | None = None,
) -> np.ndarray:
    """Compute a matching-based clustering; returns ``cluster_of`` array.

    ``max_cluster_weight`` prevents merging two vertices whose combined
    weight exceeds the bound (keeps coarse graphs balanceable).
    """
    n = h.num_vertices
    cluster_of = np.full(n, -1, dtype=int)
    matched = np.zeros(n, dtype=bool)
    next_cluster = 0

    order = rng.permutation(n)
    scores: dict[int, float] = {}
    for v in order:
        if matched[v]:
            continue
        scores.clear()
        for j in h.nets_of(v):
            size = h.net_size(j)
            if size < 2 or size > _MATCHING_NET_SIZE_LIMIT:
                continue
            contrib = float(h.net_weights[j]) / (size - 1)
            for u in h.pins(j):
                if u != v and not matched[u]:
                    scores[u] = scores.get(u, 0.0) + contrib

        best_u = -1
        best_score = 0.0
        wv = h.vertex_weights[v]
        for u, s in scores.items():
            if max_cluster_weight is not None and wv + h.vertex_weights[u] > max_cluster_weight:
                continue
            if s > best_score or (s == best_score and best_u == -1):
                best_u, best_score = u, s

        matched[v] = True
        cluster_of[v] = next_cluster
        if best_u >= 0:
            matched[best_u] = True
            cluster_of[best_u] = next_cluster
        next_cluster += 1

    return cluster_of


def coarsen(
    h: Hypergraph,
    rng: np.random.Generator,
    target_vertices: int = 64,
    max_levels: int = 30,
    shrink_threshold: float = 0.95,
) -> tuple[Hypergraph, list[CoarseningLevel]]:
    """Coarsen until ``target_vertices`` is reached or shrinking stalls.

    Returns the coarsest hypergraph and the ordered list of levels (finest
    first) needed to project a coarse partition back to the original graph.
    The max-cluster-weight bound is set so no coarse vertex outgrows what a
    balanced bipartition could host.
    """
    levels: list[CoarseningLevel] = []
    current = h
    # A cluster heavier than half the total weight can never be balanced.
    weight_cap = max(current.total_vertex_weight / 2.0, 1e-12)
    for _ in range(max_levels):
        if current.num_vertices <= target_vertices:
            break
        cluster_of = heavy_connectivity_matching(current, rng, weight_cap)
        nc = int(cluster_of.max()) + 1 if len(cluster_of) else 0
        if nc >= current.num_vertices * shrink_threshold:
            break  # stalled: nearly nothing matched
        coarse = current.contract(cluster_of)
        levels.append(CoarseningLevel(fine=current, cluster_of=cluster_of))
        current = coarse
    return current, levels


def project_partition(levels: list[CoarseningLevel], coarse_parts: np.ndarray):
    """Project a partition of the coarsest graph through all levels.

    Yields ``(hypergraph, parts)`` pairs from coarsest-but-one to finest so
    the caller can refine at each level (the classic V-cycle uncoarsening).
    """
    parts = coarse_parts
    for level in reversed(levels):
        parts = parts[level.cluster_of]
        yield level.fine, parts
