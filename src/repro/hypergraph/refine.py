"""Fiduccia–Mattheyses (FM) bipartition refinement.

Classic FM with lazy max-heaps: repeatedly move the highest-gain unlocked
vertex whose move keeps the destination part within its weight bound, lock
it, update neighbour gains, and finally roll back to the best prefix of the
move sequence. Passes repeat until a pass yields no improvement.

The gain of moving ``v`` from part ``a`` to part ``b`` under the cut-net
metric is::

    gain(v) = sum(c_j for nets j of v with all other pins in b)   # uncut
            - sum(c_j for nets j of v with all pins in a)         # newly cut

tracked incrementally with per-net pin counts per side.
"""

from __future__ import annotations

import heapq

import numpy as np

from ..obs.core import telemetry
from .hypergraph import Hypergraph
from .metrics import cut_weight

__all__ = ["fm_refine", "compute_gains"]


def compute_gains(h: Hypergraph, parts: np.ndarray) -> np.ndarray:
    """Move gains for every vertex under the cut-net metric."""
    counts = _side_counts(h, parts)
    gains = np.zeros(h.num_vertices)
    for v in range(h.num_vertices):
        gains[v] = _gain_of(h, counts, parts, v)
    return gains


def _side_counts(h: Hypergraph, parts: np.ndarray) -> np.ndarray:
    """``counts[j, s]`` = number of pins of net ``j`` in side ``s``."""
    counts = np.zeros((h.num_nets, 2), dtype=int)
    for j in range(h.num_nets):
        for v in h.pins(j):
            counts[j, parts[v]] += 1
    return counts


def _gain_of(h: Hypergraph, counts: np.ndarray, parts: np.ndarray, v: int) -> float:
    a = parts[v]
    b = 1 - a
    g = 0.0
    for j in h.nets_of(v):
        if counts[j, b] == 0:
            g -= float(h.net_weights[j])
        if counts[j, a] == 1:
            g += float(h.net_weights[j])
    return g


def fm_refine(
    h: Hypergraph,
    parts: np.ndarray,
    max_part_weights: tuple[float, float],
    max_passes: int = 8,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """Refine a bipartition in place-semantics (returns a new array).

    ``max_part_weights`` bounds each side's total vertex weight; a move is
    admissible only if the destination stays within its bound. If the input
    violates a bound, rebalancing moves (negative gain allowed) are used
    until feasible, mirroring PaToH's feasibility-restoring passes.
    """
    parts = np.asarray(parts, dtype=int).copy()
    if h.num_vertices == 0:
        return parts

    def _feasible_weights(w) -> bool:
        return w[0] <= max_part_weights[0] and w[1] <= max_part_weights[1]

    init_w = np.zeros(2)
    np.add.at(init_w, parts, h.vertex_weights)
    best_parts = parts.copy()
    best_cut = cut_weight(h, parts) if _feasible_weights(init_w) else np.inf

    for _ in range(max_passes):
        counts = _side_counts(h, parts)
        side_w = np.zeros(2)
        np.add.at(side_w, parts, h.vertex_weights)
        gains = {v: _gain_of(h, counts, parts, v) for v in range(h.num_vertices)}
        heap: list[tuple[float, int]] = [(-g, v) for v, g in gains.items()]
        heapq.heapify(heap)
        locked = np.zeros(h.num_vertices, dtype=bool)

        moves: list[int] = []
        cur_cut = cut_weight(h, parts)
        feasible = _feasible_weights(side_w)
        pass_best_cut = cur_cut if feasible else np.inf
        pass_best_prefix = 0

        while heap:
            neg_g, v = heapq.heappop(heap)
            if locked[v] or gains[v] != -neg_g:
                continue  # stale heap entry
            a = parts[v]
            b = 1 - a
            if side_w[b] + h.vertex_weights[v] > max_part_weights[b]:
                # Inadmissible; if currently infeasible on side a, allow the
                # move anyway when it improves balance.
                if not (not feasible and side_w[a] > max_part_weights[a]):
                    continue

            # Commit the move.
            locked[v] = True
            parts[v] = b
            side_w[a] -= h.vertex_weights[v]
            side_w[b] += h.vertex_weights[v]
            cur_cut -= gains[v]
            moves.append(v)
            feasible = _feasible_weights(side_w)
            # Update net counts and neighbour gains.
            dirty: set[int] = set()
            for j in h.nets_of(v):
                counts[j, a] -= 1
                counts[j, b] += 1
                for u in h.pins(j):
                    if not locked[u]:
                        dirty.add(u)
            for u in dirty:
                g = _gain_of(h, counts, parts, u)
                if g != gains[u]:
                    gains[u] = g
                    heapq.heappush(heap, (-g, u))

            if feasible and cur_cut < pass_best_cut - 1e-12:
                pass_best_cut = cur_cut
                pass_best_prefix = len(moves)

        # Roll back to the best feasible prefix of this pass.
        for v in moves[pass_best_prefix:]:
            parts[v] = 1 - parts[v]

        if telemetry.enabled:
            telemetry.count("hypergraph/fm/passes")
            telemetry.count("hypergraph/fm/moves", pass_best_prefix)
            if np.isfinite(pass_best_cut) and np.isfinite(best_cut):
                telemetry.count(
                    "hypergraph/fm/gain", max(best_cut - pass_best_cut, 0.0)
                )

        if pass_best_cut < best_cut - 1e-12:
            best_cut = pass_best_cut
            best_parts = parts.copy()
        else:
            break  # no improvement this pass

    return best_parts
