"""Multilevel hypergraph partitioning substrate (PaToH-style, from scratch).

The paper's BiPartition scheduler needs two flavours of hypergraph
partitioning (Section 5):

* classic K-way partitioning under the connectivity-1 metric
  (:func:`kway_partition`) for mapping a sub-batch onto compute nodes, and
* Bounded Incident Net Weight partitioning (:func:`binw_partition`) for
  cutting a batch into sub-batches whose file footprints fit the cluster's
  aggregate disk space.

Both are built on a multilevel pipeline: heavy-connectivity-matching
coarsening, greedy-growing initial bipartitioning, FM refinement, and
recursive bisection with net splitting.

>>> import numpy as np
>>> from repro.hypergraph import Hypergraph, kway_partition, connectivity_1
>>> h = Hypergraph(4, [[0, 1], [2, 3], [1, 2]])
>>> parts = kway_partition(h, 2, np.random.default_rng(0))
>>> connectivity_1(h, parts)
1.0
"""

from .binw import BinwResult, binw_partition
from .bisect import multilevel_bisect
from .coarsen import CoarseningLevel, coarsen, heavy_connectivity_matching
from .hypergraph import Hypergraph, PartitionStats
from .initial import (
    greedy_growing_bipartition,
    initial_bipartition,
    random_bipartition,
)
from .metrics import (
    connectivity_1,
    cut_weight,
    imbalance,
    incident_net_weights,
    net_connectivity,
    part_weights,
    partition_stats,
    validate_partition,
)
from .recursive import kway_partition
from .refine import compute_gains, fm_refine

__all__ = [
    "Hypergraph",
    "PartitionStats",
    "BinwResult",
    "binw_partition",
    "kway_partition",
    "multilevel_bisect",
    "coarsen",
    "CoarseningLevel",
    "heavy_connectivity_matching",
    "initial_bipartition",
    "greedy_growing_bipartition",
    "random_bipartition",
    "fm_refine",
    "compute_gains",
    "connectivity_1",
    "cut_weight",
    "net_connectivity",
    "part_weights",
    "imbalance",
    "incident_net_weights",
    "partition_stats",
    "validate_partition",
]
