"""Bounded Incident Net Weight (BINW) partitioning — Section 5.1/5.2.

BINW partitioning divides a hypergraph into a *variable* number of parts such
that each part's incident net weight (total weight of distinct nets touching
the part, plus anchored size-1 net weight) stays below a bound ``D``, while
minimizing the connectivity-1 cost. For the scheduler, parts are sub-batches
and ``D`` is the aggregate disk space of the compute cluster: every
sub-batch's files are then guaranteed to fit on the cluster at once.

Implementation: recursive multilevel bisection. A piece whose incident net
weight already satisfies ``D`` becomes a final part; otherwise it is bisected
(with net splitting and size-1-net weight anchoring, so incident weights stay
exact across levels) and both halves recurse. Minimizing the cut at every
bisection greedily minimizes both connectivity-1 and, indirectly, the number
of parts, matching the paper's observation that the two goals align.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..analysis.dims import MB
from .bisect import multilevel_bisect
from .hypergraph import Hypergraph

__all__ = ["BinwResult", "binw_partition"]


@dataclass
class BinwResult:
    """Outcome of BINW partitioning.

    ``parts[v]`` is the part id of vertex ``v``; ids are assigned in the
    order parts are finalised. ``oversized_parts`` lists parts consisting of
    a single vertex whose own incident net weight exceeds ``D`` (impossible
    to split further — the driver must handle them, e.g. a single task whose
    files exceed aggregate disk space).
    """

    parts: np.ndarray
    num_parts: int
    oversized_parts: tuple[int, ...]


def binw_partition(
    h: Hypergraph,
    bound: MB,
    rng: np.random.Generator,
    epsilon: float = 0.20,
    coarsen_to: int = 64,
    initial_tries: int = 4,
    max_parts: int | None = None,
) -> BinwResult:
    """Partition ``h`` so every part has incident net weight <= ``bound``.

    ``epsilon`` is the bisection balance tolerance (vertex weights); looser
    values than classic K-way partitioning are appropriate because balance
    between sub-batches is not itself an objective.
    """
    if bound <= 0:
        raise ValueError("bound must be positive")
    n = h.num_vertices
    parts = np.full(n, -1, dtype=int)
    oversized: list[int] = []
    next_part = 0
    limit = max_parts if max_parts is not None else max(4 * n, 16)

    # Work stack of (sub-hypergraph, global vertex ids).
    stack: list[tuple[Hypergraph, np.ndarray]] = [(h, np.arange(n))]
    while stack:
        sub, ids = stack.pop()
        if sub.num_vertices == 0:
            continue
        inw = sub.incident_net_weight(range(sub.num_vertices))
        if inw <= bound or sub.num_vertices == 1:
            if inw > bound:
                oversized.append(next_part)
            parts[ids] = next_part
            next_part += 1
            if next_part > limit:
                raise RuntimeError(
                    "BINW produced more parts than max_parts; bound too small?"
                )
            continue

        bis = multilevel_bisect(
            sub,
            rng,
            target0_fraction=0.5,
            epsilon=epsilon,
            coarsen_to=coarsen_to,
            initial_tries=initial_tries,
        )
        side0 = np.flatnonzero(bis == 0)
        side1 = np.flatnonzero(bis == 1)
        if len(side0) == 0 or len(side1) == 0:
            # Degenerate bisection; force a split so recursion terminates.
            order = np.argsort(-sub.vertex_weights)
            half = max(1, sub.num_vertices // 2)
            side0, side1 = order[:half], order[half:]
        sub0, ids0 = sub.sub_hypergraph(side0)
        sub1, ids1 = sub.sub_hypergraph(side1)
        stack.append((sub0, ids[ids0]))
        stack.append((sub1, ids[ids1]))

    return BinwResult(
        parts=parts, num_parts=next_part, oversized_parts=tuple(oversized)
    )
