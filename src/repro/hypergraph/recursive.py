"""K-way hypergraph partitioning via recursive multilevel bisection.

The second-level partitioner of the BiPartition scheduler (Section 5.3) maps
a sub-batch onto the ``K`` compute nodes by K-way partitioning under the
connectivity-1 metric. Like PaToH, K-way partitions are produced by recursive
bisection with *net splitting* (handled by
:meth:`repro.hypergraph.Hypergraph.sub_hypergraph`), which makes the sum of
bisection cut weights equal the final connectivity-1 cost.
"""

from __future__ import annotations

import numpy as np

from ..obs.core import telemetry
from .bisect import multilevel_bisect
from .hypergraph import Hypergraph
from .metrics import cut_weight

__all__ = ["kway_partition"]


def kway_partition(
    h: Hypergraph,
    k: int,
    rng: np.random.Generator,
    epsilon: float = 0.10,
    coarsen_to: int = 64,
    initial_tries: int = 4,
) -> np.ndarray:
    """Partition ``h`` into ``k`` parts balanced within ``1 + epsilon``.

    Returns an array mapping each vertex to a part in ``0..k-1``. For
    non-power-of-two ``k`` the bisection targets are split proportionally
    (``ceil(k/2) : floor(k/2)``), with the tolerance divided across the
    remaining bisection depth so the final parts respect ``epsilon``.
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    parts = np.zeros(h.num_vertices, dtype=int)
    if k == 1 or h.num_vertices == 0:
        return parts

    # Tolerance per bisection level: (1 + eps_level)^depth ≈ 1 + epsilon.
    depth = int(np.ceil(np.log2(k)))
    eps_level = (1.0 + epsilon) ** (1.0 / depth) - 1.0

    def _recurse(
        sub: Hypergraph, global_ids: np.ndarray, k_sub: int, base: int, level: int
    ) -> None:
        if k_sub == 1 or sub.num_vertices == 0:
            parts[global_ids] = base
            return
        k0 = (k_sub + 1) // 2
        frac0 = k0 / k_sub
        with telemetry.span("bisect"):
            bis = multilevel_bisect(
                sub,
                rng,
                target0_fraction=frac0,
                epsilon=eps_level,
                coarsen_to=coarsen_to,
                initial_tries=initial_tries,
            )
        side0 = np.flatnonzero(bis == 0)
        side1 = np.flatnonzero(bis == 1)
        # Degenerate bisection (all vertices on one side): split arbitrarily
        # to guarantee progress and that every part id can be produced.
        if len(side0) == 0 or len(side1) == 0:
            order = np.argsort(-sub.vertex_weights)
            half = max(1, len(order) * k0 // k_sub)
            side0, side1 = order[:half], order[half:]
        if telemetry.enabled:
            # With net splitting, summing per-bisection cut weights over the
            # recursion gives the final connectivity-1 cost, so these
            # counters decompose the K-way cut by recursion level.
            split = np.zeros(sub.num_vertices, dtype=int)
            split[side1] = 1
            cut = cut_weight(sub, split)
            telemetry.count("hypergraph/bisections")
            telemetry.count("hypergraph/cut_weight", cut)
            telemetry.count(f"hypergraph/level{level}/cut_weight", cut)
        sub0, ids0 = sub.sub_hypergraph(side0)
        sub1, ids1 = sub.sub_hypergraph(side1)
        _recurse(sub0, global_ids[ids0], k0, base, level + 1)
        _recurse(sub1, global_ids[ids1], k_sub - k0, base + k0, level + 1)

    with telemetry.span("kway-partition"):
        _recurse(h, np.arange(h.num_vertices), k, 0, 0)
    return parts
