"""Hypergraph data structure used by the BiPartition scheduler.

A hypergraph ``H = (V, N)`` has weighted vertices (tasks: expected execution
time) and weighted nets (files: file size); each net connects the vertices
that share the corresponding file (Section 5.1 of the paper).

The structure is immutable after construction. Coarsening (:meth:`contract`)
and recursive bisection (:meth:`sub_hypergraph`) build *new* hypergraphs, the
latter implementing PaToH-style *net splitting* so the connectivity-1 metric
is accounted correctly across bisection levels.

``anchored_weights`` carries the BINW bookkeeping from Section 5.1: when a
net degenerates to a single pin (during contraction or net splitting) it can
no longer be cut, but its weight still counts toward its part's *incident net
weight*. The paper modified PaToH to accumulate such weights in "a separate
weight variable for each vertex"; that variable is ``anchored_weights``.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterable, Sequence

import numpy as np

from ..analysis.dims import MB

__all__ = ["Hypergraph", "PartitionStats"]


class Hypergraph:
    """An immutable weighted hypergraph.

    Parameters
    ----------
    num_vertices:
        Number of vertices, identified by ``0..num_vertices-1``.
    nets:
        One pin list per net. Pins must be valid vertex ids; duplicates are
        removed. Empty nets are rejected.
    vertex_weights / net_weights:
        Balance weights for vertices and cost weights for nets. Default 1.0.
    anchored_weights:
        Per-vertex accumulated weight of degenerated (size-1) nets; used only
        for BINW incident-net-weight accounting.
    """

    def __init__(
        self,
        num_vertices: int,
        nets: Sequence[Iterable[int]],
        vertex_weights: Sequence[float] | None = None,
        net_weights: Sequence[float] | None = None,
        anchored_weights: Sequence[float] | None = None,
    ):
        if num_vertices < 0:
            raise ValueError("num_vertices must be non-negative")
        self._n = int(num_vertices)

        pins: list[tuple[int, ...]] = []
        for j, raw in enumerate(nets):
            uniq = sorted(set(int(v) for v in raw))
            if not uniq:
                raise ValueError(f"net {j} is empty")
            if uniq[0] < 0 or uniq[-1] >= self._n:
                raise ValueError(f"net {j} has out-of-range pins: {uniq}")
            pins.append(tuple(uniq))
        self._pins = pins

        self.vertex_weights = self._weights(vertex_weights, self._n, "vertex_weights")
        self.net_weights = self._weights(net_weights, len(pins), "net_weights")
        if anchored_weights is None:
            self.anchored_weights = np.zeros(self._n)
        else:
            self.anchored_weights = self._weights(
                anchored_weights, self._n, "anchored_weights", allow_zero=True
            )

        # vertex -> incident nets (list of net ids)
        vnets: list[list[int]] = [[] for _ in range(self._n)]
        for j, ps in enumerate(pins):
            for v in ps:
                vnets[v].append(j)
        self._vnets = [tuple(ns) for ns in vnets]

    @staticmethod
    def _weights(values, expected, label, allow_zero: bool = True) -> np.ndarray:
        if values is None:
            return np.ones(expected)
        arr = np.asarray(values, dtype=float)
        if arr.shape != (expected,):
            raise ValueError(f"{label} must have length {expected}, got {arr.shape}")
        if (arr < 0).any():
            raise ValueError(f"{label} must be non-negative")
        return arr.copy()

    # -- basic accessors -------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        return self._n

    @property
    def num_nets(self) -> int:
        return len(self._pins)

    @property
    def num_pins(self) -> int:
        return sum(len(p) for p in self._pins)

    def pins(self, net: int) -> tuple[int, ...]:
        """Vertices connected by ``net``."""
        return self._pins[net]

    def nets_of(self, vertex: int) -> tuple[int, ...]:
        """Nets incident to ``vertex``."""
        return self._vnets[vertex]

    def net_size(self, net: int) -> int:
        return len(self._pins[net])

    @property
    def total_vertex_weight(self) -> float:
        return float(self.vertex_weights.sum())

    @property
    def total_net_weight(self) -> float:
        return float(self.net_weights.sum())

    def degree(self, vertex: int) -> int:
        return len(self._vnets[vertex])

    # -- incident net weight (BINW) ---------------------------------------------
    def incident_net_weight(self, vertices: Iterable[int]) -> MB:
        """Total weight of nets incident to ``vertices`` plus anchored weight.

        This is the quantity bounded by ``D`` in BINW partitioning (Eq. 24):
        for a sub-batch it equals the total size of the distinct files the
        sub-batch's tasks touch.
        """
        vs = list(vertices)
        seen: set[int] = set()
        for v in vs:
            seen.update(self._vnets[v])
        w = float(self.net_weights[list(seen)].sum()) if seen else 0.0
        if len(vs):
            w += float(self.anchored_weights[vs].sum())
        return w

    # -- coarsening -----------------------------------------------------------
    def contract(self, cluster_of: Sequence[int]) -> Hypergraph:
        """Contract vertices into clusters, returning the coarse hypergraph.

        ``cluster_of[v]`` gives the coarse vertex id of ``v``; cluster ids
        must form a contiguous range ``0..nc-1``. Vertex (and anchored)
        weights are summed per cluster. Net pins are mapped and deduplicated;
        nets that degenerate to a single pin have their weight folded into
        the pin's anchored weight. Identical surviving nets are merged with
        summed weights (PaToH's identical-net collapse).
        """
        cluster_of = np.asarray(cluster_of, dtype=int)
        if cluster_of.shape != (self._n,):
            raise ValueError("cluster_of must map every vertex")
        nc = int(cluster_of.max()) + 1 if self._n else 0
        present = np.zeros(nc, dtype=bool)
        present[cluster_of] = True
        if not present.all():
            raise ValueError("cluster ids must be contiguous 0..nc-1")

        vweights = np.zeros(nc)
        anchored = np.zeros(nc)
        np.add.at(vweights, cluster_of, self.vertex_weights)
        np.add.at(anchored, cluster_of, self.anchored_weights)

        merged: dict[tuple[int, ...], float] = {}
        for j, ps in enumerate(self._pins):
            coarse = tuple(sorted(set(int(cluster_of[v]) for v in ps)))
            w = float(self.net_weights[j])
            if len(coarse) == 1:
                anchored[coarse[0]] += w
            else:
                merged[coarse] = merged.get(coarse, 0.0) + w

        nets = list(merged.keys())
        weights = [merged[p] for p in nets]
        return Hypergraph(nc, nets, vweights, weights, anchored)

    # -- sub-hypergraph with net splitting -----------------------------------------
    def sub_hypergraph(
        self, vertices: Sequence[int]
    ) -> tuple["Hypergraph", np.ndarray]:
        """Restrict to ``vertices`` (net splitting for recursive bisection).

        Returns ``(sub, index_map)`` where ``index_map[local] = global``.
        Each net keeps only the pins inside the subset; nets reduced to a
        single pin are anchored onto that pin; empty restrictions vanish.
        With this accounting, summing the cut weight of every bisection in a
        recursive-bisection tree equals the connectivity-1 cost of the final
        partition (Section 5.1).
        """
        idx = np.asarray(sorted(set(int(v) for v in vertices)), dtype=int)
        if len(idx) and (idx[0] < 0 or idx[-1] >= self._n):
            raise ValueError("vertex ids out of range")
        local_of = {int(g): i for i, g in enumerate(idx)}

        vweights = self.vertex_weights[idx] if len(idx) else np.zeros(0)
        anchored = self.anchored_weights[idx].copy() if len(idx) else np.zeros(0)

        merged: dict[tuple[int, ...], float] = {}
        seen_nets: set[int] = set()
        for g in idx:
            seen_nets.update(self._vnets[g])
        for j in sorted(seen_nets):
            local = tuple(
                sorted(local_of[v] for v in self._pins[j] if v in local_of)
            )
            if not local:
                continue
            w = float(self.net_weights[j])
            if len(local) == 1:
                anchored[local[0]] += w
            else:
                merged[local] = merged.get(local, 0.0) + w

        nets = list(merged.keys())
        weights = [merged[p] for p in nets]
        return Hypergraph(len(idx), nets, vweights, weights, anchored), idx

    def __repr__(self):
        return (
            f"Hypergraph({self._n} vertices, {self.num_nets} nets, "
            f"{self.num_pins} pins)"
        )


@dataclass(frozen=True)
class PartitionStats:
    """Summary of a partition's quality (see :mod:`repro.hypergraph.metrics`)."""

    num_parts: int
    cut_weight: float
    connectivity_1: float
    part_weights: tuple[float, ...]
    imbalance: float
    incident_net_weights: tuple[float, ...]
