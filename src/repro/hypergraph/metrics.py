"""Partition quality metrics: cut, connectivity-1, balance, incident weight."""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from .hypergraph import Hypergraph, PartitionStats

__all__ = [
    "net_connectivity",
    "cut_weight",
    "connectivity_1",
    "part_weights",
    "imbalance",
    "incident_net_weights",
    "partition_stats",
    "validate_partition",
]


def validate_partition(h: Hypergraph, parts: Sequence[int]) -> np.ndarray:
    """Check ``parts`` maps every vertex to a non-negative part id."""
    arr = np.asarray(parts, dtype=int)
    if arr.shape != (h.num_vertices,):
        raise ValueError(
            f"partition must assign all {h.num_vertices} vertices, got {arr.shape}"
        )
    if h.num_vertices and arr.min() < 0:
        raise ValueError("part ids must be non-negative")
    return arr


def net_connectivity(h: Hypergraph, parts: Sequence[int], net: int) -> int:
    """Number of distinct parts spanned by ``net`` (lambda_j)."""
    arr = np.asarray(parts, dtype=int)
    return len({int(arr[v]) for v in h.pins(net)})


def cut_weight(h: Hypergraph, parts: Sequence[int]) -> float:
    """Total weight of nets spanning more than one part (cut-net metric)."""
    arr = validate_partition(h, parts)
    total = 0.0
    for j in range(h.num_nets):
        ps = h.pins(j)
        first = arr[ps[0]]
        if any(arr[v] != first for v in ps[1:]):
            total += float(h.net_weights[j])
    return total


def connectivity_1(h: Hypergraph, parts: Sequence[int]) -> float:
    """The connectivity-1 cost ``sum_j c_j (lambda_j - 1)`` (Eq. 23).

    For the first-level (sub-batch) partitioning this equals the extra I/O
    volume caused by files shared across sub-batches: a file spanning
    ``lambda`` sub-batches is re-staged ``lambda - 1`` extra times.
    """
    arr = validate_partition(h, parts)
    total = 0.0
    for j in range(h.num_nets):
        lam = len({int(arr[v]) for v in h.pins(j)})
        if lam > 1:
            total += float(h.net_weights[j]) * (lam - 1)
    return total


def part_weights(
    h: Hypergraph, parts: Sequence[int], num_parts: int | None = None
) -> np.ndarray:
    """Sum of vertex weights per part."""
    arr = validate_partition(h, parts)
    k = num_parts if num_parts is not None else (int(arr.max()) + 1 if len(arr) else 0)
    w = np.zeros(k)
    np.add.at(w, arr, h.vertex_weights)
    return w


def imbalance(
    h: Hypergraph, parts: Sequence[int], num_parts: int | None = None
) -> float:
    """Relative imbalance ``max_p W_p / W_avg - 1`` (0 = perfectly balanced)."""
    w = part_weights(h, parts, num_parts)
    if len(w) == 0 or w.sum() == 0:
        return 0.0
    return float(w.max() / (w.sum() / len(w)) - 1.0)


def incident_net_weights(
    h: Hypergraph, parts: Sequence[int], num_parts: int | None = None
) -> np.ndarray:
    """Per-part incident net weight (Eq. 24 left-hand side).

    A net incident to several parts counts fully toward each of them, and
    anchored (degenerated size-1 net) weights count toward their pin's part.
    """
    arr = validate_partition(h, parts)
    k = num_parts if num_parts is not None else (int(arr.max()) + 1 if len(arr) else 0)
    out = np.zeros(k)
    for j in range(h.num_nets):
        for p in {int(arr[v]) for v in h.pins(j)}:
            out[p] += float(h.net_weights[j])
    np.add.at(out, arr, h.anchored_weights)
    return out


def partition_stats(
    h: Hypergraph, parts: Sequence[int], num_parts: int | None = None
) -> PartitionStats:
    """Bundle all quality metrics for reporting and tests."""
    w = part_weights(h, parts, num_parts)
    return PartitionStats(
        num_parts=len(w),
        cut_weight=cut_weight(h, parts),
        connectivity_1=connectivity_1(h, parts),
        part_weights=tuple(float(x) for x in w),
        imbalance=imbalance(h, parts, num_parts),
        incident_net_weights=tuple(
            float(x) for x in incident_net_weights(h, parts, num_parts)
        ),
    )
