"""Cross-run regression attribution over run manifests.

``repro diff A.json B.json`` answers the question the bench-regression gate
leaves open: not just *that* the makespan drifted, but *where*. Two run
manifests (:mod:`repro.obs.export`) are aligned and the makespan delta is
attributed along three axes:

* **phase** — schedule (wall-clock scheduler time), stage (port time spent
  on transfers) and execute (CPU time), reconstructed per node from the
  manifest's derived metrics: ``exec = node_exec_utilization × makespan``,
  ``stage = max(port_busy_fraction × makespan − exec, 0)`` on compute
  nodes (storage ports and the shared link are pure staging);
* **node** — every compute/storage/link timeline the metrics cover;
* **metric** — every scalar in ``stats``/``metrics`` plus the final value
  of every time series, ranked by relative change.

The result carries a CI gate: :meth:`ManifestDiff.exceeds` mirrors the
bench-regression tolerance (default 15% of run A's makespan) and drives the
CLI's non-zero exit code.

Besides full manifests, :func:`load_run` accepts ``path#cell`` pointing
into a ``repro-bench`` document (``benchmarks/BENCH_baseline.json``); the
named cell is lifted into a minimal manifest (scalar makespan only, no
metrics), so a fresh run can be diffed straight against the checked-in
baseline.
"""

from __future__ import annotations

import json
from collections.abc import Mapping
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

__all__ = [
    "AttributionRow",
    "DEFAULT_FAIL_OVER",
    "ManifestDiff",
    "MetricDelta",
    "diff_manifests",
    "format_diff",
    "load_run",
]

#: Default gate: fail when |Δmakespan| exceeds this fraction of run A's
#: makespan — the same tolerance as the bench-regression gate.
DEFAULT_FAIL_OVER = 0.15

_EPS = 1e-12


@dataclass(frozen=True)
class AttributionRow:
    """Seconds spent in one (phase, node) bucket, in each run."""

    phase: str
    node: str
    a_s: float
    b_s: float

    @property
    def delta_s(self) -> float:
        return self.b_s - self.a_s


@dataclass(frozen=True)
class MetricDelta:
    """One scalar metric's value in each run, ranked by relative change."""

    name: str
    a: float
    b: float

    @property
    def delta(self) -> float:
        return self.b - self.a

    @property
    def rel(self) -> float:
        return self.delta / max(abs(self.a), _EPS)

    @property
    def rel_str(self) -> str:
        """Human form of :attr:`rel` (``new``/``gone`` for zero bases)."""
        if abs(self.a) <= _EPS:
            return "new"
        if abs(self.b) <= _EPS:
            return "gone"
        return f"{self.rel:+.1%}"


@dataclass
class ManifestDiff:
    """The aligned comparison of two run manifests (A = base, B = candidate)."""

    scheme_a: str
    scheme_b: str
    makespan_a: float
    makespan_b: float
    rows: list[AttributionRow] = field(default_factory=list)
    metric_rows: list[MetricDelta] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    @property
    def delta_s(self) -> float:
        return self.makespan_b - self.makespan_a

    @property
    def rel_delta(self) -> float:
        return self.delta_s / max(abs(self.makespan_a), _EPS)

    def exceeds(self, fail_over: float = DEFAULT_FAIL_OVER) -> bool:
        """True when |Δmakespan| exceeds ``fail_over`` × A's makespan."""
        return abs(self.delta_s) > fail_over * max(abs(self.makespan_a), _EPS)

    def dominant(self) -> str:
        """One line naming the dominant phase, node and metric of the delta."""
        parts: list[str] = []
        if self.rows:
            top = self.rows[0]
            share = top.delta_s / self.delta_s if abs(self.delta_s) > _EPS else 0.0
            parts.append(
                f"phase {top.phase} on {top.node} "
                f"({top.delta_s:+.3f}s, {share:.0%} of the makespan delta)"
            )
        if self.metric_rows:
            m = self.metric_rows[0]
            parts.append(f"metric {m.name} ({m.rel_str})")
        if not parts:
            return "dominant: makespan only (no per-phase metrics in one or both manifests)"
        return "dominant: " + "; ".join(parts)

    def to_dict(self) -> dict[str, Any]:
        return {
            "scheme_a": self.scheme_a,
            "scheme_b": self.scheme_b,
            "makespan_a_s": self.makespan_a,
            "makespan_b_s": self.makespan_b,
            "delta_s": self.delta_s,
            "rel_delta": self.rel_delta,
            "rows": [
                {"phase": r.phase, "node": r.node, "a_s": r.a_s,
                 "b_s": r.b_s, "delta_s": r.delta_s}
                for r in self.rows
            ],
            "metrics": [
                {"name": m.name, "a": m.a, "b": m.b,
                 "delta": m.delta, "rel": m.rel}
                for m in self.metric_rows
            ],
            "notes": list(self.notes),
            "dominant": self.dominant(),
        }


def load_run(spec: str | Path) -> dict[str, Any]:
    """Load a run manifest, or lift a bench cell into a minimal one.

    ``spec`` is either a manifest path or ``path#cell`` where the file is a
    ``repro-bench`` document (``benchmarks/bench_regression.py`` output);
    the named cell becomes a manifest with the scalar result only.
    """
    text = str(spec)
    path_part, _, fragment = text.partition("#")
    with open(path_part) as fh:
        doc = json.load(fh)
    if not isinstance(doc, dict):
        raise ValueError(f"{path_part}: expected a JSON object")
    kind = doc.get("kind")
    if kind == "repro-run-manifest":
        if fragment:
            raise ValueError(f"{text}: #cell selectors only apply to repro-bench files")
        return doc
    if kind == "repro-bench":
        cells = doc.get("cells", {})
        if not fragment:
            raise ValueError(
                f"{path_part} is a repro-bench document; select a cell with "
                f"'{path_part}#<cell>' (e.g. #{next(iter(sorted(cells)), 'fig5b/n50/minmin')})"
            )
        if fragment not in cells:
            raise KeyError(f"{path_part}: no cell {fragment!r} (have {sorted(cells)})")
        cell = cells[fragment]
        return {
            "kind": "repro-run-manifest",
            "manifest_version": 1,
            "versions": doc.get("versions", {}),
            "config": None,
            "config_digest": f"bench:{fragment}",
            "scheme": fragment.rsplit("/", 1)[-1],
            "result": {
                "makespan_s": float(cell["makespan_s"]),
                "scheduling_seconds": 0.0,
                "sub_batches": 0,
                "tasks": 0,
            },
            "stats": {},
            "metrics": None,
            "telemetry": None,
            "decisions": None,
        }
    raise ValueError(f"{path_part}: unrecognised kind {kind!r}")


def _phase_seconds(manifest: Mapping[str, Any]) -> dict[tuple[str, str], float]:
    """Reconstruct (phase, node) → seconds from a manifest's metrics."""
    out: dict[tuple[str, str], float] = {}
    result = manifest.get("result") or {}
    makespan = float(result.get("makespan_s", 0.0))
    metrics = manifest.get("metrics") or {}
    exec_util = metrics.get("node_exec_utilization") or {}
    for node, util in exec_util.items():
        out[("execute", str(node))] = float(util) * makespan
    for node, frac in (metrics.get("port_busy_fraction") or {}).items():
        busy = float(frac) * makespan
        exec_s = out.get(("execute", str(node)), 0.0)
        # A compute node's port timeline carries execution too; the excess
        # over exec time is staging. Storage ports / the shared link only
        # ever stage.
        out[("stage", str(node))] = max(busy - exec_s, 0.0)
    out[("schedule", "all")] = float(result.get("scheduling_seconds", 0.0))
    return out


def _scalar_metrics(manifest: Mapping[str, Any]) -> dict[str, float]:
    """Every scalar metric of a manifest, namespaced by its block."""
    out: dict[str, float] = {}
    for block in ("stats", "metrics"):
        for name, value in (manifest.get(block) or {}).items():
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                out[f"{block}/{name}"] = float(value)
    timeseries = manifest.get("timeseries")
    if timeseries is not None:
        for name, series in (timeseries.get("series") or {}).items():
            points = series.get("points") or []
            if points:
                out[f"timeseries/{name}:last"] = float(points[-1][1])
    return out


def diff_manifests(
    a: Mapping[str, Any], b: Mapping[str, Any]
) -> ManifestDiff:
    """Align two manifests and attribute the makespan delta.

    Phase/node attribution needs the derived metrics block in *both*
    manifests (runs executed with ``telemetry=True``); without it the diff
    degrades to the scalar tables and says so in ``notes``.
    """
    diff = ManifestDiff(
        scheme_a=str(a.get("scheme")),
        scheme_b=str(b.get("scheme")),
        makespan_a=float((a.get("result") or {}).get("makespan_s", 0.0)),
        makespan_b=float((b.get("result") or {}).get("makespan_s", 0.0)),
    )
    if diff.scheme_a != diff.scheme_b:
        diff.notes.append(
            f"schemes differ ({diff.scheme_a} vs {diff.scheme_b}): this is a "
            "cross-scheme comparison, not a regression"
        )
    if a.get("metrics") is not None and b.get("metrics") is not None:
        pa = _phase_seconds(a)
        pb = _phase_seconds(b)
        rows = [
            AttributionRow(
                phase=phase, node=node,
                a_s=pa.get((phase, node), 0.0),
                b_s=pb.get((phase, node), 0.0),
            )
            for phase, node in sorted(set(pa) | set(pb))
        ]
        rows.sort(key=lambda r: (-abs(r.delta_s), r.phase, r.node))
        diff.rows = rows
        diff.notes.append(
            "schedule phase is wall-clock scheduler time (excluded from the "
            "simulated makespan); stage/execute are simulated seconds"
        )
    else:
        diff.notes.append(
            "phase attribution unavailable: one or both manifests lack the "
            "metrics block (run with telemetry enabled to get it)"
        )
    ma = _scalar_metrics(a)
    mb = _scalar_metrics(b)
    metric_rows = [
        MetricDelta(name=name, a=ma.get(name, 0.0), b=mb.get(name, 0.0))
        for name in sorted(set(ma) | set(mb))
        # The makespan is the outcome being attributed, not a cause.
        if name != "metrics/makespan_s"
    ]
    metric_rows = [m for m in metric_rows if abs(m.delta) > _EPS]
    metric_rows.sort(key=lambda m: (-abs(m.rel), -abs(m.delta), m.name))
    diff.metric_rows = metric_rows
    return diff


def format_diff(diff: ManifestDiff, top: int = 8) -> str:
    """Human-readable report: header, ranked attribution, metric deltas."""
    lines: list[str] = []
    lines.append(
        f"makespan: {diff.makespan_a:.3f}s -> {diff.makespan_b:.3f}s "
        f"({diff.delta_s:+.3f}s, {diff.rel_delta:+.1%})"
    )
    lines.append(diff.dominant())
    if diff.rows:
        lines.append("")
        lines.append(f"{'phase':<9} {'node':<10} {'A (s)':>10} {'B (s)':>10} {'delta (s)':>11} {'share':>7}")
        for r in diff.rows[:top]:
            share = r.delta_s / diff.delta_s if abs(diff.delta_s) > _EPS else 0.0
            lines.append(
                f"{r.phase:<9} {r.node:<10} {r.a_s:>10.3f} {r.b_s:>10.3f} "
                f"{r.delta_s:>+11.3f} {share:>6.0%}"
            )
    if diff.metric_rows:
        lines.append("")
        lines.append(f"{'metric':<42} {'A':>12} {'B':>12} {'rel':>8}")
        for m in diff.metric_rows[:top]:
            lines.append(
                f"{m.name:<42} {m.a:>12.3f} {m.b:>12.3f} {m.rel_str:>8}"
            )
    for note in diff.notes:
        lines.append(f"note: {note}")
    return "\n".join(lines)
