"""Scheduler decision log: one structured record per task placement.

The MCT-family schedulers (MinMin / MaxMin / Sufferage,
:mod:`repro.core.minmin` and :mod:`repro.core.mct_family`) commit one
(task, node) pair per iteration based on an *estimated* completion time
computed without simulating port contention. When :data:`repro.obs.telemetry`
is enabled they emit one :class:`Decision` per placement here, capturing
the estimate, how many candidate pairs were evaluated, and how many
candidates tied with the winner.

After the runtime executes the mapping, the log can be *replayed* against
the executed :class:`~repro.cluster.stats.TaskRecord`\\ s
(:meth:`DecisionLog.replay`) to quantify the scheduler's estimation error —
the gap between the MCT model (Eqs. 9–11 of the paper) and the Section 6
execution engine's realized completion times. For a single compute node
with unlimited disk the two models coincide and the error is zero up to
float round-off (asserted in ``tests/obs/test_decisions.py``); contention
and eviction make the estimates optimistic at scale.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass, field
from typing import Any

from ..cluster.stats import TaskRecord

__all__ = ["Decision", "DecisionLog", "DecisionReplay", "ReplayedDecision"]


@dataclass(frozen=True)
class Decision:
    """One committed task placement and the estimate that justified it."""

    task_id: str
    node: int
    scheme: str
    reason: str  # the selection rule, e.g. "global-min-mct"
    estimated_completion: float  # simulated seconds from batch start
    evaluated: int  # candidate (task, node) pairs scanned for this pick
    ties: int  # other candidates within tolerance of the winning value

    def to_dict(self) -> dict[str, Any]:
        return {
            "task_id": self.task_id,
            "node": self.node,
            "scheme": self.scheme,
            "reason": self.reason,
            "estimated_completion": self.estimated_completion,
            "evaluated": self.evaluated,
            "ties": self.ties,
        }


@dataclass(frozen=True)
class ReplayedDecision:
    """A decision matched with the realized execution of its task."""

    decision: Decision
    realized_completion: float

    @property
    def error_s(self) -> float:
        """Realized minus estimated completion (positive = optimistic)."""
        return self.realized_completion - self.decision.estimated_completion


@dataclass
class DecisionReplay:
    """Estimation-error report from replaying a log against task records."""

    matched: list[ReplayedDecision] = field(default_factory=list)
    unmatched: list[str] = field(default_factory=list)  # task ids without records

    @property
    def mean_abs_error_s(self) -> float:
        if not self.matched:
            return 0.0
        return sum(abs(m.error_s) for m in self.matched) / len(self.matched)

    @property
    def max_abs_error_s(self) -> float:
        return max((abs(m.error_s) for m in self.matched), default=0.0)

    @property
    def bias_s(self) -> float:
        """Mean signed error (positive = estimates were optimistic)."""
        if not self.matched:
            return 0.0
        return sum(m.error_s for m in self.matched) / len(self.matched)

    def summary(self) -> dict[str, Any]:
        return {
            "decisions": len(self.matched) + len(self.unmatched),
            "matched": len(self.matched),
            "unmatched": len(self.unmatched),
            "mean_abs_error_s": self.mean_abs_error_s,
            "max_abs_error_s": self.max_abs_error_s,
            "bias_s": self.bias_s,
        }


@dataclass
class DecisionLog:
    """Append-only log of one scheduler run's placement decisions."""

    scheme: str = ""
    decisions: list[Decision] = field(default_factory=list)

    def record(
        self,
        task_id: str,
        node: int,
        reason: str,
        estimated_completion: float,
        evaluated: int = 0,
        ties: int = 0,
    ) -> None:
        self.decisions.append(
            Decision(
                task_id=task_id,
                node=node,
                scheme=self.scheme,
                reason=reason,
                estimated_completion=estimated_completion,
                evaluated=evaluated,
                ties=ties,
            )
        )

    def __len__(self) -> int:
        return len(self.decisions)

    def replay(self, records: Iterable[TaskRecord]) -> DecisionReplay:
        """Match decisions to executed records and report estimation error."""
        realized = {r.task_id: r.completion for r in records}
        report = DecisionReplay()
        for d in self.decisions:
            if d.task_id in realized:
                report.matched.append(ReplayedDecision(d, realized[d.task_id]))
            else:
                report.unmatched.append(d.task_id)
        return report

    def summary(self, records: Iterable[TaskRecord] | None = None) -> dict[str, Any]:
        """JSON-ready summary; includes replay stats when records are given."""
        doc: dict[str, Any] = {
            "scheme": self.scheme,
            "decisions": len(self.decisions),
            "evaluated": sum(d.evaluated for d in self.decisions),
            "ties": sum(d.ties for d in self.decisions),
        }
        if records is not None:
            doc["replay"] = self.replay(records).summary()
        return doc
